//! Static per-instruction cycle-cost table for the bytecode VM.
//!
//! The tree-walking interpreter charges simulated cycles by reading
//! [`MachineConfig`] fields at every expression node. The VM splits
//! those charges in two:
//!
//! * **Static costs** — fixed per instruction class, independent of
//!   where the accessed data lives. These are snapshotted into a flat
//!   [`CostTable`] at [`Simulator::new`](crate::Simulator::new) so the
//!   dispatch loop charges them with one indexed load instead of a
//!   field walk through the config struct.
//! * **Dynamic costs** — memory-placement, contention, paging, and
//!   fault-jitter dependent charges. These stay on the interpreter's
//!   `mem_cost` / `bind_access_cost` model (shared by both engines) so
//!   the two engines cannot drift.
//!
//! ## Bit-identity
//!
//! Every table entry is either a *verbatim copy* of a config field or a
//! product the interpreter also computes identically on every charge
//! (`f64` multiplication is deterministic: `scalar_op * 2.0` yields the
//! same bits whether computed once at table build or once per loop
//! iteration). No entry ever sums charges the interpreter adds
//! separately — float addition does not associate, and simulated time
//! is an `f64` accumulator (see `sim::prepass` for the same rule).

use crate::config::MachineConfig;

/// Instruction cost classes charged by the VM dispatch loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum CostClass {
    /// One scalar ALU/FPU operation (`Un`, `Bin`, subscript address
    /// arithmetic): [`MachineConfig::scalar_op`].
    ScalarOp = 0,
    /// Register/cache-resident scalar access (`LoadScalar`,
    /// `StoreScalar`): [`MachineConfig::cache_hit`].
    CacheHit = 1,
    /// Conditional-branch test of an `IF` statement (the interpreter
    /// charges one scalar op after evaluating the condition):
    /// [`MachineConfig::scalar_op`].
    Branch = 2,
    /// One buffered I/O statement: [`MachineConfig::io_cost`].
    Io = 3,
    /// Loop-iteration bookkeeping (induction increment + bounds test,
    /// two scalar ops): `scalar_op * 2.0`.
    LoopStep = 4,
}

const N_CLASSES: usize = 5;

/// Flat cycle-cost table indexed by [`CostClass`]; built once per
/// simulator from the machine config.
#[derive(Debug, Clone)]
pub struct CostTable {
    t: [f64; N_CLASSES],
}

impl CostTable {
    /// Snapshot the static charges of `config`.
    pub fn build(config: &MachineConfig) -> CostTable {
        let mut t = [0.0; N_CLASSES];
        t[CostClass::ScalarOp as usize] = config.scalar_op;
        t[CostClass::CacheHit as usize] = config.cache_hit;
        t[CostClass::Branch as usize] = config.scalar_op;
        t[CostClass::Io as usize] = config.io_cost;
        t[CostClass::LoopStep as usize] = config.scalar_op * 2.0;
        CostTable { t }
    }

    /// Cycles charged for one instruction of class `c`.
    #[inline(always)]
    pub fn get(&self, c: CostClass) -> f64 {
        self.t[c as usize]
    }
}

impl std::ops::Index<CostClass> for CostTable {
    type Output = f64;

    #[inline(always)]
    fn index(&self, c: CostClass) -> &f64 {
        &self.t[c as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_entries_are_verbatim_config_bits() {
        let cfg = MachineConfig::cedar_config1();
        let t = CostTable::build(&cfg);
        assert_eq!(t[CostClass::ScalarOp].to_bits(), cfg.scalar_op.to_bits());
        assert_eq!(t[CostClass::CacheHit].to_bits(), cfg.cache_hit.to_bits());
        assert_eq!(t[CostClass::Branch].to_bits(), cfg.scalar_op.to_bits());
        assert_eq!(t[CostClass::Io].to_bits(), cfg.io_cost.to_bits());
        assert_eq!(
            t[CostClass::LoopStep].to_bits(),
            (cfg.scalar_op * 2.0).to_bits(),
            "loop step must be the same product the interpreter computes"
        );
    }

    #[test]
    fn table_tracks_nondefault_configs() {
        let mut cfg = MachineConfig::fx80();
        cfg.scalar_op = 1.75;
        cfg.io_cost = 12.5;
        let t = CostTable::build(&cfg);
        assert_eq!(t.get(CostClass::ScalarOp), 1.75);
        assert_eq!(t.get(CostClass::Branch), 1.75);
        assert_eq!(t.get(CostClass::LoopStep), 3.5);
        assert_eq!(t.get(CostClass::Io), 12.5);
    }
}
