//! Execution statistics and event counters.

/// Counters accumulated over one simulated run.
#[derive(Debug, Clone, Default)]
pub struct ExecStats {
    /// Total simulated wall-clock cycles of the run (critical path
    /// through the parallel schedule).
    pub cycles: f64,

    // ---- memory traffic by class (element counts) ----
    /// Accesses served by CE-private storage/cache.
    pub private_accesses: u64,
    /// Accesses served by cluster memory.
    pub cluster_accesses: u64,
    /// Scalar accesses that crossed the global interconnect.
    pub global_scalar_accesses: u64,
    /// Vector elements moved through the global interconnect.
    pub global_vector_elems: u64,
    /// Global vector elements that went through the prefetch buffer.
    pub prefetched_elems: u64,
    /// Expected number of accesses that paid the thrashing
    /// surcharge (fractional: thrash probability × accesses).
    pub paged_accesses: f64,

    // ---- computation ----
    /// Scalar arithmetic operations executed.
    pub scalar_ops: u64,
    /// Elements processed by vector operations.
    pub vector_elems: u64,

    // ---- parallelism ----
    /// Parallel loop instances entered.
    pub parallel_loops: u64,
    /// Iterations executed inside parallel loops.
    pub parallel_iterations: u64,
    /// Cascade `await` operations executed.
    pub awaits: u64,
    /// Cascade `advance` operations executed.
    pub advances: u64,
    /// `advance` signals dropped by fault injection (illegal
    /// perturbation; nonzero only under `FaultConfig::drop_advance`).
    pub dropped_advances: u64,
    /// Critical-section lock acquisitions.
    pub lock_acquisitions: u64,
    /// Cycles CEs spent stalled in cascade awaits (summed over CEs).
    pub await_stall_cycles: f64,
    /// Cycles spent waiting on critical-section locks.
    pub lock_stall_cycles: f64,

    // ---- structure ----
    /// Subroutine-level tasks started (§2.2.2).
    pub tasks_started: u64,
    /// Subroutine/function calls executed.
    pub calls: u64,
    /// PRINT/WRITE statements executed (charged a fixed cost).
    pub io_statements: u64,

    /// Cycles accumulated between `CALL TSTART` / `CALL TSTOP` pairs
    /// (0 when no timers ran; harnesses fall back to total cycles).
    pub region_cycles: f64,
    /// Open-region start time (internal bookkeeping).
    pub region_open: Option<f64>,
}

impl ExecStats {
    /// Total global-memory element traffic.
    pub fn global_traffic(&self) -> u64 {
        self.global_scalar_accesses + self.global_vector_elems
    }

    /// Fraction of global vector traffic that was prefetched.
    pub fn prefetch_coverage(&self) -> f64 {
        if self.global_vector_elems == 0 {
            0.0
        } else {
            self.prefetched_elems as f64 / self.global_vector_elems as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_metrics() {
        let s = ExecStats {
            global_scalar_accesses: 10,
            global_vector_elems: 90,
            prefetched_elems: 45,
            ..Default::default()
        };
        assert_eq!(s.global_traffic(), 100);
        assert!((s.prefetch_coverage() - 0.5).abs() < 1e-12);
        let empty = ExecStats::default();
        assert_eq!(empty.prefetch_coverage(), 0.0);
    }
}
