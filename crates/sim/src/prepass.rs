//! One-time interpreter prepass: derived per-program data computed at
//! [`Simulator::new`](crate::Simulator::new) so the hot execution loop
//! stops re-deriving it per frame, per call, and per loop entry.
//!
//! Two caches live here:
//!
//! * **Callee index** — `unit name → index` for CALL / function-call /
//!   task-start resolution, replacing a linear scan of `program.units`
//!   on every call. Pure lookup: cannot affect simulated behavior.
//! * **Constant-folded declared dims** — for every symbol whose declared
//!   bounds fold to integer constants against `PARAMETER`s, the dims
//!   *and the exact cost-charge sequence the interpreter's slow path
//!   would have emitted while evaluating them*. Frame construction
//!   (`new_frame`, `bind_locals`, `eval_dummy_dims`) then replays the
//!   recorded charge sequence instead of walking the expression trees.
//!
//! ## Why the replay is bit-identical
//!
//! Simulated time is an `f64` accumulator, and float addition does not
//! associate: collapsing k unit charges into one `k × cost` add could
//! drift by an ULP once the clock holds a non-dyadic value (e.g. after a
//! contention-scaled memory cost). So the fold does **not** sum the
//! charges — it records the *sequence* of `ctx.time +=` increments the
//! tree walk performs, in evaluation order (lower bound then upper
//! bound per dim; post-order within an expression), and the fast path
//! replays them one by one. Same adds, same order, same rounding —
//! bit-identical cycles by construction, which the fast-path
//! equivalence property test (`prop_fastpath.rs`) asserts over every
//! Table 1 kernel.
//!
//! The folder mirrors `value_ops` integer semantics exactly (wrapping
//! add/sub/mul, truncating division) and bails to `None` — meaning "use
//! the slow path" — on anything it cannot reproduce faithfully:
//! non-integer parameters, division by zero, missing upper bounds
//! (assumed-size), or any operator outside `+ - * /` and unary minus.
//! Race-detection runs also bypass the cache at the use site: the slow
//! path's `PARAMETER` reads pass through the detector's shadow memory,
//! and skipping them must not change detector state.

use crate::config::MachineConfig;
use cedar_ir::{BinOp, Expr, Program, SymKind, Unit, UnOp, Value};
use std::collections::HashMap;

/// Constant-folded declared dims of one symbol, plus the exact charge
/// sequence the interpreter's slow path would emit to evaluate them.
pub(crate) struct ConstDims {
    /// `(lower, upper)` per declared dimension.
    pub dims: Vec<(i64, i64)>,
    /// `ctx.time +=` increments in slow-path evaluation order.
    pub charges: Vec<f64>,
    /// Total `stats.scalar_ops` the slow path would add (order-free:
    /// integer counter).
    pub scalar_ops: u64,
}

/// Program-wide derived data, computed once per simulator.
pub(crate) struct Prepass {
    /// `unit name → index` into `program.units`.
    pub unit_index: HashMap<String, usize>,
    /// Per unit, per symbol: `Some` iff every declared bound folds to an
    /// integer constant. Indexed `[unit][symbol]`.
    pub sym_dims: Vec<Vec<Option<ConstDims>>>,
    /// Master switch ([`MachineConfig::fast_paths`]); when false the
    /// dim cache is ignored and only the pure callee index is used.
    pub enabled: bool,
}

impl Prepass {
    pub fn build(program: &Program, config: &MachineConfig) -> Prepass {
        let mut unit_index = HashMap::with_capacity(program.units.len());
        for (i, u) in program.units.iter().enumerate() {
            // First definition wins, matching `Iterator::position`.
            unit_index.entry(u.name.clone()).or_insert(i);
        }
        let sym_dims = program
            .units
            .iter()
            .map(|u| {
                u.symbols
                    .iter()
                    .map(|sym| fold_sym_dims(u, sym, config))
                    .collect()
            })
            .collect();
        Prepass { unit_index, sym_dims, enabled: config.fast_paths }
    }

    /// Cached dims for `[unit][symbol]`, honoring the master switch.
    pub fn dims(&self, unit: usize, sym: usize) -> Option<&ConstDims> {
        if !self.enabled {
            return None;
        }
        self.sym_dims.get(unit)?.get(sym)?.as_ref()
    }
}

/// Fold the declared dims of one symbol. `None` when any bound needs
/// runtime evaluation (adjustable arrays, assumed-size, real-typed
/// parameters, foldable-but-error cases like division by zero).
fn fold_sym_dims(
    unit: &Unit,
    sym: &cedar_ir::Symbol,
    config: &MachineConfig,
) -> Option<ConstDims> {
    if sym.dims.is_empty() {
        // Scalars pay nothing in eval_dims; caching buys nothing.
        return None;
    }
    let mut f = Folder { unit, config, charges: Vec::new(), scalar_ops: 0 };
    let mut dims = Vec::with_capacity(sym.dims.len());
    for d in &sym.dims {
        let lo = f.fold(&d.lower)?;
        let hi = f.fold(d.upper.as_ref()?)?;
        dims.push((lo, hi));
    }
    Some(ConstDims { dims, charges: f.charges, scalar_ops: f.scalar_ops })
}

/// Symbolic mirror of `Simulator::eval_scalar` over the constant subset
/// of the expression language, recording the charge stream.
struct Folder<'a> {
    unit: &'a Unit,
    config: &'a MachineConfig,
    charges: Vec<f64>,
    scalar_ops: u64,
}

impl Folder<'_> {
    fn fold(&mut self, e: &Expr) -> Option<i64> {
        match e {
            Expr::ConstI(v) => Some(*v),
            Expr::Scalar(s) => match &self.unit.symbol(*s).kind {
                // Slow path: one cache-hit charge, then an integer load.
                SymKind::Param(Value::I(v)) => {
                    self.charges.push(self.config.cache_hit);
                    Some(*v)
                }
                _ => None,
            },
            Expr::Un(UnOp::Neg, inner) => {
                let v = self.fold(inner)?;
                self.charges.push(self.config.scalar_op);
                self.scalar_ops += 1;
                // `value_ops::un` computes `-a`; delegate the i64::MIN
                // edge to the slow path so overflow behavior matches.
                v.checked_neg()
            }
            Expr::Bin(op, l, r) => {
                let a = self.fold(l)?;
                let b = self.fold(r)?;
                self.charges.push(self.config.scalar_op);
                self.scalar_ops += 1;
                // Mirror value_ops: wrapping + - *, truncating /.
                Some(match op {
                    BinOp::Add => a.wrapping_add(b),
                    BinOp::Sub => a.wrapping_sub(b),
                    BinOp::Mul => a.wrapping_mul(b),
                    BinOp::Div if b != 0 => a / b,
                    _ => return None,
                })
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn compile(src: &str) -> Program {
        cedar_ir::compile_source(src).expect("test source compiles")
    }

    #[test]
    fn folds_parameter_dims_with_charge_sequence() {
        let p = compile(
            "      program t\n\
             \x20     parameter (n = 8)\n\
             \x20     real a(n, 2*n)\n\
             \x20     a(1, 1) = 0.0\n\
             \x20     end\n",
        );
        let cfg = MachineConfig::cedar_config1();
        let pre = Prepass::build(&p, &cfg);
        let ui = pre.unit_index["t"];
        let si = p.units[ui].find_symbol("a").unwrap().index();
        let cd = pre.dims(ui, si).expect("dims fold");
        assert_eq!(cd.dims, vec![(1, 8), (1, 16)]);
        // Lowering substitutes PARAMETER refs with constants, so dim 1
        // (`n` → 8) charges nothing; dim 2 keeps the `2*8` multiply and
        // charges one scalar op, exactly like the slow walk.
        assert_eq!(cd.charges, vec![cfg.scalar_op]);
        assert_eq!(cd.scalar_ops, 1);
    }

    #[test]
    fn adjustable_dims_do_not_fold() {
        let p = compile(
            "      subroutine s(a, m)\n\
             \x20     real a(m)\n\
             \x20     a(1) = 0.0\n\
             \x20     end\n",
        );
        let cfg = MachineConfig::cedar_config1();
        let pre = Prepass::build(&p, &cfg);
        let ui = pre.unit_index["s"];
        let si = p.units[ui].find_symbol("a").unwrap().index();
        assert!(pre.dims(ui, si).is_none(), "runtime bound must not fold");
    }

    #[test]
    fn disabled_switch_hides_the_cache() {
        let p = compile(
            "      program t\n\
             \x20     real a(4)\n\
             \x20     a(1) = 0.0\n\
             \x20     end\n",
        );
        let mut cfg = MachineConfig::cedar_config1();
        cfg.fast_paths = false;
        let pre = Prepass::build(&p, &cfg);
        let ui = pre.unit_index["t"];
        let si = p.units[ui].find_symbol("a").unwrap().index();
        assert!(pre.dims(ui, si).is_none());
    }
}
