//! Structured simulation errors.
//!
//! Every failure path of the interpreter produces a [`SimError`] with a
//! [`SimErrorKind`] classifying the fault, so harnesses (and the
//! `cedar-verify` differential validator) can react to *what* went
//! wrong — a deadlock under a perturbed schedule means an illegal
//! transform, an out-of-bounds subscript means a broken program —
//! instead of string-matching messages or catching panics.

use crate::race::RaceInfo;
use cedar_ir::Span;
use std::fmt;

/// Classification of a simulation failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SimErrorKind {
    /// A cascade `await` can never be satisfied: no `advance` of the
    /// awaited point was recorded in the dependence window. The
    /// watchdog reports this instead of stalling forever.
    Deadlock,
    /// Array subscript or section lane outside the bound extents.
    OutOfBounds,
    /// Use of a value or binding that was never established (unbound
    /// variable, function that returned no value).
    Uninit,
    /// Shape or arity violation: rank mismatch, vector length mismatch,
    /// wrong intrinsic argument count.
    TypeError,
    /// Integer division, `MOD`, or `0 ** negative` by/of zero.
    DivByZero,
    /// A construct the simulator (or the Cedar runtime it models)
    /// rejects, e.g. synchronization inside `mtskstart` threads.
    Unsupported,
    /// A watchdog bound tripped: DO WHILE iteration cap, call depth,
    /// total-operation budget, or a section too large to materialize.
    Limit,
    /// The run's wall-clock budget lapsed or its supervisor requested
    /// cancellation ([`crate::MachineConfig::cancel`]): the watchdog
    /// polls the cancel token alongside its statement budget and aborts
    /// cooperatively. Unlike [`SimErrorKind::Limit`], this says nothing
    /// about the program — only that the host ran out of patience.
    Timeout,
    /// Structurally invalid input program (unknown callee, missing
    /// PROGRAM unit, zero DO step, malformed COMMON, ...).
    BadProgram,
    /// The happens-before detector found two unordered conflicting
    /// accesses (see [`crate::race`]); details in [`SimError::race`].
    DataRace,
}

impl SimErrorKind {
    /// Stable lower-case tag (used in Display and JSON reports).
    pub fn as_str(self) -> &'static str {
        match self {
            SimErrorKind::Deadlock => "deadlock",
            SimErrorKind::OutOfBounds => "out-of-bounds",
            SimErrorKind::Uninit => "uninitialized",
            SimErrorKind::TypeError => "type-error",
            SimErrorKind::DivByZero => "div-by-zero",
            SimErrorKind::Unsupported => "unsupported",
            SimErrorKind::Limit => "limit-exceeded",
            SimErrorKind::Timeout => "timeout",
            SimErrorKind::BadProgram => "bad-program",
            SimErrorKind::DataRace => "data-race",
        }
    }
}

impl fmt::Display for SimErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Simulation error: a fault class, a message, and (when available) the
/// source line of the offending statement.
#[derive(Debug, Clone)]
pub struct SimError {
    /// What class of fault this is.
    pub kind: SimErrorKind,
    /// What went wrong.
    pub msg: String,
    /// Source line of the offending statement (if known).
    pub span: Span,
    /// Structured race details for [`SimErrorKind::DataRace`] errors.
    pub race: Option<Box<RaceInfo>>,
}

impl SimError {
    /// Build an error of the given kind.
    pub fn new(kind: SimErrorKind, span: Span, msg: impl Into<String>) -> SimError {
        SimError { kind, msg: msg.into(), span, race: None }
    }

    /// Build a data-race error from detector findings (fail-fast mode).
    pub fn data_race(info: RaceInfo) -> SimError {
        SimError {
            kind: SimErrorKind::DataRace,
            msg: info.to_string(),
            span: info.other_span,
            race: Some(Box::new(info)),
        }
    }

    /// True when this is a watchdog-detected deadlock.
    pub fn is_deadlock(&self) -> bool {
        self.kind == SimErrorKind::Deadlock
    }

    /// True when this is a detected data race.
    pub fn is_race(&self) -> bool {
        self.kind == SimErrorKind::DataRace
    }

    /// True when the run was aborted by its wall-clock deadline or an
    /// explicit cancellation, not by anything the program did.
    pub fn is_timeout(&self) -> bool {
        self.kind == SimErrorKind::Timeout
    }

    /// Attach a location-free operation error to a statement span.
    pub fn from_op(e: OpError, span: Span) -> SimError {
        SimError { kind: e.kind, msg: e.msg, span, race: None }
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: simulation error [{}]: {}", self.span, self.kind, self.msg)
    }
}

impl std::error::Error for SimError {}

/// A kinded error without a source location, produced by the pure value
/// operations ([`crate::value_ops`]); the interpreter attaches the
/// statement span via [`SimError::from_op`].
#[derive(Debug, Clone)]
pub struct OpError {
    /// Fault class.
    pub kind: SimErrorKind,
    /// Message.
    pub msg: String,
}

impl OpError {
    /// Build an operation error.
    pub fn new(kind: SimErrorKind, msg: impl Into<String>) -> OpError {
        OpError { kind, msg: msg.into() }
    }
}

impl fmt::Display for OpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.kind, self.msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_kind_tag_and_span() {
        let e = SimError::new(SimErrorKind::Deadlock, Span::new(7), "await(3) stuck");
        let text = e.to_string();
        assert!(text.contains("deadlock"), "{text}");
        assert!(text.contains("await(3) stuck"), "{text}");
        assert!(e.is_deadlock());
    }

    #[test]
    fn op_error_attaches_span() {
        let op = OpError::new(SimErrorKind::DivByZero, "integer division by zero");
        let e = SimError::from_op(op, Span::new(12));
        assert_eq!(e.kind, SimErrorKind::DivByZero);
        assert_eq!(e.span, Span::new(12));
    }

    #[test]
    fn every_kind_has_a_distinct_stable_tag() {
        let kinds = [
            SimErrorKind::Deadlock,
            SimErrorKind::OutOfBounds,
            SimErrorKind::Uninit,
            SimErrorKind::TypeError,
            SimErrorKind::DivByZero,
            SimErrorKind::Unsupported,
            SimErrorKind::Limit,
            SimErrorKind::Timeout,
            SimErrorKind::BadProgram,
            SimErrorKind::DataRace,
        ];
        let tags: Vec<&str> = kinds.iter().map(|k| k.as_str()).collect();
        let mut dedup = tags.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), kinds.len(), "duplicate tag in {tags:?}");
        // Tags feed JSON reports: lower-case, no whitespace, and the
        // Display impl must agree with as_str.
        for k in kinds {
            let tag = k.as_str();
            assert_eq!(tag, k.to_string());
            assert!(
                tag.chars().all(|c| c.is_ascii_lowercase() || c == '-'),
                "tag {tag:?} is not a stable lower-case slug"
            );
            let e = SimError::new(k, Span::new(3), "boom");
            assert!(e.to_string().contains(tag), "{e}");
        }
    }

    #[test]
    fn data_race_error_carries_structured_details() {
        let info = crate::race::RaceInfo {
            slot: 4,
            index: 2,
            var: Some("force".into()),
            kind: crate::race::RaceKind::WriteWrite,
            writer_iter: 5,
            writer_ce: 1,
            writer_span: Span::new(14),
            other_iter: 6,
            other_ce: 2,
            other_span: Span::new(14),
        };
        let e = SimError::data_race(info);
        assert!(e.is_race());
        assert!(!e.is_deadlock());
        let text = e.to_string();
        assert!(text.contains("data-race"), "{text}");
        assert!(text.contains("`force`"), "{text}");
        assert!(text.contains("element 2"), "{text}");
        let info = e.race.as_ref().expect("race details attached");
        assert_eq!(info.statement_pair(), (Span::new(14), Span::new(14)));
    }
}
