//! Structured simulation errors.
//!
//! Every failure path of the interpreter produces a [`SimError`] with a
//! [`SimErrorKind`] classifying the fault, so harnesses (and the
//! `cedar-verify` differential validator) can react to *what* went
//! wrong — a deadlock under a perturbed schedule means an illegal
//! transform, an out-of-bounds subscript means a broken program —
//! instead of string-matching messages or catching panics.

use cedar_ir::Span;
use std::fmt;

/// Classification of a simulation failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SimErrorKind {
    /// A cascade `await` can never be satisfied: no `advance` of the
    /// awaited point was recorded in the dependence window. The
    /// watchdog reports this instead of stalling forever.
    Deadlock,
    /// Array subscript or section lane outside the bound extents.
    OutOfBounds,
    /// Use of a value or binding that was never established (unbound
    /// variable, function that returned no value).
    Uninit,
    /// Shape or arity violation: rank mismatch, vector length mismatch,
    /// wrong intrinsic argument count.
    TypeError,
    /// Integer division, `MOD`, or `0 ** negative` by/of zero.
    DivByZero,
    /// A construct the simulator (or the Cedar runtime it models)
    /// rejects, e.g. synchronization inside `mtskstart` threads.
    Unsupported,
    /// A watchdog bound tripped: DO WHILE iteration cap, call depth,
    /// total-operation budget, or a section too large to materialize.
    Limit,
    /// Structurally invalid input program (unknown callee, missing
    /// PROGRAM unit, zero DO step, malformed COMMON, ...).
    BadProgram,
}

impl SimErrorKind {
    /// Stable lower-case tag (used in Display and JSON reports).
    pub fn as_str(self) -> &'static str {
        match self {
            SimErrorKind::Deadlock => "deadlock",
            SimErrorKind::OutOfBounds => "out-of-bounds",
            SimErrorKind::Uninit => "uninitialized",
            SimErrorKind::TypeError => "type-error",
            SimErrorKind::DivByZero => "div-by-zero",
            SimErrorKind::Unsupported => "unsupported",
            SimErrorKind::Limit => "limit-exceeded",
            SimErrorKind::BadProgram => "bad-program",
        }
    }
}

impl fmt::Display for SimErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Simulation error: a fault class, a message, and (when available) the
/// source line of the offending statement.
#[derive(Debug, Clone)]
pub struct SimError {
    /// What class of fault this is.
    pub kind: SimErrorKind,
    /// What went wrong.
    pub msg: String,
    /// Source line of the offending statement (if known).
    pub span: Span,
}

impl SimError {
    /// Build an error of the given kind.
    pub fn new(kind: SimErrorKind, span: Span, msg: impl Into<String>) -> SimError {
        SimError { kind, msg: msg.into(), span }
    }

    /// True when this is a watchdog-detected deadlock.
    pub fn is_deadlock(&self) -> bool {
        self.kind == SimErrorKind::Deadlock
    }

    /// Attach a location-free operation error to a statement span.
    pub fn from_op(e: OpError, span: Span) -> SimError {
        SimError { kind: e.kind, msg: e.msg, span }
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: simulation error [{}]: {}", self.span, self.kind, self.msg)
    }
}

impl std::error::Error for SimError {}

/// A kinded error without a source location, produced by the pure value
/// operations ([`crate::value_ops`]); the interpreter attaches the
/// statement span via [`SimError::from_op`].
#[derive(Debug, Clone)]
pub struct OpError {
    /// Fault class.
    pub kind: SimErrorKind,
    /// Message.
    pub msg: String,
}

impl OpError {
    /// Build an operation error.
    pub fn new(kind: SimErrorKind, msg: impl Into<String>) -> OpError {
        OpError { kind, msg: msg.into() }
    }
}

impl fmt::Display for OpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.kind, self.msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_kind_tag_and_span() {
        let e = SimError::new(SimErrorKind::Deadlock, Span::new(7), "await(3) stuck");
        let text = e.to_string();
        assert!(text.contains("deadlock"), "{text}");
        assert!(text.contains("await(3) stuck"), "{text}");
        assert!(e.is_deadlock());
    }

    #[test]
    fn op_error_attaches_span() {
        let op = OpError::new(SimErrorKind::DivByZero, "integer division by zero");
        let e = SimError::from_op(op, Span::new(12));
        assert_eq!(e.kind, SimErrorKind::DivByZero);
        assert_eq!(e.span, Span::new(12));
    }
}
