//! Deterministic, seeded fault and perturbation injection.
//!
//! The simulator's scheduling is normally fully deterministic: parallel
//! loops self-schedule onto per-participant virtual clocks, the lowest
//! clock takes the next iteration, and ties break by participant id.
//! A [`FaultConfig`] perturbs that schedule *reproducibly* (same seed →
//! same run) without touching the values a **legal** restructured
//! program computes:
//!
//! * per-participant **clock jitter** at parallel-loop startup;
//! * **randomized tie-breaks** in the self-scheduler;
//! * **delayed** or **dropped** `advance` signal delivery in DOACROSSes
//!   (dropping is an *illegal* perturbation — it makes every dependent
//!   `await` unsatisfiable, which the watchdog reports as
//!   [`crate::SimErrorKind::Deadlock`]);
//! * **memory-latency jitter** scaling every charged access cost.
//!
//! Legal schedule perturbations (everything except `drop_advance`)
//! never change results for driver-emitted DOALL/DOACROSS programs
//! whose loops carry no reduction postambles: iterations still execute
//! in index order, and privatized storage is written before read within
//! each iteration. Divergence or deadlock under such a perturbation is
//! therefore evidence of an illegal transform — the property
//! `cedar-verify` exploits.

/// SplitMix64: tiny, high-quality, seedable PRNG (public-domain
/// constants from Steele, Lea & Flood's SplittableRandom).
#[derive(Debug, Clone)]
pub struct FaultRng {
    state: u64,
}

impl FaultRng {
    /// PRNG seeded with `seed`.
    pub fn new(seed: u64) -> FaultRng {
        FaultRng { state: seed }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)` (53-bit mantissa).
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        p > 0.0 && self.unit_f64() < p
    }
}

/// A seeded perturbation profile. All magnitudes are relative and may
/// be zero (disabled); `FaultConfig::default()` perturbs nothing.
#[derive(Debug, Clone)]
pub struct FaultConfig {
    /// PRNG seed; the entire perturbation stream derives from it.
    pub seed: u64,
    /// Per-participant start-clock jitter, as a fraction of the loop's
    /// startup cost (0.2 → up to 20% extra skew per participant).
    pub clock_jitter: f64,
    /// Randomize self-scheduling tie-breaks instead of lowest-id-first.
    pub random_tie_break: bool,
    /// Maximum extra cycles added to an `advance`'s visibility time.
    pub advance_delay: f64,
    /// Probability an `advance` signal is dropped entirely. This is an
    /// **illegal** perturbation: dependent awaits deadlock (by design —
    /// it exercises the watchdog path).
    pub drop_advance: f64,
    /// Relative jitter on every memory access cost (0.1 → each charged
    /// access costs up to 10% extra).
    pub mem_jitter: f64,
}

impl Default for FaultConfig {
    fn default() -> FaultConfig {
        FaultConfig {
            seed: 0,
            clock_jitter: 0.0,
            random_tie_break: false,
            advance_delay: 0.0,
            drop_advance: 0.0,
            mem_jitter: 0.0,
        }
    }
}

impl FaultConfig {
    /// A *legal* perturbation profile: clock jitter, randomized
    /// tie-breaks, delayed advances, and memory jitter — everything
    /// that reorders the schedule without breaking synchronization.
    pub fn legal(seed: u64) -> FaultConfig {
        FaultConfig {
            seed,
            clock_jitter: 0.25,
            random_tie_break: true,
            advance_delay: 50.0,
            drop_advance: 0.0,
            mem_jitter: 0.1,
        }
    }

    /// The legal profile plus advance-drop probability `p` (illegal:
    /// used to exercise the deadlock watchdog).
    pub fn with_drops(seed: u64, p: f64) -> FaultConfig {
        FaultConfig { drop_advance: p, ..Self::legal(seed) }
    }

    /// True when any perturbation is enabled.
    pub fn is_active(&self) -> bool {
        self.clock_jitter > 0.0
            || self.random_tie_break
            || self.advance_delay > 0.0
            || self.drop_advance > 0.0
            || self.mem_jitter > 0.0
    }
}

/// Live injection state carried by a running simulator.
#[derive(Debug, Clone)]
pub struct FaultState {
    /// The profile.
    pub cfg: FaultConfig,
    /// The deterministic draw stream.
    pub rng: FaultRng,
}

impl FaultState {
    /// Injection state for a profile (seeds the RNG from it).
    pub fn new(cfg: FaultConfig) -> FaultState {
        let rng = FaultRng::new(cfg.seed);
        FaultState { cfg, rng }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_and_seed_sensitive() {
        let mut a = FaultRng::new(42);
        let mut b = FaultRng::new(42);
        let mut c = FaultRng::new(43);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn unit_draws_stay_in_range() {
        let mut r = FaultRng::new(7);
        for _ in 0..1000 {
            let x = r.unit_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn profiles() {
        assert!(!FaultConfig::default().is_active());
        let l = FaultConfig::legal(1);
        assert!(l.is_active() && l.drop_advance == 0.0);
        let d = FaultConfig::with_drops(1, 1.0);
        assert!(d.drop_advance == 1.0);
    }
}
