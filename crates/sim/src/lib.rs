#![warn(missing_docs)]
//! Deterministic cycle-cost simulator of the Cedar hierarchical
//! multiprocessor.
//!
//! The simulator executes the shared IR (`cedar-ir`) directly — the same
//! programs the restructurer produces — and reports **simulated cycles**
//! from an explicit cost model of the Cedar architecture described in
//! the paper's §1–§2:
//!
//! * four clusters of eight computational elements (CEs), each CE with
//!   scalar and vector units;
//! * per-cluster memory and shared data cache; machine-wide global
//!   memory behind a two-stage interconnect with bounded bandwidth;
//! * a vector **prefetch** unit that streams 32-element blocks from
//!   global memory into a CE-local buffer (§2.2.3);
//! * hardware microtasking for `CDOALL`/`CDOACROSS` (cheap startup via
//!   the concurrency control bus) vs. runtime-library helper-task
//!   microtasking for `SDOALL`/`XDOALL` (expensive startup, §2.2.1/.2);
//! * `await`/`advance` cascade synchronization and lock/unlock critical
//!   sections;
//! * a paging model: each memory pool (per-cluster, global) has a
//!   capacity; allocating beyond it makes accesses to that pool pay a
//!   thrashing surcharge — this reproduces the paper's `mprove`/CG
//!   super-linear speedups, which came from the serial version paging
//!   while the parallel version's data fit in global memory.
//!
//! Execution is **deterministic**: parallel loops self-schedule onto
//! per-CE virtual clocks (lowest-clock CE takes the next iteration;
//! ties break by CE id), and iterations execute in index order in the
//! host, so results are exactly reproducible and DOACROSS cascade waits
//! resolve without real concurrency.
//!
//! Determinism extends to **fault injection** ([`fault`]): a seeded
//! [`FaultConfig`] perturbs the schedule (clock jitter, randomized
//! tie-breaks, delayed advances, memory-latency noise) reproducibly,
//! and every failure path — including cascade deadlocks, which a
//! watchdog detects instead of hanging — surfaces as a structured
//! [`SimError`] with a [`SimErrorKind`].

pub mod compile;
pub mod config;
pub mod cost;
pub mod error;
pub mod exec;
pub mod fault;
pub(crate) mod prepass;
pub mod race;
pub mod stats;
pub mod store;
pub mod value_ops;

pub use cedar_par::CancelToken;
pub use compile::CompiledProgram;
pub use config::{Engine, MachineConfig};
pub use cost::{CostClass, CostTable};
pub use error::{OpError, SimError, SimErrorKind};
pub use exec::Simulator;
pub use fault::{FaultConfig, FaultRng};
pub use race::{RaceInfo, RaceKind};
pub use stats::ExecStats;

use cedar_ir::Program;
use std::sync::Arc;

/// Run a program's main unit to completion; returns the simulator for
/// result inspection plus the simulated cycle count in
/// [`ExecStats::cycles`].
pub fn run(program: &Program, config: MachineConfig) -> Result<Simulator<'_>, SimError> {
    let mut sim = Simulator::new(program, config)?;
    sim.run_main()?;
    Ok(sim)
}

/// Like [`run`], but under a seeded fault-injection profile. With a
/// [`FaultConfig`] whose perturbations are all *legal* (see
/// [`fault`]), a correctly restructured program must produce the same
/// results as the unperturbed run; divergence or a
/// [`SimErrorKind::Deadlock`] indicates an illegal transform.
pub fn run_with_faults(
    program: &Program,
    config: MachineConfig,
    faults: FaultConfig,
) -> Result<Simulator<'_>, SimError> {
    let mut sim = Simulator::new(program, config)?;
    sim.set_faults(faults);
    sim.run_main()?;
    Ok(sim)
}

/// Run with the happens-before race detector in **collect-all** mode:
/// races do not abort the run; inspect them afterwards via
/// [`Simulator::race_report`] / [`Simulator::races_detected`]. Other
/// failures (deadlock, out-of-bounds, ...) still surface as errors.
pub fn run_collecting_races(
    program: &Program,
    config: MachineConfig,
) -> Result<Simulator<'_>, SimError> {
    let mut sim = Simulator::new(program, config.with_race_detection())?;
    sim.collect_races();
    sim.run_main()?;
    Ok(sim)
}

/// Compile a program to the immutable bytecode artifact once, for reuse
/// across many `(seed, config)` executions via the `*_precompiled`
/// entry points (or [`Simulator::with_artifact`]). Compiling is pure:
/// the artifact depends only on the program, never on a
/// [`MachineConfig`], so content-keyed caches can share it freely.
pub fn compile(program: &Program) -> Arc<CompiledProgram> {
    Arc::new(compile::compile_program(program))
}

/// [`run`] off a shared pre-compiled artifact (used by the VM engine;
/// ignored — and the tree walked instead — when `config.engine` is
/// [`Engine::Interp`]).
pub fn run_precompiled<'p>(
    program: &'p Program,
    config: MachineConfig,
    artifact: &Arc<CompiledProgram>,
) -> Result<Simulator<'p>, SimError> {
    let mut sim = Simulator::with_artifact(program, config, Arc::clone(artifact))?;
    sim.run_main()?;
    Ok(sim)
}

/// [`run_with_faults`] off a shared pre-compiled artifact.
pub fn run_with_faults_precompiled<'p>(
    program: &'p Program,
    config: MachineConfig,
    faults: FaultConfig,
    artifact: &Arc<CompiledProgram>,
) -> Result<Simulator<'p>, SimError> {
    let mut sim = Simulator::with_artifact(program, config, Arc::clone(artifact))?;
    sim.set_faults(faults);
    sim.run_main()?;
    Ok(sim)
}

/// [`run_collecting_races`] off a shared pre-compiled artifact.
pub fn run_collecting_races_precompiled<'p>(
    program: &'p Program,
    config: MachineConfig,
    artifact: &Arc<CompiledProgram>,
) -> Result<Simulator<'p>, SimError> {
    let mut sim =
        Simulator::with_artifact(program, config.with_race_detection(), Arc::clone(artifact))?;
    sim.collect_races();
    sim.run_main()?;
    Ok(sim)
}

