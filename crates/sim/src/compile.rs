//! One-shot lowering of IR unit bodies into flat bytecode (DESIGN.md
//! §14).
//!
//! [`compile_program`] walks every unit once and emits a contiguous
//! `Vec<Instr>` per unit: stack-machine expression ops with the
//! statement watchdog/race-span bookkeeping folded into a single
//! [`Instr::Gate`] per statement, jump-target-patched `IF` control
//! flow, and loop/while/call/sync descriptors in side tables. The
//! artifact is **config-independent and immutable** — verify's K-seed
//! sweeps, the fuzz oracles, and the serve retry ladder compile once
//! and share it by `Arc` across many `(seed, config)` executions.
//!
//! ## The fallback rule (bit-identity by construction)
//!
//! Every statement is compiled under exactly one of two regimes:
//!
//! * **Native** — a `Gate` followed by specialized ops whose charge /
//!   stat / fault / race sequences mirror the interpreter instruction
//!   by instruction (the VM handlers in `sim::vm` call the *same*
//!   `bind_of` / `linearize` / `bind_access_cost` / `load` / `store_at`
//!   seams).
//! * **Interp** — a single [`Instr::Interp`] holding the cloned
//!   statement; the VM hands it to `exec_stmt`, which performs its own
//!   gating. Vector sections, `WHERE`, task starts, unknown callees,
//!   and rank-overflow subscript lists take this path, so the complex
//!   cost model (vector startup, prefetch, bulk section ops and their
//!   `without_fast_paths` ablation) has exactly one implementation.
//!
//! Within a native statement, any sub-expression the stack ops cannot
//! reproduce faithfully (intrinsics, function calls, sections) is kept
//! as a **whole** cloned subtree behind [`Instr::EvalTree`] — the VM
//! evaluates it with the interpreter's `eval_scalar`, never mixing
//! per-node regimes inside one subtree.

use cedar_ir::{BinOp, Expr, LValue, Loop, LoopClass, Program, Span, Stmt, SymbolId, SyncOp, UnOp};
use std::collections::HashMap;

/// Fortran 77 caps array rank at 7; the interpreter's stack-allocated
/// subscript buffer holds 8 so the *9th* push reports the violation.
/// Subscript lists longer than the buffer fall back to the interpreter
/// to reproduce that error (including its partial charge sequence).
const MAX_RANK: usize = 8;

/// One bytecode instruction. Expression ops operate on the VM's value
/// stack; statement ops carry side-table indices.
#[derive(Debug, Clone)]
pub(crate) enum Instr {
    // ---- expression ops (stack machine) ----
    /// Push an integer constant.
    PushI(i64),
    /// Push a real constant.
    PushR(f64),
    /// Push a logical constant.
    PushB(bool),
    /// Load a scalar variable (cache-hit charge, then element load).
    LoadScalar(SymbolId),
    /// Charge one subscript's address arithmetic (after its value ops).
    ChargeIdx,
    /// Pop `rank` subscripts, linearize against `arr`'s binding, charge
    /// the placement-dependent access cost, push the element.
    LoadElem { arr: SymbolId, rank: u8 },
    /// Pop one value, apply a unary op (one scalar-op charge).
    Un(UnOp),
    /// Pop two values, apply a binary op (one scalar-op charge).
    Bin(BinOp),
    /// Evaluate side-table expression `exprs[i]` with the interpreter's
    /// `eval_scalar` and push the result (whole-subtree fallback).
    EvalTree(u32),

    // ---- statement ops ----
    /// Statement prologue: count the watchdog budget, poll the cancel
    /// token, report `span` to the race detector, and set the error
    /// stamp for the statement's inline ops.
    Gate { span: Span, stamp: Span },
    /// Charge the conditional-branch test of an `IF` (no stat count).
    Branch,
    /// Pop a value; jump to the absolute target when it is false.
    JumpIfFalse(u32),
    /// Unconditional jump to the absolute target.
    Jump(u32),
    /// Pop a value and store it to a scalar variable.
    StoreScalar(SymbolId),
    /// Pop a value then `rank` subscripts; store to an array element.
    StoreElem { arr: SymbolId, rank: u8 },
    /// Run side-table loop `loops[i]` (bounds, schedule, body ranges),
    /// then continue at its `end_pc`.
    LoopStmt(u32),
    /// Run side-table DO WHILE `whiles[i]`, then continue at `end_pc`.
    WhileStmt(u32),
    /// CALL side-table site `calls[i]` (known callee, pre-resolved).
    CallSub(u32),
    /// `CALL TSTART` / `CALL TSTOP` region-timer bookkeeping.
    Timer { start: bool },
    /// Execute side-table synchronization op `syncs[i]`.
    SyncStmt(u32),
    /// Join every outstanding subroutine-level task.
    TaskWait,
    /// Charge one buffered I/O statement.
    Io,
    /// RETURN from the unit body.
    Return,
    /// STOP the program.
    Stop,
    /// Full interpreter fallback: execute cloned statement `stmts[i]`
    /// via `exec_stmt` (which gates itself — no `Gate` precedes this).
    Interp(u32),
}

/// A pre-resolved CALL site.
#[derive(Debug, Clone)]
pub(crate) struct CallSite {
    /// Callee index into `program.units` (first definition wins,
    /// mirroring the interpreter's prepass callee index).
    pub ridx: usize,
    /// Actual-argument expressions (bound by `invoke`).
    pub args: Vec<Expr>,
    /// Call-statement span (stamped onto errors from the callee).
    pub span: Span,
}

/// Compiled form of a DO loop: bounds as expression trees (evaluated
/// with the interpreter's exact charge order), compiled code ranges for
/// the preamble/body/postamble, and the scheduler inputs.
#[derive(Debug, Clone)]
pub(crate) struct VmLoop {
    pub class: LoopClass,
    pub var: SymbolId,
    pub start: Expr,
    pub end: Expr,
    pub step: Option<Expr>,
    pub locals: Vec<SymbolId>,
    /// `[lo, hi)` code range of the once-per-participant preamble.
    pub pre: (u32, u32),
    /// `[lo, hi)` code range of the loop body.
    pub body: (u32, u32),
    /// `[lo, hi)` code range of the once-per-participant postamble.
    pub post: (u32, u32),
    pub span: Span,
    /// Straight-line continuation after the loop's inline ranges.
    pub end_pc: u32,
}

/// Compiled form of a DO WHILE: tree condition + compiled body range.
#[derive(Debug, Clone)]
pub(crate) struct VmWhile {
    pub cond: Expr,
    /// `[lo, hi)` code range of the body.
    pub body: (u32, u32),
    pub span: Span,
    pub end_pc: u32,
}

/// One unit's compiled body plus its side tables.
#[derive(Debug, Clone, Default)]
pub(crate) struct CompiledUnit {
    pub code: Vec<Instr>,
    /// Cloned statements behind [`Instr::Interp`].
    pub stmts: Vec<Stmt>,
    /// Cloned expressions behind [`Instr::EvalTree`].
    pub exprs: Vec<Expr>,
    pub loops: Vec<VmLoop>,
    pub whiles: Vec<VmWhile>,
    pub calls: Vec<CallSite>,
    pub syncs: Vec<SyncOp>,
}

/// The immutable compiled artifact: one [`CompiledUnit`] per program
/// unit, indexed exactly like `program.units`. Share it with
/// [`Arc`](std::sync::Arc) — compiling is cheap, but verify / fuzz /
/// serve run the same program hundreds of times.
#[derive(Debug, Clone)]
pub struct CompiledProgram {
    pub(crate) units: Vec<CompiledUnit>,
}

impl CompiledProgram {
    /// Total instruction count across all units (introspection/tests).
    pub fn instr_count(&self) -> usize {
        self.units.iter().map(|u| u.code.len()).sum()
    }

    /// How many statements fell back to the tree-walker
    /// ([`Instr::Interp`]), across all units (introspection/tests).
    pub fn fallback_count(&self) -> usize {
        self.units.iter().map(|u| u.stmts.len()).sum()
    }
}

/// Lower every unit of `program` to bytecode. Pure function of the
/// program: no config, no I/O — the same program always compiles to the
/// same artifact, so content-keyed caches can share it freely.
pub fn compile_program(program: &Program) -> CompiledProgram {
    // Callee index: first definition wins, exactly like the
    // interpreter's prepass (`Iterator::position` semantics).
    let mut unit_index = HashMap::with_capacity(program.units.len());
    for (i, u) in program.units.iter().enumerate() {
        unit_index.entry(u.name.as_str()).or_insert(i);
    }
    let units = program
        .units
        .iter()
        .map(|u| {
            let mut c = Compiler { cu: CompiledUnit::default(), unit_index: &unit_index };
            c.emit_block(&u.body);
            c.cu
        })
        .collect();
    CompiledProgram { units }
}

/// True when the stack ops reproduce `e`'s evaluation (values, charge
/// order, stat counts, and error order) exactly. Anything else is kept
/// as a whole subtree behind [`Instr::EvalTree`].
fn scalar_compilable(e: &Expr) -> bool {
    match e {
        Expr::ConstI(_) | Expr::ConstR { .. } | Expr::ConstB(_) | Expr::Scalar(_) => true,
        // Rank overflow must raise mid-subscript-list, after the
        // overflowing subscript's evaluation but before its charge —
        // only the tree walk gets that sequence right.
        Expr::Elem { idx, .. } => idx.len() <= MAX_RANK && idx.iter().all(scalar_compilable),
        Expr::Un(_, inner) => scalar_compilable(inner),
        Expr::Bin(_, l, r) => scalar_compilable(l) && scalar_compilable(r),
        // Intrinsics (incl. reductions/iota type errors), function
        // calls, and sections keep the interpreter's logic.
        Expr::Intr { .. } | Expr::Call { .. } | Expr::Section { .. } => false,
    }
}

struct Compiler<'a> {
    cu: CompiledUnit,
    unit_index: &'a HashMap<&'a str, usize>,
}

impl Compiler<'_> {
    fn pc(&self) -> u32 {
        self.cu.code.len() as u32
    }

    fn gate(&mut self, span: Span, stamp: Span) {
        self.cu.code.push(Instr::Gate { span, stamp });
    }

    /// Emit a placeholder jump; returns its index for patching.
    fn emit_jump_placeholder(&mut self, conditional: bool) -> usize {
        let at = self.cu.code.len();
        self.cu.code.push(if conditional {
            Instr::JumpIfFalse(u32::MAX)
        } else {
            Instr::Jump(u32::MAX)
        });
        at
    }

    /// Point a placeholder jump at the current pc.
    fn patch_jump(&mut self, at: usize) {
        let target = self.pc();
        match &mut self.cu.code[at] {
            Instr::JumpIfFalse(t) | Instr::Jump(t) => *t = target,
            other => unreachable!("patching non-jump {other:?}"),
        }
    }

    /// Emit a block and return its `[lo, hi)` code range.
    fn emit_range(&mut self, body: &[Stmt]) -> (u32, u32) {
        let lo = self.pc();
        self.emit_block(body);
        (lo, self.pc())
    }

    fn emit_block(&mut self, body: &[Stmt]) {
        for s in body {
            self.emit_stmt(s);
        }
    }

    /// Whole-statement interpreter fallback (no `Gate`: `exec_stmt`
    /// gates itself, keeping watchdog counts and race spans identical).
    fn fallback(&mut self, s: &Stmt) {
        let i = self.cu.stmts.len() as u32;
        self.cu.stmts.push(s.clone());
        self.cu.code.push(Instr::Interp(i));
    }

    /// Emit ops leaving `e`'s scalar value on the stack: native ops
    /// when faithful, otherwise one whole-subtree [`Instr::EvalTree`].
    fn emit_scalar_value(&mut self, e: &Expr) {
        if scalar_compilable(e) {
            self.emit_expr(e);
        } else {
            let i = self.cu.exprs.len() as u32;
            self.cu.exprs.push(e.clone());
            self.cu.code.push(Instr::EvalTree(i));
        }
    }

    /// Emit native ops for a [`scalar_compilable`] expression.
    fn emit_expr(&mut self, e: &Expr) {
        match e {
            Expr::ConstI(v) => self.cu.code.push(Instr::PushI(*v)),
            Expr::ConstR { value, .. } => self.cu.code.push(Instr::PushR(*value)),
            Expr::ConstB(b) => self.cu.code.push(Instr::PushB(*b)),
            Expr::Scalar(s) => self.cu.code.push(Instr::LoadScalar(*s)),
            Expr::Elem { arr, idx } => {
                for ie in idx {
                    self.emit_expr(ie);
                    self.cu.code.push(Instr::ChargeIdx);
                }
                self.cu.code.push(Instr::LoadElem { arr: *arr, rank: idx.len() as u8 });
            }
            Expr::Un(op, inner) => {
                self.emit_expr(inner);
                self.cu.code.push(Instr::Un(*op));
            }
            Expr::Bin(op, l, r) => {
                self.emit_expr(l);
                self.emit_expr(r);
                self.cu.code.push(Instr::Bin(*op));
            }
            Expr::Intr { .. } | Expr::Call { .. } | Expr::Section { .. } => {
                unreachable!("emit_expr on non-compilable expression")
            }
        }
    }

    fn emit_stmt(&mut self, s: &Stmt) {
        match s {
            Stmt::Assign { lhs, rhs, span } => match lhs {
                LValue::Scalar(sv) => {
                    self.gate(*span, *span);
                    self.emit_scalar_value(rhs);
                    self.cu.code.push(Instr::StoreScalar(*sv));
                }
                LValue::Elem { arr, idx } if idx.len() <= MAX_RANK => {
                    self.gate(*span, *span);
                    for e in idx {
                        self.emit_scalar_value(e);
                        self.cu.code.push(Instr::ChargeIdx);
                    }
                    self.emit_scalar_value(rhs);
                    self.cu.code.push(Instr::StoreElem { arr: *arr, rank: idx.len() as u8 });
                }
                // Vector sections (bulk ops, masks, fast-path ablation)
                // and rank-overflow element stores keep the
                // interpreter's single implementation.
                _ => self.fallback(s),
            },
            Stmt::WhereAssign { .. } => self.fallback(s),
            Stmt::If { cond, then_body, elifs, else_body, span } => {
                self.gate(*span, *span);
                self.emit_scalar_value(cond);
                // The interpreter charges the branch test once, after
                // the IF condition only (elif conditions are free).
                self.cu.code.push(Instr::Branch);
                let mut end_jumps = Vec::with_capacity(1 + elifs.len());
                let mut next = self.emit_jump_placeholder(true);
                self.emit_block(then_body);
                end_jumps.push(self.emit_jump_placeholder(false));
                for (ec, eb) in elifs {
                    self.patch_jump(next);
                    self.emit_scalar_value(ec);
                    next = self.emit_jump_placeholder(true);
                    self.emit_block(eb);
                    end_jumps.push(self.emit_jump_placeholder(false));
                }
                self.patch_jump(next);
                self.emit_block(else_body);
                for j in end_jumps {
                    self.patch_jump(j);
                }
            }
            Stmt::Loop(l) => self.emit_loop(l),
            Stmt::DoWhile { cond, body, span } => {
                self.gate(*span, Span::NONE);
                let wi = self.cu.whiles.len();
                self.cu.whiles.push(VmWhile {
                    cond: cond.clone(),
                    body: (0, 0),
                    span: *span,
                    end_pc: 0,
                });
                self.cu.code.push(Instr::WhileStmt(wi as u32));
                let body_range = self.emit_range(body);
                self.cu.whiles[wi].body = body_range;
                self.cu.whiles[wi].end_pc = self.pc();
            }
            Stmt::Call { callee, args, span } => {
                if cedar_ir::is_timer_call(callee) {
                    self.gate(*span, *span);
                    self.cu.code.push(Instr::Timer { start: callee == "tstart" });
                } else if let Some(&ridx) = self.unit_index.get(callee.as_str()) {
                    self.gate(*span, *span);
                    let ci = self.cu.calls.len() as u32;
                    self.cu.calls.push(CallSite { ridx, args: args.clone(), span: *span });
                    self.cu.code.push(Instr::CallSub(ci));
                } else {
                    // Unknown callee: the interpreter's error (span,
                    // message, gating) is authoritative.
                    self.fallback(s);
                }
            }
            // Forked clocks, task-group race regions, and the
            // mtskstart sync audit stay on the interpreter.
            Stmt::TaskStart { .. } => self.fallback(s),
            Stmt::TaskWait { span } => {
                self.gate(*span, Span::NONE);
                self.cu.code.push(Instr::TaskWait);
            }
            Stmt::Sync(op) => {
                // `Stmt::span()` is NONE for sync ops, and the
                // interpreter never stamps their errors.
                self.gate(Span::NONE, Span::NONE);
                let si = self.cu.syncs.len() as u32;
                self.cu.syncs.push(op.clone());
                self.cu.code.push(Instr::SyncStmt(si));
            }
            Stmt::Return => {
                self.gate(Span::NONE, Span::NONE);
                self.cu.code.push(Instr::Return);
            }
            Stmt::Stop => {
                self.gate(Span::NONE, Span::NONE);
                self.cu.code.push(Instr::Stop);
            }
            Stmt::Io { span } => {
                self.gate(*span, Span::NONE);
                self.cu.code.push(Instr::Io);
            }
        }
    }

    fn emit_loop(&mut self, l: &Loop) {
        self.gate(l.span, Span::NONE);
        let li = self.cu.loops.len();
        self.cu.loops.push(VmLoop {
            class: l.class,
            var: l.var,
            start: l.start.clone(),
            end: l.end.clone(),
            step: l.step.clone(),
            locals: l.locals.clone(),
            pre: (0, 0),
            body: (0, 0),
            post: (0, 0),
            span: l.span,
            end_pc: 0,
        });
        self.cu.code.push(Instr::LoopStmt(li as u32));
        // The loop's blocks live inline after the LoopStmt; straight-
        // line execution continues at end_pc, and only the schedulers
        // enter the ranges (per participant / per iteration).
        let pre = self.emit_range(&l.preamble);
        let body = self.emit_range(&l.body);
        let post = self.emit_range(&l.postamble);
        let end_pc = self.pc();
        let lp = &mut self.cu.loops[li];
        lp.pre = pre;
        lp.body = body;
        lp.post = post;
        lp.end_pc = end_pc;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn compile_src(src: &str) -> CompiledProgram {
        let p = cedar_ir::compile_free(src).expect("test source compiles");
        compile_program(&p)
    }

    #[test]
    fn straight_line_assign_compiles_without_fallback() {
        let cp = compile_src(
            "program t\nreal a(10)\nreal x\nx = 1.5\na(3) = x * 2.0\nend\n",
        );
        assert_eq!(cp.fallback_count(), 0, "scalar assigns must go native");
        assert!(cp.instr_count() > 0);
    }

    #[test]
    fn section_assign_falls_back_whole_statement() {
        let cp = compile_src("program t\nreal a(10)\na(1:10) = 0.0\nend\n");
        assert_eq!(cp.fallback_count(), 1, "vector statement → Interp");
        // The fallback op must not be preceded by a Gate (exec_stmt
        // gates itself; double-gating would double watchdog counts).
        let code = &cp.units[0].code;
        let at = code
            .iter()
            .position(|i| matches!(i, Instr::Interp(_)))
            .expect("one Interp op");
        assert!(
            at == 0 || !matches!(code[at - 1], Instr::Gate { .. }),
            "Interp must not be double-gated"
        );
    }

    #[test]
    fn if_chain_patches_all_jumps() {
        let cp = compile_src(
            "program t\nreal x, y\nx = 1.0\nif (x .gt. 2.0) then\ny = 1.0\n\
             else if (x .gt. 0.5) then\ny = 2.0\nelse\ny = 3.0\nend if\nend\n",
        );
        for u in &cp.units {
            for i in &u.code {
                match i {
                    Instr::Jump(t) | Instr::JumpIfFalse(t) => {
                        assert!(*t != u32::MAX, "unpatched jump");
                        assert!((*t as usize) <= u.code.len(), "jump out of range");
                    }
                    _ => {}
                }
            }
        }
    }

    #[test]
    fn loop_ranges_nest_and_terminate() {
        let cp = compile_src(
            "program t\nreal a(8, 8)\ninteger i, j\ndo j = 1, 8\ndo i = 1, 8\n\
             a(i, j) = i + j\nend do\nend do\nend\n",
        );
        let u = &cp.units[0];
        assert!(u.loops.len() >= 2, "two nested loops compiled");
        for lp in &u.loops {
            assert!(lp.body.0 <= lp.body.1);
            assert!((lp.end_pc as usize) <= u.code.len());
        }
    }

    #[test]
    fn first_unit_definition_wins_for_calls() {
        // Mirror of the prepass rule: duplicate unit names resolve to
        // the first definition.
        let p = cedar_ir::compile_free(
            "program t\ncall s\nend\nsubroutine s\nreal x\nx = 1.0\nend\n",
        )
        .expect("compiles");
        let cp = compile_program(&p);
        let u = &cp.units[0];
        assert_eq!(u.calls.len(), 1);
        assert_eq!(u.calls[0].ridx, 1);
    }
}
