//! Simulated storage: typed slots, placement-aware bindings, and the
//! capacity pools behind the paging model.

use cedar_ir::{Placement, Ty, Value};

/// One contiguous storage slot (column-major array or scalar cell).
#[derive(Debug, Clone)]
pub enum ArrayData {
    /// REAL / DOUBLE PRECISION payload.
    R(Vec<f64>),
    /// INTEGER payload.
    I(Vec<i64>),
    /// LOGICAL payload.
    B(Vec<bool>),
}

impl ArrayData {
    /// Zero-initialized storage of `len` elements of type `ty`.
    pub fn new(ty: Ty, len: usize) -> ArrayData {
        match ty {
            Ty::Real | Ty::Double => ArrayData::R(vec![0.0; len]),
            Ty::Int => ArrayData::I(vec![0; len]),
            Ty::Logical => ArrayData::B(vec![false; len]),
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        match self {
            ArrayData::R(v) => v.len(),
            ArrayData::I(v) => v.len(),
            ArrayData::B(v) => v.len(),
        }
    }

    /// True when the slot has no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Element at linear index `i`. Panics when out of range; the
    /// interpreter's fallible paths use [`ArrayData::try_get`].
    pub fn get(&self, i: usize) -> Value {
        match self {
            ArrayData::R(v) => Value::R(v[i]),
            ArrayData::I(v) => Value::I(v[i]),
            ArrayData::B(v) => Value::B(v[i]),
        }
    }

    /// Element at linear index `i`, or `None` when `i` is outside the
    /// slot (e.g. a sub-array actual bound to a larger declared shape).
    pub fn try_get(&self, i: usize) -> Option<Value> {
        match self {
            ArrayData::R(v) => v.get(i).map(|&x| Value::R(x)),
            ArrayData::I(v) => v.get(i).map(|&x| Value::I(x)),
            ArrayData::B(v) => v.get(i).map(|&x| Value::B(x)),
        }
    }

    /// Store `val` (coerced to the slot type) at linear index `i`.
    /// Panics when out of range; the interpreter's fallible paths use
    /// [`ArrayData::try_set`].
    pub fn set(&mut self, i: usize, val: Value) {
        match self {
            ArrayData::R(v) => v[i] = val.as_f64(),
            ArrayData::I(v) => v[i] = val.as_i64(),
            ArrayData::B(v) => v[i] = val.as_bool(),
        }
    }

    /// Append elements `i .. i + n` to `out`; `false` when the range is
    /// outside the slot (the caller falls back to the checked
    /// per-element path, which produces the error). Semantically equal
    /// to `n` consecutive [`ArrayData::try_get`] calls.
    pub fn extend_range(&self, i: usize, n: usize, out: &mut Vec<Value>) -> bool {
        match self {
            ArrayData::R(v) => match v.get(i..i + n) {
                Some(s) => out.extend(s.iter().map(|&x| Value::R(x))),
                None => return false,
            },
            ArrayData::I(v) => match v.get(i..i + n) {
                Some(s) => out.extend(s.iter().map(|&x| Value::I(x))),
                None => return false,
            },
            ArrayData::B(v) => match v.get(i..i + n) {
                Some(s) => out.extend(s.iter().map(|&x| Value::B(x))),
                None => return false,
            },
        }
        true
    }

    /// Store `vals` (each first coerced to `ty`, as the interpreter's
    /// element store does) at consecutive indices starting at `i`;
    /// `false` when the range is outside the slot.
    pub fn set_range(&mut self, i: usize, vals: &[Value], ty: Ty) -> bool {
        match self {
            ArrayData::R(dst) => match dst.get_mut(i..i + vals.len()) {
                Some(s) => {
                    for (d, v) in s.iter_mut().zip(vals) {
                        *d = crate::value_ops::coerce(*v, ty).as_f64();
                    }
                }
                None => return false,
            },
            ArrayData::I(dst) => match dst.get_mut(i..i + vals.len()) {
                Some(s) => {
                    for (d, v) in s.iter_mut().zip(vals) {
                        *d = crate::value_ops::coerce(*v, ty).as_i64();
                    }
                }
                None => return false,
            },
            ArrayData::B(dst) => match dst.get_mut(i..i + vals.len()) {
                Some(s) => {
                    for (d, v) in s.iter_mut().zip(vals) {
                        *d = crate::value_ops::coerce(*v, ty).as_bool();
                    }
                }
                None => return false,
            },
        }
        true
    }

    /// Store `val` at linear index `i`; `false` when out of range.
    pub fn try_set(&mut self, i: usize, val: Value) -> bool {
        match self {
            ArrayData::R(v) => match v.get_mut(i) {
                Some(x) => *x = val.as_f64(),
                None => return false,
            },
            ArrayData::I(v) => match v.get_mut(i) {
                Some(x) => *x = val.as_i64(),
                None => return false,
            },
            ArrayData::B(v) => match v.get_mut(i) {
                Some(x) => *x = val.as_bool(),
                None => return false,
            },
        }
        true
    }
}

/// Handle of a slot in the store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SlotId(pub u32);

/// Where a symbol's storage lives: one machine-wide copy, one copy per
/// cluster, or one per participant of the current parallel loop.
#[derive(Debug, Clone)]
pub enum StorageRef {
    /// A single machine-wide copy.
    One(SlotId),
    /// One copy per cluster, indexed by cluster number.
    PerCluster(Vec<SlotId>),
    /// One copy per participant of the active parallel loop.
    PerParticipant(Vec<SlotId>),
}

/// A symbol's binding within an activation frame.
#[derive(Debug, Clone)]
pub struct VarBind {
    /// Where the storage lives.
    pub sref: StorageRef,
    /// Element offset into the slot (nonzero when an array element was
    /// passed as an actual argument — the classic `a(1, j)` column-slice
    /// idiom).
    pub offset: usize,
    /// Resolved dimension bounds (lower, upper) at bind time, for
    /// subscript linearization. Scalars have none.
    pub dims: Vec<(i64, i64)>,
    /// Element type.
    pub ty: Ty,
    /// Memory class used by the cost model.
    pub placement: Placement,
}

impl VarBind {
    /// Column-major linearization of a subscript list against the bound
    /// dims; `None` when out of declared bounds (the last dimension of
    /// assumed-size arrays is unchecked).
    pub fn linearize(&self, subs: &[i64], assumed_last: bool) -> Option<usize> {
        debug_assert_eq!(subs.len(), self.dims.len());
        let mut lin: i64 = 0;
        let mut stride: i64 = 1;
        for (k, (&s, &(lo, hi))) in subs.iter().zip(&self.dims).enumerate() {
            let last = k + 1 == self.dims.len();
            if s < lo || (!last || !assumed_last) && s > hi {
                return None;
            }
            lin += (s - lo) * stride;
            stride *= hi - lo + 1;
        }
        usize::try_from(lin).ok().map(|l| l + self.offset)
    }

    /// Element count implied by the bound dimensions.
    pub fn total_len(&self) -> usize {
        self.dims
            .iter()
            .map(|&(lo, hi)| (hi - lo + 1).max(0) as usize)
            .product()
    }
}

/// The slot arena plus the capacity pools of the paging model.
#[derive(Debug, Default)]
pub struct Store {
    slots: Vec<ArrayData>,
    /// Bytes allocated per cluster memory pool.
    pub cluster_pool: Vec<u64>,
    /// Bytes allocated in the global pool.
    pub global_pool: u64,
}

impl Store {
    /// Empty store with one capacity pool per cluster.
    pub fn new(clusters: usize) -> Store {
        Store { slots: Vec::new(), cluster_pool: vec![0; clusters], global_pool: 0 }
    }

    /// Allocate a zeroed slot.
    pub fn alloc(&mut self, ty: Ty, len: usize) -> SlotId {
        let id = SlotId(self.slots.len() as u32);
        self.slots.push(ArrayData::new(ty, len));
        id
    }

    /// Read access to a slot.
    pub fn slot(&self, id: SlotId) -> &ArrayData {
        &self.slots[id.0 as usize]
    }

    /// Write access to a slot.
    pub fn slot_mut(&mut self, id: SlotId) -> &mut ArrayData {
        &mut self.slots[id.0 as usize]
    }

    /// Account `bytes` to a pool; returns nothing — thrash factors are
    /// queried per access.
    pub fn charge_cluster(&mut self, cluster: usize, bytes: u64) {
        self.cluster_pool[cluster] += bytes;
    }

    /// Account `bytes` to the global pool.
    pub fn charge_global(&mut self, bytes: u64) {
        self.global_pool += bytes;
    }

    /// Return `bytes` to a cluster pool (scope exit).
    pub fn release_cluster(&mut self, cluster: usize, bytes: u64) {
        self.cluster_pool[cluster] = self.cluster_pool[cluster].saturating_sub(bytes);
    }

    /// Return `bytes` to the global pool (scope exit).
    pub fn release_global(&mut self, bytes: u64) {
        self.global_pool = self.global_pool.saturating_sub(bytes);
    }

    /// Thrashing probability of a pool: 0 while the working set fits,
    /// then the probability an access misses physical memory,
    /// `1 − capacity/allocated`.
    pub fn thrash_factor(allocated: u64, capacity: u64) -> f64 {
        if allocated <= capacity || allocated == 0 {
            0.0
        } else {
            1.0 - capacity as f64 / allocated as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linearize_column_major() {
        let b = VarBind {
            sref: StorageRef::One(SlotId(0)),
            offset: 0,
            dims: vec![(1, 3), (1, 2)],
            ty: Ty::Real,
            placement: Placement::Default,
        };
        // a(i, j) → (i-1) + (j-1)*3
        assert_eq!(b.linearize(&[1, 1], false), Some(0));
        assert_eq!(b.linearize(&[3, 1], false), Some(2));
        assert_eq!(b.linearize(&[1, 2], false), Some(3));
        assert_eq!(b.linearize(&[3, 2], false), Some(5));
        assert_eq!(b.linearize(&[4, 1], false), None);
        assert_eq!(b.linearize(&[0, 1], false), None);
    }

    #[test]
    fn linearize_with_lower_bounds_and_offset() {
        let b = VarBind {
            sref: StorageRef::One(SlotId(0)),
            offset: 10,
            dims: vec![(0, 4)],
            ty: Ty::Real,
            placement: Placement::Default,
        };
        assert_eq!(b.linearize(&[0], false), Some(10));
        assert_eq!(b.linearize(&[4], false), Some(14));
    }

    #[test]
    fn assumed_size_skips_last_bound_check() {
        let b = VarBind {
            sref: StorageRef::One(SlotId(0)),
            offset: 0,
            dims: vec![(1, 1)],
            ty: Ty::Real,
            placement: Placement::Default,
        };
        assert_eq!(b.linearize(&[5], true), Some(4));
        assert_eq!(b.linearize(&[5], false), None);
    }

    #[test]
    fn thrash_factor_behaviour() {
        assert_eq!(Store::thrash_factor(100, 200), 0.0);
        assert_eq!(Store::thrash_factor(200, 200), 0.0);
        assert!((Store::thrash_factor(400, 200) - 0.5).abs() < 1e-12);
        assert_eq!(Store::thrash_factor(0, 0), 0.0);
    }

    #[test]
    fn typed_slots_round_trip() {
        let mut st = Store::new(2);
        let s = st.alloc(Ty::Int, 4);
        st.slot_mut(s).set(2, Value::I(7));
        assert_eq!(st.slot(s).get(2), Value::I(7));
        let r = st.alloc(Ty::Real, 1);
        st.slot_mut(r).set(0, Value::I(3));
        assert_eq!(st.slot(r).get(0), Value::R(3.0));
    }

    #[test]
    fn checked_accessors_reject_out_of_range() {
        let mut st = Store::new(1);
        let s = st.alloc(Ty::Int, 2);
        assert!(st.slot_mut(s).try_set(1, Value::I(9)));
        assert_eq!(st.slot(s).try_get(1), Some(Value::I(9)));
        assert!(!st.slot_mut(s).try_set(2, Value::I(9)));
        assert_eq!(st.slot(s).try_get(2), None);
    }
}
