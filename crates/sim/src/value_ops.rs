//! Scalar value operations with Fortran semantics.

use crate::error::{OpError, SimErrorKind};
use cedar_ir::{BinOp, Intrinsic, Ty, UnOp, Value};

fn div_zero(msg: &str) -> OpError {
    OpError::new(SimErrorKind::DivByZero, msg)
}

fn type_err(msg: String) -> OpError {
    OpError::new(SimErrorKind::TypeError, msg)
}

/// Apply a binary operator. Integer pairs stay integral for `+ - * /`
/// (Fortran integer division truncates); any real operand promotes.
pub fn bin(op: BinOp, l: Value, r: Value) -> Result<Value, OpError> {
    use BinOp::*;
    Ok(match op {
        Add | Sub | Mul | Div => match (l, r) {
            (Value::I(a), Value::I(b)) => Value::I(match op {
                Add => a.wrapping_add(b),
                Sub => a.wrapping_sub(b),
                Mul => a.wrapping_mul(b),
                Div => {
                    if b == 0 {
                        return Err(div_zero("integer division by zero"));
                    }
                    a / b
                }
                _ => unreachable!(),
            }),
            (a, b) => {
                let (a, b) = (a.as_f64(), b.as_f64());
                Value::R(match op {
                    Add => a + b,
                    Sub => a - b,
                    Mul => a * b,
                    Div => a / b,
                    _ => unreachable!(),
                })
            }
        },
        Pow => match (l, r) {
            (Value::I(a), Value::I(b)) => {
                if b >= 0 {
                    let mut acc: i64 = 1;
                    for _ in 0..b.min(63) {
                        acc = acc.wrapping_mul(a);
                    }
                    Value::I(acc)
                } else if a.abs() == 1 {
                    Value::I(if b % 2 == 0 { 1 } else { a })
                } else if a == 0 {
                    return Err(div_zero("0 ** negative"));
                } else {
                    Value::I(0)
                }
            }
            (a, Value::I(b)) => Value::R(a.as_f64().powi(b as i32)),
            (a, b) => Value::R(a.as_f64().powf(b.as_f64())),
        },
        Eq => Value::B(cmp(l, r) == std::cmp::Ordering::Equal),
        Ne => Value::B(cmp(l, r) != std::cmp::Ordering::Equal),
        Lt => Value::B(cmp(l, r) == std::cmp::Ordering::Less),
        Le => Value::B(cmp(l, r) != std::cmp::Ordering::Greater),
        Gt => Value::B(cmp(l, r) == std::cmp::Ordering::Greater),
        Ge => Value::B(cmp(l, r) != std::cmp::Ordering::Less),
        And => Value::B(l.as_bool() && r.as_bool()),
        Or => Value::B(l.as_bool() || r.as_bool()),
        Eqv => Value::B(l.as_bool() == r.as_bool()),
        Neqv => Value::B(l.as_bool() != r.as_bool()),
    })
}

fn cmp(l: Value, r: Value) -> std::cmp::Ordering {
    match (l, r) {
        (Value::I(a), Value::I(b)) => a.cmp(&b),
        (a, b) => a
            .as_f64()
            .partial_cmp(&b.as_f64())
            .unwrap_or(std::cmp::Ordering::Equal),
    }
}

/// Apply a unary operation with Fortran semantics.
pub fn un(op: UnOp, v: Value) -> Value {
    match op {
        UnOp::Neg => match v {
            Value::I(a) => Value::I(-a),
            Value::R(a) => Value::R(-a),
            Value::B(b) => Value::I(-(b as i64)),
        },
        UnOp::Not => Value::B(!v.as_bool()),
    }
}

/// Evaluate an elemental (non-reduction) intrinsic on scalar arguments.
pub fn intrinsic(f: Intrinsic, args: &[Value]) -> Result<Value, OpError> {
    use Intrinsic::*;
    let a0 = || -> Result<Value, OpError> {
        args.first()
            .copied()
            .ok_or_else(|| type_err(format!("{}: missing argument", f.name())))
    };
    let r0 = || a0().map(|v| v.as_f64());
    Ok(match f {
        Abs => match a0()? {
            Value::I(v) => Value::I(v.abs()),
            v => Value::R(v.as_f64().abs()),
        },
        // Domain violations follow IEEE semantics (NaN) rather than
        // trapping: masked WHERE assignments evaluate the full RHS
        // vector and discard masked-off lanes, exactly like the Cedar
        // vector hardware.
        Sqrt => Value::R(r0()?.sqrt()),
        Exp => Value::R(r0()?.exp()),
        Log => Value::R(r0()?.ln()),
        Log10 => Value::R(r0()?.log10()),
        Sin => Value::R(r0()?.sin()),
        Cos => Value::R(r0()?.cos()),
        Tan => Value::R(r0()?.tan()),
        Atan => Value::R(r0()?.atan()),
        Atan2 => {
            let y = r0()?;
            let x = args
                .get(1)
                .map(|v| v.as_f64())
                .ok_or_else(|| type_err("atan2 needs 2 args".into()))?;
            Value::R(y.atan2(x))
        }
        Sinh => Value::R(r0()?.sinh()),
        Cosh => Value::R(r0()?.cosh()),
        Tanh => Value::R(r0()?.tanh()),
        Sign => {
            let a = r0()?;
            let b = args
                .get(1)
                .map(|v| v.as_f64())
                .ok_or_else(|| type_err("sign needs 2 args".into()))?;
            let m = a.abs();
            match a0()? {
                Value::I(_) => Value::I(if b >= 0.0 { m as i64 } else { -(m as i64) }),
                _ => Value::R(if b >= 0.0 { m } else { -m }),
            }
        }
        Mod => match (
            a0()?,
            args.get(1).copied().ok_or_else(|| type_err("mod needs 2 args".into()))?,
        ) {
            (Value::I(a), Value::I(b)) => {
                if b == 0 {
                    return Err(div_zero("mod by zero"));
                }
                Value::I(a % b)
            }
            (a, b) => Value::R(a.as_f64() % b.as_f64()),
        },
        Min | Max => {
            if args.is_empty() {
                return Err(type_err(format!("{} needs arguments", f.name())));
            }
            let all_int = args.iter().all(|v| matches!(v, Value::I(_)));
            if all_int {
                let it = args.iter().map(|v| v.as_i64());
                Value::I(if f == Min { it.min() } else { it.max() }.unwrap())
            } else {
                let mut best = args[0].as_f64();
                for v in &args[1..] {
                    let x = v.as_f64();
                    best = if f == Min { best.min(x) } else { best.max(x) };
                }
                Value::R(best)
            }
        }
        Int => Value::I(a0()?.as_i64()),
        Nint => Value::I(r0()?.round() as i64),
        Real | Dble => Value::R(r0()?),
        other => {
            return Err(OpError::new(
                SimErrorKind::Unsupported,
                format!("{} is not elemental", other.name()),
            ))
        }
    })
}

/// Coerce a value to the storage type of a target.
pub fn coerce(v: Value, ty: Ty) -> Value {
    match ty {
        Ty::Int => Value::I(v.as_i64()),
        Ty::Real | Ty::Double => Value::R(v.as_f64()),
        Ty::Logical => Value::B(v.as_bool()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integer_division_truncates() {
        assert_eq!(bin(BinOp::Div, Value::I(7), Value::I(2)).unwrap(), Value::I(3));
        assert_eq!(bin(BinOp::Div, Value::I(-7), Value::I(2)).unwrap(), Value::I(-3));
        assert!(bin(BinOp::Div, Value::I(1), Value::I(0)).is_err());
    }

    #[test]
    fn mixed_arithmetic_promotes() {
        assert_eq!(
            bin(BinOp::Add, Value::I(1), Value::R(0.5)).unwrap(),
            Value::R(1.5)
        );
    }

    #[test]
    fn integer_power() {
        assert_eq!(bin(BinOp::Pow, Value::I(2), Value::I(10)).unwrap(), Value::I(1024));
        assert_eq!(bin(BinOp::Pow, Value::I(5), Value::I(0)).unwrap(), Value::I(1));
        assert_eq!(bin(BinOp::Pow, Value::I(2), Value::I(-1)).unwrap(), Value::I(0));
    }

    #[test]
    fn comparisons_and_logic() {
        assert_eq!(bin(BinOp::Lt, Value::I(1), Value::I(2)).unwrap(), Value::B(true));
        assert_eq!(bin(BinOp::Ge, Value::R(2.0), Value::R(2.0)).unwrap(), Value::B(true));
        assert_eq!(
            bin(BinOp::And, Value::B(true), Value::B(false)).unwrap(),
            Value::B(false)
        );
    }

    #[test]
    fn sign_and_mod_follow_f77() {
        assert_eq!(
            intrinsic(Intrinsic::Sign, &[Value::R(3.0), Value::R(-1.0)]).unwrap(),
            Value::R(-3.0)
        );
        assert_eq!(
            intrinsic(Intrinsic::Mod, &[Value::I(7), Value::I(3)]).unwrap(),
            Value::I(1)
        );
        assert_eq!(
            intrinsic(Intrinsic::Mod, &[Value::I(-7), Value::I(3)]).unwrap(),
            Value::I(-1)
        );
    }

    #[test]
    fn minmax_type_rules() {
        assert_eq!(
            intrinsic(Intrinsic::Max, &[Value::I(1), Value::I(5), Value::I(3)]).unwrap(),
            Value::I(5)
        );
        assert_eq!(
            intrinsic(Intrinsic::Min, &[Value::R(1.5), Value::I(2)]).unwrap(),
            Value::R(1.5)
        );
    }

    #[test]
    fn domain_violations_follow_ieee() {
        assert!(intrinsic(Intrinsic::Sqrt, &[Value::R(-1.0)])
            .unwrap()
            .as_f64()
            .is_nan());
        assert_eq!(
            intrinsic(Intrinsic::Log, &[Value::R(0.0)]).unwrap(),
            Value::R(f64::NEG_INFINITY)
        );
    }

    #[test]
    fn errors_carry_kinds() {
        assert_eq!(
            bin(BinOp::Div, Value::I(1), Value::I(0)).unwrap_err().kind,
            SimErrorKind::DivByZero
        );
        assert_eq!(
            intrinsic(Intrinsic::Mod, &[Value::I(1)]).unwrap_err().kind,
            SimErrorKind::TypeError
        );
        assert_eq!(
            intrinsic(Intrinsic::Sum, &[Value::R(1.0)]).unwrap_err().kind,
            SimErrorKind::Unsupported
        );
    }

    #[test]
    fn coercion() {
        assert_eq!(coerce(Value::R(2.9), Ty::Int), Value::I(2));
        assert_eq!(coerce(Value::I(3), Ty::Real), Value::R(3.0));
        assert_eq!(coerce(Value::I(0), Ty::Logical), Value::B(false));
    }
}
