//! Machine configurations and the cycle-cost model parameters.

use cedar_par::CancelToken;
use std::time::Duration;

/// Which execution engine runs the program (DESIGN.md §14).
///
/// Both engines are **bit-identical** in every observable: cycles,
/// outputs, stats, race reports, and `SimError`s. The VM is the default
/// because it is faster; the tree-walker stays as the differential
/// oracle the property tests and the fuzz `vm-vs-interpreter` lane
/// compare against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Engine {
    /// The original tree-walking interpreter over the IR.
    Interp,
    /// The bytecode VM: each unit body is lowered once into a flat
    /// instruction stream (`sim::compile`) and dispatched by a tight
    /// `loop { match instr }` (`sim::vm`).
    Vm,
}

impl Engine {
    /// Engine requested via the `CEDAR_ENGINE` environment variable
    /// (`vm` or `interp`); `None` when unset or unrecognized.
    pub fn from_env() -> Option<Engine> {
        match std::env::var("CEDAR_ENGINE").ok()?.as_str() {
            "vm" => Some(Engine::Vm),
            "interp" | "interpreter" | "tree" => Some(Engine::Interp),
            _ => None,
        }
    }
}

/// All cost-model parameters of a simulated machine. The named
/// constructors encode the two Cedar configurations the paper used plus
/// the Alliant FX/80 baseline (one Cedar-like cluster).
///
/// Costs are in cycles; capacities in bytes. The `*_scaled`
/// constructors divide capacities by [`MachineConfig::DEFAULT_SCALE`] so
/// that reduced workload sizes keep the paper's working-set /
/// capacity ratios (see DESIGN.md §2).
#[derive(Debug, Clone)]
pub struct MachineConfig {
    /// Label printed in harness output.
    pub name: String,
    // ---- topology ----
    /// Number of clusters (Cedar: 4; FX/80: 1).
    pub clusters: usize,
    /// Computational elements per cluster (8).
    pub ces_per_cluster: usize,

    // ---- per-access memory costs (cycles per element) ----
    /// Cluster cache / CE-local data (privatized loop locals).
    pub cache_hit: f64,
    /// Cluster memory behind the cluster switch.
    pub cluster_mem: f64,
    /// Global memory, scalar (non-pipelined) access.
    pub global_scalar: f64,
    /// Global memory, vector access without prefetch (partially
    /// pipelined through the interconnect).
    pub global_vector: f64,
    /// Global memory, vector access with the prefetch unit engaged —
    /// *faster per element than cluster memory*: Fig. 8's global-data
    /// variant beats the cluster-memory baseline on one cluster "because
    /// of the high transfer rate of global memory and prefetch".
    pub global_prefetch: f64,
    /// Is compiler-inserted prefetch enabled (§2.2.3)?
    pub prefetch: bool,
    /// Elements per prefetch trigger (the paper's hardware fetches 32).
    pub prefetch_block: usize,

    // ---- computation costs ----
    /// One scalar ALU/FPU operation.
    pub scalar_op: f64,
    /// Per-element cost of a vector operation once the pipe is full.
    pub vector_op: f64,
    /// Pipeline fill / vector instruction issue overhead per vector
    /// statement.
    pub vector_startup: f64,
    /// Fixed cost of a CALL/RETURN pair.
    pub call_overhead: f64,
    /// Cost charged for an I/O statement (treated as buffered no-op).
    pub io_cost: f64,

    // ---- parallel loop startup / scheduling (§2.2.1) ----
    /// CDOALL/CDOACROSS startup via the concurrency control bus.
    pub cdo_start: f64,
    /// Per-iteration dispatch cost on the concurrency bus.
    pub cdo_dispatch: f64,
    /// SDOALL startup through the runtime library (helper tasks).
    pub sdo_start: f64,
    /// XDOALL startup through the runtime library.
    pub xdo_start: f64,
    /// Per-iteration dispatch cost of library microtasking.
    pub lib_dispatch: f64,
    /// End-of-loop barrier cost per participant wave.
    pub barrier: f64,

    // ---- subroutine-level tasking (§2.2.2) ----
    /// Starting a new OS cluster task (`ctskstart`): "much higher
    /// overhead, but ... unrestricted forms of synchronization".
    pub ctsk_start: f64,
    /// Dispatching onto an existing helper task (`mtskstart`):
    /// "a low-overhead mechanism ... a finer grain of parallelism".
    pub mtsk_start: f64,

    // ---- synchronization (§2.1, §4.1.6) ----
    /// Cycles to test a cascade counter (excluding stall time).
    pub await_cost: f64,
    /// Cycles to bump a cascade counter.
    pub advance_cost: f64,
    /// Cycles to acquire/release a lock (excluding stall time).
    pub lock_cost: f64,

    // ---- global memory bandwidth / contention ----
    /// Number of concurrent global-memory streams the interconnect
    /// sustains at full speed; more simultaneous participants than this
    /// scale access costs linearly (Fig. 8 saturation).
    pub global_streams: f64,

    // ---- capacity / paging model ----
    /// Physical bytes of one cluster memory.
    pub cluster_capacity: u64,
    /// Physical bytes of global memory.
    pub global_capacity: u64,
    /// Surcharge (cycles, amortized per access) once a pool thrashes.
    pub page_fault_cost: f64,

    // ---- interpreter safety ----
    /// DO WHILE iteration bound (runaway-loop backstop).
    pub max_while_iters: u64,
    /// Watchdog budget on total executed statements; a run exceeding it
    /// fails with a `Limit` error instead of spinning forever.
    pub watchdog_ops: u64,
    /// Enable the happens-before data-race detector (DESIGN.md §8).
    /// Off by default: the detector charges no simulated cycles either
    /// way, but instrumenting every element access costs host time.
    pub detect_races: bool,
    /// Use the interpreter's prepass caches (constant-folded declared
    /// dims with recorded charge sequences; see `sim::prepass`).
    /// Simulated behavior is bit-identical either way — the switch
    /// exists so the fast-path equivalence property tests can compare
    /// cached against uncached runs (DESIGN.md §9).
    pub fast_paths: bool,
    /// Cooperative cancellation handle the watchdog polls alongside its
    /// statement budget (every 1024 executed statements, so one clock
    /// read amortizes over the window). When the token expires — its
    /// wall-clock deadline lapses or a supervisor calls
    /// [`CancelToken::cancel`] — the run aborts with
    /// [`crate::SimErrorKind::Timeout`]. `None` (the default) polls
    /// nothing and costs nothing. A successful run is bit-identical
    /// with or without a token: the deadline can only *abort*, never
    /// change what the program computes.
    pub cancel: Option<CancelToken>,
    /// Execution engine ([`Engine::Vm`] by default; `CEDAR_ENGINE=interp`
    /// selects the tree-walking differential oracle). Bit-identical
    /// either way — see DESIGN.md §14.
    pub engine: Engine,
}

impl MachineConfig {
    /// Capacity scale factor used by the experiments. Workload sizes
    /// are scaled down from the paper's (e.g. 1000→160 matrix rows for
    /// `mprove`), so memory capacities scale by this factor to keep the
    /// paper's working-set/capacity ratios: 16 MB/128 = 128 KB of
    /// cluster memory means a two-matrix 160×160 REAL working set
    /// (205 KB) thrashes in cluster memory but fits in the 512 KB global
    /// pool — exactly the `mprove`/CG story of Table 1.
    pub const DEFAULT_SCALE: u64 = 128;

    /// Common cost skeleton shared by all configurations.
    fn base(name: &str, clusters: usize) -> MachineConfig {
        MachineConfig {
            name: name.to_string(),
            clusters,
            ces_per_cluster: 8,
            cache_hit: 1.0,
            cluster_mem: 3.0,
            global_scalar: 40.0,
            global_vector: 3.0,
            global_prefetch: 0.75,
            prefetch: true,
            prefetch_block: 32,
            scalar_op: 1.0,
            vector_op: 0.5,
            vector_startup: 25.0,
            call_overhead: 30.0,
            io_cost: 50.0,
            cdo_start: 60.0,
            cdo_dispatch: 2.0,
            sdo_start: 2200.0,
            xdo_start: 2800.0,
            lib_dispatch: 12.0,
            barrier: 20.0,
            ctsk_start: 12000.0,
            mtsk_start: 400.0,
            await_cost: 6.0,
            advance_cost: 4.0,
            lock_cost: 30.0,
            global_streams: 10.0,
            cluster_capacity: 16 << 20,
            global_capacity: 64 << 20,
            page_fault_cost: 400.0,
            max_while_iters: 50_000_000,
            watchdog_ops: 4_000_000_000,
            detect_races: false,
            fast_paths: true,
            cancel: None,
            engine: Engine::from_env().unwrap_or(Engine::Vm),
        }
    }

    /// Cedar Configuration 1: 4 clusters × 8 CEs, 64 MB global,
    /// 16 MB cluster memory each (the machine of Table 1 and the
    /// "Automatically compiled" column of Table 2).
    pub fn cedar_config1() -> MachineConfig {
        Self::base("cedar-config1", 4)
    }

    /// Cedar Configuration 2: like Configuration 1 but 64 MB of cluster
    /// memory per cluster (the "Manually improved" runs).
    pub fn cedar_config2() -> MachineConfig {
        let mut c = Self::base("cedar-config2", 4);
        c.cluster_capacity = 64 << 20;
        c
    }

    /// Alliant FX/80 baseline: a single Cedar-like cluster (8 CEs),
    /// no global memory hierarchy — "global" placements behave like
    /// cluster memory and cross-cluster loop classes degrade to their
    /// cluster forms.
    pub fn fx80() -> MachineConfig {
        let mut c = Self::base("fx80", 1);
        // One memory level: global == cluster memory in cost.
        c.global_scalar = c.cluster_mem;
        c.global_vector = c.cluster_mem * 0.5;
        c.global_prefetch = c.cluster_mem * 0.5;
        c.global_streams = 32.0; // bus is not the bottleneck at 8 CEs
        c.sdo_start = c.cdo_start; // no cross-cluster library path
        c.xdo_start = c.cdo_start;
        c.lib_dispatch = c.cdo_dispatch;
        c.cluster_capacity = 32 << 20;
        c.global_capacity = 32 << 20;
        c
    }

    /// Scale both capacities down by `factor` (keeps working-set ratios
    /// when workloads shrink).
    pub fn scaled(mut self, factor: u64) -> MachineConfig {
        self.cluster_capacity = (self.cluster_capacity / factor).max(1);
        self.global_capacity = (self.global_capacity / factor).max(1);
        self.name = format!("{}-scaled{factor}", self.name);
        self
    }

    /// Cedar Configuration 1 with capacities scaled for the reduced
    /// workload sizes used by the experiment harness.
    /// Config 1 (Table 2 note: 2 clusters) at [`Self::DEFAULT_SCALE`].
    pub fn cedar_config1_scaled() -> MachineConfig {
        Self::cedar_config1().scaled(Self::DEFAULT_SCALE)
    }

    /// Config 2 (4 clusters × 8 CEs) at [`Self::DEFAULT_SCALE`].
    pub fn cedar_config2_scaled() -> MachineConfig {
        Self::cedar_config2().scaled(Self::DEFAULT_SCALE)
    }

    /// Alliant FX/80 at [`Self::DEFAULT_SCALE`].
    pub fn fx80_scaled() -> MachineConfig {
        Self::fx80().scaled(Self::DEFAULT_SCALE)
    }

    /// Total CE count.
    pub fn total_ces(&self) -> usize {
        self.clusters * self.ces_per_cluster
    }

    /// Disable the prefetch unit (Fig. 6 ablation).
    pub fn without_prefetch(mut self) -> MachineConfig {
        self.prefetch = false;
        self
    }

    /// Restrict the machine to `n` clusters (Fig. 8 sweep).
    pub fn with_clusters(mut self, n: usize) -> MachineConfig {
        assert!(n >= 1);
        self.clusters = n;
        self
    }

    /// Disable the interpreter's prepass caches (fast-path equivalence
    /// tests compare against this mode; see `sim::prepass`).
    pub fn without_fast_paths(mut self) -> MachineConfig {
        self.fast_paths = false;
        self
    }

    /// Enable the happens-before data-race detector. The first race
    /// aborts the run with [`crate::SimErrorKind::DataRace`] unless the
    /// simulator is switched to collect-all mode
    /// ([`crate::Simulator::collect_races`]).
    pub fn with_race_detection(mut self) -> MachineConfig {
        self.detect_races = true;
        self
    }

    /// Thread a cancellation token into the watchdog (see
    /// [`MachineConfig::cancel`]). The experiment supervisor clones one
    /// per-cell token into every simulator the cell spawns, so the cell
    /// shares a single wall-clock budget.
    pub fn with_cancel(mut self, token: CancelToken) -> MachineConfig {
        self.cancel = Some(token);
        self
    }

    /// Convenience: a fresh token expiring `budget` from now.
    pub fn with_time_budget(self, budget: Duration) -> MachineConfig {
        self.with_cancel(CancelToken::with_budget(budget))
    }

    /// Select the execution engine (overrides the `CEDAR_ENGINE`
    /// default). The differential tests run every program under both.
    pub fn with_engine(mut self, engine: Engine) -> MachineConfig {
        self.engine = engine;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn configurations_differ_as_documented() {
        let c1 = MachineConfig::cedar_config1();
        let c2 = MachineConfig::cedar_config2();
        assert_eq!(c1.total_ces(), 32);
        assert_eq!(c1.cluster_capacity, 16 << 20);
        assert_eq!(c2.cluster_capacity, 64 << 20);
        let fx = MachineConfig::fx80();
        assert_eq!(fx.total_ces(), 8);
        assert_eq!(fx.global_scalar, fx.cluster_mem);
    }

    #[test]
    fn scaling_preserves_ratio() {
        let c = MachineConfig::cedar_config1().scaled(1024);
        assert_eq!(c.cluster_capacity, (16 << 20) / 1024);
        assert_eq!(c.global_capacity, (64 << 20) / 1024);
        assert_eq!(
            c.global_capacity / c.cluster_capacity,
            4,
            "global:cluster capacity ratio must survive scaling"
        );
    }

    #[test]
    fn ablation_helpers() {
        let c = MachineConfig::cedar_config1().without_prefetch();
        assert!(!c.prefetch);
        let c = MachineConfig::cedar_config1().with_clusters(2);
        assert_eq!(c.total_ces(), 16);
    }

    #[test]
    fn engine_selection_defaults_to_vm_and_overrides() {
        // CI never sets CEDAR_ENGINE for unit tests; guard anyway so a
        // locally exported override does not turn this into a flake.
        if std::env::var("CEDAR_ENGINE").is_err() {
            assert_eq!(MachineConfig::cedar_config1().engine, Engine::Vm);
        }
        let c = MachineConfig::cedar_config1().with_engine(Engine::Interp);
        assert_eq!(c.engine, Engine::Interp);
    }
}
