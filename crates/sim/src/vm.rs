//! The bytecode dispatch loop (DESIGN.md §14).
//!
//! This module is a child of [`exec`](super) so it can execute
//! instructions through the interpreter's own private seams — `load` /
//! `store_at` (race-detector shadow memory), `bind_access_cost` /
//! `mem_cost` (placement + paging + fault jitter), `exec_sync`
//! (cascades, locks, deadlock detection), `invoke` (frames, recursion
//! guard), and the shared loop schedulers. The VM replaces only the
//! *walk*: statement dispatch, expression recursion, and static cycle
//! charges. Everything observable (cycles, stats, outputs, errors, race
//! reports, fault-RNG draw order) is produced by the same code in the
//! same order as the tree-walker, which is what makes the two engines
//! bit-identical — gated by the `vm_identity` tests and the
//! `vm-vs-interpreter` fuzz lane.
//!
//! ## Error stamping
//!
//! The interpreter wraps some statement bodies in
//! `map_err(with_span(span))`. The VM reproduces this with a running
//! *stamp* set by each [`Instr::Gate`]: every fallible inline op stamps
//! its error with the current stamp. `with_span` only fills empty
//! spans, so a `Gate` whose stamp is `Span::NONE` (loops, sync ops —
//! statements the interpreter does not wrap) makes the stamping a
//! no-op, and errors that arrive pre-stamped from nested calls pass
//! through unchanged — exactly the interpreter's behavior.

use super::{err, kerr, with_span, Ctx, Flow, Frame, LoopBlocks, LoopRef, Result, Simulator, Subs};
use crate::compile::{CompiledUnit, Instr};
use crate::cost::CostClass;
use crate::error::{SimError, SimErrorKind};
use crate::value_ops;
use cedar_ir::{LoopClass, Span, Value};

impl Simulator<'_> {
    /// Execute the body of unit `ridx`: compiled bytecode when the
    /// engine is [`Engine::Vm`](crate::Engine::Vm) (entered from
    /// `run_main` *and* `invoke`, so callees run compiled no matter how
    /// they were reached), the IR tree otherwise.
    pub(super) fn exec_unit_body(
        &mut self,
        frame: &mut Frame,
        ridx: usize,
        ctx: &mut Ctx,
    ) -> Result<Flow> {
        if let Some(cp) = self.compiled.clone() {
            let cu = &cp.units[ridx];
            return self.vm_run_range(frame, cu, 0, cu.code.len() as u32, ctx);
        }
        let program = self.program;
        self.exec_block(frame, &program.units[ridx].body, ctx)
    }

    /// Run the instructions in `[lo, hi)` of a compiled unit with a
    /// pooled value stack (statement boundaries leave it empty, so
    /// nested ranges — loop bodies, DO WHILE bodies — use fresh stacks
    /// without copying).
    pub(super) fn vm_run_range(
        &mut self,
        frame: &mut Frame,
        cu: &CompiledUnit,
        lo: u32,
        hi: u32,
        ctx: &mut Ctx,
    ) -> Result<Flow> {
        let mut stack = self.take_buf(8);
        let r = self.vm_dispatch(frame, cu, lo, hi, ctx, &mut stack);
        self.put_buf(stack);
        r
    }

    fn vm_dispatch(
        &mut self,
        frame: &mut Frame,
        cu: &CompiledUnit,
        lo: u32,
        hi: u32,
        ctx: &mut Ctx,
        stack: &mut Vec<Value>,
    ) -> Result<Flow> {
        let code = &cu.code[..];
        let hi = hi as usize;
        let mut pc = lo as usize;
        let mut stamp = Span::NONE;
        while pc < hi {
            let instr = &code[pc];
            pc += 1;
            match instr {
                Instr::Gate { span, stamp: st } => {
                    self.statement_gate(*span)?;
                    stamp = *st;
                }
                Instr::PushI(v) => stack.push(Value::I(*v)),
                Instr::PushR(v) => stack.push(Value::R(*v)),
                Instr::PushB(b) => stack.push(Value::B(*b)),
                Instr::LoadScalar(sym) => {
                    let bind =
                        self.bind_of(frame, *sym).map_err(|e| with_span(e, stamp))?;
                    ctx.time += self.costs.get(CostClass::CacheHit);
                    let slot = self.resolve_slot(bind, ctx.cluster);
                    let offset = bind.offset;
                    let v = self.load(slot, offset).map_err(|e| with_span(e, stamp))?;
                    stack.push(v);
                }
                Instr::ChargeIdx => {
                    self.stats.scalar_ops += 1;
                    ctx.time += self.costs.get(CostClass::ScalarOp);
                }
                Instr::LoadElem { arr, rank } => {
                    let subs = pop_subs(stack, *rank as usize);
                    let bind =
                        self.bind_of(frame, *arr).map_err(|e| with_span(e, stamp))?;
                    let lin = self
                        .linearize(frame, *arr, bind, subs.as_slice())
                        .map_err(|e| with_span(e, stamp))?;
                    ctx.time += self.bind_access_cost(bind, lin, false, true, ctx);
                    let slot = self.resolve_slot(bind, ctx.cluster);
                    let v = self.load(slot, lin).map_err(|e| with_span(e, stamp))?;
                    stack.push(v);
                }
                Instr::Un(op) => {
                    let v = stack.pop().expect("vm stack: unary operand");
                    self.stats.scalar_ops += 1;
                    ctx.time += self.costs.get(CostClass::ScalarOp);
                    stack.push(value_ops::un(*op, v));
                }
                Instr::Bin(op) => {
                    let r = stack.pop().expect("vm stack: binary rhs");
                    let l = stack.pop().expect("vm stack: binary lhs");
                    self.stats.scalar_ops += 1;
                    ctx.time += self.costs.get(CostClass::ScalarOp);
                    let v = value_ops::bin(*op, l, r)
                        .map_err(|e| with_span(SimError::from_op(e, Span::NONE), stamp))?;
                    stack.push(v);
                }
                Instr::EvalTree(i) => {
                    let v = self
                        .eval_scalar(frame, &cu.exprs[*i as usize], ctx)
                        .map_err(|e| with_span(e, stamp))?;
                    stack.push(v);
                }
                Instr::Branch => {
                    ctx.time += self.costs.get(CostClass::Branch);
                }
                Instr::JumpIfFalse(t) => {
                    let c = stack.pop().expect("vm stack: branch condition");
                    if !c.as_bool() {
                        pc = *t as usize;
                    }
                }
                Instr::Jump(t) => pc = *t as usize,
                Instr::StoreScalar(sym) => {
                    let v = stack.pop().expect("vm stack: store value");
                    let bind =
                        self.bind_of(frame, *sym).map_err(|e| with_span(e, stamp))?;
                    ctx.time += self.costs.get(CostClass::CacheHit);
                    let slot = self.resolve_slot(bind, ctx.cluster);
                    let (offset, ty) = (bind.offset, bind.ty);
                    self.store_at(slot, offset, v, ty)
                        .map_err(|e| with_span(e, stamp))?;
                }
                Instr::StoreElem { arr, rank } => {
                    let v = stack.pop().expect("vm stack: store value");
                    let subs = pop_subs(stack, *rank as usize);
                    let bind =
                        self.bind_of(frame, *arr).map_err(|e| with_span(e, stamp))?;
                    let lin = self
                        .linearize(frame, *arr, bind, subs.as_slice())
                        .map_err(|e| with_span(e, stamp))?;
                    ctx.time += self.bind_access_cost(bind, lin, false, false, ctx);
                    let slot = self.resolve_slot(bind, ctx.cluster);
                    let ty = bind.ty;
                    self.store_at(slot, lin, v, ty)
                        .map_err(|e| with_span(e, stamp))?;
                }
                Instr::LoopStmt(li) => {
                    let lp = &cu.loops[*li as usize];
                    // Bounds evaluate unstamped, like the interpreter's
                    // `exec_loop` (its caller applies no `with_span`).
                    let start = self.eval_scalar(frame, &lp.start, ctx)?.as_i64();
                    let end = self.eval_scalar(frame, &lp.end, ctx)?.as_i64();
                    let step = match &lp.step {
                        Some(e) => self.eval_scalar(frame, e, ctx)?.as_i64(),
                        None => 1,
                    };
                    if step == 0 {
                        return err(lp.span, "DO step of zero");
                    }
                    let trip = ((end - start + step) / step).max(0) as usize;
                    let lr = LoopRef {
                        class: lp.class,
                        var: lp.var,
                        locals: &lp.locals,
                        span: lp.span,
                        blocks: LoopBlocks::Vm { cu, lp },
                    };
                    let flow = if lp.class == LoopClass::Seq {
                        self.exec_seq_loop(frame, &lr, start, step, trip, ctx)?
                    } else {
                        self.exec_parallel_loop(frame, &lr, start, step, trip, ctx)?
                    };
                    match flow {
                        Flow::Normal => pc = lp.end_pc as usize,
                        other => return Ok(other),
                    }
                }
                Instr::WhileStmt(wi) => {
                    let w = &cu.whiles[*wi as usize];
                    let mut iters = 0u64;
                    let broke = loop {
                        let c = self
                            .eval_scalar(frame, &w.cond, ctx)
                            .map_err(|e| with_span(e, w.span))?;
                        if !c.as_bool() {
                            break Flow::Normal;
                        }
                        match self.vm_run_range(frame, cu, w.body.0, w.body.1, ctx)? {
                            Flow::Normal => {}
                            other => break other,
                        }
                        iters += 1;
                        if iters > self.config.max_while_iters {
                            return kerr(
                                SimErrorKind::Limit,
                                w.span,
                                "DO WHILE exceeded iteration bound",
                            );
                        }
                    };
                    match broke {
                        Flow::Normal => pc = w.end_pc as usize,
                        other => return Ok(other),
                    }
                }
                Instr::CallSub(ci) => {
                    let cs = &cu.calls[*ci as usize];
                    self.invoke(frame, cs.ridx, &cs.args, ctx)
                        .map_err(|e| with_span(e, cs.span))?;
                }
                Instr::Timer { start } => {
                    if *start {
                        self.stats.region_open = Some(ctx.time);
                    } else if let Some(t0) = self.stats.region_open.take() {
                        self.stats.region_cycles += ctx.time - t0;
                    }
                }
                Instr::SyncStmt(si) => {
                    self.exec_sync(frame, &cu.syncs[*si as usize], ctx)?;
                }
                Instr::TaskWait => {
                    for t in self.task_ends.drain(..) {
                        if t > ctx.time {
                            ctx.time = t;
                        }
                    }
                    if let Some(rd) = self.races.as_mut() {
                        if rd.in_task_group() {
                            rd.pop_region();
                        }
                    }
                }
                Instr::Io => {
                    self.stats.io_statements += 1;
                    ctx.time += self.costs.get(CostClass::Io);
                }
                Instr::Return => return Ok(Flow::Return),
                Instr::Stop => return Ok(Flow::Stop),
                Instr::Interp(i) => {
                    match self.exec_stmt(frame, &cu.stmts[*i as usize], ctx)? {
                        Flow::Normal => {}
                        other => return Ok(other),
                    }
                }
            }
        }
        Ok(Flow::Normal)
    }
}

/// Pop `rank` subscripts (pushed left to right, so they sit below the
/// stack top in order) into a fixed subscript buffer. The compiler
/// rejects rank > 8 statements, so the pushes cannot fail.
fn pop_subs(stack: &mut Vec<Value>, rank: usize) -> Subs {
    let base = stack.len() - rank;
    let mut subs = Subs::new();
    for v in &stack[base..] {
        subs.push(v.as_i64())
            .expect("vm: compiler admitted rank > 8");
    }
    stack.truncate(base);
    subs
}
