//! Happens-before data-race detection (DESIGN.md §8).
//!
//! The simulator executes parallel loops *sequentially* (one iteration
//! at a time, in index order), so the detector cannot observe races by
//! watching interleavings — it must reconstruct the **happens-before
//! partial order** the Cedar hardware would actually guarantee and flag
//! every pair of conflicting accesses that the order leaves unrelated.
//! A race flagged here is schedule-dependent on the real machine even
//! though the simulator's canonical schedule produced the right answer
//! (idempotent double-writes, reductions without locks, cascades with
//! missing `advance`s, ...) — exactly the class of bugs PR 1's
//! differential validator can miss.
//!
//! The logical threads are **loop iterations**, not CEs: which CE runs
//! an iteration is a scheduling accident, and two iterations race
//! unless synchronization orders them under *every* legal schedule.
//! Happens-before edges come from:
//!
//! * **fork/join** — statements before a parallel loop precede every
//!   iteration; every iteration precedes the join barrier;
//! * **cascade delivery** — `await(p, d)` in iteration `k`
//!   synchronizes-with the `advance(p)` of every iteration `≤ k − d`
//!   (the cascade counter is monotone: when it reaches `k − d`, all
//!   earlier iterations have advanced);
//! * **critical sections** — `lock(id)` synchronizes-with the previous
//!   `unlock(id)`, chaining the lock's holders.
//!
//! Mechanically, each active parallel region keeps a frame with the
//! current iteration's sparse **vector clock** (what segments of sibling
//! iterations it has observed through sync). Every access snapshots the
//! *path* of `(region instance, iteration, segment clock)` triples down
//! the region stack; shadow memory stores, per element, the last write
//! and the reads since. Two accesses are ordered iff their paths
//! diverge at a joined region (host execution order implies the join
//! barrier), stay on one logical thread, or the recorded segment is
//! covered by the current iteration's vector clock; otherwise they are
//! concurrent and a conflicting pair is a race.
//!
//! The detector charges **zero simulated cycles** and is only
//! instantiated when [`crate::MachineConfig::detect_races`] is set, so
//! the hot path pays nothing when disabled and cycle counts are
//! bit-identical either way.

use crate::store::SlotId;
use cedar_ir::Span;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// Sparse vector clock: iteration → highest observed segment clock.
type Vc = BTreeMap<u32, u32>;

fn vc_join(dst: &mut Vc, src: &Vc) {
    for (&iter, &clock) in src {
        let e = dst.entry(iter).or_insert(0);
        if *e < clock {
            *e = clock;
        }
    }
}

/// Conflict classification of a detected race.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RaceKind {
    /// Two unordered writes to the same element.
    WriteWrite,
    /// A write, then an unordered read of the same element.
    WriteRead,
    /// A read, then an unordered write of the same element.
    ReadWrite,
}

impl RaceKind {
    /// Stable lower-case tag (used in Display and JSON reports).
    pub fn as_str(self) -> &'static str {
        match self {
            RaceKind::WriteWrite => "write-write",
            RaceKind::WriteRead => "write-read",
            RaceKind::ReadWrite => "read-write",
        }
    }
}

impl fmt::Display for RaceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A detected data race: one storage element, two unordered accesses of
/// which at least one is a write.
#[derive(Debug, Clone)]
pub struct RaceInfo {
    /// Storage slot of the racing element.
    pub slot: u32,
    /// Linear element index within the slot.
    pub index: usize,
    /// Source name bound to the slot, when known.
    pub var: Option<String>,
    /// Conflict classification.
    pub kind: RaceKind,
    /// Iteration of the writing access (for read-write, the later write).
    pub writer_iter: u32,
    /// Participant (CE within the loop) that executed the write.
    pub writer_ce: usize,
    /// Statement of the writing access.
    pub writer_span: Span,
    /// Iteration of the other access.
    pub other_iter: u32,
    /// Participant that executed the other access.
    pub other_ce: usize,
    /// Statement of the other access.
    pub other_span: Span,
}

impl RaceInfo {
    /// The racing statement pair, for fallback notes: `(write line,
    /// other line)`.
    pub fn statement_pair(&self) -> (Span, Span) {
        (self.writer_span, self.other_span)
    }
}

impl fmt::Display for RaceInfo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match &self.var {
            Some(n) => format!("`{n}`"),
            None => format!("slot {}", self.slot),
        };
        let other_word = match self.kind {
            RaceKind::WriteWrite => "write",
            RaceKind::WriteRead | RaceKind::ReadWrite => "read",
        };
        write!(
            f,
            "{} race on {} (element {}): write in iteration {} (CE {}, {}) \
             conflicts with {} in iteration {} (CE {}, {})",
            self.kind,
            name,
            self.index,
            self.writer_iter,
            self.writer_ce,
            self.writer_span,
            other_word,
            self.other_iter,
            self.other_ce,
            self.other_span,
        )
    }
}

/// One level of an access path: which instance of a parallel region the
/// access ran under, in which iteration, and in which sync segment of
/// that iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct PathEntry {
    region: u64,
    iter: u32,
    clock: u32,
}

/// A recorded access: its region path plus reporting metadata. The
/// detector **interns** these: every access recorded under one (sync
/// segment, statement) pair shares a single table entry, and shadow
/// cells store the entry's index instead of the record itself. The
/// detector records one access per *element* of vector statements, so
/// the per-cell footprint (4 bytes vs a path snapshot) is what makes a
/// race-collecting run affordable.
#[derive(Debug)]
struct Access {
    path: Arc<[PathEntry]>,
    part: u16,
    span: Span,
}

/// Index into [`RaceDetector::accesses`]; `NO_ACCESS` means "none".
type AccessId = u32;
const NO_ACCESS: AccessId = u32::MAX;

/// Path equality with the `Arc` identity fast path (pointer-equal ⇒
/// value-equal; distinct snapshots can still compare equal, e.g. a
/// task-group thread resumed after a switch rebuilds the same path).
fn paths_equal(a: &Arc<[PathEntry]>, b: &Arc<[PathEntry]>) -> bool {
    Arc::ptr_eq(a, b) || a == b
}

/// Overflow reader list: boxed so the `None` common case keeps `Cell`
/// at 16 bytes (an inline `Vec` would be 24 bytes of always-resident
/// header per cell, and the shadow is sized to the largest array).
#[allow(clippy::box_collection)]
type MoreReads = Option<Box<Vec<AccessId>>>;

/// Shadow state of one storage element: the last write and the readers
/// since. Most cells see at most one reader between writes, so the
/// first reader is stored inline — a `Vec` here would cost a heap
/// allocation per cell, and vector statements touch millions of cells.
#[derive(Debug, Clone)]
struct Cell {
    write: AccessId,
    read0: AccessId,
    more_reads: MoreReads,
}

impl Default for Cell {
    fn default() -> Cell {
        Cell { write: NO_ACCESS, read0: NO_ACCESS, more_reads: None }
    }
}

impl Cell {
    fn last_read(&self) -> AccessId {
        match &self.more_reads {
            Some(v) => v.last().copied().unwrap_or(self.read0),
            None => self.read0,
        }
    }

    fn push_read(&mut self, id: AccessId) {
        if self.read0 == NO_ACCESS {
            self.read0 = id;
        } else {
            self.more_reads.get_or_insert_with(Default::default).push(id);
        }
    }

    /// Clear the reader set, returning it for conflict checks.
    fn take_reads(&mut self) -> (AccessId, MoreReads) {
        (std::mem::replace(&mut self.read0, NO_ACCESS), self.more_reads.take())
    }
}

/// Iterate a reader set returned by [`Cell::take_reads`] in record
/// order.
fn reads_iter(read0: AccessId, more: &MoreReads) -> impl Iterator<Item = AccessId> + '_ {
    (read0 != NO_ACCESS)
        .then_some(read0)
        .into_iter()
        .chain(more.iter().flat_map(|v| v.iter().copied()))
}

/// One active parallel region (or subroutine task group).
struct RegionFrame {
    id: u64,
    /// DOACROSS (ordered) regions accept cascade edges.
    ordered: bool,
    /// Subroutine-level task groups interleave logical threads, so
    /// per-thread state is saved/restored instead of reset.
    task_group: bool,
    cur_iter: u32,
    cur_clock: u32,
    cur_part: u16,
    /// Current iteration's observations of sibling segments.
    vc: Vc,
    /// `advance` snapshots: point → iteration → (segment clock at the
    /// advance, vector clock at the advance).
    advances: BTreeMap<u32, BTreeMap<u32, (u32, Vc)>>,
    /// Last `unlock` per lock id: (iteration, segment clock, vector
    /// clock at release).
    locks: BTreeMap<u32, (u32, u32, Vc)>,
    /// Saved logical-thread state for task groups.
    saved: BTreeMap<u32, (u32, Vc)>,
}

/// Cap on collected race reports (the total count keeps counting).
const REPORT_CAP: usize = 256;

/// The happens-before detector. Owned by [`crate::Simulator`] when
/// [`crate::MachineConfig::detect_races`] is set.
pub struct RaceDetector {
    stack: Vec<RegionFrame>,
    /// Cached path mirror of `stack` (cloned into each access record).
    path: Vec<PathEntry>,
    /// Shared snapshot of `path` handed to access records; rebuilt
    /// lazily after any path mutation (region push/pop, new iteration,
    /// new sync segment).
    path_arc: Option<Arc<[PathEntry]>>,
    /// Interned access records; shadow cells index into this table.
    accesses: Vec<Access>,
    /// Interned record for the current (segment, statement); rebuilt
    /// lazily after a path or span change.
    cur_id: Option<AccessId>,
    /// Memoized happens-before verdicts, reset whenever the current
    /// context or a sync edge changes.
    memo: ConflictMemo,
    /// Shadow memory, indexed by slot id then linear element.
    shadow: Vec<Option<Vec<Cell>>>,
    /// Best-effort slot → source-name map for reports.
    slot_names: BTreeMap<u32, String>,
    /// Per-CE private slots (privatized loop locals): iterations that
    /// share a participant reuse them sequentially, never concurrently.
    /// Indexed by slot id — checked on every recorded access.
    exempt: Vec<bool>,
    next_region: u64,
    /// When > 0, accesses are not recorded (loop-variable bookkeeping).
    suspend: u32,
    /// Fail-fast (first race is a `SimError`) vs collect-all mode.
    pub fail_fast: bool,
    races: Vec<RaceInfo>,
    total: u64,
    cur_span: Span,
}

impl RaceDetector {
    /// New detector; `fail_fast` turns the first race into an error.
    pub fn new(fail_fast: bool) -> RaceDetector {
        RaceDetector {
            stack: Vec::new(),
            path: Vec::new(),
            path_arc: None,
            accesses: Vec::new(),
            cur_id: None,
            memo: ConflictMemo::default(),
            shadow: Vec::new(),
            slot_names: BTreeMap::new(),
            exempt: Vec::new(),
            next_region: 0,
            suspend: 0,
            fail_fast,
            races: Vec::new(),
            total: 0,
            cur_span: Span::NONE,
        }
    }

    /// Races collected so far (capped; see [`RaceDetector::total`]).
    pub fn report(&self) -> &[RaceInfo] {
        &self.races
    }

    /// Total number of races observed (uncapped).
    pub fn total(&self) -> u64 {
        self.total
    }

    pub(crate) fn set_span(&mut self, span: Span) {
        if span != self.cur_span {
            self.cur_span = span;
            self.cur_id = None;
        }
    }

    pub(crate) fn note_slot_name(&mut self, slot: SlotId, name: &str) {
        self.slot_names.entry(slot.0).or_insert_with(|| name.to_string());
    }

    /// Mark a slot as per-CE private (not subject to race checks).
    /// Slot ids are never reused, so exemptions cannot go stale.
    pub(crate) fn exempt_slot(&mut self, slot: SlotId) {
        let si = slot.0 as usize;
        if self.exempt.len() <= si {
            self.exempt.resize(si + 1, false);
        }
        self.exempt[si] = true;
    }

    fn is_exempt(&self, slot: SlotId) -> bool {
        self.exempt.get(slot.0 as usize).copied().unwrap_or(false)
    }

    pub(crate) fn suspend(&mut self) {
        self.suspend += 1;
    }

    pub(crate) fn resume(&mut self) {
        self.suspend = self.suspend.saturating_sub(1);
    }

    // ---- region lifecycle ----

    fn refresh_path_top(&mut self) {
        if let (Some(f), Some(p)) = (self.stack.last(), self.path.last_mut()) {
            *p = PathEntry { region: f.id, iter: f.cur_iter, clock: f.cur_clock };
        }
        self.path_arc = None;
        self.cur_id = None;
        self.memo = ConflictMemo::default();
    }

    pub(crate) fn push_region(&mut self, ordered: bool, task_group: bool) {
        let id = self.next_region;
        self.next_region += 1;
        self.stack.push(RegionFrame {
            id,
            ordered,
            task_group,
            cur_iter: 0,
            cur_clock: 0,
            cur_part: 0,
            vc: Vc::new(),
            advances: BTreeMap::new(),
            locks: BTreeMap::new(),
            saved: BTreeMap::new(),
        });
        self.path.push(PathEntry { region: id, iter: 0, clock: 0 });
        self.path_arc = None;
        self.cur_id = None;
        self.memo = ConflictMemo::default();
    }

    pub(crate) fn pop_region(&mut self) {
        self.stack.pop();
        self.path.pop();
        self.path_arc = None;
        self.cur_id = None;
        self.memo = ConflictMemo::default();
    }

    /// True when the innermost region is a subroutine task group.
    pub(crate) fn in_task_group(&self) -> bool {
        self.stack.last().is_some_and(|f| f.task_group)
    }

    /// Start a fresh logical thread (loop iteration) in the innermost
    /// region. Iterations never revisit, so state resets.
    pub(crate) fn begin_iteration(&mut self, iter: u32, part: u16) {
        if let Some(f) = self.stack.last_mut() {
            f.cur_iter = iter;
            f.cur_clock = 0;
            f.cur_part = part;
            f.vc.clear();
        }
        self.refresh_path_top();
    }

    /// Switch the innermost task group to logical thread `iter`,
    /// saving/restoring per-thread clocks (threads interleave in host
    /// order: spawner, task 1, spawner, task 2, ...).
    pub(crate) fn switch_task_thread(&mut self, iter: u32, part: u16) {
        if let Some(f) = self.stack.last_mut() {
            if f.cur_iter != iter {
                let old_vc = std::mem::take(&mut f.vc);
                f.saved.insert(f.cur_iter, (f.cur_clock, old_vc));
                let (clock, vc) = f.saved.remove(&iter).unwrap_or((0, Vc::new()));
                f.cur_iter = iter;
                f.cur_clock = clock;
                f.vc = vc;
            }
            f.cur_part = part;
        }
        self.refresh_path_top();
    }

    // ---- synchronization edges ----

    /// `await(point, d)` satisfied in iteration `k`: join the advance
    /// snapshots of every iteration `≤ upto = k − d` (monotone-counter
    /// semantics). Applies to the innermost *ordered* region.
    pub(crate) fn on_await(&mut self, point: u32, upto: i64) {
        if upto < 0 {
            return;
        }
        // The await may add happens-before edges: cached verdicts stale.
        self.memo = ConflictMemo::default();
        let Some(f) = self.stack.iter_mut().rev().find(|f| f.ordered) else {
            return;
        };
        if let Some(per_iter) = f.advances.get(&point) {
            // Collect first: `advances` and `vc` live in the same frame.
            let edges: Vec<(u32, u32, Vc)> = per_iter
                .range(..=(upto.min(u32::MAX as i64) as u32))
                .map(|(&j, (clk, vc))| (j, *clk, vc.clone()))
                .collect();
            for (j, clk, vc) in edges {
                vc_join(&mut f.vc, &vc);
                let e = f.vc.entry(j).or_insert(0);
                if *e < clk {
                    *e = clk;
                }
            }
        }
    }

    /// `advance(point)`: snapshot the advancing iteration's knowledge
    /// and open a new segment (accesses after the advance are not
    /// ordered by it).
    pub(crate) fn on_advance(&mut self, point: u32) {
        let Some(f) = self.stack.iter_mut().rev().find(|f| f.ordered) else {
            return;
        };
        f.advances
            .entry(point)
            .or_default()
            .insert(f.cur_iter, (f.cur_clock, f.vc.clone()));
        f.cur_clock += 1;
        self.refresh_path_top();
    }

    /// `lock(id)`: synchronize-with the previous holder's release.
    pub(crate) fn on_lock(&mut self, id: u32) {
        // The lock edge may add happens-before edges: cached verdicts
        // stale.
        self.memo = ConflictMemo::default();
        let Some(f) = self.stack.last_mut() else { return };
        if let Some((iter, clock, vc)) = f.locks.get(&id).cloned() {
            vc_join(&mut f.vc, &vc);
            let e = f.vc.entry(iter).or_insert(0);
            if *e < clock {
                *e = clock;
            }
        }
    }

    /// `unlock(id)`: publish this iteration's knowledge to the next
    /// holder and open a new segment.
    pub(crate) fn on_unlock(&mut self, id: u32) {
        let Some(f) = self.stack.last_mut() else { return };
        f.locks.insert(id, (f.cur_iter, f.cur_clock, f.vc.clone()));
        f.cur_clock += 1;
        self.refresh_path_top();
    }

    // ---- the happens-before test ----

    /// If the recorded access path `a` is *not* ordered before the
    /// current context, return the two diverging iterations
    /// `(recorded, current)`; `None` means happens-before holds.
    #[cfg(test)]
    fn conflict(&self, a: &[PathEntry]) -> Option<(u32, u32)> {
        path_conflict(&self.stack, a)
    }

    // ---- shadow memory ----

    /// Intern (or reuse) the access record for the current context.
    fn cur_access_id(&mut self) -> AccessId {
        if let Some(id) = self.cur_id {
            return id;
        }
        if self.path_arc.is_none() {
            self.path_arc = Some(self.path.as_slice().into());
        }
        self.accesses.push(Access {
            path: Arc::clone(self.path_arc.as_ref().expect("just set")),
            part: self.stack.last().map_or(0, |f| f.cur_part),
            span: self.cur_span,
        });
        let id = (self.accesses.len() - 1) as AccessId;
        self.cur_id = Some(id);
        id
    }
}

/// Small direct-mapped memo of [`path_conflict`] keyed by access id:
/// equal ids share one interned record, hence one path, hence one
/// verdict — and a verdict stays valid until the detector's context
/// changes (new segment, region push/pop, or a sync edge joining the
/// vector clock), which resets the memo. Cells of one vector statement
/// (and the handful of scalars in a loop body) were typically last
/// touched by a handful of records, so almost every test is a hit.
struct ConflictMemo {
    entries: [(AccessId, Option<(u32, u32)>); 4],
}

impl Default for ConflictMemo {
    fn default() -> ConflictMemo {
        ConflictMemo { entries: [(NO_ACCESS, None); 4] }
    }
}

impl ConflictMemo {
    fn check(
        &mut self,
        stack: &[RegionFrame],
        accesses: &[Access],
        id: AccessId,
    ) -> Option<(u32, u32)> {
        let e = &mut self.entries[(id & 3) as usize];
        if e.0 == id {
            return e.1;
        }
        let verdict = path_conflict(stack, &accesses[id as usize].path);
        *e = (id, verdict);
        verdict
    }
}

/// The happens-before test of [`RaceDetector::conflict`], as a free
/// function so the bulk range recorders can run it while holding a
/// mutable borrow of the shadow cells.
fn path_conflict(stack: &[RegionFrame], a: &[PathEntry]) -> Option<(u32, u32)> {
    for (d, pa) in a.iter().enumerate() {
            let Some(f) = stack.get(d) else {
                // `a` ran inside a region that has since joined: the
                // join barrier orders it before the current context.
                return None;
            };
            if pa.region != f.id {
                // A different instance at this depth also joined before
                // the current one forked (host order is program order).
                return None;
            }
            if pa.iter == f.cur_iter {
                // Same logical thread at this level; compare deeper.
                continue;
            }
            // Sibling iterations of a live region: ordered only when the
            // current iteration observed the recorded segment via sync.
            if f.vc.get(&pa.iter).is_some_and(|&c| pa.clock <= c) {
                return None;
            }
        return Some((pa.iter, f.cur_iter));
    }
    // `a` is a prefix of the current path: same thread, earlier in
    // program order (e.g. before a nested region forked).
    None
}

impl RaceDetector {
    fn make_race(
        &self,
        kind: RaceKind,
        prior: AccessId,
        prior_iter: u32,
        cur_iter: u32,
        slot: SlotId,
        lin: usize,
    ) -> RaceInfo {
        let prior = &self.accesses[prior as usize];
        let cur_part = self.stack.last().map_or(0, |f| f.cur_part) as usize;
        let (writer_iter, writer_ce, writer_span, other_iter, other_ce, other_span) = match kind {
            // Prior access is the write.
            RaceKind::WriteWrite | RaceKind::WriteRead => (
                prior_iter,
                prior.part as usize,
                prior.span,
                cur_iter,
                cur_part,
                self.cur_span,
            ),
            // Current access is the write.
            RaceKind::ReadWrite => (
                cur_iter,
                cur_part,
                self.cur_span,
                prior_iter,
                prior.part as usize,
                prior.span,
            ),
        };
        RaceInfo {
            slot: slot.0,
            index: lin,
            var: self.slot_names.get(&slot.0).cloned(),
            kind,
            writer_iter,
            writer_ce,
            writer_span,
            other_iter,
            other_ce,
            other_span,
        }
    }

    /// Record a read of `slot[lin]`; returns the race it completes, if
    /// any. Serial-context accesses are ordered with everything and are
    /// neither checked nor recorded.
    pub(crate) fn record_read(&mut self, slot: SlotId, lin: usize) -> Option<RaceInfo> {
        if self.suspend > 0 || self.stack.is_empty() || self.is_exempt(slot) {
            return None;
        }
        let cur = self.cur_access_id();
        let (cells, stack, accesses, memo) = self.cells_stack_accesses(slot, lin + 1);
        let cell = &mut cells[lin];
        let mut hit = None;
        if cell.write != NO_ACCESS {
            if let Some((wi, ci)) = memo.check(stack, accesses, cell.write) {
                hit = Some((cell.write, wi, ci));
            }
        }
        // The host runs one iteration at a time, so consecutive reads of
        // a cell from the same path dedupe with a last-entry check.
        let last = cell.last_read();
        let dup = last == cur
            || (last != NO_ACCESS
                && paths_equal(&accesses[last as usize].path, &accesses[cur as usize].path));
        if !dup {
            cell.push_read(cur);
        }
        hit.map(|(w, wi, ci)| self.make_race(RaceKind::WriteRead, w, wi, ci, slot, lin))
    }

    /// Record a write of `slot[lin]`; returns the first race it
    /// completes against the prior write or any unordered reader.
    pub(crate) fn record_write(&mut self, slot: SlotId, lin: usize) -> Option<RaceInfo> {
        if self.suspend > 0 || self.stack.is_empty() || self.is_exempt(slot) {
            return None;
        }
        let cur = self.cur_access_id();
        let (cells, stack, accesses, memo) = self.cells_stack_accesses(slot, lin + 1);
        let cell = &mut cells[lin];
        let prior_write = std::mem::replace(&mut cell.write, cur);
        let (read0, more) = cell.take_reads();
        let mut hit = None;
        if prior_write != NO_ACCESS {
            if let Some((wi, ci)) = memo.check(stack, accesses, prior_write) {
                hit = Some((RaceKind::WriteWrite, prior_write, wi, ci));
            }
        }
        if hit.is_none() {
            for r in reads_iter(read0, &more) {
                if let Some((ri, ci)) = memo.check(stack, accesses, r) {
                    hit = Some((RaceKind::ReadWrite, r, ri, ci));
                    break;
                }
            }
        }
        hit.map(|(kind, id, pi, ci)| self.make_race(kind, id, pi, ci, slot, lin))
    }

    /// Make sure the shadow cells `slot[0..len]` exist, returning the
    /// cell slice alongside the region stack and the access table
    /// (split borrows so the recorders can test [`path_conflict`]
    /// while mutating cells).
    fn cells_stack_accesses(
        &mut self,
        slot: SlotId,
        len: usize,
    ) -> (&mut [Cell], &[RegionFrame], &[Access], &mut ConflictMemo) {
        let si = slot.0 as usize;
        if self.shadow.len() <= si {
            self.shadow.resize_with(si + 1, || None);
        }
        let cells = self.shadow[si].get_or_insert_with(Vec::new);
        if cells.len() < len {
            cells.resize_with(len, Cell::default);
        }
        (&mut cells[..], &self.stack, &self.accesses, &mut self.memo)
    }

    /// Record reads of the contiguous run `slot[start..start + n]` —
    /// equivalent to [`RaceDetector::record_read`] once per element in
    /// ascending order, with the per-element context snapshot hoisted
    /// out of the loop. Returns the completed races in element order
    /// (empty in the common race-free case: no allocation). This is
    /// what keeps vector statements on the bulk load path when the
    /// detector is live.
    pub(crate) fn record_read_range(
        &mut self,
        slot: SlotId,
        start: usize,
        n: usize,
    ) -> Vec<RaceInfo> {
        if self.suspend > 0 || self.stack.is_empty() || self.is_exempt(slot) {
            return Vec::new();
        }
        let cur = self.cur_access_id();
        let (cells, stack, accesses, memo) = self.cells_stack_accesses(slot, start + n);
        let cur_path = &accesses[cur as usize].path;
        let mut pending: Vec<(usize, AccessId, u32, u32)> = Vec::new();
        // Consecutive cells were typically last written by one vector
        // statement sharing a single interned record, so memoize the
        // happens-before test by access id.
        for (lin, cell) in cells[start..start + n].iter_mut().enumerate() {
            if cell.write != NO_ACCESS {
                if let Some((wi, ci)) = memo.check(stack, accesses, cell.write) {
                    pending.push((start + lin, cell.write, wi, ci));
                }
            }
            let last = cell.last_read();
            let dup = last == cur
                || (last != NO_ACCESS && paths_equal(&accesses[last as usize].path, cur_path));
            if !dup {
                cell.push_read(cur);
            }
        }
        pending
            .into_iter()
            .map(|(lin, w, wi, ci)| self.make_race(RaceKind::WriteRead, w, wi, ci, slot, lin))
            .collect()
    }

    /// Write-side counterpart of [`RaceDetector::record_read_range`]:
    /// equivalent to [`RaceDetector::record_write`] once per element in
    /// ascending order.
    pub(crate) fn record_write_range(
        &mut self,
        slot: SlotId,
        start: usize,
        n: usize,
    ) -> Vec<RaceInfo> {
        if self.suspend > 0 || self.stack.is_empty() || self.is_exempt(slot) {
            return Vec::new();
        }
        let cur = self.cur_access_id();
        let (cells, stack, accesses, memo) = self.cells_stack_accesses(slot, start + n);
        let mut pending: Vec<(usize, RaceKind, AccessId, u32, u32)> = Vec::new();
        for (lin, cell) in cells[start..start + n].iter_mut().enumerate() {
            let prior_write = std::mem::replace(&mut cell.write, cur);
            let (read0, more) = cell.take_reads();
            let mut hit = None;
            if prior_write != NO_ACCESS {
                if let Some((wi, ci)) = memo.check(stack, accesses, prior_write) {
                    hit = Some((start + lin, RaceKind::WriteWrite, prior_write, wi, ci));
                }
            }
            if hit.is_none() {
                for r in reads_iter(read0, &more) {
                    if let Some((ri, ci)) = memo.check(stack, accesses, r) {
                        hit = Some((start + lin, RaceKind::ReadWrite, r, ri, ci));
                        break;
                    }
                }
            }
            if let Some(h) = hit {
                pending.push(h);
            }
        }
        pending
            .into_iter()
            .map(|(lin, kind, a, pi, ci)| self.make_race(kind, a, pi, ci, slot, lin))
            .collect()
    }

    /// Record reads of the (possibly non-contiguous) elements `lins` —
    /// equivalent to [`RaceDetector::record_read`] once per element in
    /// slice order, with the guard checks and the context snapshot
    /// hoisted out of the loop. This keeps strided and gathered vector
    /// operands off the scalar recorder.
    pub(crate) fn record_read_lins(&mut self, slot: SlotId, lins: &[usize]) -> Vec<RaceInfo> {
        if self.suspend > 0 || self.stack.is_empty() || self.is_exempt(slot) || lins.is_empty() {
            return Vec::new();
        }
        let len = lins.iter().copied().max().unwrap_or(0) + 1;
        let cur = self.cur_access_id();
        let (cells, stack, accesses, memo) = self.cells_stack_accesses(slot, len);
        let cur_path = &accesses[cur as usize].path;
        let mut pending: Vec<(usize, AccessId, u32, u32)> = Vec::new();
        for &lin in lins {
            let cell = &mut cells[lin];
            if cell.write != NO_ACCESS {
                if let Some((wi, ci)) = memo.check(stack, accesses, cell.write) {
                    pending.push((lin, cell.write, wi, ci));
                }
            }
            let last = cell.last_read();
            let dup = last == cur
                || (last != NO_ACCESS && paths_equal(&accesses[last as usize].path, cur_path));
            if !dup {
                cell.push_read(cur);
            }
        }
        pending
            .into_iter()
            .map(|(lin, w, wi, ci)| self.make_race(RaceKind::WriteRead, w, wi, ci, slot, lin))
            .collect()
    }

    /// Write-side counterpart of [`RaceDetector::record_read_lins`]:
    /// equivalent to [`RaceDetector::record_write`] once per element in
    /// slice order.
    pub(crate) fn record_write_lins(&mut self, slot: SlotId, lins: &[usize]) -> Vec<RaceInfo> {
        if self.suspend > 0 || self.stack.is_empty() || self.is_exempt(slot) || lins.is_empty() {
            return Vec::new();
        }
        let len = lins.iter().copied().max().unwrap_or(0) + 1;
        let cur = self.cur_access_id();
        let (cells, stack, accesses, memo) = self.cells_stack_accesses(slot, len);
        let mut pending: Vec<(usize, RaceKind, AccessId, u32, u32)> = Vec::new();
        for &lin in lins {
            let cell = &mut cells[lin];
            let prior_write = std::mem::replace(&mut cell.write, cur);
            let (read0, more) = cell.take_reads();
            let mut hit = None;
            if prior_write != NO_ACCESS {
                if let Some((wi, ci)) = memo.check(stack, accesses, prior_write) {
                    hit = Some((lin, RaceKind::WriteWrite, prior_write, wi, ci));
                }
            }
            if hit.is_none() {
                for r in reads_iter(read0, &more) {
                    if let Some((ri, ci)) = memo.check(stack, accesses, r) {
                        hit = Some((lin, RaceKind::ReadWrite, r, ri, ci));
                        break;
                    }
                }
            }
            if let Some(h) = hit {
                pending.push(h);
            }
        }
        pending
            .into_iter()
            .map(|(lin, kind, a, pi, ci)| self.make_race(kind, a, pi, ci, slot, lin))
            .collect()
    }

    /// Count a detected race; in fail-fast mode produce the error that
    /// aborts the run, otherwise collect (capped) and continue.
    pub(crate) fn flag(&mut self, race: RaceInfo) -> Option<crate::SimError> {
        self.total += 1;
        if self.fail_fast {
            return Some(crate::SimError::data_race(race));
        }
        if self.races.len() < REPORT_CAP {
            self.races.push(race);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn access(path: &[PathEntry]) -> Access {
        Access { path: path.into(), part: 0, span: Span::NONE }
    }

    #[test]
    fn joined_regions_are_ordered() {
        let mut d = RaceDetector::new(true);
        d.push_region(false, false);
        d.begin_iteration(3, 1);
        let rec = access(&[PathEntry { region: 0, iter: 1, clock: 0 }]);
        // Same live region, different iteration, no sync: concurrent.
        assert_eq!(d.conflict(&rec.path), Some((1, 3)));
        d.pop_region();
        d.push_region(false, false);
        d.begin_iteration(0, 0);
        // The first region joined before the second forked.
        assert_eq!(d.conflict(&rec.path), None);
    }

    #[test]
    fn cascade_edge_orders_prior_segment_only() {
        let mut d = RaceDetector::new(true);
        d.push_region(true, false);
        d.begin_iteration(1, 0);
        // Iteration 1 advances point 7 after its clock-0 segment,
        // then keeps running in segment 1.
        d.on_advance(7);
        let after_advance = access(&[PathEntry { region: 0, iter: 1, clock: 1 }]);
        let before_advance = access(&[PathEntry { region: 0, iter: 1, clock: 0 }]);
        d.begin_iteration(2, 1);
        // Without the await, both segments are concurrent with iter 2.
        assert!(d.conflict(&before_advance.path).is_some());
        d.on_await(7, 1);
        // The await orders the pre-advance segment, not the post one.
        assert_eq!(d.conflict(&before_advance.path), None);
        assert!(d.conflict(&after_advance.path).is_some());
    }

    #[test]
    fn lock_chain_orders_critical_sections() {
        let mut d = RaceDetector::new(true);
        d.push_region(false, false);
        d.begin_iteration(0, 0);
        d.on_lock(9);
        let in_cs = access(&[PathEntry { region: 0, iter: 0, clock: 0 }]);
        d.on_unlock(9);
        d.begin_iteration(5, 2);
        assert!(d.conflict(&in_cs.path).is_some(), "no lock yet: concurrent");
        d.on_lock(9);
        assert_eq!(d.conflict(&in_cs.path), None, "lock chain orders the CS");
        d.pop_region();
    }

    #[test]
    fn shadow_reports_write_write_and_read_write() {
        let mut d = RaceDetector::new(false);
        let s = SlotId(4);
        d.push_region(false, false);
        d.begin_iteration(0, 0);
        assert!(d.record_write(s, 2).is_none(), "first write races with nothing");
        d.begin_iteration(1, 1);
        let r = d.record_write(s, 2).expect("unordered second write");
        assert_eq!(r.kind, RaceKind::WriteWrite);
        assert_eq!((r.writer_iter, r.other_iter), (0, 1));
        d.begin_iteration(2, 0);
        assert!(d.record_read(s, 3).is_none(), "different element");
        d.begin_iteration(3, 1);
        let r = d.record_write(s, 3).expect("write after unordered read");
        assert_eq!(r.kind, RaceKind::ReadWrite);
        assert_eq!(r.writer_iter, 3);
    }

    #[test]
    fn serial_context_is_never_racy() {
        let mut d = RaceDetector::new(true);
        let s = SlotId(0);
        assert!(d.record_write(s, 0).is_none());
        assert!(d.record_write(s, 0).is_none());
        assert!(d.record_read(s, 0).is_none());
    }
}
