//! Cross-backend comparator: every emission backend must compute the
//! same answers.
//!
//! For one input program the comparator runs the restructurer once,
//! emits the result through every [`BackendKind`], re-parses each
//! emission through the front end (an emission that does not re-parse is
//! already a failure), simulates it, and compares watched memory
//! cell-for-cell against the re-parsed **serial** emission — the
//! directive-free reference. The serial reference itself is compared
//! against a direct simulation of the input program, so a serial backend
//! that mangles semantics cannot silently become the yardstick.
//!
//! Comparison regime: reduction loops merge per-participant partials,
//! and the participant count differs per backend (a Cedar `CDOALL` uses
//! one cluster's CEs, the OpenMP re-lowering an `XDOALL` uses all of
//! them), so floating-point results legally differ by reassociation.
//! Watched cells therefore compare under a relative tolerance, like
//! [`crate::restructure_validated`]'s perturbed schedules; bit equality
//! is recorded when it happens (`bit_identical`) because reduction-free
//! programs must achieve it.

use crate::{first_bit_diff, first_diff, CellDiff, Snapshot};
use cedar_ir::Program;
use cedar_restructure::{BackendKind, EmitInput, PassConfig};
use cedar_sim::MachineConfig;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// What one backend's emission did when re-parsed and executed.
#[derive(Debug, Clone)]
pub enum BackendOutcome {
    /// Watched memory agreed with the serial reference within tolerance.
    Agrees {
        /// Every watched cell matched the reference bit for bit.
        bit_identical: bool,
        /// Largest relative error across watched cells.
        max_rel_err: f64,
    },
    /// The emission failed to re-parse or re-lower.
    ParseError(String),
    /// The re-parsed program failed to simulate.
    SimError(String),
    /// Results disagreed beyond tolerance; carries the first bad cell.
    Divergence(CellDiff),
}

impl BackendOutcome {
    /// Did this backend agree with the reference?
    pub fn is_agreement(&self) -> bool {
        matches!(self, BackendOutcome::Agrees { .. })
    }
}

impl fmt::Display for BackendOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BackendOutcome::Agrees { bit_identical: true, .. } => {
                write!(f, "agrees (bit-identical)")
            }
            BackendOutcome::Agrees { max_rel_err, .. } => {
                write!(f, "agrees (max rel err {max_rel_err:.2e})")
            }
            BackendOutcome::ParseError(e) => write!(f, "emission does not re-parse: {e}"),
            BackendOutcome::SimError(e) => write!(f, "re-parsed emission failed: {e}"),
            BackendOutcome::Divergence(d) => write!(f, "diverges at {d}"),
        }
    }
}

/// One backend's leg of the comparison.
#[derive(Debug, Clone)]
pub struct BackendRun {
    /// Which backend.
    pub backend: BackendKind,
    /// The emitted source text (what a divergence bundle ships).
    pub emission: String,
    /// Simulated cycles of the re-parsed emission, when it ran.
    pub cycles: Option<f64>,
    /// Agreement verdict against the serial reference.
    pub outcome: BackendOutcome,
}

/// The full cross-backend verdict for one input program.
#[derive(Debug, Clone)]
pub struct BackendComparison {
    /// One entry per [`BackendKind`], in canonical order.
    pub runs: Vec<BackendRun>,
}

impl BackendComparison {
    /// True when every backend agreed with the serial reference.
    pub fn agree(&self) -> bool {
        self.runs.iter().all(|r| r.outcome.is_agreement())
    }

    /// The first disagreeing backend, if any.
    pub fn first_failure(&self) -> Option<&BackendRun> {
        self.runs.iter().find(|r| !r.outcome.is_agreement())
    }

    /// The run for one backend (all backends are always present).
    pub fn run(&self, kind: BackendKind) -> &BackendRun {
        self.runs
            .iter()
            .find(|r| r.backend == kind)
            .expect("comparison covers every backend")
    }
}

impl fmt::Display for BackendComparison {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in &self.runs {
            writeln!(f, "  {:<7} {}", r.backend.name(), r.outcome)?;
        }
        Ok(())
    }
}

fn failure(backend: BackendKind, emission: String, outcome: BackendOutcome) -> BackendRun {
    BackendRun { backend, emission, cycles: None, outcome }
}

/// Simulate `p` on `mc` and snapshot the watch variables.
fn run_watch(
    p: &Program,
    mc: &MachineConfig,
    watch: &[&str],
) -> Result<(Snapshot, f64), String> {
    let sim = catch_unwind(AssertUnwindSafe(|| cedar_sim::run(p, mc.clone())))
        .map_err(|p| format!("panic: {}", cedar_par::panic_message(p.as_ref())))?
        .map_err(|e| e.to_string())?;
    let snap = watch
        .iter()
        .filter_map(|w| sim.read_f64(w).map(|v| (w.to_string(), v)))
        .collect();
    Ok((snap, sim.cycles()))
}

/// Judge a snapshot against the reference under `rel_tol`.
fn verdict(reference: &Snapshot, got: &Snapshot, rel_tol: f64) -> BackendOutcome {
    if let Some(diff) = first_diff(reference, got, rel_tol) {
        return BackendOutcome::Divergence(diff);
    }
    let bit_identical = first_bit_diff(reference, got).is_none();
    let max_rel_err = reference
        .iter()
        .zip(got)
        .flat_map(|((_, a), (_, b))| a.iter().zip(b))
        .map(|(s, p)| (s - p).abs() / s.abs().max(1.0))
        .fold(0.0f64, f64::max);
    BackendOutcome::Agrees { bit_identical, max_rel_err }
}

/// Restructure `original` once, emit through every backend, re-parse and
/// simulate each emission, and compare watched memory against the serial
/// reference under `rel_tol`.
///
/// Never panics on backend misbehaviour: emission panics, re-parse
/// failures and simulator faults all land in the corresponding run's
/// [`BackendOutcome`], so a fuzzing campaign can bundle them.
pub fn compare_backends(
    original: &Program,
    cfg: &PassConfig,
    mc: &MachineConfig,
    watch: &[&str],
    rel_tol: f64,
) -> Result<BackendComparison, String> {
    let rr = catch_unwind(AssertUnwindSafe(|| cedar_restructure::restructure(original, cfg)))
        .map_err(|p| {
            format!("restructure panicked: {}", cedar_par::panic_message(p.as_ref()))
        })?;
    let input = EmitInput {
        original,
        restructured: &rr.program,
        report: &rr.report,
    };

    // The input program's own simulation anchors the serial reference.
    let (anchor, _) = run_watch(original, mc, watch)
        .map_err(|e| format!("input program failed to simulate: {e}"))?;

    let mut runs = Vec::with_capacity(BackendKind::all().len());
    let mut reference: Option<Snapshot> = None;

    // Serial first: every later backend compares against its snapshot.
    let mut kinds = BackendKind::all().to_vec();
    kinds.sort_by_key(|k| *k != BackendKind::Serial);

    for kind in kinds {
        let emission =
            match catch_unwind(AssertUnwindSafe(|| kind.backend().emit(&input))) {
                Ok(t) => t,
                Err(p) => {
                    runs.push(failure(
                        kind,
                        String::new(),
                        BackendOutcome::ParseError(format!(
                            "emitter panicked: {}",
                            cedar_par::panic_message(p.as_ref())
                        )),
                    ));
                    continue;
                }
            };
        let reparsed = match cedar_ir::compile_source(&emission) {
            Ok(p) => p,
            Err(e) => {
                runs.push(failure(kind, emission, BackendOutcome::ParseError(e.to_string())));
                continue;
            }
        };
        let (snap, cycles) = match run_watch(&reparsed, mc, watch) {
            Ok(r) => r,
            Err(e) => {
                runs.push(failure(kind, emission, BackendOutcome::SimError(e)));
                continue;
            }
        };
        let outcome = match &reference {
            // The serial emission is judged against the input program's
            // direct simulation; everything else against the serial
            // emission.
            None => verdict(&anchor, &snap, rel_tol),
            Some(reference) => verdict(reference, &snap, rel_tol),
        };
        if kind == BackendKind::Serial && outcome.is_agreement() {
            reference = Some(snap);
        }
        runs.push(BackendRun { backend: kind, emission, cycles: Some(cycles), outcome });
    }

    // Restore canonical order for stable reporting.
    runs.sort_by_key(|r| BackendKind::all().iter().position(|k| *k == r.backend));
    Ok(BackendComparison { runs })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn compare_src(src: &str, cfg: &PassConfig) -> BackendComparison {
        let p = cedar_ir::compile_free(src).unwrap();
        compare_backends(
            &p,
            cfg,
            &MachineConfig::cedar_config1_scaled(),
            &["chk"],
            1e-9,
        )
        .unwrap()
    }

    #[test]
    fn backends_agree_on_a_doall_program() {
        let c = compare_src(
            "program main\nparameter (n = 64)\nreal a(n), b(n)\nchk = 0.0\n\
             do i = 1, n\nb(i) = real(i)\nend do\n\
             do i = 1, n\na(i) = b(i) * 2.0\nend do\n\
             do i = 1, n\nchk = chk + a(i)\nend do\nend\n",
            &PassConfig::automatic_1991(),
        );
        assert!(c.agree(), "{c}");
        assert_eq!(c.runs.len(), 3);
        assert_eq!(c.runs[0].backend, BackendKind::Cedar);
    }

    #[test]
    fn comparator_reports_all_three_backends_with_cycles() {
        let c = compare_src(
            "program main\nparameter (n = 32)\nreal a(n)\nchk = 0.0\n\
             do i = 1, n\na(i) = real(i)\nend do\n\
             do i = 1, n\nchk = chk + a(i)\nend do\nend\n",
            &PassConfig::automatic_1991(),
        );
        for r in &c.runs {
            assert!(r.cycles.is_some(), "{}: {}", r.backend, r.outcome);
        }
        // Parallel emissions should actually be faster than serial when
        // the reduction parallelized; at minimum they must have run.
        assert!(c.run(BackendKind::Serial).outcome.is_agreement());
    }

    #[test]
    fn hand_written_directives_survive_comparison() {
        let c = compare_src(
            "program main\nparameter (n = 48)\nreal a(n)\nchk = 0.0\n\
             cdoall i = 1, n\na(i) = real(i) * 0.5\nend cdoall\n\
             do i = 1, n\nchk = chk + a(i)\nend do\nend\n",
            &PassConfig::manual_improved(),
        );
        assert!(c.agree(), "{c}");
    }
}
