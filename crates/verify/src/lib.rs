#![warn(missing_docs)]
//! Differential validation of restructured programs, with graceful
//! degradation to serial form.
//!
//! The restructurer ([`cedar_restructure`]) is supposed to preserve
//! semantics; this crate *checks* that claim dynamically instead of
//! trusting it. [`restructure_validated`] runs the restructured program
//! against the serial original and then re-runs it under K **seeded
//! schedule perturbations** ([`cedar_sim::fault`]): clock jitter,
//! randomized self-scheduling tie-breaks, delayed `advance` delivery,
//! and memory-latency noise. A legally restructured program is
//! insensitive to all of these — any divergence, runtime fault, or
//! watchdog-detected deadlock is evidence of an illegal transform.
//!
//! On failure the validator does not give up: it reverts the implicated
//! loop nest to its serial form (via `PassConfig::suppress_nests`),
//! re-restructures, and tries again — so the output program is always
//! runnable, merely less parallel, and every downgrade is recorded both
//! in the [`ValidationReport`] and in the restructurer's own
//! [`Report`](cedar_restructure::Report) fallback list.
//!
//! Bit-exactness caveat: perturbed schedules change which participant
//! executes which iterations. For reduction loops the per-participant
//! partial sums then accumulate different subsets, and merging them —
//! even in fixed participant order — reassociates floating-point
//! addition. Reduction-free nests are bit-identical across legal
//! perturbations (the property tested in `tests/prop_schedules.rs`);
//! nests with reductions are compared under [`ValidationConfig::rel_tol`].

pub mod comparator;

pub use comparator::{compare_backends, BackendComparison, BackendOutcome, BackendRun};

use cedar_ir::{Program, Stmt};
use cedar_restructure::{restructure, LoopDecision, PassConfig, Report};
use cedar_sim::{CompiledProgram, Engine, FaultConfig, MachineConfig, RaceInfo, SimError};
use std::fmt;
use std::sync::Arc;

/// How hard to shake the program.
#[derive(Debug, Clone)]
pub struct ValidationConfig {
    /// Perturbation seeds; one full run per seed.
    pub seeds: Vec<u64>,
    /// Relative tolerance when comparing watched results (reductions
    /// reassociate under perturbed schedules, so exact equality is only
    /// expected of reduction-free nests).
    pub rel_tol: f64,
    /// Maximum nests to revert to serial before degrading the whole
    /// program.
    pub max_fallbacks: usize,
    /// Probability of dropping `advance` signals (chaos knob). Zero for
    /// real validation; nonzero deliberately breaks DOACROSS cascades
    /// to exercise the deadlock-watchdog fallback path.
    pub drop_advance: f64,
    /// Run the happens-before race detector over the candidate (third
    /// validation layer): a race fails the candidate even when its
    /// results happen to match, because the serial host order of the
    /// simulator can mask what a real machine would interleave.
    pub detect_races: bool,
}

impl Default for ValidationConfig {
    fn default() -> ValidationConfig {
        ValidationConfig {
            seeds: (1..=8).collect(),
            rel_tol: 1e-3,
            max_fallbacks: 8,
            drop_advance: 0.0,
            detect_races: true,
        }
    }
}

impl ValidationConfig {
    /// The fault profile used for seed `s`.
    fn profile(&self, s: u64) -> FaultConfig {
        if self.drop_advance > 0.0 {
            FaultConfig::with_drops(s, self.drop_advance)
        } else {
            FaultConfig::legal(s)
        }
    }
}

/// One perturbed run of the accepted program.
#[derive(Debug, Clone)]
pub struct SeedRun {
    /// Perturbation seed.
    pub seed: u64,
    /// Simulated cycles under this schedule.
    pub cycles: f64,
    /// Watched results matched the unperturbed run bit for bit.
    pub bit_identical: bool,
    /// Largest relative deviation from the unperturbed run.
    pub max_rel_err: f64,
}

/// A memory snapshot of watched variables: `(name, flattened values)`.
/// Arrays are flattened column-major, scalars are one element — the
/// shape [`cedar_sim::Simulator::read_f64`] returns.
pub type Snapshot = Vec<(String, Vec<f64>)>;

/// The first memory cell where two runs disagree: which variable, which
/// flattened element, and both values. This is what a failure bundle
/// needs to be actionable — a bare "mismatch" flag forces whoever
/// triages the bundle to re-run both sides by hand.
#[derive(Debug, Clone, PartialEq)]
pub struct CellDiff {
    /// Watched variable name.
    pub var: String,
    /// Flattened (column-major) element index; 0 for scalars.
    pub index: usize,
    /// Value the serial reference computed.
    pub serial: f64,
    /// Value the candidate (restructured/parallel) run computed.
    pub parallel: f64,
    /// Relative error between the two, `|s - p| / max(|s|, 1)`.
    pub rel_err: f64,
}

impl fmt::Display for CellDiff {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "`{}({})`: serial {:e} vs parallel {:e} (rel err {:.2e})",
            self.var, self.index, self.serial, self.parallel, self.rel_err
        )
    }
}

fn rel_err(s: f64, p: f64) -> f64 {
    if s.to_bits() == p.to_bits() {
        return 0.0;
    }
    let e = (s - p).abs() / s.abs().max(1.0);
    if e.is_nan() {
        f64::INFINITY
    } else {
        e
    }
}

/// The first cell whose relative error exceeds `rel_tol`, scanning
/// variables and elements in order. A variable missing from `parallel`
/// or a length mismatch reports the first uncomparable cell with the
/// absent side as NaN and infinite error.
pub fn first_diff(serial: &Snapshot, parallel: &Snapshot, rel_tol: f64) -> Option<CellDiff> {
    scan_diff(serial, parallel, |s, p| rel_err(s, p) > rel_tol)
}

/// The first cell that differs in bit pattern (the strict form of
/// [`first_diff`]: legal transforms of reduction-free programs must be
/// bit-identical under the deterministic simulator).
pub fn first_bit_diff(serial: &Snapshot, parallel: &Snapshot) -> Option<CellDiff> {
    scan_diff(serial, parallel, |s, p| s.to_bits() != p.to_bits())
}

fn scan_diff(
    serial: &Snapshot,
    parallel: &Snapshot,
    differs: impl Fn(f64, f64) -> bool,
) -> Option<CellDiff> {
    for (name, sv) in serial {
        let Some((_, pv)) = parallel.iter().find(|(n, _)| n == name) else {
            return Some(CellDiff {
                var: name.clone(),
                index: 0,
                serial: sv.first().copied().unwrap_or(f64::NAN),
                parallel: f64::NAN,
                rel_err: f64::INFINITY,
            });
        };
        for k in 0..sv.len().max(pv.len()) {
            let (s, p) = (
                sv.get(k).copied().unwrap_or(f64::NAN),
                pv.get(k).copied().unwrap_or(f64::NAN),
            );
            if sv.get(k).is_none() || pv.get(k).is_none() || differs(s, p) {
                return Some(CellDiff {
                    var: name.clone(),
                    index: k,
                    serial: s,
                    parallel: p,
                    rel_err: rel_err(s, p),
                });
            }
        }
    }
    None
}

/// One nest the validator reverted to serial.
#[derive(Debug, Clone)]
pub struct FallbackNote {
    /// Enclosing unit name.
    pub unit: String,
    /// Loop header line.
    pub line: u32,
    /// The failure that triggered the downgrade.
    pub reason: String,
    /// First differing memory cell, when the failure was a divergence
    /// (simulator faults and races have no cell to point at).
    pub diff: Option<CellDiff>,
}

/// What validation did and found.
#[derive(Debug, Clone, Default)]
pub struct ValidationReport {
    /// Restructure→check rounds executed (1 = accepted first try).
    pub attempts: usize,
    /// Nests reverted to serial, in downgrade order.
    pub fallbacks: Vec<FallbackNote>,
    /// Per-seed runs of the accepted program.
    pub seed_runs: Vec<SeedRun>,
    /// All parallelism was abandoned (every nest suppression exhausted
    /// or the fallback budget ran out).
    pub degraded_to_serial: bool,
}

impl ValidationReport {
    /// True when every seed run matched bit for bit.
    pub fn all_bit_identical(&self) -> bool {
        self.seed_runs.iter().all(|r| r.bit_identical)
    }
}

impl fmt::Display for ValidationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "validation: {} attempt(s), {} seed run(s), {} fallback(s){}",
            self.attempts,
            self.seed_runs.len(),
            self.fallbacks.len(),
            if self.degraded_to_serial { " [degraded to serial]" } else { "" },
        )?;
        for fb in &self.fallbacks {
            writeln!(f, "  fallback [{}:line {}]: {}", fb.unit, fb.line, fb.reason)?;
        }
        for r in &self.seed_runs {
            writeln!(
                f,
                "  seed {}: {:.0} cycles, {}",
                r.seed,
                r.cycles,
                if r.bit_identical {
                    "bit-identical".to_string()
                } else {
                    format!("max rel err {:.2e}", r.max_rel_err)
                }
            )?;
        }
        Ok(())
    }
}

/// A restructured program that survived differential validation.
#[derive(Debug, Clone)]
pub struct Validated {
    /// The accepted (possibly partially degraded) program.
    pub program: Program,
    /// The restructurer's decision log for the accepted configuration,
    /// including its `fallbacks` records.
    pub report: Report,
    /// What validation observed.
    pub validation: ValidationReport,
}

/// Why a candidate program was rejected.
enum Failure {
    /// A run died with a structured error (deadlock, out-of-bounds, ...).
    Sim { seed: Option<u64>, err: SimError },
    /// A run completed but computed different results; carries the
    /// first differing memory cell.
    Divergence { seed: Option<u64>, diff: CellDiff, max_rel_err: f64 },
    /// The happens-before detector found unordered conflicting accesses.
    Race { info: Box<RaceInfo> },
}

impl fmt::Display for Failure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let seed = |s: &Option<u64>| match s {
            Some(s) => format!("perturbed run (seed {s})"),
            None => "unperturbed run".to_string(),
        };
        match self {
            Failure::Sim { seed: s, err } => write!(f, "{} failed: {}", seed(s), err),
            Failure::Divergence { seed: s, diff, max_rel_err } => write!(
                f,
                "{} diverged at {diff}, max rel err {max_rel_err:.2e}",
                seed(s)
            ),
            Failure::Race { info } => write!(f, "race detector: {info}"),
        }
    }
}

impl Failure {
    /// Source line implicated by the failure, when known.
    fn line(&self) -> Option<u32> {
        match self {
            Failure::Sim { err, .. } if err.span.line > 0 => Some(err.span.line),
            Failure::Race { info } => {
                // Both racing statements sit under the offending nest's
                // header; either line locates it.
                [info.other_span.line, info.writer_span.line]
                    .into_iter()
                    .find(|&l| l > 0)
            }
            _ => None,
        }
    }

    /// First differing memory cell, for divergence failures.
    fn diff(&self) -> Option<CellDiff> {
        match self {
            Failure::Divergence { diff, .. } => Some(diff.clone()),
            _ => None,
        }
    }
}

/// Watched results of one run.
type Watched = Vec<(String, Vec<f64>)>;

fn run_watched(
    program: &Program,
    mc: &MachineConfig,
    faults: Option<FaultConfig>,
    watch: &[&str],
    artifact: Option<&Arc<CompiledProgram>>,
) -> Result<(Watched, f64), SimError> {
    let mut sim = match artifact {
        // Compile-once/run-many: the K-seed sweep shares one immutable
        // bytecode artifact instead of re-lowering the program per run.
        Some(a) => cedar_sim::Simulator::with_artifact(program, mc.clone(), Arc::clone(a))?,
        None => cedar_sim::Simulator::new(program, mc.clone())?,
    };
    if let Some(f) = faults {
        sim.set_faults(f);
    }
    sim.run_main()?;
    let results = watch
        .iter()
        .filter_map(|w| sim.read_f64(w).map(|v| (w.to_string(), v)))
        .collect();
    Ok((results, sim.cycles()))
}

/// Compare two watched-result sets; returns `(bit_identical,
/// max_rel_err, first_cell_beyond_tol)`.
fn compare(a: &Watched, b: &Watched, rel_tol: f64) -> (bool, f64, Option<CellDiff>) {
    let mut max_err = 0.0f64;
    let mut bitwise = true;
    for ((_, va), (_, vb)) in a.iter().zip(b) {
        if va.len() != vb.len() {
            return (false, f64::INFINITY, first_diff(a, b, rel_tol));
        }
        for (x, y) in va.iter().zip(vb) {
            if x.to_bits() != y.to_bits() {
                bitwise = false;
            }
            max_err = max_err.max(rel_err(*x, *y));
        }
    }
    let diff = if max_err > rel_tol { first_diff(a, b, rel_tol) } else { None };
    (bitwise, max_err, diff)
}

/// Check one candidate program: unperturbed against the serial
/// reference, then every seed against the unperturbed candidate.
fn check(
    candidate: &Program,
    mc: &MachineConfig,
    watch: &[&str],
    vcfg: &ValidationConfig,
    reference: &Watched,
) -> Result<Vec<SeedRun>, Failure> {
    // One lowering of the candidate serves the base run, the race run,
    // and every perturbed seed (compile is pure: config-independent).
    let artifact = (mc.engine == Engine::Vm).then(|| cedar_sim::compile(candidate));
    let artifact = artifact.as_ref();

    // Base run + third layer in one simulation: the happens-before
    // detector (collect-all mode, unperturbed schedule) charges zero
    // cycles and never perturbs results, so the race-collecting run
    // doubles as the base run. The simulator executes iterations in
    // host order, so a racy nest can produce matching results yet
    // still be wrong on a real machine — the detector catches exactly
    // that, while the divergence check below (reported first, as a
    // more direct failure) uses the same run's outputs.
    let (base, first_race) = if vcfg.detect_races {
        let traced = match artifact {
            Some(a) => cedar_sim::run_collecting_races_precompiled(candidate, mc.clone(), a),
            None => cedar_sim::run_collecting_races(candidate, mc.clone()),
        }
        .map_err(|err| Failure::Sim { seed: None, err })?;
        let base: Watched = watch
            .iter()
            .filter_map(|w| traced.read_f64(w).map(|v| (w.to_string(), v)))
            .collect();
        (base, traced.race_report().first().cloned())
    } else {
        let (base, _) = run_watched(candidate, mc, None, watch, artifact)
            .map_err(|err| Failure::Sim { seed: None, err })?;
        (base, None)
    };
    let (_, max_rel_err, diff) = compare(reference, &base, vcfg.rel_tol);
    if let Some(diff) = diff {
        return Err(Failure::Divergence { seed: None, diff, max_rel_err });
    }
    if let Some(first) = first_race {
        return Err(Failure::Race { info: Box::new(first) });
    }

    // Each perturbed schedule is an independent simulation; results
    // come back in seed order, so collecting into `Result` still
    // reports the first failing seed, exactly as the serial loop did.
    cedar_par::par_map(vcfg.seeds.clone(), |s| {
        let (got, cycles) = run_watched(candidate, mc, Some(vcfg.profile(s)), watch, artifact)
            .map_err(|err| Failure::Sim { seed: Some(s), err })?;
        let (bit_identical, max_rel_err, diff) = compare(&base, &got, vcfg.rel_tol);
        if let Some(diff) = diff {
            return Err(Failure::Divergence { seed: Some(s), diff, max_rel_err });
        }
        Ok(SeedRun { seed: s, cycles, bit_identical, max_rel_err })
    })
    .into_iter()
    .collect()
}

/// Parallel nest headers `(unit, line)` eligible for suppression: the
/// report's parallelized loops in visit order, plus any user-directive
/// parallel loops still present in the candidate program (hand-written
/// Cedar Fortran the restructurer passed through — the report does not
/// list those, but the validator must be able to demote them too).
fn parallel_nests(report: &Report, candidate: &Program) -> Vec<(String, u32)> {
    let mut out: Vec<(String, u32)> = report
        .loops
        .iter()
        .filter(|l| !matches!(l.decision, LoopDecision::Serial { .. }))
        .map(|l| (l.unit.clone(), l.span.line))
        .collect();
    for unit in &candidate.units {
        collect_directive_loops(&unit.name, &unit.body, &mut out);
    }
    out
}

/// Append headers of parallel loops found in `body` (recursively) that
/// are not yet listed.
fn collect_directive_loops(unit: &str, body: &[Stmt], out: &mut Vec<(String, u32)>) {
    for s in body {
        match s {
            Stmt::Loop(l) => {
                if l.class.is_parallel() {
                    let key = (unit.to_string(), l.span.line);
                    if !out.contains(&key) {
                        out.push(key);
                    }
                }
                collect_directive_loops(unit, &l.body, out);
            }
            Stmt::If { then_body, elifs, else_body, .. } => {
                collect_directive_loops(unit, then_body, out);
                for (_, b) in elifs {
                    collect_directive_loops(unit, b, out);
                }
                collect_directive_loops(unit, else_body, out);
            }
            Stmt::DoWhile { body, .. } => collect_directive_loops(unit, body, out),
            _ => {}
        }
    }
}

/// Pick the nest to revert for a failure: the parallelized nest whose
/// header is closest above the failing line, else the first candidate
/// (greedy — the loop keeps reverting until validation passes).
fn pick_nest(candidates: &[(String, u32)], failure: &Failure) -> (String, u32) {
    if let Some(line) = failure.line() {
        if let Some(best) = candidates
            .iter()
            .filter(|(_, l)| *l <= line)
            .max_by_key(|(_, l)| *l)
        {
            return best.clone();
        }
    }
    candidates[0].clone()
}

/// Restructure `program` under `cfg` and differentially validate the
/// result across perturbed schedules, reverting nests to serial until
/// the program validates. Fails only when the *serial reference itself*
/// cannot run — a broken input program, not a broken transform.
pub fn restructure_validated(
    program: &Program,
    cfg: &PassConfig,
    mc: &MachineConfig,
    watch: &[&str],
    vcfg: &ValidationConfig,
) -> Result<Validated, SimError> {
    // The serial reference is engine-independent (the vm_identity suite
    // gates bit-identical watched values between engines), so always
    // take it on the tree-walker: the VM pays per-iteration dispatch
    // overhead on serial scalar loop nests that the tree-walker does
    // not, and the reference is the one run the candidate's compiled
    // artifact can never amortize.
    let ref_mc = mc.clone().with_engine(Engine::Interp);
    let (reference, _) = run_watched(program, &ref_mc, None, watch, None)?;

    let mut cfg = cfg.clone();
    let mut fallbacks: Vec<FallbackNote> = Vec::new();
    let mut attempts = 0;
    loop {
        attempts += 1;
        let rr = restructure(program, &cfg);
        match check(&rr.program, mc, watch, vcfg, &reference) {
            Ok(seed_runs) => {
                return Ok(Validated {
                    program: rr.program,
                    report: rr.report,
                    validation: ValidationReport {
                        attempts,
                        fallbacks,
                        seed_runs,
                        degraded_to_serial: false,
                    },
                })
            }
            Err(failure) => {
                let suppressed = &cfg.suppress_nests;
                let candidates: Vec<(String, u32)> = parallel_nests(&rr.report, &rr.program)
                    .into_iter()
                    .filter(|c| !suppressed.contains(c))
                    .collect();
                if candidates.is_empty() || fallbacks.len() >= vcfg.max_fallbacks {
                    // Out of suspects (or budget): abandon all
                    // parallelism. The serial identity always validates
                    // — perturbations only reorder parallel schedules.
                    // Hand-written directive nests survive a plain
                    // serial pass, so suppress every known parallel
                    // nest explicitly.
                    let mut serial_cfg = PassConfig::serial();
                    serial_cfg.suppress_nests =
                        candidates.iter().chain(suppressed.iter()).cloned().collect();
                    let rr = restructure(program, &serial_cfg);
                    let mut report = rr.report;
                    report.record_fallback(
                        "<program>",
                        cedar_ir::Span::NONE,
                        format!("degraded to fully serial: {failure}"),
                    );
                    fallbacks.push(FallbackNote {
                        unit: "<program>".into(),
                        line: 0,
                        reason: format!("degraded to fully serial: {failure}"),
                        diff: failure.diff(),
                    });
                    let seed_runs =
                        check(&rr.program, mc, watch, vcfg, &reference).unwrap_or_default();
                    return Ok(Validated {
                        program: rr.program,
                        report,
                        validation: ValidationReport {
                            attempts,
                            fallbacks,
                            seed_runs,
                            degraded_to_serial: true,
                        },
                    });
                }
                let (unit, line) = pick_nest(&candidates, &failure);
                fallbacks.push(FallbackNote {
                    unit: unit.clone(),
                    line,
                    reason: failure.to_string(),
                    diff: failure.diff(),
                });
                cfg.suppress_nests.push((unit, line));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cedar_ir::compile_free;

    fn doall_src() -> &'static str {
        // Reduction-free, trivially parallelizable.
        "program p\nparameter (n = 256)\nreal a(n), b(n)\ndo i = 1, n\n\
         b(i) = i * 1.0\nend do\ndo i = 1, n\na(i) = sqrt(b(i)) + b(i)\nend do\n\
         x = a(100)\ny = a(7)\nend\n"
    }

    fn doacross_src() -> &'static str {
        // Distance-1 recurrence behind enough independent work that the
        // profitability model accepts a DOACROSS cascade (the sync
        // region must be a small fraction of the body).
        "program p\nparameter (n = 96)\nreal a(n), b(n), c(n)\ndo i = 1, n\n\
         b(i) = i * 1.0\nc(i) = i * 0.5\nend do\na(1) = 1.0\ndo i = 2, n\n\
         t = sqrt(b(i)) + sqrt(c(i)) + sin(b(i)) * cos(c(i)) + exp(c(i) * 0.01)\n\
         a(i) = a(i - 1) * 0.5 + t\nend do\nx = a(n)\nend\n"
    }

    #[test]
    fn clean_doall_validates_bit_identically() {
        let p = compile_free(doall_src()).unwrap();
        let vcfg = ValidationConfig { seeds: vec![1, 2, 3, 4], ..Default::default() };
        let v = restructure_validated(
            &p,
            &PassConfig::automatic_1991(),
            &MachineConfig::cedar_config1_scaled(),
            &["x", "y"],
            &vcfg,
        )
        .unwrap();
        assert!(v.validation.fallbacks.is_empty(), "{}", v.validation);
        assert_eq!(v.validation.attempts, 1);
        assert_eq!(v.validation.seed_runs.len(), 4);
        assert!(
            v.validation.all_bit_identical(),
            "reduction-free nest must be schedule-insensitive:\n{}",
            v.validation
        );
    }

    #[test]
    fn clean_doacross_validates() {
        let p = compile_free(doacross_src()).unwrap();
        let v = restructure_validated(
            &p,
            &PassConfig::automatic_1991(),
            &MachineConfig::cedar_config1_scaled(),
            &["x"],
            &ValidationConfig { seeds: vec![1, 2, 3], ..Default::default() },
        )
        .unwrap();
        assert!(v.validation.fallbacks.is_empty(), "{}", v.validation);
        assert!(v.validation.all_bit_identical(), "{}", v.validation);
    }

    #[test]
    fn racy_directive_nest_is_demoted_with_a_cited_race() {
        // Hand-written Cedar Fortran with a classic bug: a shared
        // scalar temporary in a CDOALL. Host-order execution computes
        // the right answer, so only the race detector can reject it —
        // and the validator must then demote the directive nest.
        let src = "program p\nparameter (n = 64)\nreal a(n), t\n\
                   do i = 1, n\na(i) = real(i)\nend do\n\
                   cdoall i = 1, n\nt = a(i) * 2.0\na(i) = t + 1.0\nend cdoall\n\
                   x = a(n)\nend\n";
        let p = compile_free(src).unwrap();
        let v = restructure_validated(
            &p,
            &PassConfig::automatic_1991(),
            &MachineConfig::cedar_config1_scaled(),
            &["x"],
            &ValidationConfig { seeds: vec![1, 2], ..Default::default() },
        )
        .unwrap();
        assert!(!v.validation.fallbacks.is_empty(), "{}", v.validation);
        let note = &v.validation.fallbacks[0];
        assert!(note.reason.contains("race detector"), "{}", note.reason);
        assert!(note.reason.contains("`t`"), "race must cite the variable: {}", note.reason);
        assert!(
            note.reason.contains("conflicts with"),
            "race must cite the statement pair: {}",
            note.reason
        );
        // The demoted program is race-free and still correct.
        let traced = cedar_sim::run_collecting_races(
            &v.program,
            MachineConfig::cedar_config1_scaled(),
        )
        .unwrap();
        assert_eq!(traced.races_detected(), 0);
        assert!(!v.validation.degraded_to_serial, "one nest demotion suffices:\n{}", v.validation);
    }

    #[test]
    fn racy_directive_nest_is_demoted_even_in_pass_through() {
        // Same racy directive program, but under a `parallelize = false`
        // base config: the restructurer's pass-through path must still
        // honor nest suppression, or the validator could never converge
        // on hand-written Cedar Fortran it merely audits.
        let src = "program p\nparameter (n = 32)\nreal a(n), t\n\
                   do i = 1, n\na(i) = real(i)\nend do\n\
                   cdoall i = 1, n\nt = a(i) * 2.0\na(i) = t + 1.0\nend cdoall\n\
                   x = a(5)\nend\n";
        let p = compile_free(src).unwrap();
        let v = restructure_validated(
            &p,
            &PassConfig::serial(),
            &MachineConfig::cedar_config1_scaled(),
            &["a", "x"],
            &ValidationConfig { seeds: vec![1, 2], ..Default::default() },
        )
        .unwrap();
        assert!(!v.validation.fallbacks.is_empty(), "{}", v.validation);
        assert!(v.validation.fallbacks[0].reason.contains("race detector"));
        let traced = cedar_sim::run_collecting_races(
            &v.program,
            MachineConfig::cedar_config1_scaled(),
        )
        .unwrap();
        assert_eq!(traced.races_detected(), 0, "demoted program must be race-free");
    }

    #[test]
    fn race_detection_can_be_disabled() {
        let src = "program p\nparameter (n = 64)\nreal a(n), t\n\
                   do i = 1, n\na(i) = real(i)\nend do\n\
                   cdoall i = 1, n\nt = a(i) * 2.0\na(i) = t + 1.0\nend cdoall\nend\n";
        let p = compile_free(src).unwrap();
        let v = restructure_validated(
            &p,
            &PassConfig::automatic_1991(),
            &MachineConfig::cedar_config1_scaled(),
            &[],
            &ValidationConfig { seeds: vec![1], detect_races: false, ..Default::default() },
        )
        .unwrap();
        // Without the third layer (and with nothing watched), the racy
        // directive nest sails through — which is exactly why the layer
        // defaults to on.
        assert!(v.validation.fallbacks.is_empty(), "{}", v.validation);
    }

    #[test]
    fn first_diff_pinpoints_the_cell() {
        let serial: Snapshot =
            vec![("a".into(), vec![1.0, 2.0, 3.0]), ("s".into(), vec![10.0])];
        let mut parallel = serial.clone();
        assert_eq!(first_diff(&serial, &parallel, 0.0), None);
        assert_eq!(first_bit_diff(&serial, &parallel), None);

        parallel[0].1[2] = 3.5;
        parallel[1].1[0] = 11.0;
        let d = first_diff(&serial, &parallel, 1e-3).expect("diff found");
        assert_eq!((d.var.as_str(), d.index), ("a", 2));
        assert_eq!((d.serial, d.parallel), (3.0, 3.5));
        assert!(d.to_string().contains("`a(2)`"), "{d}");

        // Within tolerance: the relative check passes, the bit check
        // still points at the cell.
        let mut close = serial.clone();
        close[1].1[0] = 10.0 + 1e-9;
        assert_eq!(first_diff(&serial, &close, 1e-3), None);
        let d = first_bit_diff(&serial, &close).expect("bit diff");
        assert_eq!((d.var.as_str(), d.index), ("s", 0));

        // A variable missing entirely is an infinite-error diff.
        let d = first_diff(&serial, &parallel[..1].to_vec(), 1e-3).expect("missing var");
        assert_eq!(d.var, "a"); // a(2) still differs first
        let d = first_diff(&serial[1..].to_vec(), &Vec::new(), 1e-3).expect("missing var");
        assert_eq!(d.var, "s");
        assert!(d.rel_err.is_infinite());
    }

    #[test]
    fn divergence_failure_carries_the_cell() {
        // A racy directive nest that *changes results*: partial sums
        // into a shared scalar would still agree in host order, so use
        // an order-sensitive overwrite instead. Disable race detection
        // so the divergence path (not the race path) must catch it.
        let src = "program p\nparameter (n = 64)\nreal a(n)\nt = 0.0\n\
                   cdoall i = 1, n\nt = real(i)\na(i) = t\nend cdoall\nx = t\nend\n";
        let p = compile_free(src).unwrap();
        let v = restructure_validated(
            &p,
            &PassConfig::serial(),
            &MachineConfig::cedar_config1_scaled(),
            &["x", "a"],
            &ValidationConfig { seeds: vec![1, 2, 3], detect_races: false, ..Default::default() },
        )
        .unwrap();
        // Under perturbed tie-breaks some iteration other than the last
        // can write `t` last; the validator must report the exact cell.
        if let Some(note) = v.validation.fallbacks.first() {
            let d = note.diff.as_ref().expect("divergence carries a cell diff");
            assert!(!d.var.is_empty());
            assert!(note.reason.contains("diverged at"), "{}", note.reason);
            assert!(note.reason.contains(&format!("`{}(", d.var)), "{}", note.reason);
        }
    }

    #[test]
    fn dropped_advances_force_serial_fallback() {
        let p = compile_free(doacross_src()).unwrap();
        // Dropping every advance makes any emitted DOACROSS deadlock
        // under perturbation; validation must detect it via the
        // watchdog and revert the nest rather than hang or panic.
        let vcfg = ValidationConfig {
            seeds: vec![1, 2],
            drop_advance: 1.0,
            ..Default::default()
        };
        let v = restructure_validated(
            &p,
            &PassConfig::automatic_1991(),
            &MachineConfig::cedar_config1_scaled(),
            &["x"],
            &vcfg,
        )
        .unwrap();
        assert!(
            !v.validation.fallbacks.is_empty(),
            "expected a fallback, got:\n{}",
            v.validation
        );
        assert!(
            v.validation.fallbacks[0].reason.contains("deadlock"),
            "fallback should be deadlock-triggered: {}",
            v.validation.fallbacks[0].reason
        );
        // The downgrade is visible in the restructurer's own report.
        assert!(!v.report.fallbacks.is_empty() || v.validation.degraded_to_serial);
        // And the accepted program still computes the right answer.
        let mc = MachineConfig::cedar_config1_scaled();
        let (got, _) = run_watched(&v.program, &mc, None, &["x"], None).unwrap();
        let (reference, _) = run_watched(&p, &mc, None, &["x"], None).unwrap();
        assert_eq!(got, reference);
    }
}
