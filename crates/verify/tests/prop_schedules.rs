//! Property: for **reduction-free** programs the restructurer emits
//! (DOALL and DOACROSS nests), K legally fault-injected schedules —
//! clock jitter, randomized tie-breaks, delayed advances, memory
//! jitter — compute **bit-identical** results to the unperturbed run.
//!
//! This is the dynamic core of `cedar-verify`: iterations execute in
//! index order regardless of which participant takes them, and without
//! reduction postambles no floating-point operation reassociates, so a
//! legal schedule perturbation cannot change a single output bit.
//! (Reduction loops intentionally fail this stronger property — their
//! per-participant partials depend on the iteration partition — which
//! is why the validator compares them under a tolerance instead.)

use proptest::prelude::*;

use cedar_restructure::{restructure, PassConfig};
use cedar_sim::{FaultConfig, MachineConfig};

/// Reduction-free elementwise bodies for the DOALL loop.
const EXPRS: &[&str] = &[
    "sqrt(b(i)) + c(i)",
    "b(i) * c(i) + 1.5",
    "sin(b(i) * 0.01) + c(i)",
    "b(i) / (c(i) + 1.0)",
    "abs(b(i) - c(i)) + 0.5",
];

fn source(n: usize, expr: &str, with_recurrence: bool) -> String {
    let recurrence = if with_recurrence {
        // Distance-1 recurrence behind enough independent work that
        // the driver emits a DOACROSS cascade for it.
        "d(1) = 1.0\ndo i = 2, n\n\
         t = sqrt(b(i)) + sqrt(c(i)) + sin(b(i)) * cos(c(i)) + exp(c(i) * 0.001)\n\
         d(i) = d(i - 1) * 0.5 + t\nend do\nz = d(n)\n"
    } else {
        "z = 0.0\n"
    };
    format!(
        "program q\nparameter (n = {n})\nreal a(n), b(n), c(n), d(n)\n\
         do i = 1, n\nb(i) = i * 1.0\nc(i) = 2.0 + i * 0.25\nend do\n\
         do i = 1, n\na(i) = {expr}\nend do\n{recurrence}\
         x = a(1)\ny = a(n)\nend\n"
    )
}

/// Restructure, then check every seed's perturbed schedule reproduces
/// the unperturbed restructured run bit for bit.
fn check_bit_identical(src: &str, seeds: &[u64]) {
    let program = cedar_ir::compile_free(src).unwrap();
    let mc = MachineConfig::cedar_config1_scaled();
    let r = restructure(&program, &PassConfig::automatic_1991());
    assert!(
        r.report.parallelized() >= 1,
        "generated program must parallelize:\n{}",
        r.report
    );

    let base = cedar_sim::run(&r.program, mc.clone()).unwrap_or_else(|e| {
        panic!(
            "unperturbed run failed: {e}\n{}",
            cedar_ir::print::print_program(&r.program)
        )
    });
    let base_vals: Vec<Vec<f64>> = ["a", "x", "y", "z"]
        .iter()
        .map(|v| base.read_f64(v).unwrap())
        .collect();

    for &s in seeds {
        let sim = cedar_sim::run_with_faults(&r.program, mc.clone(), FaultConfig::legal(s))
            .unwrap_or_else(|e| panic!("perturbed run (seed {s}) failed: {e}"));
        for (name, expect) in ["a", "x", "y", "z"].iter().zip(&base_vals) {
            let got = sim.read_f64(name).unwrap();
            assert_eq!(got.len(), expect.len());
            for (g, e) in got.iter().zip(expect) {
                assert_eq!(
                    g.to_bits(),
                    e.to_bits(),
                    "seed {s}: `{name}` diverged under a legal perturbation: {g} vs {e}"
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn doall_schedules_are_bit_identical(
        n in 32usize..200,
        expr_idx in 0usize..EXPRS.len(),
        seeds in prop::collection::vec(any::<u64>(), 3),
    ) {
        check_bit_identical(&source(n, EXPRS[expr_idx], false), &seeds);
    }

    #[test]
    fn doacross_schedules_are_bit_identical(
        n in 48usize..160,
        expr_idx in 0usize..EXPRS.len(),
        seeds in prop::collection::vec(any::<u64>(), 3),
    ) {
        check_bit_identical(&source(n, EXPRS[expr_idx], true), &seeds);
    }
}

/// Deterministic spot check with the issue's required seed count: a
/// restructured reduction-free nest stays bit-identical across 8
/// perturbation seeds.
#[test]
fn eight_seeds_bit_identical() {
    let seeds: Vec<u64> = (1..=8).collect();
    check_bit_identical(&source(128, EXPRS[0], true), &seeds);
}
