//! Deterministic jittered exponential backoff, shared by every
//! retrying client in the workspace.
//!
//! `cedar-serve`'s per-request retry ladder and `cedar-campaign`'s
//! worker lease loop both need the same thing: attempt `k` waits
//! `base · 2^(k-1)` plus a 0–50 % jitter that is a pure function of the
//! retry *label*, so two processes retrying different work desynchronize
//! while a single failing request stays exactly reproducible (the chaos
//! tests predict recovery timing from the label alone — no RNG state,
//! no host time).

use std::hash::{Hash, Hasher};
use std::time::Duration;

fn fnv(parts: &[&str]) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    for p in parts {
        p.hash(&mut h);
    }
    h.finish()
}

/// Backoff before retry `k` (k ≥ 1) of the work named `label`:
/// exponential in `base` (capped at `base · 2^4`) plus a deterministic
/// 0–50 % jitter keyed on `(label, k)`.
pub fn backoff(base: Duration, label: &str, k: usize) -> Duration {
    let exp = base.saturating_mul(1u32 << (k - 1).min(4));
    let jitter_pct = fnv(&[label, &k.to_string()]) % 50;
    exp + exp.mul_f64(jitter_pct as f64 / 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grows_exponentially_and_jitters_deterministically() {
        let base = Duration::from_millis(10);
        let a1 = backoff(base, "serve/x", 1);
        let a2 = backoff(base, "serve/x", 2);
        let a3 = backoff(base, "serve/x", 3);
        assert!(a1 >= base && a1 < base * 2, "{a1:?}");
        assert!(a2 >= base * 2 && a2 < base * 3, "{a2:?}");
        assert!(a3 >= base * 4 && a3 < base * 6, "{a3:?}");
        assert_eq!(a1, backoff(base, "serve/x", 1), "jitter is deterministic");
    }

    #[test]
    fn exponent_is_capped() {
        let base = Duration::from_millis(10);
        let deep = backoff(base, "w", 40);
        assert!(deep < base * 2 * 16 + Duration::from_millis(1), "{deep:?}");
    }

    #[test]
    fn labels_decorrelate() {
        let base = Duration::from_millis(100);
        // Not all labels may differ at every k, but across a handful of
        // labels the jitter must not collapse to one value.
        let distinct: std::collections::HashSet<Duration> = (0..8)
            .map(|i| backoff(base, &format!("worker-{i}"), 1))
            .collect();
        assert!(distinct.len() > 1, "jitter ignored the label");
    }
}
