//! Cooperative cancellation tokens with optional wall-clock deadlines.
//!
//! A [`CancelToken`] is a cheap, cloneable handle shared between a
//! supervisor and the work it supervises. The worker polls
//! [`CancelToken::expired`] at safe points (the simulator does so from
//! its statement watchdog) and unwinds with a structured error instead
//! of being killed: cancellation is *cooperative*, so no state is torn
//! mid-update and the host process never has to abort a thread.
//!
//! Tokens are deliberately state-light: an atomic flag plus an optional
//! deadline captured at construction. Cloning shares both, so every
//! simulator spawned for one experiment cell (serial reference, variant,
//! perturbed re-runs) draws down the *same* per-cell time budget.

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

#[derive(Default)]
struct Inner {
    cancelled: AtomicBool,
    deadline: Option<Instant>,
    budget: Option<Duration>,
}

/// Shared cancellation handle; see the [module docs](self).
#[derive(Clone, Default)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

impl CancelToken {
    /// A token with no deadline; expires only via [`CancelToken::cancel`].
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// A token that expires `budget` from now (or earlier, if cancelled).
    pub fn with_budget(budget: Duration) -> CancelToken {
        CancelToken {
            inner: Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                deadline: Instant::now().checked_add(budget),
                budget: Some(budget),
            }),
        }
    }

    /// Request cancellation; every clone observes it.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Release);
    }

    /// True after [`CancelToken::cancel`] was called on any clone.
    pub fn is_cancelled(&self) -> bool {
        self.inner.cancelled.load(Ordering::Acquire)
    }

    /// The wall-clock budget this token was created with, if any.
    pub fn budget(&self) -> Option<Duration> {
        self.inner.budget
    }

    /// True once the deadline has passed (false for deadline-free
    /// tokens). Does not consider explicit cancellation.
    pub fn deadline_exceeded(&self) -> bool {
        self.inner.deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// Should the supervised work stop? True when cancelled *or* past
    /// the deadline. This is the poll workers issue at safe points; it
    /// costs one atomic load plus (for deadline tokens) one clock read.
    pub fn expired(&self) -> bool {
        self.is_cancelled() || self.deadline_exceeded()
    }
}

impl fmt::Debug for CancelToken {
    /// Deliberately state-free: the token rides inside
    /// `cedar_sim::MachineConfig`, whose `Debug` form is used as a
    /// content cache key by the experiment harness — two cells that
    /// differ only in their (behaviorally irrelevant) token instants
    /// must still share cache entries.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("CancelToken(..)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_token_is_live() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        assert!(!t.deadline_exceeded());
        assert!(!t.expired());
        assert_eq!(t.budget(), None);
    }

    #[test]
    fn cancellation_is_shared_across_clones() {
        let t = CancelToken::new();
        let c = t.clone();
        c.cancel();
        assert!(t.expired() && t.is_cancelled());
        assert!(!t.deadline_exceeded(), "cancel is not a deadline");
    }

    #[test]
    fn zero_budget_expires_immediately() {
        let t = CancelToken::with_budget(Duration::ZERO);
        assert!(t.deadline_exceeded());
        assert!(t.expired());
        assert!(!t.is_cancelled());
        assert_eq!(t.budget(), Some(Duration::ZERO));
    }

    #[test]
    fn generous_budget_does_not_expire() {
        let t = CancelToken::with_budget(Duration::from_secs(3600));
        assert!(!t.expired());
    }

    #[test]
    fn debug_form_is_state_free() {
        let live = format!("{:?}", CancelToken::new());
        let dead = CancelToken::with_budget(Duration::ZERO);
        dead.cancel();
        assert_eq!(live, format!("{dead:?}"), "Debug must not leak token state");
    }
}
