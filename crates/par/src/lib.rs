#![warn(missing_docs)]
//! Scoped-thread parallel map with **deterministic, index-ordered
//! result collection** — a tiny offline stand-in for rayon used by the
//! experiment harness and the differential validator.
//!
//! Every sweep in the repo (Table 1/2 cells, Fig 6–9 curve points,
//! ablation knob settings, robustness seeds, race-matrix workloads,
//! perturbed-schedule validation runs) consists of *independent* jobs:
//! each one builds its own [`Simulator`](../cedar_sim/index.html) over
//! shared read-only inputs, and the simulator itself is fully
//! deterministic (virtual per-CE clocks, no host-time dependence). So
//! host-level parallelism cannot change any result — only the order in
//! which results *finish*. [`par_map`] removes even that freedom:
//! workers self-schedule over a shared atomic index (work stealing in
//! the Cedar paper's own sense of §2.2.1 self-scheduling loops), but
//! each result is written to the slot of its input index, so the
//! returned `Vec` is byte-for-byte the same as the serial map.
//!
//! Degrees of parallelism, in priority order:
//!
//! 1. [`with_jobs`] override (used by determinism tests),
//! 2. the `CEDAR_JOBS` environment variable (`CEDAR_JOBS=1` is the
//!    debugging escape hatch: pure serial `Iterator::map`, no threads
//!    spawned at all),
//! 3. `std::thread::available_parallelism()`.
//!
//! Nested calls run serially: a `par_map` issued from inside a worker
//! (e.g. cedar-verify's per-seed sweep under the robustness binary's
//! per-workload sweep) degrades to the serial path instead of
//! oversubscribing the host. The outermost call owns the threads.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Global override installed by [`with_jobs`]; 0 = no override.
static JOBS_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Set inside worker threads so nested `par_map` calls degrade to
    /// the serial path instead of spawning a second tier of threads.
    static IN_WORKER: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Effective worker count for the next [`par_map`] call: the
/// [`with_jobs`] override if present, else `CEDAR_JOBS`, else the
/// host's available parallelism. Always ≥ 1.
pub fn jobs() -> usize {
    let ov = JOBS_OVERRIDE.load(Ordering::Relaxed);
    if ov > 0 {
        return ov;
    }
    if let Ok(s) = std::env::var("CEDAR_JOBS") {
        if let Ok(n) = s.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// True when called from inside a `par_map` worker thread.
pub fn in_worker() -> bool {
    IN_WORKER.with(|f| f.get())
}

/// Run `f` with the worker count forced to `n`, restoring the previous
/// setting afterwards (used by the determinism tests to compare
/// `CEDAR_JOBS=1` vs `CEDAR_JOBS=N` sweeps inside one process without
/// mutating the environment).
pub fn with_jobs<R>(n: usize, f: impl FnOnce() -> R) -> R {
    assert!(n >= 1, "job count must be >= 1");
    let prev = JOBS_OVERRIDE.swap(n, Ordering::SeqCst);
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            JOBS_OVERRIDE.store(self.0, Ordering::SeqCst);
        }
    }
    let _restore = Restore(prev);
    f()
}

/// Map `f` over `items` on up to [`jobs`] scoped threads, returning
/// results in input order (slot `k` of the output is `f(items[k])`,
/// exactly as the serial `items.into_iter().map(f).collect()` would
/// produce).
///
/// Jobs are claimed dynamically from a shared atomic counter, so an
/// expensive cell (say, ADM under Config 2) does not leave the other
/// workers idle behind a static partition. Panics inside `f` propagate
/// after all workers have been joined, matching the serial path's
/// abort-the-sweep semantics for failed equivalence assertions.
pub fn par_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    let workers = jobs().min(n);
    if workers <= 1 || in_worker() {
        return items.into_iter().map(f).collect();
    }

    // Each input and each output slot gets its own mutex so workers
    // never contend except on the claim counter; `take()` moves the
    // item into the worker, and results land in index order.
    let input: Vec<Mutex<Option<T>>> =
        items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let output: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let f = &f;

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                IN_WORKER.with(|flag| flag.set(true));
                loop {
                    let k = next.fetch_add(1, Ordering::Relaxed);
                    if k >= n {
                        break;
                    }
                    let item = input[k]
                        .lock()
                        .expect("par_map input slot poisoned")
                        .take()
                        .expect("par_map slot claimed twice");
                    let r = f(item);
                    *output[k].lock().expect("par_map output slot poisoned") = Some(r);
                }
            });
        }
    });

    output
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("par_map output slot poisoned")
                .expect("par_map worker skipped a slot")
        })
        .collect()
}

/// [`par_map`] over an index range: `par_map_range(n, f)[k] == f(k)`.
pub fn par_map_range<R, F>(n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    par_map((0..n).collect(), f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn results_are_index_ordered() {
        let items: Vec<u64> = (0..100).collect();
        let serial: Vec<u64> = items.iter().map(|x| x * x).collect();
        let par = with_jobs(8, || par_map(items, |x| x * x));
        assert_eq!(par, serial);
    }

    #[test]
    fn serial_mode_spawns_no_threads() {
        // With jobs forced to 1 the map runs on the calling thread, so
        // thread-local state is visible across items.
        thread_local! {
            static SEEN: std::cell::Cell<u32> = const { std::cell::Cell::new(0) };
        }
        let out = with_jobs(1, || {
            par_map(vec![1u32, 2, 3], |x| {
                SEEN.with(|s| s.set(s.get() + x));
                SEEN.with(|s| s.get())
            })
        });
        assert_eq!(out, vec![1, 3, 6]);
    }

    #[test]
    fn nested_calls_degrade_to_serial() {
        let depth_two_workers = with_jobs(4, || {
            par_map(vec![0usize; 4], |_| {
                // Inner call must not spawn: in_worker() is set.
                assert!(in_worker());
                par_map(vec![1usize, 2, 3], |x| x).len()
            })
        });
        assert_eq!(depth_two_workers, vec![3, 3, 3, 3]);
        assert!(!in_worker(), "flag must not leak to the caller");
    }

    #[test]
    fn every_item_runs_exactly_once() {
        static CALLS: AtomicU32 = AtomicU32::new(0);
        CALLS.store(0, Ordering::SeqCst);
        let out = with_jobs(3, || {
            par_map((0..57usize).collect(), |k| {
                CALLS.fetch_add(1, Ordering::SeqCst);
                k
            })
        });
        assert_eq!(out, (0..57).collect::<Vec<_>>());
        assert_eq!(CALLS.load(Ordering::SeqCst), 57);
    }

    #[test]
    fn range_helper_matches_direct() {
        let a = par_map_range(10, |k| k * 3);
        assert_eq!(a, (0..10).map(|k| k * 3).collect::<Vec<_>>());
    }

    #[test]
    fn with_jobs_restores_on_exit() {
        let before = jobs();
        with_jobs(7, || assert_eq!(jobs(), 7));
        assert_eq!(jobs(), before);
    }
}
