#![warn(missing_docs)]
//! Scoped-thread parallel map with **deterministic, index-ordered
//! result collection** — a tiny offline stand-in for rayon used by the
//! experiment harness and the differential validator.
//!
//! Every sweep in the repo (Table 1/2 cells, Fig 6–9 curve points,
//! ablation knob settings, robustness seeds, race-matrix workloads,
//! perturbed-schedule validation runs) consists of *independent* jobs:
//! each one builds its own [`Simulator`](../cedar_sim/index.html) over
//! shared read-only inputs, and the simulator itself is fully
//! deterministic (virtual per-CE clocks, no host-time dependence). So
//! host-level parallelism cannot change any result — only the order in
//! which results *finish*. [`par_map`] removes even that freedom:
//! workers self-schedule over a shared atomic index (work stealing in
//! the Cedar paper's own sense of §2.2.1 self-scheduling loops), but
//! each result is written to the slot of its input index, so the
//! returned `Vec` is byte-for-byte the same as the serial map.
//!
//! Degrees of parallelism, in priority order:
//!
//! 1. [`with_jobs`] override (used by determinism tests),
//! 2. the `CEDAR_JOBS` environment variable (`CEDAR_JOBS=1` is the
//!    debugging escape hatch: pure serial `Iterator::map`, no threads
//!    spawned at all),
//! 3. `std::thread::available_parallelism()`.
//!
//! Nested calls run serially: a `par_map` issued from inside a worker
//! (e.g. cedar-verify's per-seed sweep under the robustness binary's
//! per-workload sweep) degrades to the serial path instead of
//! oversubscribing the host. The outermost call owns the threads.
//!
//! ## Failure containment
//!
//! Workers isolate per-item panics. In [`par_map`], a panicking item no
//! longer aborts the scoped join mid-sweep: every other item still runs
//! to completion, and the *first panic in index order* is then resumed
//! on the calling thread — the same panic the serial map would have
//! surfaced, with its payload intact. [`try_par_map`] goes further and
//! returns a structured [`TryCell`] per item (`Ok` / `Panicked` /
//! `TimedOut`), handing each worker a [`CancelToken`] carrying an
//! optional per-item wall-clock budget that cooperative workloads (the
//! simulator watchdog) poll. Supervisors build on these primitives; see
//! `cedar-experiments::supervise`.

mod backoff;
mod cancel;

pub use backoff::backoff;
pub use cancel::CancelToken;

use std::any::Any;
use std::cell::RefCell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Global override installed by [`with_jobs`]; 0 = no override.
static JOBS_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Set inside worker threads so nested `par_map` calls degrade to
    /// the serial path instead of spawning a second tier of threads.
    static IN_WORKER: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };

    /// Caller-provided ambient context, inherited by worker threads
    /// (see [`set_context`]).
    static CONTEXT: RefCell<Option<Context>> = const { RefCell::new(None) };
}

/// Ambient context handle inherited by [`par_map`]/[`try_par_map`]
/// worker threads; see [`set_context`].
pub type Context = Arc<dyn Any + Send + Sync>;

/// Install an ambient context on the current thread and return the
/// previous one. Worker threads spawned by [`par_map`]/[`try_par_map`]
/// inherit a clone of the calling thread's context, so thread-local
/// state that must follow the work across the pool (the experiment
/// supervisor's per-cell record: rung, chaos profile, cancel token)
/// can ride along without every closure threading it explicitly.
pub fn set_context(ctx: Option<Context>) -> Option<Context> {
    CONTEXT.with(|c| std::mem::replace(&mut *c.borrow_mut(), ctx))
}

/// The current thread's ambient context (the caller's own, or the one
/// inherited from the spawning [`par_map`] call when on a worker).
pub fn context() -> Option<Context> {
    CONTEXT.with(|c| c.borrow().clone())
}

/// Effective worker count for the next [`par_map`] call: the
/// [`with_jobs`] override if present, else `CEDAR_JOBS`, else the
/// host's available parallelism. Always ≥ 1.
pub fn jobs() -> usize {
    let ov = JOBS_OVERRIDE.load(Ordering::Relaxed);
    if ov > 0 {
        return ov;
    }
    if let Ok(s) = std::env::var("CEDAR_JOBS") {
        if let Ok(n) = s.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// True when called from inside a `par_map` worker thread.
pub fn in_worker() -> bool {
    IN_WORKER.with(|f| f.get())
}

/// Run `f` with the worker count forced to `n`, restoring the previous
/// setting afterwards (used by the determinism tests to compare
/// `CEDAR_JOBS=1` vs `CEDAR_JOBS=N` sweeps inside one process without
/// mutating the environment).
pub fn with_jobs<R>(n: usize, f: impl FnOnce() -> R) -> R {
    assert!(n >= 1, "job count must be >= 1");
    let prev = JOBS_OVERRIDE.swap(n, Ordering::SeqCst);
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            JOBS_OVERRIDE.store(self.0, Ordering::SeqCst);
        }
    }
    let _restore = Restore(prev);
    f()
}

/// A worker panic's payload, preserved across the join.
type PanicPayload = Box<dyn Any + Send + 'static>;

/// One supervised item's raw outcome: the closure's result (or its
/// panic payload) plus the token the item ran under.
type Supervised<R> = (Result<R, PanicPayload>, CancelToken);

/// Render a panic payload as text: the `&str` / `String` message when
/// the panic carried one (the overwhelmingly common case — `panic!`,
/// `assert!`, `expect`), a placeholder otherwise.
pub fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Outcome of one [`try_par_map`] item.
#[derive(Debug)]
pub enum TryCell<R> {
    /// The closure returned normally.
    Ok(R),
    /// The closure panicked; the rendered payload message.
    Panicked(String),
    /// The closure panicked *after its token expired* — the cooperative
    /// deadline fired (e.g. the simulator watchdog's wall-clock abort
    /// surfacing through a harness `panic!`). Carries the budget the
    /// item was given, if any.
    TimedOut {
        /// Wall-clock budget the item's token was created with.
        budget: Option<Duration>,
    },
}

impl<R> TryCell<R> {
    /// The value, if the item completed.
    pub fn ok(self) -> Option<R> {
        match self {
            TryCell::Ok(r) => Some(r),
            _ => None,
        }
    }

    /// Did the item complete?
    pub fn is_ok(&self) -> bool {
        matches!(self, TryCell::Ok(_))
    }
}

/// Core supervised engine shared by [`par_map`] and [`try_par_map`]:
/// map `f` over `items` on up to [`jobs`] scoped threads, catching
/// per-item panics so a failing item can never abort the scoped join,
/// and handing each item a fresh [`CancelToken`] (with `budget` as its
/// wall-clock deadline when given). Results come back in input order.
fn supervised_map<T, R, F>(
    items: Vec<T>,
    budget: Option<Duration>,
    f: &F,
) -> Vec<Supervised<R>>
where
    T: Send,
    R: Send,
    F: Fn(T, &CancelToken) -> R + Sync,
{
    let run_one = |item: T| {
        let token = match budget {
            Some(b) => CancelToken::with_budget(b),
            None => CancelToken::new(),
        };
        let r = catch_unwind(AssertUnwindSafe(|| f(item, &token)));
        (r, token)
    };

    let n = items.len();
    let workers = jobs().min(n);
    if workers <= 1 || in_worker() {
        return items.into_iter().map(run_one).collect();
    }

    // Each input and each output slot gets its own mutex so workers
    // never contend except on the claim counter; `take()` moves the
    // item into the worker, and results land in index order.
    let input: Vec<Mutex<Option<T>>> =
        items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let output: Vec<Mutex<Option<Supervised<R>>>> =
        (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let run_one = &run_one;
    let inherited = context();
    // Borrow the shared state so each worker's `move` closure copies
    // the borrows and moves only its context clone.
    let (input_ref, output_ref, next_ref) = (&input, &output, &next);

    std::thread::scope(|scope| {
        for _ in 0..workers {
            let (input, output, next) = (input_ref, output_ref, next_ref);
            let inherited = inherited.clone();
            scope.spawn(move || {
                IN_WORKER.with(|flag| flag.set(true));
                set_context(inherited);
                loop {
                    let k = next.fetch_add(1, Ordering::Relaxed);
                    if k >= n {
                        break;
                    }
                    let item = input[k]
                        .lock()
                        .expect("par_map input slot poisoned")
                        .take()
                        .expect("par_map slot claimed twice");
                    let r = run_one(item);
                    *output[k].lock().expect("par_map output slot poisoned") = Some(r);
                }
            });
        }
    });

    output
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("par_map output slot poisoned")
                .expect("par_map worker skipped a slot")
        })
        .collect()
}

/// Map `f` over `items` on up to [`jobs`] scoped threads, returning
/// results in input order (slot `k` of the output is `f(items[k])`,
/// exactly as the serial `items.into_iter().map(f).collect()` would
/// produce).
///
/// Jobs are claimed dynamically from a shared atomic counter, so an
/// expensive cell (say, ADM under Config 2) does not leave the other
/// workers idle behind a static partition.
///
/// Panics inside `f` are contained per item: the remaining items all
/// still run, and after the pool joins, the first panic *in index
/// order* is resumed on the calling thread with its original payload —
/// matching the serial path's panic (the serial path itself propagates
/// immediately, unchanged). Callers that need per-item outcomes instead
/// of a sweep-level panic use [`try_par_map`].
pub fn par_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    let workers = jobs().min(n);
    if workers <= 1 || in_worker() {
        return items.into_iter().map(f).collect();
    }

    let results = supervised_map(items, None, &|t, _token: &CancelToken| f(t));
    let mut out = Vec::with_capacity(n);
    let mut first_panic: Option<PanicPayload> = None;
    for (r, _) in results {
        match r {
            Ok(v) => out.push(v),
            Err(p) => {
                if first_panic.is_none() {
                    first_panic = Some(p);
                }
            }
        }
    }
    if let Some(p) = first_panic {
        resume_unwind(p);
    }
    out
}

/// Supervised variant of [`par_map`]: every item yields a [`TryCell`]
/// instead of the sweep sharing one panic. Each item's closure receives
/// a fresh [`CancelToken`]; when `budget` is given the token carries
/// that wall-clock deadline, which cooperative workloads poll (thread
/// it into `cedar_sim::MachineConfig::cancel` and the simulator's
/// watchdog aborts the run with a structured timeout once it fires).
///
/// Classification: a normal return is [`TryCell::Ok`] even if the
/// deadline lapsed (completed work is kept); a panic on an item whose
/// token has expired is [`TryCell::TimedOut`] (the cooperative abort
/// surfaces as a panic in harness glue); any other panic is
/// [`TryCell::Panicked`] with the rendered payload.
pub fn try_par_map<T, R, F>(items: Vec<T>, budget: Option<Duration>, f: F) -> Vec<TryCell<R>>
where
    T: Send,
    R: Send,
    F: Fn(T, &CancelToken) -> R + Sync,
{
    supervised_map(items, budget, &f)
        .into_iter()
        .map(|(r, token)| match r {
            Ok(v) => TryCell::Ok(v),
            Err(_) if token.expired() => TryCell::TimedOut { budget: token.budget() },
            Err(p) => TryCell::Panicked(panic_message(p.as_ref())),
        })
        .collect()
}

/// [`par_map`] over an index range: `par_map_range(n, f)[k] == f(k)`.
pub fn par_map_range<R, F>(n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    par_map((0..n).collect(), f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn results_are_index_ordered() {
        let items: Vec<u64> = (0..100).collect();
        let serial: Vec<u64> = items.iter().map(|x| x * x).collect();
        let par = with_jobs(8, || par_map(items, |x| x * x));
        assert_eq!(par, serial);
    }

    #[test]
    fn serial_mode_spawns_no_threads() {
        // With jobs forced to 1 the map runs on the calling thread, so
        // thread-local state is visible across items.
        thread_local! {
            static SEEN: std::cell::Cell<u32> = const { std::cell::Cell::new(0) };
        }
        let out = with_jobs(1, || {
            par_map(vec![1u32, 2, 3], |x| {
                SEEN.with(|s| s.set(s.get() + x));
                SEEN.with(|s| s.get())
            })
        });
        assert_eq!(out, vec![1, 3, 6]);
    }

    #[test]
    fn nested_calls_degrade_to_serial() {
        let depth_two_workers = with_jobs(4, || {
            par_map(vec![0usize; 4], |_| {
                // Inner call must not spawn: in_worker() is set.
                assert!(in_worker());
                par_map(vec![1usize, 2, 3], |x| x).len()
            })
        });
        assert_eq!(depth_two_workers, vec![3, 3, 3, 3]);
        assert!(!in_worker(), "flag must not leak to the caller");
    }

    #[test]
    fn every_item_runs_exactly_once() {
        static CALLS: AtomicU32 = AtomicU32::new(0);
        CALLS.store(0, Ordering::SeqCst);
        let out = with_jobs(3, || {
            par_map((0..57usize).collect(), |k| {
                CALLS.fetch_add(1, Ordering::SeqCst);
                k
            })
        });
        assert_eq!(out, (0..57).collect::<Vec<_>>());
        assert_eq!(CALLS.load(Ordering::SeqCst), 57);
    }

    #[test]
    fn range_helper_matches_direct() {
        let a = par_map_range(10, |k| k * 3);
        assert_eq!(a, (0..10).map(|k| k * 3).collect::<Vec<_>>());
    }

    #[test]
    fn with_jobs_restores_on_exit() {
        let before = jobs();
        with_jobs(7, || assert_eq!(jobs(), 7));
        assert_eq!(jobs(), before);
    }

    /// Regression: a panicking worker used to abort the whole sweep
    /// through the scoped join (`std::thread::scope` re-panics with a
    /// generic payload once any spawned thread dies). Now every other
    /// item completes and the original payload is resumed afterwards.
    #[test]
    fn worker_panic_is_contained_and_payload_preserved() {
        static RAN: AtomicU32 = AtomicU32::new(0);
        RAN.store(0, Ordering::SeqCst);
        let result = std::panic::catch_unwind(|| {
            with_jobs(4, || {
                par_map((0..32usize).collect(), |k| {
                    if k == 5 {
                        panic!("cell 5 exploded");
                    }
                    RAN.fetch_add(1, Ordering::SeqCst);
                    k
                })
            })
        });
        let payload = result.expect_err("panic must still propagate");
        assert_eq!(panic_message(payload.as_ref()), "cell 5 exploded");
        assert_eq!(
            RAN.load(Ordering::SeqCst),
            31,
            "every non-panicking item must still run"
        );
    }

    #[test]
    fn first_panic_in_index_order_wins() {
        // Items 3 and 20 both panic; the resumed payload must be item
        // 3's regardless of which worker finished first.
        let result = std::panic::catch_unwind(|| {
            with_jobs(8, || {
                par_map((0..32usize).collect(), |k| {
                    if k == 3 || k == 20 {
                        panic!("boom at {k}");
                    }
                    k
                })
            })
        });
        let payload = result.expect_err("panic must propagate");
        assert_eq!(panic_message(payload.as_ref()), "boom at 3");
    }

    #[test]
    fn try_par_map_returns_structured_outcomes() {
        let cells = with_jobs(4, || {
            try_par_map((0..8usize).collect(), None, |k, _token| {
                if k == 2 {
                    panic!("injected failure in cell {k}");
                }
                k * 10
            })
        });
        assert_eq!(cells.len(), 8);
        for (k, c) in cells.iter().enumerate() {
            match c {
                TryCell::Ok(v) => {
                    assert_ne!(k, 2);
                    assert_eq!(*v, k * 10);
                }
                TryCell::Panicked(msg) => {
                    assert_eq!(k, 2);
                    assert_eq!(msg, "injected failure in cell 2");
                }
                TryCell::TimedOut { .. } => panic!("no deadline was set"),
            }
        }
    }

    #[test]
    fn try_par_map_catches_on_the_serial_path_too() {
        let cells = with_jobs(1, || {
            try_par_map(vec![1u32, 2, 3], None, |x, _| {
                if x == 2 {
                    panic!("serial cell panic");
                }
                x
            })
        });
        assert!(cells[0].is_ok() && cells[2].is_ok());
        assert!(matches!(&cells[1], TryCell::Panicked(m) if m == "serial cell panic"));
    }

    #[test]
    fn expired_budget_classifies_as_timeout() {
        // A cooperative worker: polls its token and aborts by panicking,
        // exactly as harness glue over the simulator watchdog does.
        let cells = with_jobs(2, || {
            try_par_map(
                vec![0u32, 1],
                Some(Duration::ZERO),
                |_, token: &CancelToken| {
                    if token.expired() {
                        panic!("cooperative abort");
                    }
                    0u32
                },
            )
        });
        for c in &cells {
            assert!(
                matches!(c, TryCell::TimedOut { budget: Some(b) } if *b == Duration::ZERO),
                "expected TimedOut, got {c:?}"
            );
        }
    }

    #[test]
    fn workers_inherit_the_callers_context() {
        let prev = set_context(Some(Arc::new(42usize)));
        let seen = with_jobs(4, || {
            par_map((0..16usize).collect(), |_| {
                context()
                    .and_then(|c| c.downcast_ref::<usize>().copied())
                    .unwrap_or(0)
            })
        });
        set_context(prev);
        assert!(seen.iter().all(|&v| v == 42), "context lost in workers: {seen:?}");
    }
}
