//! Race-detector evaluation sweep (DESIGN.md §8).
//!
//! Two populations:
//!
//! * **Should be clean** — every Table 1 workload restructured with the
//!   automatic configuration and every Table 2 workload with the manual
//!   configuration, run under the happens-before detector in
//!   collect-all mode. Any race here is a detector false positive (or a
//!   restructurer bug — either way a failure).
//! * **Should be flagged** — hand-written racy Cedar Fortran negatives:
//!   a shared temporary in a `CDOALL` (expansion without
//!   privatization), an unlocked sum reduction, a recurrence in a
//!   `CDOALL` with no cascade, and a `CDOACROSS` whose `await` has no
//!   matching `advance` (which the deadlock watchdog catches instead).
//!
//! Each run also re-executes with detection off and compares simulated
//! cycles: the detector must be cycle-invisible. The static
//! [`cedar_restructure::sync_audit`] pass is applied to every program
//! as a cross-check of the dynamic verdicts. Results are rendered as a
//! text table plus a JSON confusion matrix.

use cedar_restructure::PassConfig;
use cedar_sim::MachineConfig;
use cedar_workloads::Workload;

/// One program's detector verdicts.
#[derive(Debug, Clone)]
pub struct Row {
    /// Workload or negative name.
    pub name: String,
    /// `table1` / `table2` / `negative`.
    pub suite: &'static str,
    /// Ground truth: is this program racy by construction?
    pub expect_race: bool,
    /// Races the detector recorded (collect-all mode).
    pub races: u64,
    /// The run deadlocked (counts as flagged: the watchdog caught it).
    pub deadlock: bool,
    /// First race report, for the table.
    pub first_race: Option<String>,
    /// Uncovered dependences the static sync audit found.
    pub audit_findings: usize,
    /// Simulated cycles with detection off == with detection on.
    pub cycles_identical: bool,
}

impl Row {
    /// Did any dynamic layer flag the program?
    pub fn flagged(&self) -> bool {
        self.races > 0 || self.deadlock
    }

    /// Correct verdict for this program?
    pub fn correct(&self) -> bool {
        self.flagged() == self.expect_race
    }
}

/// Confusion-matrix counts over a sweep.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Confusion {
    /// Racy program flagged.
    pub true_positive: usize,
    /// Racy program missed.
    pub false_negative: usize,
    /// Clean program flagged.
    pub false_positive: usize,
    /// Clean program passed.
    pub true_negative: usize,
}

/// Tally the matrix.
pub fn confusion(rows: &[Row]) -> Confusion {
    let mut c = Confusion::default();
    for r in rows {
        match (r.expect_race, r.flagged()) {
            (true, true) => c.true_positive += 1,
            (true, false) => c.false_negative += 1,
            (false, true) => c.false_positive += 1,
            (false, false) => c.true_negative += 1,
        }
    }
    c
}

fn examine(name: &str, suite: &'static str, expect_race: bool, program: &cedar_ir::Program, audit_findings: usize) -> Row {
    // This sweep calls the simulator directly (it needs both detector
    // modes), so the chaos gate is applied here rather than in
    // `pipeline::run_program`. The ladder's config rewrites are *not*:
    // this sweep's whole point is comparing fixed detector settings.
    crate::supervise::gate("simulate");
    let mc = MachineConfig::cedar_config1_scaled();
    let plain = cedar_sim::run(program, mc.clone());
    let traced = cedar_sim::run_collecting_races(program, mc);
    let (races, deadlock, first_race, traced_cycles) = match &traced {
        Ok(sim) => (
            sim.races_detected(),
            false,
            sim.race_report().first().map(|r| r.to_string()),
            Some(sim.cycles()),
        ),
        Err(e) => (0, e.is_deadlock(), None, None),
    };
    let cycles_identical = match (&plain, traced_cycles) {
        (Ok(p), Some(t)) => p.cycles().to_bits() == t.to_bits(),
        (Err(a), None) => traced.as_ref().err().map(|b| b.kind) == Some(a.kind),
        _ => false,
    };
    Row {
        name: name.to_string(),
        suite,
        expect_race,
        races,
        deadlock,
        first_race,
        audit_findings,
        cycles_identical,
    }
}

fn examine_workload(w: &Workload, suite: &'static str, cfg: &PassConfig) -> Row {
    // Direct restructure (not the cache): this sweep needs the pass
    // report's sync-audit findings, which the program cache drops.
    let rr = cedar_restructure::restructure(&crate::cache::compiled(w), cfg);
    examine(w.name, suite, false, &rr.program, rr.report.sync_audit.len())
}

fn examine_negative(name: &str, src: &str) -> Row {
    let program = cedar_ir::compile_free(src)
        .unwrap_or_else(|e| panic!("negative `{name}` failed to compile: {e}"));
    // Identity pass: no transformation, just the static audit.
    let rr = cedar_restructure::restructure(&program, &PassConfig::serial());
    examine(name, "negative", true, &program, rr.report.sync_audit.len())
}

/// The seeded racy negatives: each encodes one restructuring bug the
/// paper's techniques exist to prevent.
pub fn negatives() -> Vec<(&'static str, String)> {
    let init = "do i = 1, n\na(i) = real(i)\nend do\n";
    vec![
        (
            "shared-temp",
            format!(
                "program neg\nparameter (n = 64)\nreal a(n), t\n{init}\
                 cdoall i = 1, n\nt = a(i) * 2.0\na(i) = t + 1.0\nend cdoall\nend\n"
            ),
        ),
        (
            "unlocked-reduction",
            format!(
                "program neg\nparameter (n = 64)\nreal a(n), s\ns = 0.0\n{init}\
                 cdoall i = 1, n\ns = s + a(i)\nend cdoall\nend\n"
            ),
        ),
        (
            "missing-cascade",
            format!(
                "program neg\nparameter (n = 64)\nreal a(n)\n{init}\
                 cdoall i = 2, n\na(i) = a(i - 1) * 0.5 + 1.0\nend cdoall\nend\n"
            ),
        ),
        (
            "missing-advance",
            format!(
                "program neg\nparameter (n = 64)\nreal a(n)\n{init}\
                 cdoacross i = 2, n\ncall await(1, 1)\na(i) = a(i - 1) + 1.0\n\
                 end cdoacross\nend\n"
            ),
        ),
    ]
}

/// Sweep both workload suites and every negative. Every program in the
/// matrix is an independent detector run ([`cedar_par::par_map`]); row
/// order matches the serial sweep (table1, table2, negatives).
pub fn run() -> Vec<Row> {
    run_filtered(None)
}

enum Job {
    Workload(Workload, &'static str, PassConfig),
    Negative(&'static str, String),
}

impl Job {
    fn name(&self) -> &str {
        match self {
            Job::Workload(w, ..) => w.name,
            Job::Negative(n, _) => n,
        }
    }

    fn suite(&self) -> &'static str {
        match self {
            Job::Workload(_, suite, _) => suite,
            Job::Negative(..) => "negative",
        }
    }

    fn source(&self) -> &str {
        match self {
            Job::Workload(w, ..) => &w.source,
            Job::Negative(_, src) => src,
        }
    }

    fn examine(&self) -> Row {
        match self {
            Job::Workload(w, suite, cfg) => examine_workload(w, suite, cfg),
            Job::Negative(name, src) => examine_negative(name, src),
        }
    }
}

fn jobs(only: Option<&[&str]>) -> Vec<Job> {
    cedar_workloads::table1_workloads()
        .into_iter()
        .map(|w| Job::Workload(w, "table1", PassConfig::automatic_1991()))
        .chain(
            cedar_workloads::table2_workloads()
                .into_iter()
                .map(|w| Job::Workload(w, "table2", PassConfig::manual_improved())),
        )
        .chain(negatives().into_iter().map(|(n, s)| Job::Negative(n, s)))
        .filter(|j| only.is_none_or(|names| names.contains(&j.name())))
        .collect()
}

/// [`run`] restricted to programs named in `only` (row order is the
/// matrix order regardless of the filter's order). `None` sweeps the
/// full matrix; determinism tests use small subsets to stay fast.
pub fn run_filtered(only: Option<&[&str]>) -> Vec<Row> {
    cedar_par::par_map(jobs(only), |job| job.examine())
}

/// [`run`] under the supervised engine: one cell per program in the
/// matrix. A quarantined program drops out of the confusion matrix and
/// is reported in the quarantine section instead.
pub fn run_supervised(
    sup: &crate::supervise::Supervisor,
) -> (Vec<Row>, Vec<crate::supervise::Recovery>, Vec<crate::supervise::Quarantine>) {
    let cells = jobs(None)
        .into_iter()
        .map(|j| {
            crate::supervise::Cell::with_source(
                format!("races/{}/{}", j.suite(), j.name()),
                j.source().to_string(),
                j,
            )
        })
        .collect();
    let sweep = crate::supervise::run_cells(sup, cells, |job: &Job| job.examine());
    (
        sweep.results.into_iter().flatten().collect(),
        sweep.recovered,
        sweep.quarantined,
    )
}

/// Text rendering.
pub fn render(rows: &[Row]) -> String {
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.name.clone(),
                r.suite.to_string(),
                if r.expect_race { "racy" } else { "clean" }.to_string(),
                r.races.to_string(),
                if r.deadlock { "yes" } else { "no" }.to_string(),
                r.audit_findings.to_string(),
                if r.cycles_identical { "yes" } else { "NO" }.to_string(),
                if r.correct() { "ok" } else { "WRONG" }.to_string(),
            ]
        })
        .collect();
    crate::render_table(
        &["program", "suite", "truth", "races", "deadlock", "audit", "cycles-id", "verdict"],
        &body,
    )
}

/// JSON rendering (no external dependencies). Quarantined cells —
/// programs the supervisor gave up on — are reported alongside the
/// confusion matrix rather than silently missing from it.
pub fn to_json(rows: &[Row], quarantined: &[crate::supervise::Quarantine]) -> String {
    let c = confusion(rows);
    let mut out = String::from("{\n");
    out.push_str(&format!(
        "  \"confusion\": {{\"true_positive\": {}, \"false_negative\": {}, \
         \"false_positive\": {}, \"true_negative\": {}}},\n",
        c.true_positive, c.false_negative, c.false_positive, c.true_negative
    ));
    out.push_str(&format!(
        "  \"quarantined\": {},\n",
        crate::supervise::quarantined_json(quarantined)
    ));
    out.push_str("  \"rows\": [\n");
    for (k, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"suite\": \"{}\", \"expect_race\": {}, \
             \"races\": {}, \"deadlock\": {}, \"audit_findings\": {}, \
             \"cycles_identical\": {}, \"flagged\": {}, \"first_race\": {}}}",
            crate::robustness::json_escape(&r.name),
            r.suite,
            r.expect_race,
            r.races,
            r.deadlock,
            r.audit_findings,
            r.cycles_identical,
            r.flagged(),
            match &r.first_race {
                Some(s) => format!("\"{}\"", crate::robustness::json_escape(s)),
                None => "null".to_string(),
            },
        ));
        out.push_str(if k + 1 < rows.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn negatives_are_all_flagged_and_one_workload_is_clean() {
        let mut rows: Vec<Row> =
            negatives().iter().map(|(n, s)| examine_negative(n, s)).collect();
        for r in &rows {
            assert!(r.flagged(), "negative `{}` must be flagged: {r:?}", r.name);
            assert!(
                r.audit_findings > 0,
                "static audit must agree on `{}`: {r:?}",
                r.name
            );
            assert!(r.cycles_identical, "detector changed cycles on `{}`", r.name);
        }
        let w = cedar_workloads::linalg::tridag(48);
        rows.push(examine_workload(&w, "table1", &PassConfig::automatic_1991()));
        let r = rows.last().unwrap();
        assert!(!r.flagged(), "tridag restructured must be race-free: {r:?}");
        assert!(r.cycles_identical);
        let c = confusion(&rows);
        assert_eq!(c.false_negative, 0);
        assert_eq!(c.false_positive, 0);
        assert_eq!(c.true_positive, 4);
        assert_eq!(c.true_negative, 1);
        let json = to_json(&rows, &[]);
        assert!(json.contains("\"confusion\""), "{json}");
        assert!(json.contains("\"false_positive\": 0"), "{json}");
        assert!(json.contains("\"quarantined\": []"), "{json}");
    }
}
