//! Figure 8: data partitioning in the Conjugate Gradient algorithm.
//!
//! Two implementation variants swept over 1–4 clusters, both measured
//! relative to "a program variant that was optimized for a 1-cluster
//! execution and which has its data in cluster memory":
//!
//! * **global-memory placement** (the automatically compiled form): all
//!   shared data in global memory — fast transfer + prefetch beats the
//!   cluster baseline on one cluster, but flattens as the global ports
//!   saturate;
//! * **data distribution** (§4.2.3): arrays partitioned across cluster
//!   memories (≈50 % of references localized) — slower on one cluster,
//!   near-linear through four.

use crate::pipeline::{assert_equivalent, run_program};
use cedar_restructure::{PassConfig, Target};
use cedar_sim::MachineConfig;

/// One placement strategy's scaling curve.
#[derive(Debug, Clone)]
pub struct Series {
    /// Placement label (cluster / global / partitioned).
    pub label: &'static str,
    /// Speed relative to the 1-cluster cluster-memory baseline, indexed
    /// by cluster count 1..=4.
    pub speeds: Vec<f64>,
}

/// Sweep cluster counts for each placement; also returns the
/// global-memory crossover point (clusters where global overtakes
/// cluster placement).
pub fn run() -> (Vec<Series>, f64) {
    // Fig. 8 isolates placement/bandwidth effects, not paging: use the
    // unscaled machine (full 16 MB cluster memories) and a size big
    // enough to amortize loop startup.
    let w = cedar_workloads::linalg::cg(384);
    let program = crate::cache::compiled(&w);

    // Baseline: 1-cluster-optimized, data in cluster memory (no
    // globalization; cluster loop classes only).
    let mut base_cfg = PassConfig::manual_improved().for_target(Target::Fx80);
    base_cfg.globalize = false;
    let base_prog = crate::cache::restructured(&program, &base_cfg);
    let base_mc = MachineConfig::cedar_config1().with_clusters(1);
    let baseline = run_program(&base_prog, None, &base_mc, &w.watch);

    let mut part_cfg = PassConfig::manual_improved();
    part_cfg.data_partitioning = true;
    let series_cfgs: [(&'static str, PassConfig); 2] = [
        ("global-memory data placement", PassConfig::manual_improved()),
        ("data distribution", part_cfg),
    ];
    // 2 placements × 4 cluster counts = 8 independent curve points; the
    // restructure of each placement is shared across its points.
    let cells: Vec<(usize, usize)> =
        (0..series_cfgs.len()).flat_map(|s| (1..=4).map(move |c| (s, c))).collect();
    let outs = cedar_par::par_map(cells, |(s, c)| {
        let prog = crate::cache::restructured(&program, &series_cfgs[s].1);
        let mc = MachineConfig::cedar_config1().with_clusters(c);
        run_program(&prog, None, &mc, &w.watch)
    });
    let series = series_cfgs
        .iter()
        .enumerate()
        .map(|(s, (label, _))| {
            let mut speeds = Vec::new();
            for o in &outs[s * 4..s * 4 + 4] {
                assert_equivalent(label, &baseline, o);
                speeds.push(baseline.cycles / o.cycles);
            }
            Series { label, speeds }
        })
        .collect();

    (series, baseline.cycles)
}

/// Render the curves as the harness's text artifact.
pub fn render(series: &[Series]) -> String {
    let mut out = String::from(
        "Figure 8: data partitioning in the Conjugate Gradient algorithm\n\
         (speed relative to the 1-cluster cluster-memory variant)\n\n",
    );
    let rows: Vec<Vec<String>> = series
        .iter()
        .map(|s| {
            let mut row = vec![s.label.to_string()];
            row.extend(s.speeds.iter().map(|v| format!("{v:.2}")));
            row
        })
        .collect();
    out.push_str(&crate::render_table(
        &["variant", "1 cluster", "2 clusters", "3 clusters", "4 clusters"],
        &rows,
    ));
    out.push_str(
        "\nPaper shape: global ≈1.6 at one cluster then saturating; \
         distribution below global at one cluster, near-linear to four, \
         crossing above by 3–4 clusters.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partitioning_crosses_over_and_scales() {
        let (series, _) = run();
        let global = &series[0].speeds;
        let part = &series[1].speeds;
        // Global placement beats the cluster baseline on one cluster.
        assert!(global[0] > 1.0, "global 1-cluster: {:.2}", global[0]);
        // Global saturates: 4-cluster gain over 2-cluster is limited.
        assert!(
            global[3] / global[1] < 1.6,
            "global should flatten: {:?}",
            global
        );
        // Distribution starts slower than global...
        assert!(
            part[0] < global[0],
            "partitioned 1-cluster ({:.2}) must trail global ({:.2})",
            part[0],
            global[0]
        );
        // ...but scales better and wins by 4 clusters.
        assert!(
            part[3] > global[3],
            "partitioned must win at 4 clusters: {:?} vs {:?}",
            part,
            global
        );
        assert!(
            part[3] / part[0] > 2.0,
            "partitioned should scale near-linearly: {:?}",
            part
        );
    }
}
