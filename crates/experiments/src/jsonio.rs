//! Minimal JSON value + recursive-descent parser.
//!
//! The build environment is fully offline (no registry crates), so the
//! workspace parses JSON with the same hand-rolled approach it uses for
//! *writing* JSON. This is a strict subset parser sized to its
//! consumers' needs: objects, arrays, strings (with the standard
//! escapes incl. `\uXXXX`), numbers, bools, null. It started life as
//! `cedar-serve`'s request-body reader and moved here when the
//! campaign coordinator needed to parse worker shard uploads and WAL
//! journal records too; the service re-exports it unchanged. Writers
//! keep using `format!` + [`crate::json_escape`] like every other
//! artifact writer in the repo — only the reader lives here.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (parsed as f64).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order (duplicate keys keep the first).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parse a complete JSON document; trailing non-whitespace is an
    /// error.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Object member lookup (first match); `None` for non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean value, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// True for `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(format!("unexpected `{}` at byte {}", c as char, self.pos)),
            None => Err("unexpected end of input".into()),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap_or("");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|e| format!("bad number `{text}` at byte {start}: {e}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or("truncated \\u escape")?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|e| format!("bad \\u escape `{hex}`: {e}"))?;
                            self.pos += 4;
                            // Surrogate pairs are rejected rather than
                            // combined; Fortran source is ASCII anyway.
                            out.push(
                                char::from_u32(cp)
                                    .ok_or(format!("\\u{hex} is not a scalar value"))?,
                            );
                        }
                        other => {
                            return Err(format!("bad escape `\\{}`", other as char))
                        }
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte safe).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|e| format!("invalid UTF-8 in string: {e}"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            if !members.iter().any(|(k, _)| *k == key) {
                members.push((key, value));
            }
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let v = Json::parse(
            r#"{"source": "do 10 i = 1,\n10 continue", "validate": true,
                "watch": ["a1", "s2"], "deadline_ms": 1500.5, "x": null}"#,
        )
        .unwrap();
        assert_eq!(v.get("source").unwrap().as_str().unwrap(), "do 10 i = 1,\n10 continue");
        assert_eq!(v.get("validate").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("deadline_ms").unwrap().as_f64(), Some(1500.5));
        assert!(v.get("x").unwrap().is_null());
        let watch: Vec<&str> =
            v.get("watch").unwrap().as_arr().unwrap().iter().filter_map(Json::as_str).collect();
        assert_eq!(watch, vec!["a1", "s2"]);
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn escapes_round_trip_through_the_repo_writer() {
        let original = "line1\nline2\t\"quoted\" \\ end";
        let body = format!("{{\"s\": \"{}\"}}", crate::json_escape(original));
        let v = Json::parse(&body).unwrap();
        assert_eq!(v.get("s").unwrap().as_str().unwrap(), original);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("{\"a\": }").is_err());
        assert!(Json::parse("[1, 2,]").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        assert!(Json::parse("{} trailing").is_err());
        assert!(Json::parse("nul").is_err());
    }

    #[test]
    fn unicode_escapes() {
        let v = Json::parse("\"a\\u0041\\u00e9\"").unwrap();
        assert_eq!(v.as_str(), Some("aAé"));
        assert!(Json::parse("\"\\ud800\"").is_err(), "lone surrogate rejected");
    }
}
