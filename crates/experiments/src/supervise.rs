//! Supervised experiment engine (DESIGN.md §10): panic isolation,
//! per-cell wall-clock deadlines, a degradation ladder, and crash
//! bundles.
//!
//! Every sweep cell (one Table 1 row, one Table 2 `(row, machine)`
//! pair, one figure, one robustness validation job, ...) runs under a
//! supervisor that guarantees the sweep **always completes with a full
//! report**, no matter what individual cells do:
//!
//! * a panicking cell is contained (building on
//!   [`cedar_par`]'s per-item panic isolation) and classified — plain
//!   panic, structured simulator fault (via [`note_sim_error`]), or
//!   wall-clock timeout (the cell's [`CancelToken`] is threaded into
//!   every `MachineConfig` the cell builds, so the simulator watchdog
//!   aborts cooperatively);
//! * a failed cell is retried up the **degradation ladder**
//!   ([`Rung`]): interpreter fast paths off → race detection on →
//!   full serial fallback — each rung trades performance for safety;
//! * a cell that fails at every rung is **quarantined**: the sweep
//!   reports it under a `quarantined` section instead of a result row,
//!   and a **crash bundle** (minimized Fortran source, attempt chain,
//!   backtrace) is written under `target/crash-bundles/`.
//!
//! The supervisor's state rides on [`cedar_par::set_context`], so
//! nested `par_map` workers spawned inside a cell inherit its record,
//! and the pipeline choke points ([`crate::pipeline::run_program`],
//! [`crate::cache`]) pick up the active rung, cancel token, and chaos
//! profile without every call site threading them explicitly. With no
//! supervisor installed every hook is an exact identity — plain sweeps
//! are byte-for-byte unaffected.

use crate::chaos::{self, Injection};
use cedar_par::{panic_message, CancelToken, Context};
use cedar_restructure::PassConfig;
use cedar_sim::{MachineConfig, SimError, SimErrorKind};
use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::Duration;

/// Degradation-ladder rung: which safety/performance trade the current
/// attempt of a cell runs under. Rungs are cumulative — each keeps the
/// previous rung's concessions and adds one more.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rung {
    /// First attempt: the configuration the sweep asked for.
    Normal,
    /// Interpreter fast paths disabled (rules out a fast-path
    /// miscompile; observationally invisible for correct programs).
    NoFastPaths,
    /// Fast paths off *and* the happens-before race detector on in
    /// fail-fast mode (turns a silent ordering bug into a structured
    /// `data-race` error).
    RacesOn,
    /// Full retreat: the restructurer is forced to
    /// [`PassConfig::serial`], abandoning all parallelism.
    Serial,
}

impl Rung {
    /// The ladder, safest rung last.
    pub const LADDER: [Rung; 4] =
        [Rung::Normal, Rung::NoFastPaths, Rung::RacesOn, Rung::Serial];

    /// Stable lower-case tag (used in JSON reports and bundle files).
    pub fn label(self) -> &'static str {
        match self {
            Rung::Normal => "normal",
            Rung::NoFastPaths => "no-fast-paths",
            Rung::RacesOn => "races-on",
            Rung::Serial => "serial",
        }
    }
}

/// Classification of one failed attempt of a cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellErrorKind {
    /// The cell panicked (assertion, injected chaos panic, bug).
    Panicked,
    /// The cell's wall-clock budget lapsed (simulator watchdog timeout
    /// or an expired token behind any other panic).
    TimedOut,
    /// The cell died on a structured [`SimError`] other than a timeout.
    Failed,
}

impl CellErrorKind {
    /// Stable lower-case tag.
    pub fn as_str(self) -> &'static str {
        match self {
            CellErrorKind::Panicked => "panicked",
            CellErrorKind::TimedOut => "timed-out",
            CellErrorKind::Failed => "sim-error",
        }
    }
}

/// One failed attempt: classification, message, and the backtrace the
/// panic hook captured (when the failure went through a panic).
#[derive(Debug, Clone)]
pub struct CellError {
    /// What kind of failure this was.
    pub kind: CellErrorKind,
    /// Human-readable error (panic message or `SimError` display).
    pub msg: String,
    /// The structured simulator error kind, when the failure carried
    /// one (via [`note_sim_error`]) — lets callers map the failure onto
    /// a stable taxonomy without parsing `msg`.
    pub sim: Option<SimErrorKind>,
    /// Backtrace captured at the panic site, if any.
    pub backtrace: Option<String>,
}

impl CellError {
    /// Build a `CellError` from a structured simulator error that was
    /// *returned* (not panicked) by supervised work — service-style
    /// callers that keep `Result`s structured use this to feed the
    /// same ladder/quarantine machinery the panic path does.
    pub fn from_sim_error(e: &SimError) -> CellError {
        CellError {
            kind: if e.is_timeout() { CellErrorKind::TimedOut } else { CellErrorKind::Failed },
            msg: e.to_string(),
            sim: Some(e.kind),
            backtrace: None,
        }
    }
}

/// A cell that failed at rung `normal` but succeeded on a retry.
#[derive(Debug, Clone)]
pub struct Recovery {
    /// Cell label.
    pub cell: String,
    /// The rung that finally succeeded.
    pub rung: &'static str,
    /// `(rung, error message)` for every failed attempt before it.
    pub errors: Vec<(&'static str, String)>,
}

/// A cell that failed at **every** rung of the ladder.
#[derive(Debug, Clone)]
pub struct Quarantine {
    /// Cell label.
    pub cell: String,
    /// Classification of the final (serial-rung) failure.
    pub kind: &'static str,
    /// `(rung, kind, error message)` for every attempt, ladder order.
    pub attempts: Vec<(&'static str, &'static str, String)>,
    /// Crash-bundle directory, if one was written.
    pub bundle: Option<String>,
}

/// Result of a supervised sweep: one slot per input cell (`None` =
/// quarantined), plus the recovery and quarantine records.
#[derive(Debug)]
pub struct Sweep<R> {
    /// Per-cell results, input order. `results[k]` is `None` exactly
    /// when cell `k` appears in [`Sweep::quarantined`].
    pub results: Vec<Option<R>>,
    /// Cells that needed the ladder but recovered.
    pub recovered: Vec<Recovery>,
    /// Cells that failed at every rung.
    pub quarantined: Vec<Quarantine>,
}

impl<R> Sweep<R> {
    /// The single result of a [`run_cell`] sweep.
    pub fn single(self) -> Option<R> {
        self.results.into_iter().next().flatten()
    }
}

/// One unit of supervised work.
#[derive(Debug)]
pub struct Cell<T> {
    /// Stable label (`suite/name[/variant]`): keys chaos draws, names
    /// the crash-bundle directory, and appears in reports.
    pub label: String,
    /// Fortran source behind the cell, for the crash bundle.
    pub source: Option<String>,
    /// The input handed to the sweep's cell function.
    pub input: T,
}

impl<T> Cell<T> {
    /// A cell with no attached source.
    pub fn new(label: impl Into<String>, input: T) -> Cell<T> {
        Cell { label: label.into(), source: None, input }
    }

    /// A cell carrying the Fortran source it exercises.
    pub fn with_source(
        label: impl Into<String>,
        source: impl Into<String>,
        input: T,
    ) -> Cell<T> {
        Cell { label: label.into(), source: Some(source.into()), input }
    }
}

/// Supervisor configuration; build via [`Supervisor::from_env`] or
/// construct directly (tests do).
#[derive(Debug, Clone)]
pub struct Supervisor {
    /// Chaos seed (`CEDAR_CHAOS`); `None` = no injection.
    pub chaos: Option<u64>,
    /// Per-cell wall-clock budget (`CEDAR_CELL_DEADLINE` seconds,
    /// default 120; `0` disables). Applies to every attempt separately.
    pub deadline: Option<Duration>,
    /// Crash-bundle root (`CEDAR_BUNDLE_DIR`, default
    /// `target/crash-bundles`).
    pub bundle_dir: PathBuf,
    /// Cap on retained bundle directories under `bundle_dir`
    /// (`CEDAR_BUNDLE_CAP`, default [`DEFAULT_BUNDLE_CAP`]; `0`
    /// disables). When a quarantine pushes the count over the cap, the
    /// least-recently-hit bundles are evicted — their hit counts
    /// survive in the `evicted.txt` ledger, which [`bundle_hits`]
    /// folds back in, so a long chaos campaign can't fill the disk
    /// with stale reproducers but also never *forgets* how often a
    /// failure fired.
    pub bundle_cap: usize,
}

/// Default [`Supervisor::bundle_cap`]: enough to hold every distinct
/// failure a realistic chaos sweep produces, small enough that an
/// unattended fuzz campaign stays bounded on disk.
pub const DEFAULT_BUNDLE_CAP: usize = 64;

impl Supervisor {
    /// Read the supervisor configuration from the environment.
    pub fn from_env() -> Supervisor {
        let chaos = std::env::var("CEDAR_CHAOS")
            .ok()
            .and_then(|s| chaos::parse_seed(&s));
        let deadline = match std::env::var("CEDAR_CELL_DEADLINE") {
            Ok(s) => match s.trim().parse::<f64>() {
                Ok(secs) if secs > 0.0 => Some(Duration::from_secs_f64(secs)),
                _ => None,
            },
            Err(_) => Some(Duration::from_secs(120)),
        };
        let bundle_dir = std::env::var("CEDAR_BUNDLE_DIR")
            .map(PathBuf::from)
            .unwrap_or_else(|_| PathBuf::from("target/crash-bundles"));
        let bundle_cap = std::env::var("CEDAR_BUNDLE_CAP")
            .ok()
            .and_then(|s| s.trim().parse().ok())
            .unwrap_or(DEFAULT_BUNDLE_CAP);
        Supervisor { chaos, deadline, bundle_dir, bundle_cap }
    }
}

/// Per-attempt record installed as the ambient [`cedar_par`] context
/// while a cell runs; the pipeline hooks read it, and worker threads
/// spawned inside the cell inherit it.
struct CellCtx {
    label: String,
    rung: Rung,
    chaos: Option<u64>,
    token: CancelToken,
    sim_error: Mutex<Option<SimError>>,
    backtrace: Mutex<Option<String>>,
}

/// Lock that shrugs off poisoning: the supervisor's mutexes hold plain
/// data and every failure path here is already a failure path.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// The active cell context, if this thread (or the `par_map` caller it
/// inherited from) is running under a supervisor.
fn current() -> Option<Arc<CellCtx>> {
    let ctx: Context = cedar_par::context()?;
    let any: Arc<dyn Any + Send + Sync> = ctx;
    any.downcast::<CellCtx>().ok()
}

/// The active degradation-ladder rung's label, if a supervisor is
/// running this thread's work.
pub fn rung() -> Option<&'static str> {
    current().map(|c| c.rung.label())
}

/// The active cell's cancel token, if any — cooperative long-running
/// work outside the simulator can poll it.
pub fn cancel_token() -> Option<CancelToken> {
    current().map(|c| c.token.clone())
}

/// Record a structured simulator error for the supervisor before the
/// harness glue panics, so the failure is classified as `sim-error`
/// (or `timed-out` for watchdog timeouts) instead of a bare panic.
/// No-op without an active supervisor.
pub fn note_sim_error(e: &SimError) {
    if let Some(ctx) = current() {
        *lock(&ctx.sim_error) = Some(e.clone());
    }
}

/// Chaos gate: pipeline phases call this before doing real work
/// (`compile`, `restructure`, `simulate`, `validate`). Without an
/// active supervisor carrying a chaos seed this is a no-op; with one,
/// a deterministic draw (see [`crate::chaos`]) may panic, record an
/// injected [`SimError`], or sleep briefly. Gates run *before* any
/// cache lookup, so memoized results can never mask an injection.
pub fn gate(phase: &str) {
    let Some(ctx) = current() else { return };
    let Some(seed) = ctx.chaos else { return };
    match chaos::draw(seed, &ctx.label, ctx.rung.label(), phase) {
        None => {}
        Some(Injection::Delay(ms)) => std::thread::sleep(Duration::from_millis(ms)),
        Some(Injection::Panic) => panic!(
            "chaos[{seed}]: injected panic in `{phase}` for `{}` at rung `{}`",
            ctx.label,
            ctx.rung.label()
        ),
        Some(Injection::SimFault) => {
            let e = SimError::new(
                SimErrorKind::Unsupported,
                cedar_ir::Span::new(0),
                format!(
                    "chaos[{seed}]: injected simulator fault in `{phase}` for `{}` \
                     at rung `{}`",
                    ctx.label,
                    ctx.rung.label()
                ),
            );
            note_sim_error(&e);
            panic!("{e}");
        }
    }
}

/// Apply the active rung to a machine config: thread the cell's cancel
/// token in, and disable fast paths / enable race detection per the
/// ladder. Identity (a plain clone) without an active supervisor.
pub fn adjust_machine(mc: &MachineConfig) -> MachineConfig {
    let Some(ctx) = current() else { return mc.clone() };
    let out = mc.clone().with_cancel(ctx.token.clone());
    match ctx.rung {
        Rung::Normal => out,
        Rung::NoFastPaths | Rung::Serial => out.without_fast_paths(),
        Rung::RacesOn => out.without_fast_paths().with_race_detection(),
    }
}

/// Apply the active rung to a pass config: the `serial` rung forces
/// [`PassConfig::serial`], every other case is a plain clone.
pub fn adjust_pass(cfg: &PassConfig) -> PassConfig {
    match current() {
        Some(ctx) if ctx.rung == Rung::Serial => PassConfig::serial(),
        _ => cfg.clone(),
    }
}

/// [`adjust_pass`] + [`adjust_machine`] in one step, preserving a
/// `None` pass config (serial reference runs are already serial).
pub fn adjust(
    cfg: Option<&PassConfig>,
    mc: &MachineConfig,
) -> (Option<PassConfig>, MachineConfig) {
    (cfg.map(adjust_pass), adjust_machine(mc))
}

/// Install the supervisor's panic hook (once per process): for panics
/// on supervised threads it captures a backtrace into the cell record
/// and stays silent; unsupervised panics go to the previous hook
/// untouched.
fn install_hook() {
    static HOOK: OnceLock<()> = OnceLock::new();
    HOOK.get_or_init(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if let Some(ctx) = current() {
                let bt = std::backtrace::Backtrace::force_capture();
                *lock(&ctx.backtrace) =
                    Some(format!("{info}\n\nstack backtrace:\n{bt}"));
            } else {
                prev(info);
            }
        }));
    });
}

/// Run one attempt of a cell at `rung`: install the cell context,
/// contain any panic, and classify the failure.
fn attempt<R>(
    sup: &Supervisor,
    label: &str,
    rung: Rung,
    f: impl FnOnce() -> R,
) -> Result<R, CellError> {
    install_hook();
    let token = match sup.deadline {
        Some(d) => CancelToken::with_budget(d),
        None => CancelToken::new(),
    };
    let ctx = Arc::new(CellCtx {
        label: label.to_string(),
        rung,
        chaos: sup.chaos,
        token: token.clone(),
        sim_error: Mutex::new(None),
        backtrace: Mutex::new(None),
    });
    let prev = cedar_par::set_context(Some(ctx.clone()));
    let result = catch_unwind(AssertUnwindSafe(f));
    cedar_par::set_context(prev);
    match result {
        Ok(v) => Ok(v),
        Err(payload) => {
            let sim = lock(&ctx.sim_error).take();
            let backtrace = lock(&ctx.backtrace).take();
            let sim_kind = sim.as_ref().map(|e| e.kind);
            let (kind, msg) = match sim {
                Some(e) if e.is_timeout() => (CellErrorKind::TimedOut, e.to_string()),
                Some(e) => (CellErrorKind::Failed, e.to_string()),
                None if token.expired() => (
                    CellErrorKind::TimedOut,
                    format!(
                        "cell exceeded its wall-clock budget; final panic: {}",
                        panic_message(payload.as_ref())
                    ),
                ),
                None => (CellErrorKind::Panicked, panic_message(payload.as_ref())),
            };
            Err(CellError { kind, msg, sim: sim_kind, backtrace })
        }
    }
}

/// Run one supervised attempt of a unit of work at `rung`: the cell
/// context (cancel token with the supervisor's deadline, chaos profile,
/// rung) is installed for the duration, panics are contained and
/// classified, and the pipeline hooks ([`gate`], [`adjust_machine`],
/// [`adjust_pass`]) see the attempt exactly as they would under
/// [`run_cells`]. This is the building block `cedar-serve` drives its
/// per-request retry/backoff ladder with — one HTTP request maps to a
/// sequence of `run_attempt` calls rather than one batch sweep.
pub fn run_attempt<R>(
    sup: &Supervisor,
    label: &str,
    rung: Rung,
    f: impl FnOnce() -> R,
) -> Result<R, CellError> {
    attempt(sup, label, rung, f)
}

/// Run every cell under supervision. First pass: all cells in parallel
/// ([`cedar_par::par_map`]) at rung `normal`. Failed cells are then
/// retried serially up the degradation ladder; cells that fail at
/// every rung are quarantined with a crash bundle. The returned
/// [`Sweep`] always covers every input cell.
pub fn run_cells<T, R>(
    sup: &Supervisor,
    cells: Vec<Cell<T>>,
    f: impl Fn(&T) -> R + Sync,
) -> Sweep<R>
where
    T: Send + Sync,
    R: Send,
{
    let n = cells.len();
    let cells = &cells;
    let f = &f;
    let first: Vec<Result<R, CellError>> =
        cedar_par::par_map((0..n).collect(), |k| {
            attempt(sup, &cells[k].label, Rung::Normal, || f(&cells[k].input))
        });

    let mut sweep =
        Sweep { results: Vec::with_capacity(n), recovered: Vec::new(), quarantined: Vec::new() };
    for (k, outcome) in first.into_iter().enumerate() {
        let cell = &cells[k];
        match outcome {
            Ok(v) => sweep.results.push(Some(v)),
            Err(e0) => {
                let mut errors: Vec<(&'static str, CellError)> =
                    vec![(Rung::Normal.label(), e0)];
                let mut rescued: Option<(R, Rung)> = None;
                for rung in &Rung::LADDER[1..] {
                    match attempt(sup, &cell.label, *rung, || f(&cell.input)) {
                        Ok(v) => {
                            rescued = Some((v, *rung));
                            break;
                        }
                        Err(e) => errors.push((rung.label(), e)),
                    }
                }
                match rescued {
                    Some((v, rung)) => {
                        sweep.recovered.push(Recovery {
                            cell: cell.label.clone(),
                            rung: rung.label(),
                            errors: errors
                                .iter()
                                .map(|(r, e)| (*r, e.msg.clone()))
                                .collect(),
                        });
                        sweep.results.push(Some(v));
                    }
                    None => {
                        let bundle =
                            write_bundle(sup, &cell.label, cell.source.as_deref(), &errors);
                        let last = &errors.last().expect("ladder ran").1;
                        sweep.quarantined.push(Quarantine {
                            cell: cell.label.clone(),
                            kind: last.kind.as_str(),
                            attempts: errors
                                .iter()
                                .map(|(r, e)| (*r, e.kind.as_str(), e.msg.clone()))
                                .collect(),
                            bundle,
                        });
                        sweep.results.push(None);
                    }
                }
            }
        }
    }
    sweep
}

/// Supervise a single artifact-level job (a whole figure, an ablation
/// sweep) as one cell.
pub fn run_cell<R: Send>(
    sup: &Supervisor,
    label: impl Into<String>,
    f: impl Fn() -> R + Sync,
) -> Sweep<R> {
    run_cells(sup, vec![Cell::new(label, ())], |_: &()| f())
}

/// Strip a Fortran source to the lines that matter for reproduction:
/// comment (`!`) and blank lines go, trailing whitespace goes.
fn minimize_source(src: &str) -> String {
    let mut out = String::new();
    for line in src.lines() {
        let t = line.trim_end();
        if t.trim_start().is_empty() || t.trim_start().starts_with('!') {
            continue;
        }
        out.push_str(t);
        out.push('\n');
    }
    out
}

/// FNV-1a over a byte string (bundle digests).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The digest a quarantined cell's bundle is keyed by: the *minimized
/// source* when the cell carries one (so the same failure found under
/// different labels — two machines over one workload, two service
/// requests with one program, two fuzz seeds shrinking to one
/// reproducer — shares a single bundle directory), else the label.
pub fn bundle_digest(label: &str, minimized_source: Option<&str>) -> u64 {
    match minimized_source {
        Some(src) => fnv1a(src.as_bytes()),
        None => fnv1a(format!("label:{label}").as_bytes()),
    }
}

/// Serializes bundle-directory writes so concurrent quarantines (service
/// worker threads, parallel sweeps) never interleave a `hits.txt`
/// append with a first-write of the same directory. This only covers
/// *in-process* racers; cross-process safety comes from `O_APPEND`
/// hit appends ([`append_hit`]) and `create_new` on `bundle.json`.
fn bundle_lock() -> &'static Mutex<()> {
    static L: OnceLock<Mutex<()>> = OnceLock::new();
    L.get_or_init(Default::default)
}

/// Append one hit line for `label` to `dir/hits.txt`. The file is
/// opened `O_APPEND`, so each line lands atomically even when several
/// *processes* (campaign workers sharing one `CEDAR_BUNDLE_DIR`)
/// quarantine the same failure concurrently — the hit count of a
/// bundle is exact, not last-writer-wins. Counted on read by
/// [`bundle_hits`].
fn append_hit(dir: &std::path::Path, label: &str) -> Option<()> {
    use std::io::Write;
    let mut f = std::fs::OpenOptions::new()
        .append(true)
        .create(true)
        .open(dir.join("hits.txt"))
        .ok()?;
    f.write_all(format!("{label}\n").as_bytes()).ok()
}

/// Write (or re-hit) a crash bundle for a quarantined cell. Bundles are
/// **deduplicated by minimized-source digest**: the directory is
/// `<bundle_dir>/<digest as 16 hex chars>/`, created on the first
/// quarantine with `bundle.json` (attempt chain + metadata), `source.f`
/// (minimized Fortran, when the cell carries source), and
/// `backtrace.txt` (deepest captured backtrace). Every quarantine —
/// first or repeat — appends the cell label to `hits.txt`, so the hit
/// count of a bundle is its line count and identical failures across
/// cells/requests/campaigns share one directory instead of multiplying
/// under `target/crash-bundles/`. Returns the bundle directory; I/O
/// failures degrade to `None` rather than panicking — the supervisor
/// must never fail while reporting a failure.
fn write_bundle(
    sup: &Supervisor,
    label: &str,
    source: Option<&str>,
    errors: &[(&'static str, CellError)],
) -> Option<String> {
    let minimized = source.map(minimize_source);
    let digest = bundle_digest(label, minimized.as_deref());
    let dir = sup.bundle_dir.join(format!("{digest:016x}"));

    let _guard = lock(bundle_lock());
    std::fs::create_dir_all(&dir).ok()?;
    // `create_new` claims first-writer atomically even across
    // processes: exactly one quarantine writes the bundle metadata, the
    // rest only append their hit. (The in-process mutex alone cannot
    // arbitrate two campaign workers racing on a shared bundle dir.)
    let claim = std::fs::OpenOptions::new()
        .write(true)
        .create_new(true)
        .open(dir.join("bundle.json"));

    if let Ok(mut bundle_file) = claim {
        use std::io::Write;
        if let Some(src) = &minimized {
            std::fs::write(dir.join("source.f"), src).ok()?;
        }
        let backtrace = errors.iter().rev().find_map(|(_, e)| e.backtrace.as_deref());
        if let Some(bt) = backtrace {
            std::fs::write(dir.join("backtrace.txt"), bt).ok()?;
        }

        let esc = crate::robustness::json_escape;
        let mut json = String::from("{\n  \"schema\": \"cedar-crash-bundle-v1\",\n");
        json.push_str(&format!("  \"digest\": \"{digest:016x}\",\n"));
        json.push_str(&format!("  \"cell\": \"{}\",\n", esc(label)));
        json.push_str(&format!(
            "  \"chaos_seed\": {},\n",
            sup.chaos.map_or("null".to_string(), |s| s.to_string())
        ));
        json.push_str(&format!(
            "  \"deadline_s\": {},\n",
            sup.deadline.map_or("null".to_string(), |d| format!("{}", d.as_secs_f64()))
        ));
        json.push_str(&format!(
            "  \"source\": {},\n",
            if minimized.is_some() { "\"source.f\"" } else { "null" }
        ));
        json.push_str(&format!(
            "  \"backtrace\": {},\n",
            if errors.iter().any(|(_, e)| e.backtrace.is_some()) {
                "\"backtrace.txt\""
            } else {
                "null"
            }
        ));
        json.push_str("  \"hits\": \"hits.txt\",\n");
        json.push_str("  \"attempts\": [\n");
        for (k, (rung, e)) in errors.iter().enumerate() {
            json.push_str(&format!(
                "    {{\"rung\": \"{rung}\", \"kind\": \"{}\", \"error\": \"{}\"}}{}\n",
                e.kind.as_str(),
                esc(&e.msg),
                if k + 1 < errors.len() { "," } else { "" }
            ));
        }
        json.push_str("  ]\n}\n");
        bundle_file.write_all(json.as_bytes()).ok()?;
    }

    // Every hit — including the first — records its cell label; the
    // bundle's hit count is the line count of this file. Appended
    // `O_APPEND` so concurrent processes never lose counts.
    append_hit(&dir, label)?;
    if sup.bundle_cap > 0 {
        enforce_bundle_cap(&sup.bundle_dir, sup.bundle_cap, digest);
    }
    Some(dir.to_string_lossy().into_owned())
}

/// Evict least-recently-hit bundle directories until at most `cap`
/// remain, sparing `keep` (the bundle just written/re-hit). Recency is
/// the mtime of `hits.txt` — every quarantine touches it, so a bundle
/// that keeps firing keeps surviving. Each eviction appends
/// `<digest> <hits>` to `<bundle_dir>/evicted.txt` (`O_APPEND`, one
/// line, atomic across processes) before the directory is removed, so
/// the count is preserved: [`bundle_hits`] folds ledger lines back in,
/// including for a digest whose bundle is later recreated.
fn enforce_bundle_cap(root: &std::path::Path, cap: usize, keep: u64) {
    let keep_name = format!("{keep:016x}");
    let Ok(dirents) = std::fs::read_dir(root) else { return };
    let mut bundles: Vec<(PathBuf, String, std::time::SystemTime)> = dirents
        .flatten()
        .filter_map(|ent| {
            let name = ent.file_name().to_string_lossy().into_owned();
            // Only 16-hex bundle directories participate; the ledger
            // and any stray files are never eviction candidates.
            let is_digest =
                name.len() == 16 && name.bytes().all(|b| b.is_ascii_hexdigit());
            if !is_digest || !ent.path().is_dir() {
                return None;
            }
            let mtime = std::fs::metadata(ent.path().join("hits.txt"))
                .or_else(|_| ent.metadata())
                .and_then(|m| m.modified())
                .unwrap_or(std::time::UNIX_EPOCH);
            Some((ent.path(), name, mtime))
        })
        .collect();
    if bundles.len() <= cap {
        return;
    }
    bundles.sort_by_key(|b| b.2);
    let mut excess = bundles.len() - cap;
    for (path, name, _) in bundles {
        if excess == 0 {
            break;
        }
        if name == keep_name {
            continue;
        }
        let hits = std::fs::read_to_string(path.join("hits.txt"))
            .map(|s| s.lines().count())
            .unwrap_or(0);
        use std::io::Write;
        if let Ok(mut ledger) = std::fs::OpenOptions::new()
            .append(true)
            .create(true)
            .open(root.join("evicted.txt"))
        {
            let _ = ledger.write_all(format!("{name} {hits}\n").as_bytes());
        }
        if std::fs::remove_dir_all(&path).is_ok() {
            excess -= 1;
        }
    }
}

/// Public form of the crash-bundle writer for supervising callers that
/// run their own ladder (the service's per-request engine): write or
/// re-hit the deduplicated bundle for a failure that exhausted every
/// rung, returning the shared bundle directory.
pub fn write_quarantine_bundle(
    sup: &Supervisor,
    label: &str,
    source: Option<&str>,
    attempts: &[(&'static str, CellError)],
) -> Option<String> {
    write_bundle(sup, label, source, attempts)
}

/// Number of quarantines that have landed in a bundle directory: the
/// line count of its `hits.txt`, **plus** any counts recorded for the
/// same digest in the root `evicted.txt` ledger — so evicting a bundle
/// under [`Supervisor::bundle_cap`] and later recreating it never
/// resets how often the failure has fired. 0 when nothing is recorded.
pub fn bundle_hits(bundle_dir: &str) -> usize {
    let dir = PathBuf::from(bundle_dir);
    let live = std::fs::read_to_string(dir.join("hits.txt"))
        .map(|s| s.lines().count())
        .unwrap_or(0);
    let evicted = match (dir.file_name(), dir.parent()) {
        (Some(name), Some(root)) => {
            let name = name.to_string_lossy();
            std::fs::read_to_string(root.join("evicted.txt"))
                .map(|s| {
                    s.lines()
                        .filter_map(|l| {
                            let (digest, count) = l.split_once(' ')?;
                            (digest == name).then(|| count.trim().parse::<usize>().ok())?
                        })
                        .sum()
                })
                .unwrap_or(0)
        }
        _ => 0,
    };
    live + evicted
}

/// Render a `quarantined` JSON array (no trailing newline): embedded by
/// every sweep report writer so failed cells are first-class citizens
/// of the artifact JSON instead of vanishing from it.
pub fn quarantined_json(q: &[Quarantine]) -> String {
    if q.is_empty() {
        return "[]".to_string();
    }
    let esc = crate::robustness::json_escape;
    let mut out = String::from("[\n");
    for (k, item) in q.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"cell\": \"{}\", \"kind\": \"{}\", \"bundle\": {}, \"attempts\": [",
            esc(&item.cell),
            item.kind,
            match &item.bundle {
                Some(p) => format!("\"{}\"", esc(p)),
                None => "null".to_string(),
            },
        ));
        for (j, (rung, kind, msg)) in item.attempts.iter().enumerate() {
            out.push_str(&format!(
                "{{\"rung\": \"{rung}\", \"kind\": \"{kind}\", \"error\": \"{}\"}}",
                esc(msg)
            ));
            if j + 1 < item.attempts.len() {
                out.push_str(", ");
            }
        }
        out.push_str("]}");
        out.push_str(if k + 1 < q.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]");
    out
}

/// Render a `recovered` JSON array (no trailing newline).
pub fn recovered_json(r: &[Recovery]) -> String {
    if r.is_empty() {
        return "[]".to_string();
    }
    let esc = crate::robustness::json_escape;
    let mut out = String::from("[\n");
    for (k, item) in r.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"cell\": \"{}\", \"rung\": \"{}\"}}",
            esc(&item.cell),
            item.rung
        ));
        out.push_str(if k + 1 < r.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sup(tag: &str) -> Supervisor {
        Supervisor {
            chaos: None,
            deadline: None,
            bundle_dir: PathBuf::from(format!("target/test-crash-bundles/{tag}")),
            bundle_cap: DEFAULT_BUNDLE_CAP,
        }
    }

    #[test]
    fn clean_cells_need_no_ladder() {
        let cells = (0..8).map(|k| Cell::new(format!("t/c{k}"), k)).collect();
        let sweep = run_cells(&sup("clean"), cells, |&k: &i32| k * 2);
        assert_eq!(
            sweep.results.iter().map(|r| r.unwrap()).collect::<Vec<_>>(),
            (0..8).map(|k| k * 2).collect::<Vec<_>>()
        );
        assert!(sweep.recovered.is_empty());
        assert!(sweep.quarantined.is_empty());
    }

    #[test]
    fn rung_local_failure_recovers_up_the_ladder() {
        let sweep = run_cell(&sup("recover"), "t/flaky", || {
            if rung() == Some("normal") {
                panic!("only normal fails");
            }
            41
        });
        assert_eq!(sweep.results, vec![Some(41)]);
        assert!(sweep.quarantined.is_empty());
        let r = &sweep.recovered[0];
        assert_eq!(r.cell, "t/flaky");
        assert_eq!(r.rung, "no-fast-paths");
        assert_eq!(r.errors.len(), 1);
        assert_eq!(r.errors[0], ("normal", "only normal fails".to_string()));
    }

    #[test]
    fn persistent_failure_quarantines_with_a_crash_bundle() {
        let s = sup("quarantine");
        let cells = vec![Cell::with_source(
            "t/doomed",
            "program p\n! a comment\n\nreal x\nx = 1.0\nend\n",
            (),
        )];
        let sweep = run_cells(&s, cells, |_: &()| -> u32 { panic!("always broken") });
        assert_eq!(sweep.results, vec![None]);
        assert!(sweep.recovered.is_empty());
        let q = &sweep.quarantined[0];
        assert_eq!(q.cell, "t/doomed");
        assert_eq!(q.kind, "panicked");
        assert_eq!(q.attempts.len(), Rung::LADDER.len());
        assert_eq!(
            q.attempts.iter().map(|(r, ..)| *r).collect::<Vec<_>>(),
            vec!["normal", "no-fast-paths", "races-on", "serial"]
        );
        let dir = PathBuf::from(q.bundle.as_ref().expect("bundle written"));
        let bundle = std::fs::read_to_string(dir.join("bundle.json")).unwrap();
        assert!(bundle.contains("\"cell\": \"t/doomed\""), "{bundle}");
        assert!(bundle.contains("\"kind\": \"panicked\""), "{bundle}");
        let src = std::fs::read_to_string(dir.join("source.f")).unwrap();
        assert_eq!(src, "program p\nreal x\nx = 1.0\nend\n", "comments/blanks stripped");
        let bt = std::fs::read_to_string(dir.join("backtrace.txt")).unwrap();
        assert!(bt.contains("always broken"), "backtrace carries the panic: {bt}");
    }

    #[test]
    fn identical_sources_share_one_deduped_bundle() {
        let s = sup("dedupe");
        let _ = std::fs::remove_dir_all(&s.bundle_dir);
        // Two different labels, same source (modulo comments): the
        // digest is over the minimized source, so both quarantines land
        // in one bundle directory and `hits.txt` counts them.
        let src_a = "program q\nreal y\ny = 2.0\nend\n";
        let src_b = "program q\n! different comment\nreal y\ny = 2.0\nend\n";
        let cells = vec![
            Cell::with_source("t/dup-a", src_a, ()),
            Cell::with_source("t/dup-b", src_b, ()),
        ];
        let sweep = run_cells(&s, cells, |_: &()| -> u32 { panic!("shared failure") });
        assert_eq!(sweep.quarantined.len(), 2);
        let a = sweep.quarantined[0].bundle.as_ref().unwrap();
        let b = sweep.quarantined[1].bundle.as_ref().unwrap();
        assert_eq!(a, b, "identical minimized sources must share a bundle dir");
        assert_eq!(bundle_hits(a), 2);
        let hits = std::fs::read_to_string(PathBuf::from(a).join("hits.txt")).unwrap();
        assert!(hits.contains("t/dup-a") && hits.contains("t/dup-b"), "{hits}");
        // Exactly one bundle directory exists under this root.
        let dirs: Vec<_> = std::fs::read_dir(&s.bundle_dir).unwrap().collect();
        assert_eq!(dirs.len(), 1);
    }

    #[test]
    fn concurrent_hit_appends_lose_no_counts() {
        // Simulates multiple worker *processes* sharing a bundle dir:
        // append_hit is called concurrently without the in-process
        // bundle lock. O_APPEND must keep every line.
        let dir = PathBuf::from("target/test-crash-bundles/append-race");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let threads = 8;
        let per_thread = 50;
        std::thread::scope(|scope| {
            for t in 0..threads {
                let dir = &dir;
                scope.spawn(move || {
                    for k in 0..per_thread {
                        append_hit(dir, &format!("t{t}/hit{k}")).expect("append");
                    }
                });
            }
        });
        assert_eq!(bundle_hits(dir.to_str().unwrap()), threads * per_thread);
    }

    #[test]
    fn repeat_quarantines_append_hits_without_rewriting_metadata() {
        let s = sup("rehit");
        let _ = std::fs::remove_dir_all(&s.bundle_dir);
        let src = "program r\nreal z\nz = 3.0\nend\n";
        for _ in 0..3 {
            let cells = vec![Cell::with_source("t/rehit", src, ())];
            let sweep = run_cells(&s, cells, |_: &()| -> u32 { panic!("boom") });
            assert_eq!(sweep.quarantined.len(), 1);
        }
        let dir =
            std::fs::read_dir(&s.bundle_dir).unwrap().next().unwrap().unwrap().path();
        assert_eq!(bundle_hits(dir.to_str().unwrap()), 3);
        let bundle = std::fs::read_to_string(dir.join("bundle.json")).unwrap();
        assert!(bundle.ends_with("}\n"), "metadata written exactly once, intact");
    }

    #[test]
    fn bundle_cap_evicts_lru_and_the_ledger_preserves_hit_counts() {
        let s = Supervisor { bundle_cap: 2, ..sup("cap") };
        let _ = std::fs::remove_dir_all(&s.bundle_dir);
        let err = || {
            vec![(
                "normal",
                CellError {
                    kind: CellErrorKind::Panicked,
                    msg: "kaboom".into(),
                    sim: None,
                    backtrace: None,
                },
            )]
        };
        // Three distinct failures (distinct sources → distinct digests);
        // the first is hit three times, then falls LRU when the other
        // two arrive under a cap of 2.
        let first =
            write_quarantine_bundle(&s, "t/a", Some("x = 1\nend\n"), &err()).unwrap();
        write_quarantine_bundle(&s, "t/a2", Some("x = 1\nend\n"), &err()).unwrap();
        write_quarantine_bundle(&s, "t/a3", Some("x = 1\nend\n"), &err()).unwrap();
        assert_eq!(bundle_hits(&first), 3);
        std::thread::sleep(Duration::from_millis(5));
        write_quarantine_bundle(&s, "t/b", Some("y = 2\nend\n"), &err()).unwrap();
        std::thread::sleep(Duration::from_millis(5));
        write_quarantine_bundle(&s, "t/c", Some("z = 3\nend\n"), &err()).unwrap();

        let live: Vec<_> = std::fs::read_dir(&s.bundle_dir)
            .unwrap()
            .flatten()
            .filter(|e| e.path().is_dir())
            .collect();
        assert_eq!(live.len(), 2, "cap of 2 must hold after the third bundle");
        assert!(
            !PathBuf::from(&first).exists(),
            "the least-recently-hit bundle must be the one evicted"
        );
        // The ledger keeps the evicted digest's count — both directly
        // and through a recreated bundle for the same failure.
        assert_eq!(bundle_hits(&first), 3, "evicted counts must survive in the ledger");
        let again =
            write_quarantine_bundle(&s, "t/a4", Some("x = 1\nend\n"), &err()).unwrap();
        assert_eq!(again, first, "same minimized source → same digest → same dir");
        assert_eq!(bundle_hits(&again), 4, "ledger + fresh hit");
    }

    #[test]
    fn sim_errors_are_classified_not_panicked() {
        let sweep = run_cell(&sup("simerr"), "t/simfail", || -> u32 {
            let e = SimError::new(
                SimErrorKind::Deadlock,
                cedar_ir::Span::new(3),
                "await(1) stuck",
            );
            note_sim_error(&e);
            panic!("{e}");
        });
        let q = &sweep.quarantined[0];
        assert_eq!(q.kind, "sim-error");
        assert!(q.attempts[0].2.contains("await(1) stuck"));
    }

    #[test]
    fn expired_deadline_is_classified_as_timeout() {
        let s = Supervisor {
            deadline: Some(Duration::from_millis(1)),
            ..sup("deadline")
        };
        let sweep = run_cell(&s, "t/slowpoke", || -> u32 {
            let token = cancel_token().expect("supervised cell has a token");
            while !token.expired() {
                std::hint::spin_loop();
            }
            panic!("cooperative abort");
        });
        let q = &sweep.quarantined[0];
        assert_eq!(q.kind, "timed-out");
        assert!(q.attempts.iter().all(|(_, k, _)| *k == "timed-out"), "{q:?}");
    }

    #[test]
    fn adjust_is_identity_without_a_supervisor() {
        let mc = MachineConfig::cedar_config1_scaled();
        let cfg = PassConfig::automatic_1991();
        assert_eq!(format!("{:?}", adjust_machine(&mc)), format!("{mc:?}"));
        assert_eq!(format!("{:?}", adjust_pass(&cfg)), format!("{cfg:?}"));
        assert!(rung().is_none());
        assert!(cancel_token().is_none());
    }

    #[test]
    fn adjust_tracks_the_ladder() {
        let seen = Mutex::new(Vec::new());
        let sweep = run_cell(&sup("adjust"), "t/ladder", || -> u32 {
            let mc = adjust_machine(&MachineConfig::cedar_config1_scaled());
            let cfg = adjust_pass(&PassConfig::automatic_1991());
            lock(&seen).push((
                rung().unwrap(),
                mc.fast_paths,
                mc.detect_races,
                mc.cancel.is_some(),
                format!("{cfg:?}") == format!("{:?}", PassConfig::serial()),
            ));
            panic!("drive the ladder");
        });
        assert_eq!(sweep.quarantined.len(), 1);
        let seen = lock(&seen);
        assert_eq!(
            *seen,
            vec![
                ("normal", true, false, true, false),
                ("no-fast-paths", false, false, true, false),
                ("races-on", false, true, true, false),
                ("serial", false, false, true, true),
            ]
        );
    }

    #[test]
    fn quarantined_json_shape() {
        assert_eq!(quarantined_json(&[]), "[]");
        let q = Quarantine {
            cell: "t/x".into(),
            kind: "panicked",
            attempts: vec![("normal", "panicked", "boom \"quoted\"".into())],
            bundle: None,
        };
        let json = quarantined_json(&[q]);
        assert!(json.contains("\"cell\": \"t/x\""), "{json}");
        assert!(json.contains("boom \\\"quoted\\\""), "{json}");
        assert!(json.starts_with("[\n") && json.ends_with("  ]"), "{json}");
    }
}
