fn main() {
    let ms = cedar_experiments::fig9::run();
    print!("{}", cedar_experiments::fig9::render(&ms));
}
