//! Regenerate every table and figure of the paper in one run.
fn main() {
    let t0 = std::time::Instant::now();
    let rows = cedar_experiments::table1::run();
    println!("{}", cedar_experiments::table1::render(&rows));
    let rows = cedar_experiments::table2::run();
    println!("{}", cedar_experiments::table2::render(&rows));
    let (ser, crit, par) = cedar_experiments::table2::qcd_footnote();
    println!(
        "QCD footnote (Cedar): RNG cycle serialized {ser:.2}x (paper 1.8), \
         critical section {crit:.2}x (paper 4.5), parallel RNG {par:.2}x (paper 20.8)\n"
    );
    let bars = cedar_experiments::fig6::run();
    println!("{}", cedar_experiments::fig6::render(&bars));
    let f = cedar_experiments::fig7::run();
    println!("{}", cedar_experiments::fig7::render(&f));
    let (series, _) = cedar_experiments::fig8::run();
    println!("{}", cedar_experiments::fig8::render(&series));
    let ms = cedar_experiments::fig9::run();
    println!("{}", cedar_experiments::fig9::render(&ms));
    let sweeps = cedar_experiments::ablation::run_all();
    println!("{}", cedar_experiments::ablation::render(&sweeps));
    eprintln!("total wall time: {:.1}s", t0.elapsed().as_secs_f64());
}
