//! Regenerate every table and figure of the paper in one run, under
//! the supervised experiment engine (DESIGN.md §10).
//!
//! Usage: `all [--json PATH]` — a supervision report (recovered and
//! quarantined cells) is written to `target/artifacts.json` unless
//! overridden. On a clean run stdout is byte-identical to the
//! unsupervised harness; failed cells are retried up the degradation
//! ladder, and cells quarantined at every rung are reported on stderr
//! and in the JSON instead of aborting the suite.
//!
//! Exit codes (see README "Exit codes"): 0 = every cell completed,
//! 2 = harness error (at least one cell quarantined; crash bundles are
//! under `target/crash-bundles/`).

use cedar_experiments::exitcode;
use cedar_experiments::supervise::{self, Quarantine, Recovery, Supervisor};

fn main() {
    let mut json_path = String::from("target/artifacts.json");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--json" {
            if let Some(p) = args.next() {
                json_path = p;
            }
        }
    }

    let sup = Supervisor::from_env();
    let t0 = std::time::Instant::now();
    let mut recovered: Vec<Recovery> = Vec::new();
    let mut quarantined: Vec<Quarantine> = Vec::new();
    fn collect(
        r: Vec<Recovery>,
        q: Vec<Quarantine>,
        recovered: &mut Vec<Recovery>,
        quarantined: &mut Vec<Quarantine>,
    ) {
        recovered.extend(r);
        quarantined.extend(q);
    }

    let (rows, r, q) = cedar_experiments::table1::run_supervised(&sup);
    collect(r, q, &mut recovered, &mut quarantined);
    println!("{}", cedar_experiments::table1::render(&rows));

    let (rows, r, q) = cedar_experiments::table2::run_supervised(&sup);
    collect(r, q, &mut recovered, &mut quarantined);
    println!("{}", cedar_experiments::table2::render(&rows));

    let footnote = supervise::run_cell(&sup, "table2/QCD/footnote", || {
        cedar_experiments::table2::qcd_footnote()
    });
    collect(footnote.recovered, footnote.quarantined, &mut recovered, &mut quarantined);
    if let Some((ser, crit, par)) = footnote.results.into_iter().next().flatten() {
        println!(
            "QCD footnote (Cedar): RNG cycle serialized {ser:.2}x (paper 1.8), \
             critical section {crit:.2}x (paper 4.5), parallel RNG {par:.2}x (paper 20.8)\n"
        );
    }

    let sweep = supervise::run_cell(&sup, "fig6", cedar_experiments::fig6::run);
    collect(sweep.recovered, sweep.quarantined, &mut recovered, &mut quarantined);
    if let Some(bars) = sweep.results.into_iter().next().flatten() {
        println!("{}", cedar_experiments::fig6::render(&bars));
    }

    let sweep = supervise::run_cell(&sup, "fig7", cedar_experiments::fig7::run);
    collect(sweep.recovered, sweep.quarantined, &mut recovered, &mut quarantined);
    if let Some(f) = sweep.results.into_iter().next().flatten() {
        println!("{}", cedar_experiments::fig7::render(&f));
    }

    let sweep = supervise::run_cell(&sup, "fig8", cedar_experiments::fig8::run);
    collect(sweep.recovered, sweep.quarantined, &mut recovered, &mut quarantined);
    if let Some((series, _)) = sweep.results.into_iter().next().flatten() {
        println!("{}", cedar_experiments::fig8::render(&series));
    }

    let sweep = supervise::run_cell(&sup, "fig9", cedar_experiments::fig9::run);
    collect(sweep.recovered, sweep.quarantined, &mut recovered, &mut quarantined);
    if let Some(ms) = sweep.results.into_iter().next().flatten() {
        println!("{}", cedar_experiments::fig9::render(&ms));
    }

    let sweep = supervise::run_cell(&sup, "ablation", cedar_experiments::ablation::run_all);
    collect(sweep.recovered, sweep.quarantined, &mut recovered, &mut quarantined);
    if let Some(sweeps) = sweep.results.into_iter().next().flatten() {
        println!("{}", cedar_experiments::ablation::render(&sweeps));
    }

    eprintln!("total wall time: {:.1}s", t0.elapsed().as_secs_f64());

    let mut json = String::from("{\n  \"schema\": \"cedar-artifacts-v1\",\n");
    json.push_str(&format!(
        "  \"chaos_seed\": {},\n",
        sup.chaos.map_or("null".to_string(), |s| s.to_string())
    ));
    json.push_str(&format!(
        "  \"deadline_s\": {},\n",
        sup.deadline.map_or("null".to_string(), |d| format!("{}", d.as_secs_f64()))
    ));
    json.push_str(&format!(
        "  \"recovered\": {},\n",
        supervise::recovered_json(&recovered)
    ));
    json.push_str(&format!(
        "  \"quarantined\": {}\n}}\n",
        supervise::quarantined_json(&quarantined)
    ));
    if let Some(dir) = std::path::Path::new(&json_path).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    match std::fs::write(&json_path, json) {
        Ok(()) => eprintln!("wrote {json_path}"),
        Err(e) => eprintln!("could not write {json_path}: {e}"),
    }

    if !recovered.is_empty() {
        for r in &recovered {
            eprintln!("recovered `{}` at rung `{}`", r.cell, r.rung);
        }
    }
    if !quarantined.is_empty() {
        for q in &quarantined {
            eprintln!(
                "QUARANTINED `{}` ({}): {}{}",
                q.cell,
                q.kind,
                q.attempts.last().map(|(_, _, m)| robustness_trim(m)).unwrap_or_default(),
                q.bundle
                    .as_ref()
                    .map(|b| format!(" [bundle: {b}]"))
                    .unwrap_or_default()
            );
        }
        eprintln!(
            "HARNESS ERROR: {} cell(s) quarantined; crash bundles under {}",
            quarantined.len(),
            sup.bundle_dir.display()
        );
    }
    std::process::exit(exitcode::classify(false, quarantined.len()));
}

/// First line of an error message, for one-line stderr summaries.
fn robustness_trim(msg: &str) -> &str {
    msg.lines().next().unwrap_or(msg)
}
