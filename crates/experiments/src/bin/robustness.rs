//! Robustness sweep: differentially validate every Table 1 / Table 2
//! workload under N perturbation seeds and emit a JSON report.
//!
//! Usage: `robustness [N_SEEDS] [--json PATH]` (default 8 seeds; JSON
//! goes to `target/robustness.json` unless overridden). Exits non-zero
//! when any workload needed a serial fallback or degraded entirely —
//! every recorded divergence, deadlock, or race fails a CI gate.

fn main() {
    let mut n_seeds: u64 = 8;
    let mut json_path = String::from("target/robustness.json");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--json" => {
                if let Some(p) = args.next() {
                    json_path = p;
                }
            }
            other => {
                if let Ok(n) = other.parse() {
                    n_seeds = n;
                }
            }
        }
    }

    let rows = cedar_experiments::robustness::run(n_seeds);
    print!("{}", cedar_experiments::robustness::render(&rows));

    let degraded = rows.iter().filter(|r| r.degraded).count();
    let fallbacks: usize = rows.iter().map(|r| r.fallbacks).sum();
    let bitwise = rows.iter().filter(|r| r.bit_identical).count();
    println!(
        "\n{} workloads x {} seeds: {} bit-identical, {} fallback(s), {} degraded",
        rows.len(),
        n_seeds,
        bitwise,
        fallbacks,
        degraded
    );

    let json = cedar_experiments::robustness::to_json(&rows, n_seeds);
    if let Some(dir) = std::path::Path::new(&json_path).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    match std::fs::write(&json_path, json) {
        Ok(()) => println!("wrote {json_path}"),
        Err(e) => eprintln!("could not write {json_path}: {e}"),
    }

    if fallbacks > 0 || degraded > 0 {
        for r in &rows {
            for note in &r.fallback_notes {
                eprintln!("  {}: {note}", r.workload);
            }
        }
        eprintln!("FAIL: {fallbacks} fallback(s), {degraded} degraded workload(s)");
        std::process::exit(1);
    }
}
