//! Robustness sweep: differentially validate every Table 1 / Table 2
//! workload under N perturbation seeds and emit a JSON report.
//!
//! Usage: `robustness [N_SEEDS] [--json PATH]` (default 8 seeds; JSON
//! goes to `target/robustness.json` unless overridden).
//!
//! Runs under the supervised experiment engine: a workload whose
//! validation job panics, times out, or dies on a simulator fault at
//! every degradation-ladder rung is quarantined (crash bundle under
//! `target/crash-bundles/`, `quarantined` section in the JSON) instead
//! of aborting the sweep.
//!
//! Exit codes (see README "Exit codes"): 0 = clean; 1 = validation
//! failure (a workload needed a serial fallback or degraded entirely);
//! 2 = harness error (at least one cell quarantined — the validation
//! verdict is incomplete, so this outranks code 1).

use cedar_experiments::{exitcode, robustness, Supervisor};

fn main() {
    let mut n_seeds: u64 = 8;
    let mut json_path = String::from("target/robustness.json");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--json" => {
                if let Some(p) = args.next() {
                    json_path = p;
                }
            }
            other => {
                if let Ok(n) = other.parse() {
                    n_seeds = n;
                }
            }
        }
    }

    let sup = Supervisor::from_env();
    let (rows, recovered, quarantined) = robustness::run_supervised(n_seeds, &sup);
    print!("{}", robustness::render(&rows));

    let degraded = rows.iter().filter(|r| r.degraded).count();
    let fallbacks: usize = rows.iter().map(|r| r.fallbacks).sum();
    let bitwise = rows.iter().filter(|r| r.bit_identical).count();
    println!(
        "\n{} workloads x {} seeds: {} bit-identical, {} fallback(s), {} degraded",
        rows.len(),
        n_seeds,
        bitwise,
        fallbacks,
        degraded
    );

    let json = robustness::to_json(&rows, n_seeds, &quarantined);
    if let Some(dir) = std::path::Path::new(&json_path).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    match std::fs::write(&json_path, json) {
        Ok(()) => println!("wrote {json_path}"),
        Err(e) => eprintln!("could not write {json_path}: {e}"),
    }

    for r in &recovered {
        eprintln!("recovered `{}` at rung `{}`", r.cell, r.rung);
    }
    if fallbacks > 0 || degraded > 0 {
        for r in &rows {
            for note in &r.fallback_notes {
                eprintln!("  {}: {note}", r.workload);
            }
        }
        eprintln!("FAIL: {fallbacks} fallback(s), {degraded} degraded workload(s)");
    }
    if !quarantined.is_empty() {
        for q in &quarantined {
            eprintln!("QUARANTINED `{}` ({})", q.cell, q.kind);
        }
        eprintln!("HARNESS ERROR: {} cell(s) quarantined", quarantined.len());
    }
    std::process::exit(exitcode::classify(
        fallbacks > 0 || degraded > 0,
        quarantined.len(),
    ));
}
