fn main() {
    let bars = cedar_experiments::fig6::run();
    print!("{}", cedar_experiments::fig6::render(&bars));
}
