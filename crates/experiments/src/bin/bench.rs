//! Perf-trajectory bench harness: times every pipeline phase (parse,
//! analyze, restructure, simulate, verify) over the Table 1 + Table 2
//! workload pool plus the full artifact suite, and writes the
//! measurements to `BENCH_pipeline.json`.
//!
//! Usage:
//!
//! ```text
//! bench [--out PATH] [--check BASELINE.json]
//! ```
//!
//! With `--check`, every entry present in both the fresh run and the
//! baseline is compared; any phase more than 25 % slower than the
//! baseline fails the run (exit code 1 — a validation failure in the
//! README "Exit codes" taxonomy; bad usage exits 2). Entries missing
//! from either side are ignored, so the baseline stays
//! forward-compatible when phases are added.
//!
//! Phase loops run serially (stable timings); the `suite` entry runs
//! the same artifact generators as the `all` binary and therefore uses
//! the `cedar-par` worker pool and the shared restructure cache.

use cedar_restructure::PassConfig;
use cedar_sim::{Engine, MachineConfig};
use cedar_verify::ValidationConfig;
use cedar_workloads::Workload;
use std::time::Instant;

/// One timed entry of the report.
struct Entry {
    name: &'static str,
    /// Mean wall seconds per iteration.
    wall_s: f64,
    /// Iterations averaged over.
    iters: u32,
}

/// The workload pool: every Table 1 and Table 2 row, tagged with the
/// pass configuration its suite uses.
fn pool() -> Vec<(Workload, PassConfig)> {
    cedar_workloads::table1_workloads()
        .into_iter()
        .map(|w| (w, PassConfig::automatic_1991()))
        .chain(
            cedar_workloads::table2_workloads()
                .into_iter()
                .map(|w| (w, PassConfig::manual_improved())),
        )
        .collect()
}

/// Time `f` over `iters` repetitions; returns mean seconds.
fn time<F: FnMut()>(iters: u32, mut f: F) -> f64 {
    let t0 = Instant::now();
    for _ in 0..iters {
        f();
    }
    t0.elapsed().as_secs_f64() / f64::from(iters)
}

/// Walk every top-level loop of `body`, analyzing carried dependences.
fn analyze_body(
    unit: &cedar_ir::Unit,
    body: &[cedar_ir::Stmt],
    summaries: &cedar_analysis::interproc::ProgramSummaries,
    sink: &mut usize,
) {
    for s in body {
        match s {
            cedar_ir::Stmt::Loop(l) => {
                let deps = cedar_analysis::depend::analyze_loop(unit, l, Some(summaries));
                *sink += deps.deps.len();
                analyze_body(unit, &l.body, summaries, sink);
            }
            cedar_ir::Stmt::If { then_body, elifs, else_body, .. } => {
                analyze_body(unit, then_body, summaries, sink);
                for (_, b) in elifs {
                    analyze_body(unit, b, summaries, sink);
                }
                analyze_body(unit, else_body, summaries, sink);
            }
            _ => {}
        }
    }
}

fn main() {
    let mut out_path = String::from("BENCH_pipeline.json");
    let mut check_path: Option<String> = None;
    let mut argv = std::env::args().skip(1);
    while let Some(a) = argv.next() {
        match a.as_str() {
            "--out" => out_path = argv.next().expect("--out needs a path"),
            "--check" => check_path = Some(argv.next().expect("--check needs a path")),
            other => {
                eprintln!("unknown argument `{other}` (expected --out/--check)");
                std::process::exit(cedar_experiments::exitcode::HARNESS);
            }
        }
    }

    let jobs = cedar_par::jobs();
    let pool = pool();
    // The `simulate`/`verify` entries pin the tree-walking interpreter
    // so the perf trajectory stays comparable across commits; the
    // `*_vm` entries measure the bytecode engine on the same pool.
    let mc = MachineConfig::cedar_config1_scaled().with_engine(Engine::Interp);
    let mc_vm = MachineConfig::cedar_config1_scaled().with_engine(Engine::Vm);
    let mut entries: Vec<Entry> = Vec::new();
    let push = |entries: &mut Vec<Entry>, name, wall_s, iters| {
        eprintln!("  {name:<24} {:>9.1} ms/iter ({iters} iters)", wall_s * 1e3);
        entries.push(Entry { name, wall_s, iters });
    };

    eprintln!("bench: {} workloads, {jobs} job(s)", pool.len());

    // --- parse + lower -------------------------------------------------
    let mut programs = Vec::new();
    let parse_s = time(5, || {
        programs = pool.iter().map(|(w, _)| w.compile()).collect();
    });
    push(&mut entries, "parse", parse_s, 5);

    // --- dependence analysis ------------------------------------------
    let mut dep_count = 0usize;
    let analyze_s = time(5, || {
        dep_count = 0;
        for p in &programs {
            let summaries = cedar_analysis::interproc::summarize(p);
            for unit in &p.units {
                analyze_body(unit, &unit.body, &summaries, &mut dep_count);
            }
        }
    });
    push(&mut entries, "analyze", analyze_s, 5);

    // --- restructure ---------------------------------------------------
    let mut restructured = Vec::new();
    let restructure_s = time(3, || {
        restructured = pool
            .iter()
            .zip(&programs)
            .map(|((_, cfg), p)| cedar_restructure::restructure(p, cfg).program)
            .collect::<Vec<_>>();
    });
    push(&mut entries, "restructure", restructure_s, 3);

    // --- simulate (fast paths on, then off — the interpreter ablation) -
    let mut cycles = 0.0f64;
    let simulate_s = time(1, || {
        cycles = restructured
            .iter()
            .map(|p| cedar_sim::run(p, mc.clone()).expect("simulate").cycles())
            .sum();
    });
    push(&mut entries, "simulate", simulate_s, 1);
    let slow_mc = mc.clone().without_fast_paths();
    let mut slow_cycles = 0.0f64;
    let simulate_slow_s = time(1, || {
        slow_cycles = restructured
            .iter()
            .map(|p| cedar_sim::run(p, slow_mc.clone()).expect("simulate").cycles())
            .sum();
    });
    push(&mut entries, "simulate_no_fast_paths", simulate_slow_s, 1);
    assert_eq!(
        cycles.to_bits(),
        slow_cycles.to_bits(),
        "fast paths changed simulated cycles"
    );

    // --- simulate on the bytecode VM (compile-once/run-many) -----------
    let artifacts: Vec<_> = restructured.iter().map(cedar_sim::compile).collect();
    let mut vm_cycles = 0.0f64;
    let simulate_vm_s = time(1, || {
        vm_cycles = restructured
            .iter()
            .zip(&artifacts)
            .map(|(p, a)| {
                cedar_sim::run_precompiled(p, mc_vm.clone(), a)
                    .expect("simulate_vm")
                    .cycles()
            })
            .sum();
    });
    push(&mut entries, "simulate_vm", simulate_vm_s, 1);
    assert_eq!(
        cycles.to_bits(),
        vm_cycles.to_bits(),
        "VM diverged from the tree-walking interpreter"
    );

    // --- verify (1 perturbation seed per workload) ---------------------
    let vcfg = ValidationConfig { seeds: vec![1], ..Default::default() };
    let verify_s = time(1, || {
        for ((w, cfg), p) in pool.iter().zip(&programs) {
            cedar_verify::restructure_validated(p, cfg, &mc, &w.watch, &vcfg)
                .unwrap_or_else(|e| panic!("verify `{}`: {e}", w.name));
        }
    });
    push(&mut entries, "verify", verify_s, 1);
    let verify_vm_s = time(1, || {
        for ((w, cfg), p) in pool.iter().zip(&programs) {
            cedar_verify::restructure_validated(p, cfg, &mc_vm, &w.watch, &vcfg)
                .unwrap_or_else(|e| panic!("verify_vm `{}`: {e}", w.name));
        }
    });
    push(&mut entries, "verify_vm", verify_vm_s, 1);
    // The VM verify path shares one compiled artifact across the base
    // run, the race run, and every perturbation seed, and the serial
    // reference is pinned to the tree-walker — so it must stay inside
    // the same +25 % gate the baseline check applies between commits.
    if verify_vm_s > verify_s * 1.25 {
        eprintln!(
            "bench: verify_vm {:.1} ms is more than 25% over verify {:.1} ms",
            verify_vm_s * 1e3,
            verify_s * 1e3
        );
        std::process::exit(cedar_experiments::exitcode::VALIDATION);
    }

    // --- full artifact suite (the `all` binary's work) -----------------
    let suite_s = time(1, || {
        let rows = cedar_experiments::table1::run();
        assert!(!rows.is_empty());
        let rows = cedar_experiments::table2::run();
        assert!(!rows.is_empty());
        cedar_experiments::table2::qcd_footnote();
        cedar_experiments::fig6::run();
        cedar_experiments::fig7::run();
        cedar_experiments::fig8::run();
        cedar_experiments::fig9::run();
        cedar_experiments::ablation::run_all();
    });
    push(&mut entries, "suite", suite_s, 1);

    // The seed-commit `all` binary measured 8.3 s wall on the reference
    // 1-core container (commit 18ab22b, /tmp cold run); the optimized
    // suite is compared against that recorded trajectory point.
    let seed_suite_wall_s = 8.3;
    let fast_path_speedup = simulate_slow_s / simulate_s;
    let vm_speedup = verify_s / verify_vm_s;
    let suite_speedup_vs_seed = seed_suite_wall_s / suite_s;
    eprintln!(
        "bench: fast-path sim speedup {fast_path_speedup:.2}x, \
         vm verify speedup {vm_speedup:.2}x, \
         suite {suite_s:.2}s = {suite_speedup_vs_seed:.2}x vs seed {seed_suite_wall_s}s"
    );

    let mut json = String::from("{\n  \"schema\": \"cedar-bench-pipeline-v1\",\n");
    json.push_str(&format!("  \"jobs\": {jobs},\n"));
    json.push_str(&format!("  \"workloads\": {},\n", pool.len()));
    json.push_str("  \"entries\": [\n");
    for (k, e) in entries.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"wall_s\": {:.6}, \"iters\": {}}}{}\n",
            e.name,
            e.wall_s,
            e.iters,
            if k + 1 < entries.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!("  \"fast_path_speedup\": {fast_path_speedup:.3},\n"));
    json.push_str(&format!("  \"vm_speedup\": {vm_speedup:.3},\n"));
    json.push_str(&format!("  \"seed_suite_wall_s\": {seed_suite_wall_s},\n"));
    json.push_str(&format!("  \"suite_speedup_vs_seed\": {suite_speedup_vs_seed:.3}\n"));
    json.push_str("}\n");
    std::fs::write(&out_path, &json).expect("write report");
    eprintln!("bench: wrote {out_path}");

    if let Some(base) = check_path {
        let baseline = std::fs::read_to_string(&base)
            .unwrap_or_else(|e| panic!("read baseline `{base}`: {e}"));
        let mut failures = Vec::new();
        for e in &entries {
            let Some(base_wall) = extract_wall(&baseline, e.name) else { continue };
            let ratio = e.wall_s / base_wall;
            if ratio > 1.25 {
                failures.push(format!(
                    "{}: {:.1} ms vs baseline {:.1} ms ({:.0}% slower)",
                    e.name,
                    e.wall_s * 1e3,
                    base_wall * 1e3,
                    (ratio - 1.0) * 100.0
                ));
            }
        }
        if failures.is_empty() {
            eprintln!("bench: within 25% of {base} on every shared entry");
        } else {
            eprintln!("bench: REGRESSION vs {base}:");
            for f in &failures {
                eprintln!("  {f}");
            }
            std::process::exit(cedar_experiments::exitcode::VALIDATION);
        }
    }
}

/// Pull `wall_s` for entry `name` out of a v1 report without a JSON
/// dependency: entries are single-line objects written by this binary.
fn extract_wall(report: &str, name: &str) -> Option<f64> {
    let tag = format!("\"name\": \"{name}\"");
    let line = report.lines().find(|l| l.contains(&tag))?;
    let rest = line.split("\"wall_s\": ").nth(1)?;
    let num: String = rest
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-' || *c == 'e')
        .collect();
    num.parse().ok()
}
