fn main() {
    let rows = cedar_experiments::table2::run();
    print!("{}", cedar_experiments::table2::render(&rows));
    let (ser, crit, par) = cedar_experiments::table2::qcd_footnote();
    println!(
        "\nQCD footnote (Cedar): RNG cycle serialized {ser:.2}x (paper 1.8), \
         critical section {crit:.2}x (paper 4.5), parallel RNG {par:.2}x (paper 20.8)"
    );
}
