fn main() {
    let rows = cedar_experiments::table1::run();
    print!("{}", cedar_experiments::table1::render(&rows));
}
