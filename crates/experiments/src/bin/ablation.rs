fn main() {
    let sweeps = cedar_experiments::ablation::run_all();
    print!("{}", cedar_experiments::ablation::render(&sweeps));
}
