fn main() {
    let f = cedar_experiments::fig7::run();
    print!("{}", cedar_experiments::fig7::render(&f));
}
