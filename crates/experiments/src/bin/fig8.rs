fn main() {
    let (series, _) = cedar_experiments::fig8::run();
    print!("{}", cedar_experiments::fig8::render(&series));
}
