//! Race-detector sweep: every restructured Table 1 / Table 2 workload
//! (expected clean) plus the seeded racy negatives (expected flagged),
//! with a JSON confusion matrix.
//!
//! Usage: `races [--json PATH]` (JSON goes to `target/races.json`
//! unless overridden). Exits non-zero on any false positive, false
//! negative, or detector-induced cycle difference — suitable as a CI
//! gate.

fn main() {
    let mut json_path = String::from("target/races.json");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--json" {
            if let Some(p) = args.next() {
                json_path = p;
            }
        }
    }

    let rows = cedar_experiments::races::run();
    print!("{}", cedar_experiments::races::render(&rows));

    let c = cedar_experiments::races::confusion(&rows);
    let cycle_breaks = rows.iter().filter(|r| !r.cycles_identical).count();
    println!(
        "\nconfusion: {} true positive, {} false negative, {} false positive, \
         {} true negative; {} cycle-count mismatch(es)",
        c.true_positive, c.false_negative, c.false_positive, c.true_negative, cycle_breaks
    );

    let json = cedar_experiments::races::to_json(&rows);
    if let Some(dir) = std::path::Path::new(&json_path).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    match std::fs::write(&json_path, json) {
        Ok(()) => println!("wrote {json_path}"),
        Err(e) => eprintln!("could not write {json_path}: {e}"),
    }

    if c.false_negative > 0 || c.false_positive > 0 || cycle_breaks > 0 {
        eprintln!(
            "FAIL: {} false negative(s), {} false positive(s), {} cycle mismatch(es)",
            c.false_negative, c.false_positive, cycle_breaks
        );
        std::process::exit(1);
    }
}
