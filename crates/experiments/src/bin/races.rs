//! Race-detector sweep: every restructured Table 1 / Table 2 workload
//! (expected clean) plus the seeded racy negatives (expected flagged),
//! with a JSON confusion matrix.
//!
//! Usage: `races [--json PATH]` (JSON goes to `target/races.json`
//! unless overridden).
//!
//! Runs under the supervised experiment engine: a program whose
//! detector run panics, times out, or dies on a simulator fault at
//! every degradation-ladder rung is quarantined (crash bundle under
//! `target/crash-bundles/`, `quarantined` section in the JSON) instead
//! of aborting the sweep.
//!
//! Exit codes (see README "Exit codes"): 0 = clean; 1 = validation
//! failure (false positive/negative or detector-induced cycle
//! difference); 2 = harness error (at least one cell quarantined — the
//! confusion matrix is incomplete, so this outranks code 1).

use cedar_experiments::{exitcode, races, Supervisor};

fn main() {
    let mut json_path = String::from("target/races.json");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--json" {
            if let Some(p) = args.next() {
                json_path = p;
            }
        }
    }

    let sup = Supervisor::from_env();
    let (rows, recovered, quarantined) = races::run_supervised(&sup);
    print!("{}", races::render(&rows));

    let c = races::confusion(&rows);
    let cycle_breaks = rows.iter().filter(|r| !r.cycles_identical).count();
    println!(
        "\nconfusion: {} true positive, {} false negative, {} false positive, \
         {} true negative; {} cycle-count mismatch(es)",
        c.true_positive, c.false_negative, c.false_positive, c.true_negative, cycle_breaks
    );

    let json = races::to_json(&rows, &quarantined);
    if let Some(dir) = std::path::Path::new(&json_path).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    match std::fs::write(&json_path, json) {
        Ok(()) => println!("wrote {json_path}"),
        Err(e) => eprintln!("could not write {json_path}: {e}"),
    }

    for r in &recovered {
        eprintln!("recovered `{}` at rung `{}`", r.cell, r.rung);
    }
    let validation_failed = c.false_negative > 0 || c.false_positive > 0 || cycle_breaks > 0;
    if validation_failed {
        eprintln!(
            "FAIL: {} false negative(s), {} false positive(s), {} cycle mismatch(es)",
            c.false_negative, c.false_positive, cycle_breaks
        );
    }
    if !quarantined.is_empty() {
        for q in &quarantined {
            eprintln!("QUARANTINED `{}` ({})", q.cell, q.kind);
        }
        eprintln!("HARNESS ERROR: {} cell(s) quarantined", quarantined.len());
    }
    std::process::exit(exitcode::classify(validation_failed, quarantined.len()));
}
