//! Figure 6: the effect of compiler-inserted prefetch instructions on
//! Conjugate Gradient and TRFD.
//!
//! "Although there is an improvement of up to 100% in CG, TRFD exhibits
//! only a 15% gain, primarily because vector lengths are large in CG
//! and small in TRFD. In addition, the manually optimized version of
//! TRFD has a high percentage of its references privatized."

use crate::pipeline::run_program;
use cedar_restructure::PassConfig;
use cedar_sim::MachineConfig;

/// One bar of Figure 6.
#[derive(Debug, Clone)]
pub struct Bar {
    /// Program label.
    pub program: &'static str,
    /// Cycles with the prefetch buffer disabled.
    pub no_prefetch_cycles: f64,
    /// Cycles with prefetch on.
    pub prefetch_cycles: f64,
    /// Relative speed with prefetch (no-prefetch = 1.0).
    pub gain: f64,
    /// The gain Figure 6 reports.
    pub paper_gain: f64,
}

/// Measure both prefetch settings for each Figure-6 program. The four
/// (program, prefetch) cells are independent jobs; the restructure of
/// each program is shared between its two cells via [`crate::cache`].
pub fn run() -> Vec<Bar> {
    let specs: Vec<(&'static str, cedar_workloads::Workload, PassConfig, f64)> = vec![
        (
            "Conjugate Gradient",
            cedar_workloads::linalg::cg(192),
            PassConfig::automatic_1991(),
            2.0,
        ),
        (
            "TRFD",
            cedar_workloads::perfect::trfd(),
            PassConfig::manual_improved(),
            1.15,
        ),
    ];
    let cells: Vec<(usize, bool)> = (0..specs.len())
        .flat_map(|k| [(k, true), (k, false)])
        .collect();
    let runs = cedar_par::par_map(cells, |(k, prefetch)| {
        let (_, w, cfg, _) = &specs[k];
        let program = crate::cache::restructured(&crate::cache::compiled(w), cfg);
        let mc = if prefetch {
            MachineConfig::cedar_config1_scaled()
        } else {
            MachineConfig::cedar_config1_scaled().without_prefetch()
        };
        run_program(&program, None, &mc, &w.watch)
    });
    specs
        .iter()
        .enumerate()
        .map(|(k, (name, _, _, paper_gain))| {
            let with = &runs[k * 2];
            let without = &runs[k * 2 + 1];
            crate::pipeline::assert_equivalent(name, with, without);
            Bar {
                program: name,
                no_prefetch_cycles: without.cycles,
                prefetch_cycles: with.cycles,
                gain: without.cycles / with.cycles,
                paper_gain: *paper_gain,
            }
        })
        .collect()
}

/// Render the bars as the harness's text artifact.
pub fn render(bars: &[Bar]) -> String {
    let mut out = String::from(
        "Figure 6: effect of compiler-inserted prefetch instructions\n\
         (relative speed, no-prefetch = 1.0)\n\n",
    );
    let rows: Vec<Vec<String>> = bars
        .iter()
        .map(|b| {
            vec![
                b.program.to_string(),
                "1.00".to_string(),
                format!("{:.2}", b.gain),
                format!("{:.2}", b.paper_gain),
            ]
        })
        .collect();
    out.push_str(&crate::render_table(
        &["Program", "No prefetch", "Prefetch", "Paper prefetch"],
        &rows,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cg_gains_more_than_trfd() {
        let bars = run();
        let cg = &bars[0];
        let trfd = &bars[1];
        assert!(cg.gain > 1.2, "CG prefetch gain too small: {:.2}", cg.gain);
        assert!(
            trfd.gain < cg.gain,
            "TRFD ({:.2}) must gain less than CG ({:.2}) — short, privatized vectors",
            trfd.gain,
            cg.gain
        );
        assert!(trfd.gain >= 1.0, "prefetch must never hurt: {:.2}", trfd.gain);
    }
}
