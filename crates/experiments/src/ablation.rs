//! Ablation studies for the design choices DESIGN.md calls out: each
//! sweep isolates one knob of the restructurer or the machine model and
//! shows its effect on a workload chosen to expose it.

use crate::pipeline::run_program;
use cedar_restructure::{restructure, PassConfig};
use cedar_sim::MachineConfig;

/// (label, cycles) series with a short explanation.
#[derive(Debug, Clone)]
pub struct Sweep {
    /// Sweep name.
    pub title: &'static str,
    /// What the sweep demonstrates.
    pub note: &'static str,
    /// `(parameter label, cycles or speedup)` points in sweep order.
    pub points: Vec<(String, f64)>,
}

/// Strip length for stripmined XDOALL loops (§3.2: "For a given loop,
/// the optimal strip length depends on the total number of iterations
/// and the number of processors"). The machine's prefetch unit streams
/// 32-element blocks, so 32 is the natural default.
pub fn strip_length() -> Sweep {
    let w = cedar_workloads::linalg::cg(184);
    let program = w.compile();
    let mc = MachineConfig::cedar_config1_scaled();
    let mut points = Vec::new();
    for strip in [4usize, 8, 16, 32, 64, 128] {
        let mut cfg = PassConfig::automatic_1991();
        cfg.strip_len = strip;
        let prog = crate::cache::restructured(&program, &cfg);
        let o = run_program(&prog, None, &mc, &w.watch);
        points.push((format!("strip={strip}"), o.cycles));
    }
    Sweep {
        title: "strip length (CG, automatic, Cedar)",
        note: "short strips pay per-strip dispatch and vector startup; \
               very long strips under-populate the 32 CEs",
        points,
    }
}

/// Candidate-version cap (§3.4, default 50): capping at 1 makes the
/// selector take the first candidate plan instead of the cheapest.
pub fn version_cap() -> Sweep {
    let w = cedar_workloads::perfect::arc2d();
    let program = w.compile();
    let mc = MachineConfig::cedar_config1_scaled();
    let mut points = Vec::new();
    for cap in [1usize, 2, 50] {
        let mut cfg = PassConfig::manual_improved();
        cfg.max_versions = cap;
        let r = restructure(&program, &cfg);
        let o = run_program(&r.program, None, &mc, &w.watch);
        points.push((
            format!("max_versions={cap} ({} considered)", r.report.versions_considered),
            o.cycles,
        ));
    }
    Sweep {
        title: "candidate-version cap (ARC2D, manual, Cedar)",
        note: "\"as the number of alternatives increases, so does the number \
               of near-optimal ones\" — the cap rarely hurts, exactly as §3.4 hopes",
        points,
    }
}

/// Loop interchange on/off (§3.4): the outward-moved parallel loop vs.
/// inner-only parallelism.
pub fn interchange() -> Sweep {
    let src = "
      PROGRAM ITX
      PARAMETER (N = 512, M = 8)
      REAL A(N, M), CHKSUM
      DO 10 J = 1, M
        A(1, J) = 0.5 + 0.001 * REAL(J)
   10 CONTINUE
      DO 30 I = 2, N
        DO 20 J = 1, M
          A(I, J) = A(I - 1, J) * 0.99 + 0.0001
   20   CONTINUE
   30 CONTINUE
      CHKSUM = A(N, 1) + A(N, M)
      END
";
    let program = cedar_ir::compile_source(src).unwrap();
    let mc = MachineConfig::cedar_config1_scaled();
    let mut points = Vec::new();
    for (label, on) in [("interchange off", false), ("interchange on", true)] {
        let mut cfg = PassConfig::automatic_1991();
        cfg.interchange = on;
        let prog = crate::cache::restructured(&program, &cfg);
        let o = run_program(&prog, None, &mc, &["chksum"]);
        points.push((label.to_string(), o.cycles));
    }
    Sweep {
        title: "loop interchange (wavefront nest, automatic, Cedar)",
        note: "the 8-iteration inner loops are startup-dominated until the \
               parallel dimension is moved outward (profitable only because \
               the inner loops are short)",
        points,
    }
}

/// Inline expansion on/off for the ADM proxy (§4.1.1): the per-column
/// physics call is opaque until inlined.
pub fn inlining() -> Sweep {
    let w = cedar_workloads::perfect::adm();
    let program = w.compile();
    let mc = MachineConfig::cedar_config1_scaled();
    let mut points = Vec::new();
    for (label, on) in [("inlining off", false), ("inlining on", true)] {
        let mut cfg = PassConfig::manual_improved();
        cfg.inline_expansion = on;
        let prog = crate::cache::restructured(&program, &cfg);
        let o = run_program(&prog, None, &mc, &w.watch);
        points.push((label.to_string(), o.cycles));
    }
    Sweep {
        title: "inline expansion (ADM, manual, Cedar)",
        note: "without inlining the hot column loop stays serial behind the call",
        points,
    }
}

/// Interconnect saturation model: the number of full-speed global
/// streams decides where Figure 8's global curve flattens.
pub fn global_streams() -> Sweep {
    let w = cedar_workloads::linalg::cg(384);
    let program = crate::cache::compiled(&w);
    let prog = crate::cache::restructured(&program, &PassConfig::manual_improved());
    let mut points = Vec::new();
    for streams in [4.0f64, 10.0, 32.0] {
        let mut mc = MachineConfig::cedar_config1();
        mc.global_streams = streams;
        let o = run_program(&prog, None, &mc, &w.watch);
        points.push((format!("streams={streams}"), o.cycles));
    }
    Sweep {
        title: "global-memory streams (CG, manual, 4 clusters)",
        note: "fewer full-speed streams saturate earlier — the Figure 8 knob",
        points,
    }
}

/// Loop coalescing on/off (§4.2.4): a perfect 2×1024 DOALL nest. The
/// 2-iteration outer loop can employ at most two of the four clusters;
/// flattening the nest into one XDOALL over the 2048-iteration product
/// space puts all 32 CEs to work.
pub fn coalescing() -> Sweep {
    // The inner body carries a short serial recurrence per point, so
    // it cannot vectorize — exactly the shape where flattening the
    // iteration space is the only way to use more than one cluster.
    let src = "
      PROGRAM COAL
      PARAMETER (N1 = 2, N2 = 1024)
      REAL A(N2, N1), CHKSUM, T
      CALL TSTART
      DO 20 I = 1, N1
        DO 10 J = 1, N2
          T = 0.001 * REAL(I + J)
          DO 5 K = 1, 32
            T = 0.9 * T + 0.01
    5     CONTINUE
          A(J, I) = T
   10   CONTINUE
   20 CONTINUE
      CALL TSTOP
      CHKSUM = 0.0
      DO 30 I = 1, N1
        CHKSUM = CHKSUM + A(N2, I)
   30 CONTINUE
      END
";
    let program = cedar_ir::compile_source(src).expect("coalescing workload");
    let mc = MachineConfig::cedar_config1_scaled();
    let mut points = Vec::new();
    for (label, on) in [("coalescing off", false), ("coalescing on", true)] {
        let mut cfg = PassConfig::manual_improved();
        cfg.coalesce = on;
        let prog = crate::cache::restructured(&program, &cfg);
        let o = run_program(&prog, None, &mc, &["chksum"]);
        points.push((label.to_string(), o.cycles));
    }
    Sweep {
        title: "loop coalescing (2-wide outer nest, manual, Cedar)",
        note: "the 2-iteration outer DOALL confines the non-vectorizable \
               nest to half the machine; flattening the product space \
               lets the 32-CE self-scheduler balance it",
        points,
    }
}

/// Run every ablation sweep. Sweeps are independent and run on
/// [`cedar_par::par_map`]; points within a sweep stay serial (they are
/// few, and nested parallelism degrades to serial anyway).
pub fn run_all() -> Vec<Sweep> {
    let sweeps: Vec<fn() -> Sweep> = vec![
        strip_length,
        version_cap,
        interchange,
        coalescing,
        inlining,
        global_streams,
    ];
    cedar_par::par_map(sweeps, |f| f())
}

/// Render the sweeps as the harness's text artifact.
pub fn render(sweeps: &[Sweep]) -> String {
    let mut out = String::from("Ablation studies\n================\n");
    for s in sweeps {
        out.push_str(&format!("\n{}\n  ({})\n", s.title, s.note));
        let best = s
            .points
            .iter()
            .map(|(_, c)| *c)
            .fold(f64::INFINITY, f64::min);
        for (label, cycles) in &s.points {
            out.push_str(&format!(
                "  {label:<40} {cycles:>14.0} cycles   ({:.2}x of best)\n",
                cycles / best
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strip_sweep_has_interior_optimum_or_plateau() {
        let s = strip_length();
        let cycles: Vec<f64> = s.points.iter().map(|(_, c)| *c).collect();
        // The shortest strip must not be the best (dispatch dominated).
        let best = cycles.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(cycles[0] > best, "strip=4 should not win: {cycles:?}");
    }

    #[test]
    fn interchange_ablation_shows_gain() {
        let s = interchange();
        assert!(
            s.points[1].1 < s.points[0].1,
            "interchange must speed up the wavefront nest: {:?}",
            s.points
        );
    }

    #[test]
    fn inlining_ablation_shows_gain() {
        let s = inlining();
        assert!(
            s.points[1].1 < s.points[0].1,
            "inlining must unlock ADM: {:?}",
            s.points
        );
    }

    #[test]
    fn fewer_streams_is_never_faster() {
        let s = global_streams();
        assert!(s.points[0].1 >= s.points[2].1, "{:?}", s.points);
    }
}
