//! Table 2: Perfect Benchmarks proxies — automatic vs. manually
//! improved speedups on the FX/80 and Cedar machine models, plus the
//! QCD random-number footnote.

use crate::pipeline::{fmt_speedup, run_program, run_workload};
use cedar_restructure::{PassConfig, Target};
use cedar_sim::MachineConfig;
use cedar_workloads::perfect::{qcd_variant, QcdRng};

/// Paper-reported speedups: (name, auto FX/80, auto Cedar, manual
/// FX/80, manual Cedar).
pub const PAPER: &[(&str, f64, f64, f64, f64)] = &[
    ("ARC2D", 8.7, 13.5, 10.6, 20.8),
    ("FLO52", 9.0, 5.5, 14.6, 15.3),
    ("BDNA", 1.9, 1.8, 5.6, 8.5),
    ("DYFESM", 3.9, 2.2, 10.3, 11.4),
    ("ADM", 1.2, 0.6, 7.1, 10.1),
    ("MDG", 1.0, 1.0, 7.3, 20.6),
    ("MG3D", 1.5, 0.9, 13.3, 48.8),
    ("OCEAN", 1.4, 0.7, 8.9, 16.7),
    ("TRACK", 1.0, 0.4, 4.0, 5.2),
    ("TRFD", 2.2, 0.8, 16.0, 43.2),
    ("QCD", 1.1, 0.5, 2.0, 1.81),
    ("SPEC77", 2.4, 2.4, 10.2, 15.7),
];

/// One Table-2 row: four speedups for one Perfect-proxy benchmark.
#[derive(Debug, Clone)]
pub struct Row {
    /// Benchmark name.
    pub name: &'static str,
    /// Automatic restructuring, FX/80 speedup vs serial.
    pub auto_fx80: f64,
    /// Automatic restructuring, Cedar speedup vs serial.
    pub auto_cedar: f64,
    /// Manually-improved restructuring, FX/80 speedup.
    pub manual_fx80: f64,
    /// Manually-improved restructuring, Cedar speedup.
    pub manual_cedar: f64,
}

/// The four machine/pass pairings of a Table-2 row, in column order.
struct Setup {
    fx: MachineConfig,
    cedar1: MachineConfig,
    cedar2: MachineConfig,
    auto_fx: PassConfig,
    auto_cd: PassConfig,
    man_fx: PassConfig,
    man_cd: PassConfig,
}

/// Column labels, cell order (used for supervised cell labels).
const COLUMNS: [&str; 4] = ["auto-fx80", "auto-cedar", "manual-fx80", "manual-cedar"];

fn setup() -> Setup {
    Setup {
        fx: MachineConfig::fx80_scaled(),
        cedar1: MachineConfig::cedar_config1_scaled(),
        cedar2: MachineConfig::cedar_config2_scaled(),
        auto_fx: PassConfig::automatic_1991().for_target(Target::Fx80),
        auto_cd: PassConfig::automatic_1991(),
        man_fx: PassConfig::manual_improved().for_target(Target::Fx80),
        man_cd: PassConfig::manual_improved(),
    }
}

/// Speedup of column `c` for workload `w`. The paper ran the manual
/// versions on Cedar Configuration 2 (more cluster memory); we do the
/// same.
fn cell_speedup(w: &cedar_workloads::Workload, c: usize, s: &Setup) -> f64 {
    let (cfg, mc) = match c {
        0 => (&s.auto_fx, &s.fx),
        1 => (&s.auto_cd, &s.cedar1),
        2 => (&s.man_fx, &s.fx),
        _ => (&s.man_cd, &s.cedar2),
    };
    let (ser, var) = run_workload(w, cfg, mc);
    ser.cycles / var.cycles
}

/// Run the full table.
pub fn run() -> Vec<Row> {
    let s = setup();
    // One parallel job per (row, machine-config) cell — the four cells
    // of a row are themselves independent runs, and splitting them keeps
    // the expensive benchmarks (ADM, MG3D) from serializing a worker.
    let workloads = cedar_workloads::table2_workloads();
    let cells: Vec<(usize, usize)> = (0..workloads.len())
        .flat_map(|wi| (0..4).map(move |c| (wi, c)))
        .collect();
    let speedups =
        cedar_par::par_map(cells, |(wi, c)| cell_speedup(&workloads[wi], c, &s));
    workloads
        .iter()
        .enumerate()
        .map(|(wi, w)| Row {
            name: w.name,
            auto_fx80: speedups[wi * 4],
            auto_cedar: speedups[wi * 4 + 1],
            manual_fx80: speedups[wi * 4 + 2],
            manual_cedar: speedups[wi * 4 + 3],
        })
        .collect()
}

/// [`run`] under the supervised engine: one cell per `(row, column)`
/// pair. A row is reported only when all four of its cells survived;
/// failed cells appear in the quarantine list instead.
pub fn run_supervised(
    sup: &crate::supervise::Supervisor,
) -> (Vec<Row>, Vec<crate::supervise::Recovery>, Vec<crate::supervise::Quarantine>) {
    let s = setup();
    let workloads = cedar_workloads::table2_workloads();
    let cells: Vec<crate::supervise::Cell<(usize, usize)>> = (0..workloads.len())
        .flat_map(|wi| (0..4).map(move |c| (wi, c)))
        .map(|(wi, c)| {
            crate::supervise::Cell::with_source(
                format!("table2/{}/{}", workloads[wi].name, COLUMNS[c]),
                workloads[wi].source.clone(),
                (wi, c),
            )
        })
        .collect();
    let sweep = crate::supervise::run_cells(sup, cells, |&(wi, c)| {
        cell_speedup(&workloads[wi], c, &s)
    });
    let rows = workloads
        .iter()
        .enumerate()
        .filter_map(|(wi, w)| {
            let col = |c: usize| sweep.results[wi * 4 + c];
            Some(Row {
                name: w.name,
                auto_fx80: col(0)?,
                auto_cedar: col(1)?,
                manual_fx80: col(2)?,
                manual_cedar: col(3)?,
            })
        })
        .collect();
    (rows, sweep.recovered, sweep.quarantined)
}

/// Average manual/automatic improvement ratios (the paper's bottom row:
/// 4.5 on the FX/80, 17.2 on Cedar).
pub fn average_improvement(rows: &[Row]) -> (f64, f64) {
    let n = rows.len() as f64;
    let fx = rows.iter().map(|r| r.manual_fx80 / r.auto_fx80).sum::<f64>() / n;
    let cd = rows.iter().map(|r| r.manual_cedar / r.auto_cedar).sum::<f64>() / n;
    (fx, cd)
}

/// The QCD footnote: speedups on the Cedar model with the RNG cycle
/// fully serialized, protected by a critical section, and replaced by a
/// parallel generator (paper: 1.8 / 4.5 / 20.8).
pub fn qcd_footnote() -> (f64, f64, f64) {
    let cedar = MachineConfig::cedar_config2_scaled();
    let man = PassConfig::manual_improved();
    let sp = |rng: QcdRng| {
        let w = qcd_variant(rng);
        let (ser, var) = run_workload(&w, &man, &cedar);
        ser.cycles / var.cycles
    };
    // The critical-section variant computes *different* (statistically
    // equivalent) numbers — RNG draws land on links in lock order — so
    // it is compared against the serial-RNG baseline by time only, with
    // a loose sanity band on the checksum instead of exact equivalence.
    // The three footnote columns are independent jobs.
    let cols = cedar_par::par_map(vec![0usize, 1, 2], |k| match k {
        0 => sp(QcdRng::Serial),
        1 => {
            let base_w = qcd_variant(QcdRng::Serial);
            let baseline =
                run_program(&crate::cache::compiled(&base_w), None, &cedar, &["chksum"]);
            let critical_w = qcd_variant(QcdRng::Critical);
            let critical = run_program(
                &crate::cache::compiled(&critical_w),
                Some(&man),
                &cedar,
                &["chksum"],
            );
            let (a, b) = (baseline.results[0].1[0], critical.results[0].1[0]);
            assert!(
                (a - b).abs() <= 0.05 * a.abs(),
                "critical-RNG checksum drifted: serial {a} vs critical {b}"
            );
            baseline.cycles / critical.cycles
        }
        _ => sp(QcdRng::Parallel),
    });
    (cols[0], cols[1], cols[2])
}

/// Render the rows as the harness's text artifact.
pub fn render(rows: &[Row]) -> String {
    let mut out = String::from(
        "Table 2: Speedups versus serial for Perfect-proxy programs on the\n\
         Alliant FX/80 and Cedar machine models\n\n",
    );
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            let paper = PAPER.iter().find(|(n, ..)| *n == r.name).unwrap();
            vec![
                r.name.to_string(),
                format!("{} ({})", fmt_speedup(r.auto_fx80), fmt_speedup(paper.1)),
                format!("{} ({})", fmt_speedup(r.auto_cedar), fmt_speedup(paper.2)),
                format!("{} ({})", fmt_speedup(r.manual_fx80), fmt_speedup(paper.3)),
                format!("{} ({})", fmt_speedup(r.manual_cedar), fmt_speedup(paper.4)),
            ]
        })
        .collect();
    out.push_str(&crate::render_table(
        &[
            "Program",
            "Auto FX/80 (paper)",
            "Auto Cedar (paper)",
            "Manual FX/80 (paper)",
            "Manual Cedar (paper)",
        ],
        &body,
    ));
    let (fx, cd) = average_improvement(rows);
    out.push_str(&format!(
        "\nAverage manual improvement: {:.1}x on FX/80 (paper: 4.5), \
         {:.1}x on Cedar (paper: 17.2)\n",
        fx, cd
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signature_rows_shape() {
        // Run a cheap subset: MDG on the Cedar model, auto vs manual.
        let w = cedar_workloads::perfect::mdg();
        let cedar = MachineConfig::cedar_config1_scaled();
        let (ser, auto) = run_workload(&w, &PassConfig::automatic_1991(), &cedar);
        let (_, man) = run_workload(&w, &PassConfig::manual_improved(), &cedar);
        let s_auto = ser.cycles / auto.cycles;
        let s_man = ser.cycles / man.cycles;
        assert!(
            s_man > 2.0 * s_auto,
            "MDG manual ({s_man:.1}) must be well above auto ({s_auto:.1})"
        );
    }

    #[test]
    fn qcd_footnote_ordering() {
        let (serial_rng, critical_rng, parallel_rng) = qcd_footnote();
        assert!(
            parallel_rng > critical_rng && critical_rng > serial_rng,
            "footnote ordering must hold: serialized ({serial_rng:.2}) < \
             critical section ({critical_rng:.2}) < parallel RNG ({parallel_rng:.2})"
        );
    }
}
