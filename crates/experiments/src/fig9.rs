//! Figure 9: combining multiple parallel loops into a single parallel
//! loop (FLO52).
//!
//! Three variants of FLO52's major subroutine:
//! * **A** — inner loops parallel (the restructurer's first version);
//! * **B** — the two outer loops parallelized (array privatization);
//! * **C** — the outer loops fused into one parallel loop.
//!
//! "On the Alliant FX/80 architecture the resulting performance gain
//! amounts to 50%, whereas on Cedar, a 100% speedup results, which
//! illustrates the difference in startup latencies between the CDO and
//! SDO loops."

use crate::pipeline::{assert_equivalent, run_program};
use cedar_restructure::{PassConfig, Target};
use cedar_sim::MachineConfig;

/// Figure 9 result for one machine.
#[derive(Debug, Clone)]
pub struct Machine {
    /// Machine label (Cedar or FX/80).
    pub machine: &'static str,
    /// Relative speeds of variants A, B, C (A = 1.0).
    pub a: f64,
    /// Variant B: loops distributed (one parallel loop per statement).
    pub b: f64,
    /// Variant C: loops fused into a single parallel loop.
    pub c: f64,
}

fn variants(target: Target) -> [PassConfig; 3] {
    // A: automatic — outer loops blocked by the work arrays, inner
    // loops parallelized.
    let a = PassConfig::automatic_1991().for_target(target);
    // B: outer loops parallel (array privatization) but no fusion.
    let mut b = PassConfig::manual_improved().for_target(target);
    b.loop_fusion = false;
    // C: outer loops fused, then parallelized.
    let c = PassConfig::manual_improved().for_target(target);
    [a, b, c]
}

/// Measure the three fusion variants on both machines.
pub fn run() -> Vec<Machine> {
    let w = cedar_workloads::perfect::flo52();
    let program = crate::cache::compiled(&w);
    let machines = [
        ("Alliant FX/80", Target::Fx80, MachineConfig::fx80_scaled()),
        ("Cedar", Target::Cedar, MachineConfig::cedar_config1_scaled()),
    ];
    // 2 machines × 3 variants = 6 independent cells.
    let cells: Vec<(usize, usize)> =
        (0..machines.len()).flat_map(|m| (0..3).map(move |v| (m, v))).collect();
    let outs = cedar_par::par_map(cells, |(m, v)| {
        let (_, target, mc) = &machines[m];
        let cfg = &variants(*target)[v];
        let p = crate::cache::restructured(&program, cfg);
        run_program(&p, None, mc, &w.watch)
    });
    machines
        .iter()
        .enumerate()
        .map(|(m, (mname, _, _))| {
            let (oa, ob, oc) = (&outs[m * 3], &outs[m * 3 + 1], &outs[m * 3 + 2]);
            assert_equivalent("fig9-b", oa, ob);
            assert_equivalent("fig9-c", oa, oc);
            Machine {
                machine: mname,
                a: 1.0,
                b: oa.cycles / ob.cycles,
                c: oa.cycles / oc.cycles,
            }
        })
        .collect()
}

/// Render the variants as the harness's text artifact.
pub fn render(ms: &[Machine]) -> String {
    let mut out = String::from(
        "Figure 9: combining multiple parallel loops into a single\n\
         parallel loop (FLO52 variants; A = inner loops parallel,\n\
         B = outer loops parallel, C = outer loops fused; speed of A = 1)\n\n",
    );
    let rows: Vec<Vec<String>> = ms
        .iter()
        .map(|m| {
            vec![
                m.machine.to_string(),
                format!("{:.2}", m.a),
                format!("{:.2}", m.b),
                format!("{:.2}", m.c),
            ]
        })
        .collect();
    out.push_str(&crate::render_table(&["machine", "A", "B", "C"], &rows));
    out.push_str("\nPaper: C/A ≈ 1.5 on the FX/80 and ≈ 2.0 on Cedar.\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_c_over_b_over_a() {
        for m in run() {
            assert!(m.b > m.a, "{}: B ({:.2}) must beat A", m.machine, m.b);
            assert!(
                m.c >= m.b,
                "{}: C ({:.2}) must be at least B ({:.2})",
                m.machine,
                m.c,
                m.b
            );
        }
    }

    #[test]
    fn cedar_gains_more_from_fusion_than_fx80() {
        let ms = run();
        let fx = &ms[0];
        let cedar = &ms[1];
        assert!(
            cedar.c / cedar.a > fx.c / fx.a,
            "Cedar C/A ({:.2}) must exceed FX/80 C/A ({:.2}) — SDO startup dominates",
            cedar.c,
            fx.c
        );
    }
}
