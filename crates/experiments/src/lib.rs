#![warn(missing_docs)]
//! Experiment harness: regenerates every table and figure of the
//! paper's evaluation (§4) from the full pipeline —
//! parse → restructure → simulate.
//!
//! One module per artifact:
//!
//! * [`table1`] — speedups of the ten automatically-restructured linear
//!   algebra routines (paper Table 1);
//! * [`table2`] — Perfect-proxy speedups, automatic vs. manually
//!   improved, on the FX/80 and Cedar models (paper Table 2, including
//!   the QCD random-number footnote variants);
//! * [`fig6`] — effect of compiler-inserted prefetch on CG and TRFD;
//! * [`fig7`] — privatization vs. expansion in MDG's major loop;
//! * [`fig8`] — data partitioning in Conjugate Gradient over 1–4
//!   clusters;
//! * [`fig9`] — inner-parallel / outer-parallel / outer-fused FLO52
//!   variants on both machines;
//! * [`ablation`] — knob sweeps for the restructurer's design choices
//!   (strip length, version cap, interchange, inlining, interconnect
//!   saturation);
//! * [`robustness`] — differential validation of every workload under
//!   seeded schedule perturbations (`cedar-verify`), with a JSON
//!   report of fallbacks and result deviations;
//! * [`races`] — the happens-before race detector over every
//!   restructured workload plus hand-written racy negatives, with a
//!   JSON confusion matrix.
//!
//! Every cell re-verifies semantic equivalence against the serial run
//! before reporting a speedup — a cell that computes different answers
//! panics rather than reporting a bogus number.
//!
//! Sweeps run under the **supervised experiment engine**
//! ([`supervise`]): per-cell panic isolation and wall-clock deadlines,
//! a degradation ladder for failed cells, crash bundles for cells that
//! fail at every rung, and seeded chaos injection ([`chaos`],
//! `CEDAR_CHAOS`) to prove the harness survives misbehaving cells.

pub mod ablation;
pub mod cache;
pub mod chaos;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod jsonio;
pub mod pipeline;
pub mod races;
pub mod robustness;
pub mod supervise;
pub mod table1;
pub mod table2;

pub use jsonio::Json;
pub use pipeline::{run_program, run_workload, Outcome};
pub use robustness::json_escape;
pub use supervise::Supervisor;

/// Unified exit-code taxonomy for the experiment binaries (`all`,
/// `robustness`, `races`, `bench`); see README "Exit codes".
pub mod exitcode {
    /// Everything ran and every check passed.
    pub const OK: i32 = 0;
    /// The experiments ran to completion but a *validation* check
    /// failed: a serial fallback, a race-matrix miss, a perf
    /// regression beyond tolerance.
    pub const VALIDATION: i32 = 1;
    /// A *harness* error: one or more cells were quarantined by the
    /// supervisor (panic, timeout, simulator fault at every ladder
    /// rung), or the binary was invoked incorrectly. Results for the
    /// surviving cells are still reported.
    pub const HARNESS: i32 = 2;

    /// Combine the two failure dimensions into one process exit code;
    /// harness errors outrank validation failures (a quarantined cell
    /// means the validation verdict is incomplete).
    pub fn classify(validation_failed: bool, quarantined: usize) -> i32 {
        if quarantined > 0 {
            HARNESS
        } else if validation_failed {
            VALIDATION
        } else {
            OK
        }
    }
}

/// Render a simple aligned text table.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (k, cell) in row.iter().enumerate() {
            if k < widths.len() {
                widths[k] = widths[k].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let line = |out: &mut String, cells: &[String]| {
        let mut parts = Vec::new();
        for (k, c) in cells.iter().enumerate() {
            parts.push(format!("{:>width$}", c, width = widths[k.min(widths.len() - 1)]));
        }
        out.push_str(&parts.join("  "));
        out.push('\n');
    };
    line(&mut out, &headers.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    line(
        &mut out,
        &widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>(),
    );
    for row in rows {
        line(&mut out, row);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let t = render_table(
            &["name", "x"],
            &[
                vec!["cg".into(), "163".into()],
                vec!["mprove".into(), "1079".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[3].contains("mprove"));
    }
}
