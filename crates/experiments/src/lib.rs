#![warn(missing_docs)]
//! Experiment harness: regenerates every table and figure of the
//! paper's evaluation (§4) from the full pipeline —
//! parse → restructure → simulate.
//!
//! One module per artifact:
//!
//! * [`table1`] — speedups of the ten automatically-restructured linear
//!   algebra routines (paper Table 1);
//! * [`table2`] — Perfect-proxy speedups, automatic vs. manually
//!   improved, on the FX/80 and Cedar models (paper Table 2, including
//!   the QCD random-number footnote variants);
//! * [`fig6`] — effect of compiler-inserted prefetch on CG and TRFD;
//! * [`fig7`] — privatization vs. expansion in MDG's major loop;
//! * [`fig8`] — data partitioning in Conjugate Gradient over 1–4
//!   clusters;
//! * [`fig9`] — inner-parallel / outer-parallel / outer-fused FLO52
//!   variants on both machines;
//! * [`ablation`] — knob sweeps for the restructurer's design choices
//!   (strip length, version cap, interchange, inlining, interconnect
//!   saturation);
//! * [`robustness`] — differential validation of every workload under
//!   seeded schedule perturbations (`cedar-verify`), with a JSON
//!   report of fallbacks and result deviations;
//! * [`races`] — the happens-before race detector over every
//!   restructured workload plus hand-written racy negatives, with a
//!   JSON confusion matrix.
//!
//! Every cell re-verifies semantic equivalence against the serial run
//! before reporting a speedup — a cell that computes different answers
//! panics rather than reporting a bogus number.

pub mod ablation;
pub mod cache;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod pipeline;
pub mod races;
pub mod robustness;
pub mod table1;
pub mod table2;

pub use pipeline::{run_program, run_workload, Outcome};

/// Render a simple aligned text table.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (k, cell) in row.iter().enumerate() {
            if k < widths.len() {
                widths[k] = widths[k].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let line = |out: &mut String, cells: &[String]| {
        let mut parts = Vec::new();
        for (k, c) in cells.iter().enumerate() {
            parts.push(format!("{:>width$}", c, width = widths[k.min(widths.len() - 1)]));
        }
        out.push_str(&parts.join("  "));
        out.push('\n');
    };
    line(&mut out, &headers.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    line(
        &mut out,
        &widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>(),
    );
    for row in rows {
        line(&mut out, row);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let t = render_table(
            &["name", "x"],
            &[
                vec!["cg".into(), "163".into()],
                vec!["mprove".into(), "1079".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[3].contains("mprove"));
    }
}
