//! Seeded chaos injection for the supervised experiment engine
//! (DESIGN.md §10.4).
//!
//! When `CEDAR_CHAOS=<seed>` is set, the pipeline's phase gates
//! ([`crate::supervise::gate`]) consult this module before doing real
//! work. Draws are pure functions of `(seed, cell label, rung, phase)`
//! — no RNG state, no host time — so a chaos run is exactly
//! reproducible, independent of `CEDAR_JOBS`, thread scheduling, and
//! the process-wide caches (gates fire *before* cache lookups, so a
//! memoized outcome can never mask an injection).
//!
//! Two draw classes:
//!
//! * **sticky** — keyed `(seed, cell, phase)`, *ignoring the rung*: the
//!   same fault recurs on every retry, so the degradation ladder cannot
//!   save the cell and it deterministically ends up quarantined with a
//!   crash bundle. This is the class the CI chaos smoke test counts.
//! * **transient** — keyed `(seed, cell, rung, phase)`: the fault is
//!   specific to one rung, so a retry one rung up usually clears it —
//!   this exercises the ladder's recovery path.
//!
//! Each firing draw carries one of three fault kinds: a plain panic, a
//! structured simulator fault (routed through
//! [`crate::supervise::note_sim_error`] so the supervisor classifies it
//! as `sim-error` rather than `panicked`), or a small delay (benign on
//! its own; it only fails a cell whose wall-clock budget is already
//! tight).

use std::hash::{Hash, Hasher};

/// One injected fault, decided by [`draw`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Injection {
    /// Panic with a chaos-tagged message.
    Panic,
    /// Record a structured `SimError` and abort the phase.
    SimFault,
    /// Sleep for the given number of milliseconds, then proceed.
    Delay(u64),
}

/// One in `STICKY_MOD` `(cell, phase)` pairs carries a fault at every
/// rung. Chosen so a sweep the size of the `all` binary (~64 cells,
/// ~3 phases each) quarantines a handful of cells per seed.
const STICKY_MOD: u64 = 24;

/// One in `TRANSIENT_MOD` `(cell, rung, phase)` triples carries a
/// rung-local fault — frequent enough that most seeds also exercise a
/// ladder recovery.
const TRANSIENT_MOD: u64 = 16;

fn fnv(parts: &[&str]) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    for p in parts {
        p.hash(&mut h);
    }
    h.finish()
}

/// Map a firing draw's hash to a fault kind. Divisions decorrelate the
/// kind from the `% MOD == 0` firing decision.
fn kind(h: u64) -> Injection {
    match (h / 97) % 3 {
        0 => Injection::Panic,
        1 => Injection::SimFault,
        _ => Injection::Delay(1 + (h / 7) % 4),
    }
}

/// Decide whether phase `phase` of cell `cell` at rung `rung` suffers
/// an injected fault under `seed`. Deterministic; `None` means the
/// phase proceeds untouched.
pub(crate) fn draw(seed: u64, cell: &str, rung: &str, phase: &str) -> Option<Injection> {
    let seed_s = seed.to_string();
    let sticky = fnv(&["sticky", &seed_s, cell, phase]);
    if sticky.is_multiple_of(STICKY_MOD) {
        return Some(kind(sticky));
    }
    let transient = fnv(&["transient", &seed_s, cell, rung, phase]);
    if transient.is_multiple_of(TRANSIENT_MOD) {
        return Some(kind(transient));
    }
    None
}

/// Stable tag of an injection kind ("panic" / "sim-fault" / "delay").
fn tag(i: Injection) -> &'static str {
    match i {
        Injection::Panic => "panic",
        Injection::SimFault => "sim-fault",
        Injection::Delay(_) => "delay",
    }
}

/// Probe the full draw for `(seed, cell, rung, phase)` without running
/// anything: the tag of the injection that [`crate::supervise::gate`]
/// would fire, or `None`. Test harnesses (the service chaos tests, the
/// load-test gate) use this to *predict* which requests must recover
/// via retry and which must end up quarantined, so assertions are exact
/// rather than statistical.
pub fn probe(seed: u64, cell: &str, rung: &str, phase: &str) -> Option<&'static str> {
    draw(seed, cell, rung, phase).map(tag)
}

/// Probe only the **sticky** class for `(seed, cell, phase)` — the
/// rung-independent draws the degradation ladder cannot clear. A
/// non-`"delay"` sticky hit on a phase a request actually runs means
/// that request deterministically quarantines.
pub fn probe_sticky(seed: u64, cell: &str, phase: &str) -> Option<&'static str> {
    let seed_s = seed.to_string();
    let sticky = fnv(&["sticky", &seed_s, cell, phase]);
    sticky.is_multiple_of(STICKY_MOD).then(|| tag(kind(sticky)))
}

/// Seeded **filesystem** fault lane for [`cedar_store`] durable writes
/// (DESIGN.md §15.4).
///
/// This lane rides its own environment variable, `CEDAR_CHAOS_FS`,
/// rather than `CEDAR_CHAOS`: the predicted-behavior chaos tests
/// enumerate exactly which cells fault under a `CEDAR_CHAOS` seed, and
/// adding draws to that keyspace would silently shift their
/// predictions. Like the engine lane, draws here are pure functions —
/// of `(seed, stage, entry name)` — so a faulting run is exactly
/// reproducible and tests can *predict* which store writes fail and
/// how, instead of asserting statistically.
pub mod fs {
    use super::fnv;
    use cedar_store::{FaultHook, FsFault, FsStage};
    use std::sync::Arc;

    /// One in `FS_MOD` `(stage, entry)` pairs suffers an injected
    /// fault. Deliberately hot (a store write makes four draws, so
    /// roughly one write in three is hit somewhere) — the lane only
    /// exists inside fault tests, where coverage beats realism.
    const FS_MOD: u64 = 12;

    /// Map a firing draw's hash to a fault. Divisions decorrelate the
    /// shape from the `% FS_MOD == 0` firing decision, mirroring the
    /// engine lane's `kind`.
    fn shape(h: u64) -> FsFault {
        match (h / 97) % 3 {
            0 => FsFault::ShortWrite((h / 7) as usize % 48),
            1 => FsFault::Eio,
            _ => FsFault::Crash,
        }
    }

    /// Decide whether the syscall at `stage` for entry `name` is
    /// injected under `seed`. Pure; `None` means the syscall proceeds.
    pub fn draw(seed: u64, stage: FsStage, name: &str) -> Option<FsFault> {
        let seed_s = seed.to_string();
        let h = fnv(&["fs", &seed_s, stage.tag(), name]);
        h.is_multiple_of(FS_MOD).then(|| shape(h))
    }

    /// Package [`draw`] under a fixed seed as a store fault hook.
    pub fn hook(seed: u64) -> FaultHook {
        Arc::new(move |stage, name| draw(seed, stage, name))
    }

    /// The fault hook `CEDAR_CHAOS_FS` asks for, if set. Accepts the
    /// same seed syntax as `CEDAR_CHAOS` (decimal, or any string
    /// hashed to a seed).
    pub fn hook_from_env() -> Option<FaultHook> {
        let v = std::env::var("CEDAR_CHAOS_FS").ok()?;
        super::parse_seed(&v).map(hook)
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fs_draws_are_deterministic_and_stage_sensitive() {
            for seed in 0..50u64 {
                for stage in FsStage::ALL {
                    assert_eq!(draw(seed, stage, "0000000000000007"), draw(seed, stage, "0000000000000007"));
                }
            }
            // Stages must draw independently: find a seed where one
            // stage faults and another doesn't.
            let split = (0..500u64).any(|s| {
                let hits: Vec<_> =
                    FsStage::ALL.iter().map(|st| draw(s, *st, "entry-a").is_some()).collect();
                hits.iter().any(|h| *h) && hits.iter().any(|h| !*h)
            });
            assert!(split, "stages never drew independently in 500 seeds");
        }

        #[test]
        fn all_fault_shapes_are_reachable_and_some_writes_are_clean() {
            let mut seen = (false, false, false);
            let mut clean = false;
            for seed in 0..2000u64 {
                let hits: Vec<_> =
                    FsStage::ALL.iter().filter_map(|st| draw(seed, *st, "entry-b")).collect();
                if hits.is_empty() {
                    clean = true;
                }
                for f in hits {
                    match f {
                        FsFault::ShortWrite(n) => {
                            assert!(n < 48);
                            seen.0 = true;
                        }
                        FsFault::Eio => seen.1 = true,
                        FsFault::Crash => seen.2 = true,
                    }
                }
            }
            assert_eq!(seen, (true, true, true), "short-write/EIO/crash must all occur");
            assert!(clean, "every seed faulted entry-b — FS_MOD far too hot");
        }

        #[test]
        fn the_hook_matches_the_draw() {
            let h = hook(42);
            for stage in FsStage::ALL {
                assert_eq!(h(stage, "entry-c"), draw(42, stage, "entry-c"));
            }
        }
    }
}

/// Parse a `CEDAR_CHAOS` value: a decimal integer is used verbatim, any
/// other non-empty string is hashed to a seed (so `CEDAR_CHAOS=kaboom`
/// works), and an empty value disables chaos.
pub fn parse_seed(s: &str) -> Option<u64> {
    let s = s.trim();
    if s.is_empty() {
        return None;
    }
    Some(s.parse().unwrap_or_else(|_| fnv(&["seed", s])))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn draws_are_deterministic() {
        for seed in 0..50u64 {
            for rung in ["normal", "serial"] {
                assert_eq!(
                    draw(seed, "table1/cg", rung, "simulate"),
                    draw(seed, "table1/cg", rung, "simulate"),
                );
            }
        }
    }

    #[test]
    fn sticky_draws_ignore_the_rung() {
        // Find a sticky firing draw, then confirm it fires identically
        // at every rung (the ladder must not be able to dodge it).
        let mut found = 0;
        for seed in 0..500u64 {
            let rungs = ["normal", "no-fast-paths", "races-on", "serial"];
            let hits: Vec<_> =
                rungs.iter().map(|r| draw(seed, "cell-x", r, "compile")).collect();
            let seed_s = seed.to_string();
            if fnv(&["sticky", &seed_s, "cell-x", "compile"]).is_multiple_of(STICKY_MOD) {
                assert!(hits.iter().all(|h| h == &hits[0]), "seed {seed}: {hits:?}");
                assert!(hits[0].is_some());
                found += 1;
            }
        }
        assert!(found > 0, "no sticky draw in 500 seeds — STICKY_MOD too large");
    }

    #[test]
    fn some_seeds_are_quiet_for_a_given_cell() {
        let quiet = (0..200u64).any(|seed| {
            ["compile", "restructure", "simulate"]
                .iter()
                .all(|p| draw(seed, "cell-y", "normal", p).is_none())
        });
        assert!(quiet, "every seed faulted cell-y — rates far too high");
    }

    #[test]
    fn seed_parsing() {
        assert_eq!(parse_seed("42"), Some(42));
        assert_eq!(parse_seed("  7 "), Some(7));
        assert_eq!(parse_seed(""), None);
        assert_eq!(parse_seed("   "), None);
        let a = parse_seed("kaboom").unwrap();
        assert_eq!(Some(a), parse_seed("kaboom"), "string seeds must be stable");
        assert_ne!(Some(a), parse_seed("kaboom2"));
    }

    #[test]
    fn all_kinds_are_reachable() {
        let mut seen = [false; 3];
        for seed in 0..2000u64 {
            if let Some(k) = draw(seed, "cell-z", "normal", "simulate") {
                match k {
                    Injection::Panic => seen[0] = true,
                    Injection::SimFault => seen[1] = true,
                    Injection::Delay(ms) => {
                        assert!((1..=4).contains(&ms));
                        seen[2] = true;
                    }
                }
            }
        }
        assert_eq!(seen, [true; 3], "panic/sim-fault/delay must all occur");
    }
}
