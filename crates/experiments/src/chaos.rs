//! Seeded chaos injection for the supervised experiment engine
//! (DESIGN.md §10.4).
//!
//! When `CEDAR_CHAOS=<seed>` is set, the pipeline's phase gates
//! ([`crate::supervise::gate`]) consult this module before doing real
//! work. Draws are pure functions of `(seed, cell label, rung, phase)`
//! — no RNG state, no host time — so a chaos run is exactly
//! reproducible, independent of `CEDAR_JOBS`, thread scheduling, and
//! the process-wide caches (gates fire *before* cache lookups, so a
//! memoized outcome can never mask an injection).
//!
//! Two draw classes:
//!
//! * **sticky** — keyed `(seed, cell, phase)`, *ignoring the rung*: the
//!   same fault recurs on every retry, so the degradation ladder cannot
//!   save the cell and it deterministically ends up quarantined with a
//!   crash bundle. This is the class the CI chaos smoke test counts.
//! * **transient** — keyed `(seed, cell, rung, phase)`: the fault is
//!   specific to one rung, so a retry one rung up usually clears it —
//!   this exercises the ladder's recovery path.
//!
//! Each firing draw carries one of three fault kinds: a plain panic, a
//! structured simulator fault (routed through
//! [`crate::supervise::note_sim_error`] so the supervisor classifies it
//! as `sim-error` rather than `panicked`), or a small delay (benign on
//! its own; it only fails a cell whose wall-clock budget is already
//! tight).

use std::hash::{Hash, Hasher};

/// One injected fault, decided by [`draw`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Injection {
    /// Panic with a chaos-tagged message.
    Panic,
    /// Record a structured `SimError` and abort the phase.
    SimFault,
    /// Sleep for the given number of milliseconds, then proceed.
    Delay(u64),
}

/// One in `STICKY_MOD` `(cell, phase)` pairs carries a fault at every
/// rung. Chosen so a sweep the size of the `all` binary (~64 cells,
/// ~3 phases each) quarantines a handful of cells per seed.
const STICKY_MOD: u64 = 24;

/// One in `TRANSIENT_MOD` `(cell, rung, phase)` triples carries a
/// rung-local fault — frequent enough that most seeds also exercise a
/// ladder recovery.
const TRANSIENT_MOD: u64 = 16;

fn fnv(parts: &[&str]) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    for p in parts {
        p.hash(&mut h);
    }
    h.finish()
}

/// Map a firing draw's hash to a fault kind. Divisions decorrelate the
/// kind from the `% MOD == 0` firing decision.
fn kind(h: u64) -> Injection {
    match (h / 97) % 3 {
        0 => Injection::Panic,
        1 => Injection::SimFault,
        _ => Injection::Delay(1 + (h / 7) % 4),
    }
}

/// Decide whether phase `phase` of cell `cell` at rung `rung` suffers
/// an injected fault under `seed`. Deterministic; `None` means the
/// phase proceeds untouched.
pub(crate) fn draw(seed: u64, cell: &str, rung: &str, phase: &str) -> Option<Injection> {
    let seed_s = seed.to_string();
    let sticky = fnv(&["sticky", &seed_s, cell, phase]);
    if sticky.is_multiple_of(STICKY_MOD) {
        return Some(kind(sticky));
    }
    let transient = fnv(&["transient", &seed_s, cell, rung, phase]);
    if transient.is_multiple_of(TRANSIENT_MOD) {
        return Some(kind(transient));
    }
    None
}

/// Stable tag of an injection kind ("panic" / "sim-fault" / "delay").
fn tag(i: Injection) -> &'static str {
    match i {
        Injection::Panic => "panic",
        Injection::SimFault => "sim-fault",
        Injection::Delay(_) => "delay",
    }
}

/// Probe the full draw for `(seed, cell, rung, phase)` without running
/// anything: the tag of the injection that [`crate::supervise::gate`]
/// would fire, or `None`. Test harnesses (the service chaos tests, the
/// load-test gate) use this to *predict* which requests must recover
/// via retry and which must end up quarantined, so assertions are exact
/// rather than statistical.
pub fn probe(seed: u64, cell: &str, rung: &str, phase: &str) -> Option<&'static str> {
    draw(seed, cell, rung, phase).map(tag)
}

/// Probe only the **sticky** class for `(seed, cell, phase)` — the
/// rung-independent draws the degradation ladder cannot clear. A
/// non-`"delay"` sticky hit on a phase a request actually runs means
/// that request deterministically quarantines.
pub fn probe_sticky(seed: u64, cell: &str, phase: &str) -> Option<&'static str> {
    let seed_s = seed.to_string();
    let sticky = fnv(&["sticky", &seed_s, cell, phase]);
    sticky.is_multiple_of(STICKY_MOD).then(|| tag(kind(sticky)))
}

/// Parse a `CEDAR_CHAOS` value: a decimal integer is used verbatim, any
/// other non-empty string is hashed to a seed (so `CEDAR_CHAOS=kaboom`
/// works), and an empty value disables chaos.
pub fn parse_seed(s: &str) -> Option<u64> {
    let s = s.trim();
    if s.is_empty() {
        return None;
    }
    Some(s.parse().unwrap_or_else(|_| fnv(&["seed", s])))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn draws_are_deterministic() {
        for seed in 0..50u64 {
            for rung in ["normal", "serial"] {
                assert_eq!(
                    draw(seed, "table1/cg", rung, "simulate"),
                    draw(seed, "table1/cg", rung, "simulate"),
                );
            }
        }
    }

    #[test]
    fn sticky_draws_ignore_the_rung() {
        // Find a sticky firing draw, then confirm it fires identically
        // at every rung (the ladder must not be able to dodge it).
        let mut found = 0;
        for seed in 0..500u64 {
            let rungs = ["normal", "no-fast-paths", "races-on", "serial"];
            let hits: Vec<_> =
                rungs.iter().map(|r| draw(seed, "cell-x", r, "compile")).collect();
            let seed_s = seed.to_string();
            if fnv(&["sticky", &seed_s, "cell-x", "compile"]).is_multiple_of(STICKY_MOD) {
                assert!(hits.iter().all(|h| h == &hits[0]), "seed {seed}: {hits:?}");
                assert!(hits[0].is_some());
                found += 1;
            }
        }
        assert!(found > 0, "no sticky draw in 500 seeds — STICKY_MOD too large");
    }

    #[test]
    fn some_seeds_are_quiet_for_a_given_cell() {
        let quiet = (0..200u64).any(|seed| {
            ["compile", "restructure", "simulate"]
                .iter()
                .all(|p| draw(seed, "cell-y", "normal", p).is_none())
        });
        assert!(quiet, "every seed faulted cell-y — rates far too high");
    }

    #[test]
    fn seed_parsing() {
        assert_eq!(parse_seed("42"), Some(42));
        assert_eq!(parse_seed("  7 "), Some(7));
        assert_eq!(parse_seed(""), None);
        assert_eq!(parse_seed("   "), None);
        let a = parse_seed("kaboom").unwrap();
        assert_eq!(Some(a), parse_seed("kaboom"), "string seeds must be stable");
        assert_ne!(Some(a), parse_seed("kaboom2"));
    }

    #[test]
    fn all_kinds_are_reachable() {
        let mut seen = [false; 3];
        for seed in 0..2000u64 {
            if let Some(k) = draw(seed, "cell-z", "normal", "simulate") {
                match k {
                    Injection::Panic => seen[0] = true,
                    Injection::SimFault => seen[1] = true,
                    Injection::Delay(ms) => {
                        assert!((1..=4).contains(&ms));
                        seen[2] = true;
                    }
                }
            }
        }
        assert_eq!(seen, [true; 3], "panic/sim-fault/delay must all occur");
    }
}
