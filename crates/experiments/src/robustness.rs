//! Robustness sweep: every Table 1 / Table 2 workload is restructured,
//! then differentially validated under N seeded schedule perturbations
//! (`cedar-verify`). The sweep reports, per workload, whether the
//! restructured program survived all perturbed schedules, how far its
//! results moved (reductions reassociate, so small relative error is
//! expected there), and any nests the validator had to revert to
//! serial — emitted both as a text table and as a JSON report.

use cedar_sim::MachineConfig;
use cedar_verify::{restructure_validated, ValidationConfig, Validated};
use cedar_workloads::Workload;

/// One validated workload.
#[derive(Debug, Clone)]
pub struct Row {
    /// Workload name (Table 1/2 row; workload names are static).
    pub workload: &'static str,
    /// Which suite it came from (`table1` / `table2`).
    pub suite: &'static str,
    /// Pass configuration label (`automatic` / `manual`).
    pub config: &'static str,
    /// Restructure→check rounds (1 = accepted first try).
    pub attempts: usize,
    /// Nests reverted to serial during validation.
    pub fallbacks: usize,
    /// Validation abandoned all parallelism.
    pub degraded: bool,
    /// Every perturbed run matched the unperturbed run bit for bit
    /// (expected exactly for reduction-free programs).
    pub bit_identical: bool,
    /// Largest relative deviation over all seeds.
    pub max_rel_err: f64,
    /// Per-seed `(seed, cycles, bit_identical, max_rel_err)`, sorted by
    /// seed so report emission is deterministic.
    pub seed_runs: Vec<(u64, f64, bool, f64)>,
    /// Human-readable fallback notes (`unit:line: reason`), sorted.
    pub fallback_notes: Vec<String>,
}

fn validate(w: &Workload, suite: &'static str, config: &'static str, seeds: &[u64]) -> Row {
    // This sweep bypasses `pipeline::run_program` (cedar-verify drives
    // the simulator itself), so it applies the supervisor hooks
    // directly: a chaos gate, plus the active rung's config rewrites
    // (all identities without a supervisor).
    crate::supervise::gate("validate");
    let program = crate::cache::compiled(w);
    let cfg = match config {
        "manual" => cedar_restructure::PassConfig::manual_improved(),
        _ => cedar_restructure::PassConfig::automatic_1991(),
    };
    let cfg = crate::supervise::adjust_pass(&cfg);
    let mc = crate::supervise::adjust_machine(&MachineConfig::cedar_config1_scaled());
    let vcfg = ValidationConfig { seeds: seeds.to_vec(), ..Default::default() };
    let v: Validated = restructure_validated(&program, &cfg, &mc, &w.watch, &vcfg)
        .unwrap_or_else(|e| panic!("workload `{}`: serial reference failed: {e}", w.name));
    let max_rel_err = v
        .validation
        .seed_runs
        .iter()
        .map(|r| r.max_rel_err)
        .fold(0.0f64, f64::max);
    // Sort both lists before emission so the JSON report is byte-stable
    // regardless of the order the validator discovered things in.
    let mut seed_runs: Vec<(u64, f64, bool, f64)> = v
        .validation
        .seed_runs
        .iter()
        .map(|r| (r.seed, r.cycles, r.bit_identical, r.max_rel_err))
        .collect();
    seed_runs.sort_by_key(|&(seed, ..)| seed);
    let mut fallback_notes: Vec<String> = v
        .validation
        .fallbacks
        .iter()
        .map(|fb| format!("{}:line {}: {}", fb.unit, fb.line, fb.reason))
        .collect();
    fallback_notes.sort();
    Row {
        workload: w.name,
        suite,
        config,
        attempts: v.validation.attempts,
        fallbacks: v.validation.fallbacks.len(),
        degraded: v.validation.degraded_to_serial,
        bit_identical: v.validation.all_bit_identical(),
        max_rel_err,
        seed_runs,
        fallback_notes,
    }
}

/// Validate both suites under `n_seeds` perturbation seeds. Workloads
/// are independent validation jobs ([`cedar_par::par_map`]); the
/// validator's own per-seed sweep runs serially inside each worker.
pub fn run(n_seeds: u64) -> Vec<Row> {
    run_filtered(n_seeds, None)
}

/// [`run`] restricted to workloads named in `only` (row order is the
/// suite order regardless of the filter's order). `None` sweeps
/// everything; determinism tests use small subsets to stay fast.
pub fn run_filtered(n_seeds: u64, only: Option<&[&str]>) -> Vec<Row> {
    let seeds: Vec<u64> = (1..=n_seeds).collect();
    cedar_par::par_map(jobs(only), |(w, suite, config)| validate(&w, suite, config, &seeds))
}

fn jobs(only: Option<&[&str]>) -> Vec<(Workload, &'static str, &'static str)> {
    cedar_workloads::table1_workloads()
        .into_iter()
        .map(|w| (w, "table1", "automatic"))
        .chain(
            cedar_workloads::table2_workloads()
                .into_iter()
                .map(|w| (w, "table2", "manual")),
        )
        .filter(|(w, ..)| only.is_none_or(|names| names.contains(&w.name)))
        .collect()
}

/// [`run`] under the supervised engine: one cell per validation job.
/// A quarantined workload drops out of the row list and is reported in
/// the quarantine section (and the sweep JSON) instead of aborting the
/// whole validation run.
pub fn run_supervised(
    n_seeds: u64,
    sup: &crate::supervise::Supervisor,
) -> (Vec<Row>, Vec<crate::supervise::Recovery>, Vec<crate::supervise::Quarantine>) {
    let seeds: Vec<u64> = (1..=n_seeds).collect();
    let cells = jobs(None)
        .into_iter()
        .map(|(w, suite, config)| {
            crate::supervise::Cell::with_source(
                format!("robustness/{suite}/{}", w.name),
                w.source.clone(),
                (w, suite, config),
            )
        })
        .collect();
    let sweep = crate::supervise::run_cells(sup, cells, |(w, suite, config)| {
        validate(w, suite, config, &seeds)
    });
    (
        sweep.results.into_iter().flatten().collect(),
        sweep.recovered,
        sweep.quarantined,
    )
}

/// Text rendering.
pub fn render(rows: &[Row]) -> String {
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.workload.to_string(),
                r.suite.to_string(),
                r.config.to_string(),
                r.attempts.to_string(),
                r.fallbacks.to_string(),
                if r.degraded { "yes" } else { "no" }.to_string(),
                if r.bit_identical { "yes" } else { "no" }.to_string(),
                format!("{:.2e}", r.max_rel_err),
            ]
        })
        .collect();
    crate::render_table(
        &[
            "workload", "suite", "config", "attempts", "fallbacks", "degraded",
            "bit-identical", "max-rel-err",
        ],
        &body,
    )
}

/// Escape a string for embedding in a JSON string literal (shared by
/// every hand-rolled report writer in the workspace, including
/// `cedar-fuzz`).
pub fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            '\n' => "\\n".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

fn json_f64(x: f64) -> String {
    if x.is_finite() { format!("{x:e}") } else { "null".to_string() }
}

/// JSON rendering (no external dependencies). Quarantined cells — jobs
/// the supervisor gave up on — are first-class report citizens, not
/// silently missing rows.
pub fn to_json(
    rows: &[Row],
    n_seeds: u64,
    quarantined: &[crate::supervise::Quarantine],
) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"seeds\": {n_seeds},\n"));
    out.push_str(&format!(
        "  \"quarantined\": {},\n",
        crate::supervise::quarantined_json(quarantined)
    ));
    out.push_str("  \"workloads\": [\n");
    for (k, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"suite\": \"{}\", \"config\": \"{}\", \
             \"attempts\": {}, \"fallbacks\": {}, \"degraded_to_serial\": {}, \
             \"bit_identical\": {}, \"max_rel_err\": {}, \"seed_runs\": [",
            json_escape(r.workload),
            r.suite,
            r.config,
            r.attempts,
            r.fallbacks,
            r.degraded,
            r.bit_identical,
            json_f64(r.max_rel_err),
        ));
        for (j, (seed, cycles, bit, err)) in r.seed_runs.iter().enumerate() {
            out.push_str(&format!(
                "{{\"seed\": {seed}, \"cycles\": {}, \"bit_identical\": {bit}, \
                 \"max_rel_err\": {}}}",
                json_f64(*cycles),
                json_f64(*err),
            ));
            if j + 1 < r.seed_runs.len() {
                out.push_str(", ");
            }
        }
        out.push_str("], \"fallback_notes\": [");
        for (j, note) in r.fallback_notes.iter().enumerate() {
            out.push_str(&format!("\"{}\"", json_escape(note)));
            if j + 1 < r.fallback_notes.len() {
                out.push_str(", ");
            }
        }
        out.push_str("]}");
        out.push_str(if k + 1 < rows.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_smoke_and_json_shape() {
        // Two seeds over a couple of representative workloads keeps the
        // smoke test fast; the binary sweeps everything.
        let seeds = [1u64, 2];
        let w = cedar_workloads::linalg::tridag(48);
        let row = validate(&w, "table1", "automatic", &seeds);
        assert_eq!(row.seed_runs.len(), 2);
        assert!(!row.degraded, "tridag must not degrade: {row:?}");
        let json = to_json(&[row], 2, &[]);
        assert!(json.contains("\"name\": \"tridag\""));
        assert!(json.contains("\"seed_runs\": ["));
        assert!(json.contains("\"quarantined\": []"));
        assert!(json.ends_with("}\n"));
    }
}
