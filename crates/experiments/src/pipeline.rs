//! Compile → restructure → simulate plumbing shared by every
//! experiment.

use cedar_ir::Program;
use cedar_restructure::PassConfig;
use cedar_sim::{ExecStats, MachineConfig};
use cedar_workloads::Workload;

/// Result of one simulated run.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// Timed cycles (timer regions when present, else whole run).
    pub cycles: f64,
    /// Full simulator counters.
    pub stats: ExecStats,
    /// Watched result variables (name → values).
    pub results: Vec<(String, Vec<f64>)>,
}

/// Run an already-lowered program (optionally restructuring first).
/// Restructure results are shared across calls via the process-wide
/// [`crate::cache`], so sweeps that re-run the same `(program, cfg)`
/// pair under different machines/seeds transform it once.
pub fn run_program(
    program: &Program,
    cfg: Option<&PassConfig>,
    mc: &MachineConfig,
    watch: &[&str],
) -> Outcome {
    // Supervisor hooks (identity when no supervisor is active): chaos
    // gates fire *before* the cache lookup so a memoized outcome can
    // never mask an injection, and the active degradation rung rewrites
    // the configs — which also keys the memo on what actually runs.
    if cfg.is_some() {
        crate::supervise::gate("restructure");
    }
    crate::supervise::gate("simulate");
    let (adj_cfg, adj_mc) = crate::supervise::adjust(cfg, mc);
    let (cfg, mc) = (adj_cfg.as_ref(), &adj_mc);

    // The whole cell is memoized: `run_program` simulations are
    // fault-free and deterministic, so equal keys mean bit-identical
    // outcomes (this is what dedups a sweep's repeated serial
    // references instead of re-simulating them per variant).
    let printed = cedar_ir::print::print_program(program);
    let cfg_key = format!("{cfg:?}");
    let mc_key = format!("{mc:?}");
    let watch_key = watch.join("\u{1f}");
    let out = crate::cache::outcome(&[&printed, &cfg_key, &mc_key, &watch_key], || {
        let transformed;
        let to_run = match cfg {
            Some(c) => {
                transformed = crate::cache::restructured(program, c);
                &*transformed
            }
            None => program,
        };
        // The VM engine runs off the shared bytecode cache: one compile
        // per distinct program, however many cells simulate it.
        let sim = match mc.engine {
            cedar_sim::Engine::Vm => {
                let artifact = crate::cache::bytecode(to_run);
                cedar_sim::run_precompiled(to_run, mc.clone(), &artifact)
            }
            cedar_sim::Engine::Interp => cedar_sim::run(to_run, mc.clone()),
        }
        .unwrap_or_else(|e| {
            // Hand the structured error to the supervisor (when one is
            // active) before the harness panic, so the failure is
            // classified as a sim-error/timeout rather than a panic.
            crate::supervise::note_sim_error(&e);
            panic!(
                "simulation failed: {e}\n---\n{}",
                cedar_ir::print::print_program(to_run)
            )
        });
        let results = watch
            .iter()
            .filter_map(|w| sim.read_f64(w).map(|v| (w.to_string(), v)))
            .collect();
        // Timer regions (CALL TSTART/TSTOP) report routine time, as the
        // paper does for Table 1; programs without timers report total
        // time.
        let cycles = if sim.stats.region_cycles > 0.0 {
            sim.stats.region_cycles
        } else {
            sim.cycles()
        };
        Outcome { cycles, stats: sim.stats.clone(), results }
    });
    (*out).clone()
}

/// Run one workload under a pass configuration, verifying semantic
/// equivalence against the serial execution on the same machine.
/// Returns `(serial, variant)` outcomes.
pub fn run_workload(
    w: &Workload,
    cfg: &PassConfig,
    mc: &MachineConfig,
) -> (Outcome, Outcome) {
    let program = crate::cache::compiled(w);
    let serial = run_program(&program, None, mc, &w.watch);
    let variant = run_program(&program, Some(cfg), mc, &w.watch);
    assert_equivalent(w.name, &serial, &variant);
    (serial, variant)
}

/// Compare watched results with a relative tolerance (reductions
/// reassociate, so bit-exactness is not expected).
pub fn assert_equivalent(name: &str, a: &Outcome, b: &Outcome) {
    for ((wa, va), (wb, vb)) in a.results.iter().zip(&b.results) {
        assert_eq!(wa, wb);
        assert_eq!(va.len(), vb.len(), "{name}: {wa} length mismatch");
        for (x, y) in va.iter().zip(vb) {
            assert!(
                (x - y).abs() <= 1e-3 * x.abs().max(1.0),
                "{name}: {wa}: {x} vs {y} — restructured program computes different results"
            );
        }
    }
}

/// Format a speedup for display: one decimal below 100, integral above
/// (matching the paper's Table 1 style).
pub fn fmt_speedup(s: f64) -> String {
    if s >= 100.0 {
        format!("{s:.0}")
    } else if s >= 10.0 {
        format!("{s:.1}")
    } else {
        format!("{s:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speedup_formatting() {
        assert_eq!(fmt_speedup(1079.3), "1079");
        assert_eq!(fmt_speedup(29.44), "29.4");
        assert_eq!(fmt_speedup(9.16), "9.16");
    }

    #[test]
    fn pipeline_runs_and_checks_equivalence() {
        let w = cedar_workloads::linalg::tridag(64);
        let mc = MachineConfig::cedar_config1_scaled();
        let (ser, var) = run_workload(&w, &PassConfig::automatic_1991(), &mc);
        assert!(ser.cycles > 0.0 && var.cycles > 0.0);
    }
}
