//! Figure 7: data privatization vs. expansion in MDG's major loop.
//!
//! "Two variants of the major loop in the program MDG are measured. The
//! first variant has privatized array data. In the second variant the
//! same data elements were expanded and put in global memory. The
//! figure shows a 50% slow down of the non-privatized version \[from\]
//! the memory placement of the data \[and\] the more costly addressing
//! mode of the data which are now expanded by one array dimension."
//!
//! Both variants are written directly in Cedar Fortran (this is a
//! measurement of two code shapes, not of the restructurer's choice).

use crate::pipeline::{assert_equivalent, run_program};
use cedar_sim::MachineConfig;

const NMOL: usize = 256;
const NSITE: usize = 96;

/// The privatized variant: the work array is loop-local, one copy per
/// CE, filled and consumed inside each iteration.
fn privatized_src() -> String {
    format!(
        "
      PROGRAM MDGP
      PARAMETER (NMOL = {NMOL}, NSITE = {NSITE}, NSTEP = 6)
      REAL X(NMOL), Y(NMOL), SOFF(NSITE)
      REAL CHKSUM
      GLOBAL X, Y, SOFF
      DO 10 I = 1, NMOL
        X(I) = 0.4 + 0.002 * REAL(I)
        Y(I) = 0.0
   10 CONTINUE
      DO 15 K = 1, NSITE
        SOFF(K) = 0.01 * REAL(K)
   15 CONTINUE
      DO 90 IS = 1, NSTEP
        XDOALL I = 1, NMOL
          REAL RS({NSITE})
          REAL T
          RS(1:NSITE) = X(I) + SOFF(1:NSITE)
          T = SUM(RS(1:NSITE) * RS(1:NSITE))
          Y(I) = Y(I) + T * 1.0E-4
        END XDOALL
   90 CONTINUE
      CHKSUM = 0.0
      DO 95 I = 1, NMOL
        CHKSUM = CHKSUM + Y(I)
   95 CONTINUE
      END
"
    )
}

/// The expanded variant: the same elements live in a global array with
/// one extra dimension indexed by the molecule.
fn expanded_src() -> String {
    format!(
        "
      PROGRAM MDGE
      PARAMETER (NMOL = {NMOL}, NSITE = {NSITE}, NSTEP = 6)
      REAL X(NMOL), Y(NMOL), SOFF(NSITE), RS2(NSITE, NMOL)
      REAL CHKSUM
      GLOBAL X, Y, SOFF, RS2
      DO 10 I = 1, NMOL
        X(I) = 0.4 + 0.002 * REAL(I)
        Y(I) = 0.0
   10 CONTINUE
      DO 15 K = 1, NSITE
        SOFF(K) = 0.01 * REAL(K)
   15 CONTINUE
      DO 90 IS = 1, NSTEP
        XDOALL I = 1, NMOL
          REAL T
          RS2(1:NSITE, I) = X(I) + SOFF(1:NSITE)
          T = SUM(RS2(1:NSITE, I) * RS2(1:NSITE, I))
          Y(I) = Y(I) + T * 1.0E-4
        END XDOALL
   90 CONTINUE
      CHKSUM = 0.0
      DO 95 I = 1, NMOL
        CHKSUM = CHKSUM + Y(I)
   95 CONTINUE
      END
"
    )
}

/// Figure 7 measurement: privatized vs expanded interf arrays.
#[derive(Debug, Clone)]
pub struct Fig7 {
    /// Cycles with loop-local (privatized) temporaries.
    pub privatized_cycles: f64,
    /// Cycles with globally expanded temporaries.
    pub expanded_cycles: f64,
    /// Relative speed of the expanded variant (privatized = 1.0); the
    /// paper shows ≈ 0.5.
    pub expanded_relative: f64,
}

/// Run both MDG interf variants and compare.
pub fn run() -> Fig7 {
    let mc = MachineConfig::cedar_config1_scaled();
    // The two variants are independent compile+run jobs.
    let mut runs = cedar_par::par_map(vec![privatized_src(), expanded_src()], |src| {
        let p = cedar_ir::compile_source(&src).expect("fig7 variant compiles");
        run_program(&p, None, &mc, &["chksum"])
    });
    let b = runs.pop().expect("expanded outcome");
    let a = runs.pop().expect("privatized outcome");
    assert_equivalent("fig7", &a, &b);
    Fig7 {
        privatized_cycles: a.cycles,
        expanded_cycles: b.cycles,
        expanded_relative: a.cycles / b.cycles,
    }
}

/// Render the comparison as the harness's text artifact.
pub fn render(f: &Fig7) -> String {
    format!(
        "Figure 7: data privatization vs expansion in MDG\n\
         (relative speed, privatized = 1.0)\n\n\
         privatization  1.00\n\
         expansion      {:.2}   (paper: ~0.5)\n",
        f.expanded_relative
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expansion_slows_down_substantially() {
        let f = run();
        assert!(
            f.expanded_relative < 0.8,
            "expanded variant should be clearly slower: {:.2}",
            f.expanded_relative
        );
        assert!(
            f.expanded_relative > 0.2,
            "slowdown should be memory-placement-sized, not catastrophic: {:.2}",
            f.expanded_relative
        );
    }
}
