//! Table 1: speedups of automatically restructured linear algebra
//! routines on Configuration 1 of the 32-processor Cedar.

use crate::pipeline::{fmt_speedup, run_workload};
use cedar_restructure::PassConfig;
use cedar_sim::MachineConfig;

/// Paper-reported speedups, in workload registry order.
pub const PAPER: &[(&str, usize, f64)] = &[
    ("CG", 400, 163.0),
    ("ludcmp", 1000, 9.2),
    ("lubksb", 1000, 6.8),
    ("sparse", 800, 29.0),
    ("gaussj", 600, 10.0),
    ("svbksb", 200, 32.0),
    ("svdcmp", 200, 7.2),
    ("mprove", 1000, 1079.0),
    ("toeplz", 800, 1.3),
    ("tridag", 800, 2.1),
];

/// One measured row.
#[derive(Debug, Clone)]
pub struct Row {
    /// Routine name.
    pub name: &'static str,
    /// Problem size the paper ran.
    pub paper_size: usize,
    /// Scaled size we run (capacities are scaled to match).
    pub our_size: usize,
    /// Speedup Table 1 reports.
    pub paper_speedup: f64,
    /// Speedup we measure.
    pub measured_speedup: f64,
    /// Serial-baseline cycles.
    pub serial_cycles: f64,
    /// Restructured-version cycles.
    pub parallel_cycles: f64,
}

/// Measure one row.
fn measure(w: &cedar_workloads::Workload, cfg: &PassConfig, mc: &MachineConfig) -> Row {
    let (ser, par) = run_workload(w, cfg, mc);
    let paper = PAPER
        .iter()
        .find(|(n, _, _)| *n == w.name)
        .expect("registry order matches PAPER");
    Row {
        name: w.name,
        paper_size: paper.1,
        our_size: w.size,
        paper_speedup: paper.2,
        measured_speedup: ser.cycles / par.cycles,
        serial_cycles: ser.cycles,
        parallel_cycles: par.cycles,
    }
}

/// Run the whole table. Cells are independent simulations, so they run
/// on [`cedar_par::par_map`] (index-ordered results; `CEDAR_JOBS=1`
/// serializes).
pub fn run() -> Vec<Row> {
    let mc = MachineConfig::cedar_config1_scaled();
    let cfg = PassConfig::automatic_1991();
    cedar_par::par_map(cedar_workloads::table1_workloads(), |w| measure(&w, &cfg, &mc))
}

/// [`run`] under the supervised engine: one cell per routine. Failed
/// cells climb the degradation ladder; cells quarantined at every rung
/// are reported separately instead of aborting the table.
pub fn run_supervised(
    sup: &crate::supervise::Supervisor,
) -> (Vec<Row>, Vec<crate::supervise::Recovery>, Vec<crate::supervise::Quarantine>) {
    let mc = MachineConfig::cedar_config1_scaled();
    let cfg = PassConfig::automatic_1991();
    let cells = cedar_workloads::table1_workloads()
        .into_iter()
        .map(|w| {
            crate::supervise::Cell::with_source(
                format!("table1/{}", w.name),
                w.source.clone(),
                w,
            )
        })
        .collect();
    let sweep = crate::supervise::run_cells(sup, cells, |w| measure(w, &cfg, &mc));
    (
        sweep.results.into_iter().flatten().collect(),
        sweep.recovered,
        sweep.quarantined,
    )
}

/// Render in the paper's layout plus our columns.
pub fn render(rows: &[Row]) -> String {
    let mut out = String::from(
        "Table 1: Speedups of automatically restructured linear algebra \
         routines\n(Cedar Configuration 1 model, capacity scale 128)\n\n",
    );
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.name.to_string(),
                r.paper_size.to_string(),
                r.our_size.to_string(),
                fmt_speedup(r.paper_speedup),
                fmt_speedup(r.measured_speedup),
            ]
        })
        .collect();
    out.push_str(&crate::render_table(
        &["Routine", "Paper size", "Our size", "Paper speedup", "Measured speedup"],
        &body,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The full-size table takes ~10s in release; in tests we assert the
    /// qualitative shape on three representative rows at reduced sizes.
    #[test]
    fn shape_holds_at_reduced_sizes() {
        let mc = MachineConfig::cedar_config1_scaled();
        let cfg = PassConfig::automatic_1991();
        let fast = run_one(&cedar_workloads::linalg::sparse(96), &cfg, &mc);
        let slow = run_one(&cedar_workloads::linalg::tridag(128), &cfg, &mc);
        assert!(
            fast > slow,
            "sparse ({fast:.1}) must outrun tridag ({slow:.1})"
        );
        assert!(fast > 3.0, "sparse speedup too small: {fast:.2}");
        assert!(slow < 4.0, "tridag speedup too large: {slow:.2}");
    }

    fn run_one(
        w: &cedar_workloads::Workload,
        cfg: &PassConfig,
        mc: &MachineConfig,
    ) -> f64 {
        let (ser, par) = run_workload(w, cfg, mc);
        ser.cycles / par.cycles
    }
}
