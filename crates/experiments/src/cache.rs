//! Process-wide compile and restructure caches.
//!
//! Every experiment cell starts from the same place: lower a workload's
//! Fortran source to IR, optionally restructure it under a
//! [`PassConfig`], then simulate. The simulation differs per cell
//! (machine, seed, fault profile), but the compile and restructure
//! stages are pure functions of `(source, PassConfig)` — the robustness
//! sweep re-restructures the same program once per seed, and the figure
//! sweeps once per curve point. These caches share that work across a
//! whole harness run.
//!
//! Results are held as `Arc<Program>` behind mutexed maps, so
//! [`cedar_par::par_map`] workers can hit the caches concurrently; a
//! miss computes outside the lock (two racing workers may both compute,
//! the first insert wins, both results are identical by purity).
//!
//! Keys are content hashes — the workload *source text* for the compile
//! cache, the *printed IR* plus the `PassConfig` debug form for the
//! restructure cache — so two workloads that happen to share a name but
//! differ in scaled size never collide.

use cedar_ir::Program;
use cedar_restructure::{restructure, PassConfig, Report};
use cedar_workloads::Workload;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, Mutex, OnceLock};

type Map = Mutex<HashMap<u64, Arc<Program>>>;

fn compile_cache() -> &'static Map {
    static C: OnceLock<Map> = OnceLock::new();
    C.get_or_init(Default::default)
}

fn restructure_cache() -> &'static Map {
    static C: OnceLock<Map> = OnceLock::new();
    C.get_or_init(Default::default)
}

fn fnv(parts: &[&str]) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    for p in parts {
        p.hash(&mut h);
    }
    h.finish()
}

/// Lower a workload's source, reusing a prior lowering of byte-identical
/// source. Equivalent to `Arc::new(w.compile())`.
pub fn compiled(w: &Workload) -> Arc<Program> {
    // Chaos gate ahead of the lookup: a cached program must not mask an
    // injected compile-phase fault (no-op without a supervisor).
    crate::supervise::gate("compile");
    let key = fnv(&[&w.source]);
    if let Some(p) = compile_cache().lock().unwrap().get(&key) {
        return Arc::clone(p);
    }
    let p = Arc::new(w.compile());
    compile_cache()
        .lock()
        .unwrap()
        .entry(key)
        .or_insert(p)
        .clone()
}

/// Restructure `program` under `cfg`, reusing a prior restructure of an
/// identical (printed IR, config) pair. Equivalent to
/// `Arc::new(restructure(program, cfg).program)`.
pub fn restructured(program: &Program, cfg: &PassConfig) -> Arc<Program> {
    let printed = cedar_ir::print::print_program(program);
    let key = fnv(&[&printed, &format!("{cfg:?}")]);
    if let Some(p) = restructure_cache().lock().unwrap().get(&key) {
        return Arc::clone(p);
    }
    let p = Arc::new(restructure(program, cfg).program);
    restructure_cache()
        .lock()
        .unwrap()
        .entry(key)
        .or_insert(p)
        .clone()
}

type FullMap = Mutex<HashMap<u64, Arc<(Program, Report)>>>;

fn restructure_full_cache() -> &'static FullMap {
    static C: OnceLock<FullMap> = OnceLock::new();
    C.get_or_init(Default::default)
}

/// Like [`restructured`], but keeps the restructurer's [`Report`] next
/// to the output program. The service path needs both — the report is
/// part of every response body — and coalesced identical requests must
/// not re-run the restructurer just to regenerate it. Same key scheme
/// as [`restructured`] (printed IR + config debug form), separate map.
pub fn restructured_full(program: &Program, cfg: &PassConfig) -> Arc<(Program, Report)> {
    let printed = cedar_ir::print::print_program(program);
    let key = fnv(&[&printed, &format!("{cfg:?}")]);
    if let Some(p) = restructure_full_cache().lock().unwrap().get(&key) {
        return Arc::clone(p);
    }
    let r = restructure(program, cfg);
    let p = Arc::new((r.program, r.report));
    restructure_full_cache()
        .lock()
        .unwrap()
        .entry(key)
        .or_insert(p)
        .clone()
}

type BytecodeMap = Mutex<HashMap<u64, Arc<cedar_sim::CompiledProgram>>>;

fn bytecode_cache() -> &'static BytecodeMap {
    static C: OnceLock<BytecodeMap> = OnceLock::new();
    C.get_or_init(Default::default)
}

/// Compile `program` to the simulator's immutable bytecode artifact,
/// reusing a prior compilation of an identical printed IR. The artifact
/// depends only on the program — never on a `MachineConfig` — so one
/// entry serves every machine, seed, and fault profile that simulates
/// the same program (the robustness sweep's per-seed runs, the service
/// path's coalesced identical requests). Equivalent to
/// `cedar_sim::compile(program)`.
pub fn bytecode(program: &Program) -> Arc<cedar_sim::CompiledProgram> {
    let printed = cedar_ir::print::print_program(program);
    let key = fnv(&[&printed]);
    if let Some(a) = bytecode_cache().lock().unwrap().get(&key) {
        return Arc::clone(a);
    }
    let a = cedar_sim::compile(program);
    bytecode_cache().lock().unwrap().entry(key).or_insert(a).clone()
}

type OutcomeMap = Mutex<HashMap<u64, Arc<crate::pipeline::Outcome>>>;

fn outcome_cache() -> &'static OutcomeMap {
    static C: OnceLock<OutcomeMap> = OnceLock::new();
    C.get_or_init(Default::default)
}

/// Memoize a deterministic simulation outcome keyed by the full cell
/// identity (printed program, pass config, machine config, watch list).
/// The simulator is fault-free and deterministic under [`run_program`]
/// (no perturbation seeds, no race detector), so two cells with equal
/// keys produce bit-identical outcomes — e.g. the serial reference a
/// sweep re-runs once per variant, or the Table 2 FX/80 baseline shared
/// by the automatic and manual columns.
///
/// [`run_program`]: crate::pipeline::run_program
pub fn outcome(
    key_parts: &[&str],
    compute: impl FnOnce() -> crate::pipeline::Outcome,
) -> Arc<crate::pipeline::Outcome> {
    let key = fnv(key_parts);
    if let Some(o) = outcome_cache().lock().unwrap().get(&key) {
        return Arc::clone(o);
    }
    let o = Arc::new(compute());
    outcome_cache().lock().unwrap().entry(key).or_insert(o).clone()
}

/// Drop every cached entry. Results are pure functions of their keys,
/// so clearing is always safe — determinism tests clear between runs to
/// force real recomputation instead of comparing a memo against itself.
pub fn clear() {
    compile_cache().lock().unwrap().clear();
    restructure_cache().lock().unwrap().clear();
    restructure_full_cache().lock().unwrap().clear();
    bytecode_cache().lock().unwrap().clear();
    outcome_cache().lock().unwrap().clear();
}

/// Cache occupancy `(compiled, restructured, bytecode, outcomes)` —
/// used by the bench harness to report how much work the caches
/// absorbed.
pub fn sizes() -> (usize, usize, usize, usize) {
    (
        compile_cache().lock().unwrap().len(),
        restructure_cache().lock().unwrap().len(),
        bytecode_cache().lock().unwrap().len(),
        outcome_cache().lock().unwrap().len(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compile_cache_returns_same_program() {
        let w = cedar_workloads::linalg::tridag(32);
        let a = compiled(&w);
        let b = compiled(&w);
        assert!(Arc::ptr_eq(&a, &b), "second lookup must hit the cache");
    }

    #[test]
    fn full_cache_keeps_the_report() {
        let w = cedar_workloads::linalg::tridag(32);
        let p = compiled(&w);
        let auto = PassConfig::automatic_1991();
        let a = restructured_full(&p, &auto);
        let b = restructured_full(&p, &auto);
        assert!(Arc::ptr_eq(&a, &b), "second lookup must hit the cache");
        let direct = cedar_restructure::restructure(&p, &auto);
        assert_eq!(
            a.1.to_string(),
            direct.report.to_string(),
            "cached report must match a direct restructure"
        );
    }

    #[test]
    fn bytecode_cache_returns_same_artifact() {
        let w = cedar_workloads::linalg::tridag(32);
        let p = compiled(&w);
        let a = bytecode(&p);
        let b = bytecode(&p);
        assert!(Arc::ptr_eq(&a, &b), "second lookup must hit the cache");
    }

    #[test]
    fn restructure_cache_discriminates_configs() {
        let w = cedar_workloads::linalg::tridag(32);
        let p = compiled(&w);
        let auto = PassConfig::automatic_1991();
        let a = restructured(&p, &auto);
        let b = restructured(&p, &auto);
        assert!(Arc::ptr_eq(&a, &b));
        let serial_cfg = PassConfig::serial();
        let c = restructured(&p, &serial_cfg);
        assert!(!Arc::ptr_eq(&a, &c), "different configs must not collide");
    }
}
