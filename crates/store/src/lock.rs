//! Single-writer lock file with stale-lock reclaim.
//!
//! A writable [`Store`](crate::Store) holds `writer.lock` in the store
//! root for its whole lifetime. The file is created with `create_new`
//! (atomic first-writer-wins across processes) and carries the owner's
//! PID; a second writer finding the file checks whether that PID is
//! still alive (`/proc/<pid>` on Linux) and reclaims the lock when the
//! owner died without dropping it — exactly what `kill -9` leaves
//! behind. Readers never take the lock: entry files are immutable once
//! renamed into place, so concurrent reads race only with atomic
//! renames and unlinks, both of which leave a reader seeing either a
//! complete entry or no entry.

use crate::StoreError;
use std::fs::OpenOptions;
use std::io::Write;
use std::path::{Path, PathBuf};

/// Held lock; removing the file on drop releases it.
#[derive(Debug)]
pub(crate) struct LockGuard {
    path: PathBuf,
}

impl Drop for LockGuard {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

/// Is a process with this PID alive? Only Linux can answer cheaply;
/// elsewhere assume it is (never reclaim — the conservative failure).
fn alive(pid: u64) -> bool {
    if cfg!(target_os = "linux") {
        Path::new(&format!("/proc/{pid}")).exists()
    } else {
        true
    }
}

/// Acquire the writer lock under `root`, reclaiming a stale one left by
/// a dead process.
pub(crate) fn acquire(root: &Path) -> Result<LockGuard, StoreError> {
    let path = root.join("writer.lock");
    // Two attempts: the second one follows a stale-lock reclaim. A
    // concurrent writer racing the same reclaim loses the `create_new`
    // and reports the new owner.
    for _ in 0..2 {
        match OpenOptions::new().write(true).create_new(true).open(&path) {
            Ok(mut f) => {
                let _ = writeln!(f, "{}", std::process::id());
                let _ = f.sync_all();
                return Ok(LockGuard { path });
            }
            Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                let holder = std::fs::read_to_string(&path).unwrap_or_default();
                let pid: Option<u64> = holder.trim().parse().ok();
                match pid {
                    // A live holder — including this very process via
                    // another Store handle — keeps the lock.
                    Some(pid) if alive(pid) => {
                        return Err(StoreError::Locked { holder: pid.to_string() });
                    }
                    // Dead owner (or unreadable garbage from a torn
                    // lock write): reclaim and retry.
                    _ => {
                        let _ = std::fs::remove_file(&path);
                    }
                }
            }
            Err(err) => return Err(StoreError::io("lock", &path, err)),
        }
    }
    Err(StoreError::Locked { holder: "unknown (reclaim raced)".into() })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dir(tag: &str) -> PathBuf {
        let d = PathBuf::from(format!("target/test-store-lock/{tag}"));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn second_writer_is_refused_while_the_first_lives() {
        let d = dir("refuse");
        let _g = acquire(&d).unwrap();
        // Fake a *different live* owner so the same-PID reclaim path
        // doesn't kick in: PID 1 is always alive on Linux.
        std::fs::write(d.join("writer.lock"), "1\n").unwrap();
        match acquire(&d) {
            Err(StoreError::Locked { holder }) => assert_eq!(holder, "1"),
            other => panic!("expected Locked, got {other:?}"),
        }
    }

    #[test]
    fn stale_lock_from_a_dead_pid_is_reclaimed() {
        let d = dir("stale");
        // No process can have this PID (beyond pid_max).
        std::fs::write(d.join("writer.lock"), "4999999\n").unwrap();
        let g = acquire(&d).unwrap();
        drop(g);
        assert!(!d.join("writer.lock").exists(), "drop must release the lock");
    }

    #[test]
    fn garbage_lock_content_is_treated_as_stale() {
        let d = dir("garbage");
        std::fs::write(d.join("writer.lock"), "not-a-pid").unwrap();
        acquire(&d).unwrap();
    }
}
