//! Filesystem fault injection points for the store's durable writes.
//!
//! Every [`Store::put`](crate::Store::put) walks a fixed sequence of
//! stages — write the tmp file, fsync it, rename it into place, fsync
//! the directory — and consults an optional [`FaultHook`] immediately
//! before each real syscall. The hook decides, purely from the stage
//! and the entry name, whether that syscall "fails" and how. The store
//! itself stays dependency-free: seeded draw policies (the
//! `CEDAR_CHAOS` fs lane) live upstream and plug in through the hook.
//!
//! The injected faults are the honest ones a real filesystem produces:
//!
//! * [`FsFault::ShortWrite`] — the write persists only a prefix (torn
//!   page, out-of-space mid-write);
//! * [`FsFault::Eio`] — the syscall fails outright, leaving whatever
//!   state it already created;
//! * [`FsFault::Crash`] — the process "dies" at this point: nothing
//!   after the stage happens. At [`FsStage::Rename`] this is the
//!   classic crash window — the tmp file is fully written and synced
//!   but the entry never appears.

use std::sync::Arc;

/// A stage of the durable-write sequence, in execution order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsStage {
    /// Writing the entry bytes to the tmp file.
    Write,
    /// `fsync` of the tmp file.
    Sync,
    /// Atomic rename of the tmp file onto the entry path.
    Rename,
    /// `fsync` of the entries directory (persists the rename).
    DirSync,
}

impl FsStage {
    /// Stable lowercase tag, used as the chaos draw key.
    pub fn tag(self) -> &'static str {
        match self {
            FsStage::Write => "write",
            FsStage::Sync => "sync",
            FsStage::Rename => "rename",
            FsStage::DirSync => "dir-sync",
        }
    }

    /// Every stage, in the order a put executes them.
    pub const ALL: [FsStage; 4] = [FsStage::Write, FsStage::Sync, FsStage::Rename, FsStage::DirSync];
}

/// How an injected stage fails.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsFault {
    /// Only the first `n` bytes of the write persist, then the
    /// operation errors. Meaningful at [`FsStage::Write`]; other
    /// stages treat it as [`FsFault::Eio`].
    ShortWrite(usize),
    /// The syscall fails with an I/O error.
    Eio,
    /// The process dies here: the stage and everything after it never
    /// execute.
    Crash,
}

/// Decides whether a syscall at `stage` for entry `name` is injected
/// with a fault. `None` means the real syscall proceeds.
pub type FaultHook = Arc<dyn Fn(FsStage, &str) -> Option<FsFault> + Send + Sync>;
