//! `cedar-store` — a crash-safe, content-addressed, dependency-free
//! on-disk store (DESIGN.md §15).
//!
//! The store maps a 64-bit content key to an immutable byte payload
//! and promises exactly one thing about crashes: **a reader never sees
//! a torn entry**. After `kill -9`, power loss at any modeled point, or
//! any injected filesystem fault, every entry is either absent or
//! byte-for-byte intact — so callers treat the store as a cache that
//! self-heals by recomputation, never as a source of truth that can
//! lie.
//!
//! How the promise is kept:
//!
//! * **Atomic writes.** [`Store::put`] writes `payload + trailer` to a
//!   private file under `tmp/`, fsyncs it, and `rename(2)`s it onto
//!   `entries/<key>`. POSIX rename is atomic: the entry path only ever
//!   points at nothing or at a complete file. Leftover tmp files from
//!   a crash are swept on the next writable [`Store::open`].
//! * **Checksum trailer.** Every entry ends with 24 bytes: payload
//!   length, FNV-1a checksum of the payload, and a format magic.
//!   [`Store::get`] verifies all three; any mismatch (torn page,
//!   bit rot, truncation that somehow survived the atomic rename —
//!   e.g. a partially-synced tmp file renamed by a pre-crash kernel)
//!   quarantines the file under `corrupt/` and reports a miss, so the
//!   caller recomputes and the next put replaces the entry.
//! * **Single writer, many readers.** A writable store holds a PID
//!   lock file ([`lock`]-module semantics, stale locks from dead
//!   processes are reclaimed); read-only stores never lock. Readers
//!   race only with atomic renames and unlinks — either outcome is a
//!   complete entry or a miss.
//! * **Generation-stamped GC.** When a byte cap is configured, a put
//!   that pushes the store over the cap evicts least-recently-used
//!   entries (mtime order — reads touch their entry) and bumps the
//!   `gen` stamp, so sweeps are observable and a reader holding a
//!   stale path simply misses.
//!
//! Fault injection: every syscall in the durable-write sequence asks
//! an optional [`FaultHook`] first ([`faults`]), which is how the
//! seeded `CEDAR_CHAOS` fs lane drives the whole crash matrix
//! deterministically in tests.

#![warn(missing_docs)]

pub mod faults;
mod lock;

pub use faults::{FaultHook, FsFault, FsStage};

use std::fs::{self, File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Trailing format magic; also the version tag of the entry layout.
const MAGIC: &[u8; 8] = b"cedarst1";
/// Trailer size: payload length (8) + FNV-1a checksum (8) + magic (8).
const TRAILER: usize = 24;

/// FNV-1a over raw bytes — the same digest family the rest of the
/// workspace keys caches with, reimplemented here so the store stays
/// dependency-free.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Store failures. Everything is either an environment problem (I/O,
/// lock contention) or an injected fault surfacing through the API.
#[derive(Debug)]
pub enum StoreError {
    /// A real filesystem operation failed.
    Io {
        /// Which operation (`"write"`, `"rename"`, ...).
        op: &'static str,
        /// The path it targeted.
        path: PathBuf,
        /// The underlying error.
        err: std::io::Error,
    },
    /// Another live process holds the writer lock.
    Locked {
        /// PID (or description) of the holder.
        holder: String,
    },
    /// `put` on a store opened with [`Store::open_read_only`].
    ReadOnly,
    /// An injected fault fired at this durable-write stage.
    Injected {
        /// The stage tag (`"write"`, `"sync"`, `"rename"`, `"dir-sync"`).
        stage: &'static str,
    },
}

impl StoreError {
    fn io(op: &'static str, path: &Path, err: std::io::Error) -> StoreError {
        StoreError::Io { op, path: path.to_path_buf(), err }
    }
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io { op, path, err } => {
                write!(f, "store {op} {}: {err}", path.display())
            }
            StoreError::Locked { holder } => {
                write!(f, "store is locked by another writer (pid {holder})")
            }
            StoreError::ReadOnly => write!(f, "store was opened read-only"),
            StoreError::Injected { stage } => {
                write!(f, "injected fs fault at stage `{stage}`")
            }
        }
    }
}

impl std::error::Error for StoreError {}

/// Monotonic counters of what the store observed. Snapshot via
/// [`Store::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Reads that returned a verified payload.
    pub hits: u64,
    /// Reads of absent keys.
    pub misses: u64,
    /// Reads that found a torn/corrupt entry, quarantined it, and
    /// reported a miss (the self-heal path).
    pub corrupt_recovered: u64,
    /// Successful durable writes.
    pub puts: u64,
    /// Entries evicted by the GC size cap.
    pub evicted: u64,
}

#[derive(Default)]
struct Counters {
    hits: AtomicU64,
    misses: AtomicU64,
    corrupt: AtomicU64,
    puts: AtomicU64,
    evicted: AtomicU64,
}

/// A content-addressed store rooted at one directory.
///
/// Thread-safe: `get` is lock-free (entry files are immutable), `put`
/// serializes in-process through an internal mutex and cross-process
/// through the writer lock file.
pub struct Store {
    root: PathBuf,
    cap_bytes: Option<u64>,
    hook: Option<FaultHook>,
    counters: Counters,
    /// In-process writer serialization; the value is the tmp-name nonce.
    writer: Option<Mutex<u64>>,
    _lock: Option<lock::LockGuard>,
}

impl std::fmt::Debug for Store {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Store")
            .field("root", &self.root)
            .field("cap_bytes", &self.cap_bytes)
            .field("writable", &self.writer.is_some())
            .finish()
    }
}

impl Store {
    /// Open (creating if necessary) a writable store at `root`,
    /// acquiring the writer lock and sweeping tmp litter from any
    /// previous crash.
    pub fn open(root: impl Into<PathBuf>) -> Result<Store, StoreError> {
        let root = root.into();
        for sub in ["entries", "tmp", "corrupt"] {
            let d = root.join(sub);
            fs::create_dir_all(&d).map_err(|e| StoreError::io("create-dir", &d, e))?;
        }
        let guard = lock::acquire(&root)?;
        // A crash leaves at most tmp files behind; none is referenced
        // by an entry path, so sweeping them is always safe.
        let tmp = root.join("tmp");
        if let Ok(dirents) = fs::read_dir(&tmp) {
            for ent in dirents.flatten() {
                let _ = fs::remove_file(ent.path());
            }
        }
        Ok(Store {
            root,
            cap_bytes: None,
            hook: None,
            counters: Counters::default(),
            writer: Some(Mutex::new(0)),
            _lock: Some(guard),
        })
    }

    /// Open a read-only view: no lock, no tmp sweep, `put` refused. A
    /// corrupt entry found by a read-only store is reported as a miss
    /// but left in place for the writer to quarantine.
    pub fn open_read_only(root: impl Into<PathBuf>) -> Store {
        Store {
            root: root.into(),
            cap_bytes: None,
            hook: None,
            counters: Counters::default(),
            writer: None,
            _lock: None,
        }
    }

    /// Set a GC size cap: a put that leaves more than `bytes` of entry
    /// data evicts least-recently-used entries back under the cap.
    pub fn with_cap_bytes(mut self, bytes: u64) -> Store {
        self.cap_bytes = Some(bytes);
        self
    }

    /// Install a fault hook consulted before every durable-write
    /// syscall (the `CEDAR_CHAOS` fs lane plugs in here).
    pub fn with_fault_hook(mut self, hook: FaultHook) -> Store {
        self.hook = Some(hook);
        self
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Counter snapshot.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            hits: self.counters.hits.load(Ordering::Relaxed),
            misses: self.counters.misses.load(Ordering::Relaxed),
            corrupt_recovered: self.counters.corrupt.load(Ordering::Relaxed),
            puts: self.counters.puts.load(Ordering::Relaxed),
            evicted: self.counters.evicted.load(Ordering::Relaxed),
        }
    }

    /// The GC generation stamp: how many eviction sweeps this store
    /// has run over its lifetime (0 before the first).
    pub fn generation(&self) -> u64 {
        fs::read_to_string(self.root.join("gen"))
            .ok()
            .and_then(|s| s.trim().parse().ok())
            .unwrap_or(0)
    }

    fn entry_path(&self, key: u64) -> PathBuf {
        self.root.join("entries").join(format!("{key:016x}"))
    }

    /// Read and verify an entry. `None` is a miss — including the
    /// corrupt case, where the torn file has been quarantined under
    /// `corrupt/` and the caller is expected to recompute.
    pub fn get(&self, key: u64) -> Option<Vec<u8>> {
        let path = self.entry_path(key);
        let bytes = match fs::read(&path) {
            Ok(b) => b,
            Err(_) => {
                self.counters.misses.fetch_add(1, Ordering::Relaxed);
                return None;
            }
        };
        match verify(&bytes) {
            Some(payload_len) => {
                self.counters.hits.fetch_add(1, Ordering::Relaxed);
                // Touch for LRU GC ordering; best-effort.
                if self.writer.is_some() {
                    if let Ok(f) = File::open(&path) {
                        let _ = f.set_modified(std::time::SystemTime::now());
                    }
                }
                let mut bytes = bytes;
                bytes.truncate(payload_len);
                Some(bytes)
            }
            None => {
                self.quarantine(key, &path);
                None
            }
        }
    }

    /// Move a torn/corrupt entry out of the reader's way (writable
    /// stores only) and count the recovery.
    fn quarantine(&self, key: u64, path: &Path) {
        self.counters.corrupt.fetch_add(1, Ordering::Relaxed);
        if self.writer.is_none() {
            return;
        }
        for n in 0.. {
            let dest = self.root.join("corrupt").join(format!("{key:016x}.{n}"));
            if dest.exists() {
                continue;
            }
            let _ = fs::rename(path, &dest);
            break;
        }
    }

    /// Does a verified entry exist for `key`? (Counts as a read.)
    pub fn contains(&self, key: u64) -> bool {
        self.get(key).is_some()
    }

    fn fault(&self, stage: FsStage, name: &str) -> Option<FsFault> {
        self.hook.as_ref().and_then(|h| h(stage, name))
    }

    /// Durably write `payload` under `key`, replacing any existing
    /// entry. On error — real or injected — the store is unchanged
    /// except possibly for tmp litter (swept at next open) and the
    /// promise holds: the entry is the old version, the new version,
    /// or absent, never torn.
    pub fn put(&self, key: u64, payload: &[u8]) -> Result<(), StoreError> {
        let writer = self.writer.as_ref().ok_or(StoreError::ReadOnly)?;
        let name = format!("{key:016x}");
        let mut full = Vec::with_capacity(payload.len() + TRAILER);
        full.extend_from_slice(payload);
        full.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        full.extend_from_slice(&fnv1a(payload).to_le_bytes());
        full.extend_from_slice(MAGIC);

        let mut nonce = writer.lock().unwrap();
        *nonce += 1;
        let tmp = self.root.join("tmp").join(format!("{name}.{}.{}", std::process::id(), *nonce));

        // Stage 1: write the tmp file.
        match self.fault(FsStage::Write, &name) {
            Some(FsFault::ShortWrite(n)) => {
                // The torn prefix persists — exactly what a crash
                // mid-write leaves. It lives in tmp/, unreferenced.
                let _ = fs::write(&tmp, &full[..n.min(full.len())]);
                return Err(StoreError::Injected { stage: "write" });
            }
            Some(_) => {
                let _ = fs::write(&tmp, b"");
                return Err(StoreError::Injected { stage: "write" });
            }
            None => {}
        }
        let mut f = OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(&tmp)
            .map_err(|e| StoreError::io("create", &tmp, e))?;
        f.write_all(&full).map_err(|e| StoreError::io("write", &tmp, e))?;

        // Stage 2: fsync the tmp file so the rename can't outrun its
        // contents.
        if self.fault(FsStage::Sync, &name).is_some() {
            return Err(StoreError::Injected { stage: "sync" });
        }
        f.sync_all().map_err(|e| StoreError::io("sync", &tmp, e))?;
        drop(f);

        // Stage 3: the atomic rename. The crash window lives here —
        // an injected Crash leaves a complete synced tmp file but no
        // entry, which is what dying between sync and rename looks
        // like.
        if self.fault(FsStage::Rename, &name).is_some() {
            return Err(StoreError::Injected { stage: "rename" });
        }
        let dest = self.entry_path(key);
        fs::rename(&tmp, &dest).map_err(|e| StoreError::io("rename", &tmp, e))?;

        // Stage 4: fsync the directory so the rename itself is
        // durable. An injected fault here still leaves an intact
        // entry in this process's view — the caller may retry the put,
        // which is idempotent.
        if self.fault(FsStage::DirSync, &name).is_some() {
            return Err(StoreError::Injected { stage: "dir-sync" });
        }
        if let Ok(d) = File::open(self.root.join("entries")) {
            let _ = d.sync_all();
        }
        self.counters.puts.fetch_add(1, Ordering::Relaxed);

        if let Some(cap) = self.cap_bytes {
            self.gc(cap, key);
        }
        drop(nonce);
        Ok(())
    }

    /// Total bytes of entry files currently on disk.
    pub fn total_bytes(&self) -> u64 {
        let mut sum = 0;
        if let Ok(dirents) = fs::read_dir(self.root.join("entries")) {
            for ent in dirents.flatten() {
                if let Ok(meta) = ent.metadata() {
                    sum += meta.len();
                }
            }
        }
        sum
    }

    /// Number of entries currently on disk.
    pub fn len(&self) -> usize {
        fs::read_dir(self.root.join("entries")).map(|d| d.flatten().count()).unwrap_or(0)
    }

    /// Is the store empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Evict least-recently-used entries until total size is back under
    /// `cap`, sparing `keep` (the entry just written), then bump the
    /// generation stamp.
    fn gc(&self, cap: u64, keep: u64) {
        let mut entries: Vec<(PathBuf, std::time::SystemTime, u64)> = Vec::new();
        let mut total = 0u64;
        let spare = self.entry_path(keep);
        if let Ok(dirents) = fs::read_dir(self.root.join("entries")) {
            for ent in dirents.flatten() {
                if let Ok(meta) = ent.metadata() {
                    total += meta.len();
                    let mtime = meta.modified().unwrap_or(std::time::UNIX_EPOCH);
                    entries.push((ent.path(), mtime, meta.len()));
                }
            }
        }
        if total <= cap {
            return;
        }
        entries.sort_by_key(|(_, mtime, _)| *mtime);
        let mut evicted = 0u64;
        for (path, _, len) in entries {
            if total <= cap {
                break;
            }
            if path == spare {
                continue;
            }
            if fs::remove_file(&path).is_ok() {
                total -= len;
                evicted += 1;
            }
        }
        if evicted > 0 {
            self.counters.evicted.fetch_add(evicted, Ordering::Relaxed);
            let gen = self.generation() + 1;
            let _ = atomic_write(&self.root.join("gen"), gen.to_string().as_bytes());
        }
    }
}

/// Validate `payload + trailer` layout; returns the payload length of
/// a well-formed entry.
fn verify(bytes: &[u8]) -> Option<usize> {
    if bytes.len() < TRAILER {
        return None;
    }
    let (payload, trailer) = bytes.split_at(bytes.len() - TRAILER);
    if &trailer[16..24] != MAGIC {
        return None;
    }
    let len = u64::from_le_bytes(trailer[0..8].try_into().unwrap());
    if len != payload.len() as u64 {
        return None;
    }
    let sum = u64::from_le_bytes(trailer[8..16].try_into().unwrap());
    (fnv1a(payload) == sum).then_some(payload.len())
}

/// Write `bytes` to `path` atomically: private tmp file in the same
/// directory, fsync, rename. Callers elsewhere in the workspace use
/// this for documents that must never be read torn (merged campaign
/// reports, compacted journals) without adopting the full store.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> Result<(), StoreError> {
    let dir = path.parent().filter(|p| !p.as_os_str().is_empty()).unwrap_or(Path::new("."));
    let stem = path.file_name().map(|n| n.to_string_lossy().into_owned()).unwrap_or_default();
    let tmp = dir.join(format!(".{stem}.tmp{}", std::process::id()));
    let mut f = OpenOptions::new()
        .write(true)
        .create(true)
        .truncate(true)
        .open(&tmp)
        .map_err(|e| StoreError::io("create", &tmp, e))?;
    f.write_all(bytes).map_err(|e| StoreError::io("write", &tmp, e))?;
    f.sync_all().map_err(|e| StoreError::io("sync", &tmp, e))?;
    drop(f);
    fs::rename(&tmp, path).map_err(|e| StoreError::io("rename", &tmp, e))?;
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn fresh(tag: &str) -> PathBuf {
        let d = PathBuf::from(format!("target/test-store/{tag}"));
        let _ = fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn put_get_round_trips_and_counts() {
        let s = Store::open(fresh("roundtrip")).unwrap();
        assert_eq!(s.get(1), None);
        s.put(1, b"hello cedar").unwrap();
        assert_eq!(s.get(1).as_deref(), Some(&b"hello cedar"[..]));
        s.put(1, b"replaced").unwrap();
        assert_eq!(s.get(1).as_deref(), Some(&b"replaced"[..]));
        let st = s.stats();
        assert_eq!((st.hits, st.misses, st.puts, st.corrupt_recovered), (2, 1, 2, 0));
    }

    #[test]
    fn empty_payloads_and_binary_payloads_survive() {
        let s = Store::open(fresh("binary")).unwrap();
        s.put(0, b"").unwrap();
        assert_eq!(s.get(0).as_deref(), Some(&b""[..]));
        let blob: Vec<u8> = (0..=255u8).cycle().take(70_000).collect();
        s.put(u64::MAX, &blob).unwrap();
        assert_eq!(s.get(u64::MAX), Some(blob));
    }

    #[test]
    fn corrupt_entries_are_quarantined_and_selfheal() {
        let root = fresh("corrupt");
        let s = Store::open(&root).unwrap();
        s.put(7, b"the truth").unwrap();
        // Flip a payload byte behind the store's back.
        let path = root.join("entries").join(format!("{:016x}", 7u64));
        let mut bytes = fs::read(&path).unwrap();
        bytes[0] ^= 0x40;
        fs::write(&path, &bytes).unwrap();
        assert_eq!(s.get(7), None, "corrupt entry must read as a miss");
        assert_eq!(s.stats().corrupt_recovered, 1);
        assert!(
            root.join("corrupt").join(format!("{:016x}.0", 7u64)).exists(),
            "torn file must be quarantined, not destroyed"
        );
        // Self-heal: recompute, re-put, read back.
        s.put(7, b"the truth").unwrap();
        assert_eq!(s.get(7).as_deref(), Some(&b"the truth"[..]));
    }

    #[test]
    fn truncations_at_every_length_never_return_torn_bytes() {
        let root = fresh("truncate");
        let s = Store::open(&root).unwrap();
        let payload = b"a payload long enough to truncate interestingly".to_vec();
        let path = root.join("entries").join(format!("{:016x}", 3u64));
        s.put(3, &payload).unwrap();
        let full = fs::read(&path).unwrap();
        for cut in 0..full.len() {
            fs::write(&path, &full[..cut]).unwrap();
            match s.get(3) {
                None => {}
                Some(got) => panic!("torn read at cut {cut}: {got:?}"),
            }
            // Restore for the next cut (get() quarantined the file).
            fs::write(&path, &full).unwrap();
        }
        assert_eq!(s.get(3), Some(payload));
    }

    #[test]
    fn read_only_stores_see_writes_but_cannot_write() {
        let root = fresh("ro");
        let w = Store::open(&root).unwrap();
        w.put(9, b"visible").unwrap();
        let r = Store::open_read_only(&root);
        assert_eq!(r.get(9).as_deref(), Some(&b"visible"[..]));
        assert!(matches!(r.put(9, b"nope"), Err(StoreError::ReadOnly)));
    }

    #[test]
    fn second_writer_is_locked_out_until_drop() {
        let root = fresh("two-writers");
        let a = Store::open(&root).unwrap();
        assert!(matches!(Store::open(&root), Err(StoreError::Locked { .. })));
        drop(a);
        Store::open(&root).unwrap();
    }

    #[test]
    fn gc_evicts_lru_and_bumps_the_generation() {
        let root = fresh("gc");
        // Each entry is 8 + 24 = 32 bytes; cap at 3 entries' worth.
        let s = Store::open(&root).unwrap().with_cap_bytes(96);
        for k in 0..3u64 {
            s.put(k, b"8 bytes!").unwrap();
            // mtime granularity: space the writes out.
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        assert_eq!(s.generation(), 0);
        // Touch 0 so 1 becomes the LRU victim.
        assert!(s.get(0).is_some());
        std::thread::sleep(std::time::Duration::from_millis(5));
        s.put(3, b"8 bytes!").unwrap();
        assert_eq!(s.generation(), 1);
        assert_eq!(s.stats().evicted, 1);
        assert!(s.get(1).is_none(), "LRU entry must be evicted");
        assert!(s.get(0).is_some() && s.get(2).is_some() && s.get(3).is_some());
    }

    #[test]
    fn tmp_litter_is_swept_on_reopen() {
        let root = fresh("sweep");
        {
            let s = Store::open(&root).unwrap();
            s.put(1, b"ok").unwrap();
        }
        fs::write(root.join("tmp").join("deadbeef.1.1"), b"torn").unwrap();
        let s = Store::open(&root).unwrap();
        assert_eq!(fs::read_dir(root.join("tmp")).unwrap().count(), 0);
        assert_eq!(s.get(1).as_deref(), Some(&b"ok"[..]));
    }

    #[test]
    fn injected_faults_surface_and_never_tear() {
        let root = fresh("inject");
        for (stage, fault) in [
            (FsStage::Write, FsFault::ShortWrite(5)),
            (FsStage::Write, FsFault::Eio),
            (FsStage::Sync, FsFault::Eio),
            (FsStage::Rename, FsFault::Crash),
        ] {
            let _ = fs::remove_dir_all(&root);
            let hook: FaultHook = Arc::new(move |st, _| (st == stage).then_some(fault));
            let s = Store::open(&root).unwrap().with_fault_hook(hook);
            assert!(matches!(s.put(2, b"doomed"), Err(StoreError::Injected { .. })));
            assert_eq!(s.get(2), None, "{stage:?}: failed put must not leave an entry");
            assert_eq!(s.stats().corrupt_recovered, 0, "{stage:?}: nothing torn to read");
        }
        // DirSync fault: the entry is already durable in this process's
        // view — present and intact despite the error.
        let _ = fs::remove_dir_all(&root);
        let hook: FaultHook = Arc::new(|st, _| (st == FsStage::DirSync).then_some(FsFault::Eio));
        let s = Store::open(&root).unwrap().with_fault_hook(hook);
        assert!(matches!(s.put(2, b"durable"), Err(StoreError::Injected { stage: "dir-sync" })));
        assert_eq!(s.get(2).as_deref(), Some(&b"durable"[..]));
    }

    #[test]
    fn atomic_write_replaces_whole_files() {
        let root = fresh("atomic");
        fs::create_dir_all(&root).unwrap();
        let path = root.join("doc.json");
        atomic_write(&path, b"{\"v\": 1}").unwrap();
        atomic_write(&path, b"{\"v\": 2}").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"{\"v\": 2}");
        assert_eq!(fs::read_dir(&root).unwrap().count(), 1, "no tmp litter");
    }
}
