//! Table 2 workloads: clean-room proxy kernels for the twelve Perfect
//! Benchmarks programs the paper evaluates.
//!
//! Each proxy reproduces the *parallelization story* the paper tells
//! about its program — which technique unlocks it and why the automatic
//! 1991 pipeline fell short — not the physics. The automatic-vs-manual
//! axis is exercised by restructuring the same source under
//! `PassConfig::automatic_1991()` vs. `PassConfig::manual_improved()`.

use crate::Workload;

/// All twelve Table 2 proxies in table order.
pub fn all() -> Vec<Workload> {
    vec![
        arc2d(),
        flo52(),
        bdna(),
        dyfesm(),
        adm(),
        mdg(),
        mg3d(),
        ocean(),
        track(),
        trfd(),
        qcd(),
        spec77(),
    ]
}

/// ARC2D: implicit-fluid ADI sweeps. Mostly clean DOALL rows/columns —
/// the automatic pipeline already does well (13.5×); manual adds a
/// privatized pencil buffer (20.8×).
pub fn arc2d() -> Workload {
    let source = "
      PROGRAM ARC2D
      PARAMETER (NX = 96, NY = 96, NSTEP = 3)
      REAL U(NX, NY), RHS(NX, NY), PEN(NX), CHKSUM
      DO 20 J = 1, NY
        DO 10 I = 1, NX
          U(I, J) = SIN(0.07 * REAL(I)) * COS(0.05 * REAL(J))
          RHS(I, J) = 0.0
   10   CONTINUE
   20 CONTINUE
      DO 90 IS = 1, NSTEP
C       residual stencil: clean DOALL over interior columns
        DO 40 J = 2, NY - 1
          DO 30 I = 2, NX - 1
            RHS(I, J) = U(I + 1, J) + U(I - 1, J) + U(I, J + 1)
     &                + U(I, J - 1) - 4.0 * U(I, J)
   30     CONTINUE
   40   CONTINUE
C       x-direction implicit sweep: recurrence along I, parallel over J,
C       with a pencil work array that needs (array) privatization
        DO 70 J = 2, NY - 1
          DO 50 I = 1, NX
            PEN(I) = RHS(I, J) * 0.25
   50     CONTINUE
          DO 60 I = 2, NX - 1
            U(I, J) = U(I, J) + PEN(I) + 0.1 * PEN(I - 1)
   60     CONTINUE
   70   CONTINUE
   90 CONTINUE
      CHKSUM = 0.0
      DO 95 J = 1, NY
        CHKSUM = CHKSUM + U(J, J)
   95 CONTINUE
      END
";
    Workload {
        name: "ARC2D",
        paper_size: 0,
        size: 96,
        source: source.to_string(),
        watch: vec!["chksum"],
        key_technique: "array privatization of the sweep pencil",
    }
}

/// FLO52: the Figure 9 granularity story — a subroutine of two outer
/// loops over sequences of small inner loops. The automatic pipeline
/// parallelizes the small inner loops only (5.5×); manually the outer
/// loops are privatized, parallelized, and fused (15.3×).
pub fn flo52() -> Workload {
    let source = "
      PROGRAM FLO52
      PARAMETER (NI = 48, NJ = 64, NSTEP = 12)
      REAL U(NI, NJ), F(NI), G(NI), CHKSUM
      DO 20 J = 1, NJ
        DO 10 I = 1, NI
          U(I, J) = 1.0 + 0.01 * REAL(I) + 0.002 * REAL(J)
   10   CONTINUE
   20 CONTINUE
      DO 90 IS = 1, NSTEP
C       stage 1: flux assembly per column through a work vector
        DO 40 J = 1, NJ
          DO 25 I = 1, NI
            F(I) = 0.5 * U(I, J)
   25     CONTINUE
          DO 35 I = 1, NI
            U(I, J) = U(I, J) + 0.1 * F(I)
   35     CONTINUE
   40   CONTINUE
C       stage 2: dissipation per column through another work vector
        DO 80 J = 1, NJ
          DO 50 I = 1, NI
            G(I) = U(I, J) * U(I, J) * 0.001
   50     CONTINUE
          DO 60 I = 1, NI
            U(I, J) = U(I, J) - 0.05 * G(I)
   60     CONTINUE
   80   CONTINUE
   90 CONTINUE
      CHKSUM = 0.0
      DO 95 J = 1, NJ
        CHKSUM = CHKSUM + U(1, J) + U(NI, J)
   95 CONTINUE
      END
";
    Workload {
        name: "FLO52",
        paper_size: 0,
        size: 192,
        source: source.to_string(),
        watch: vec!["chksum"],
        key_technique: "outer-loop privatization + fusion (Fig. 9 granularity)",
    }
}

/// BDNA: molecular dynamics with multi-statement force accumulations —
/// the §4.1.3 parallel-reduction story (1.8× → 8.5×).
pub fn bdna() -> Workload {
    let source = "
      PROGRAM BDNA
      PARAMETER (NATOM = 96, NDIM = 64, NSTEP = 3)
      REAL POS(NATOM), FRC(NDIM), WRK(NDIM), CF(NDIM), CHKSUM
      DO 10 I = 1, NATOM
        POS(I) = 0.5 + 0.003 * REAL(I)
   10 CONTINUE
      DO 15 J = 1, NDIM
        FRC(J) = 0.0
        CF(J) = 1.0 / (1.0 + 0.1 * REAL(J))
   15 CONTINUE
      DO 90 IS = 1, NSTEP
C       pairwise-ish force sweep: three accumulation statements onto the
C       same force array (the form the 1991 KAP 'was not prepared for')
        DO 40 I = 1, NATOM
          DO 30 J = 1, NDIM
            WRK(J) = POS(I) * CF(J)
            FRC(J) = FRC(J) + WRK(J)
            FRC(J) = FRC(J) + 0.5 * WRK(J) * WRK(J)
            FRC(J) = FRC(J) - 0.01 * WRK(J) * POS(I)
   30     CONTINUE
   40   CONTINUE
C       position update: clean DOALL
        DO 50 I = 1, NATOM
          POS(I) = POS(I) + 1.0E-5 * FRC(MOD(I, NDIM) + 1)
   50   CONTINUE
   90 CONTINUE
      CHKSUM = 0.0
      DO 95 J = 1, NDIM
        CHKSUM = CHKSUM + FRC(J)
   95 CONTINUE
      END
";
    Workload {
        name: "BDNA",
        paper_size: 0,
        size: 96,
        source: source.to_string(),
        watch: vec!["chksum"],
        key_technique: "multi-statement array reductions",
    }
}

/// DYFESM: finite-element assembly — per-element work arrays (array
/// privatization) feeding element-to-node accumulations (2.2× → 11.4×).
pub fn dyfesm() -> Workload {
    let source = "
      PROGRAM DYFESM
      PARAMETER (NELEM = 256, NNODE = 64, NSTEP = 3)
      REAL DISP(NNODE), FORCE(NNODE), EW(8), CHKSUM, S
      INTEGER ND
      DO 10 I = 1, NNODE
        DISP(I) = 0.01 * REAL(I)
        FORCE(I) = 0.0
   10 CONTINUE
      DO 90 IS = 1, NSTEP
        DO 40 IE = 1, NELEM
C         gather element state into a privatizable work array
          DO 20 K = 1, 8
            EW(K) = DISP(MOD(IE + K, NNODE) + 1) * (1.0 + 0.1 * REAL(K))
   20     CONTINUE
C         element force: reduce locally, then one commutative update at
C         a computed node index (the §4.1.6 critical-section shape)
          ND = MOD(IE, NNODE) + 1
          S = 0.0
          DO 30 K = 1, 8
            S = S + EW(K) * 0.05
   30     CONTINUE
          FORCE(ND) = FORCE(ND) + S
   40   CONTINUE
        DO 50 I = 1, NNODE
          DISP(I) = DISP(I) + 1.0E-4 * FORCE(I)
   50   CONTINUE
   90 CONTINUE
      CHKSUM = 0.0
      DO 95 I = 1, NNODE
        CHKSUM = CHKSUM + FORCE(I) + DISP(I)
   95 CONTINUE
      END
";
    Workload {
        name: "DYFESM",
        paper_size: 0,
        size: 256,
        source: source.to_string(),
        watch: vec!["chksum"],
        key_technique: "array privatization + commutative node accumulation",
    }
}

/// ADM: the hot loop calls a physics routine per column — opaque to the
/// automatic pipeline (0.6×, it only parallelizes overhead-bound small
/// loops); inlining + array privatization unlock it (10.1×).
pub fn adm() -> Workload {
    let source = "
      PROGRAM ADM
      PARAMETER (NCOL = 192, NLEV = 48, NSTEP = 3)
      REAL Q(NLEV, NCOL), CHKSUM
      DO 20 J = 1, NCOL
        DO 10 K = 1, NLEV
          Q(K, J) = 1.0 + 0.01 * REAL(K) + 0.001 * REAL(J)
   10   CONTINUE
   20 CONTINUE
      DO 90 IS = 1, NSTEP
        DO 40 J = 1, NCOL
          CALL COLPHY(Q, J, NLEV, NCOL)
   40   CONTINUE
   90 CONTINUE
      CHKSUM = 0.0
      DO 95 K = 1, NLEV
        CHKSUM = CHKSUM + Q(K, 1) + Q(K, NCOL)
   95 CONTINUE
      END

      SUBROUTINE COLPHY(Q, J, NLEV, NCOL)
      INTEGER J, NLEV, NCOL
      REAL Q(NLEV, NCOL), COL(64)
      DO 10 K = 1, NLEV
        COL(K) = Q(K, J) * 1.01
   10 CONTINUE
      DO 20 K = 1, NLEV
        Q(K, J) = COL(K) + 0.002 * SQRT(COL(K))
   20 CONTINUE
      END
";
    Workload {
        name: "ADM",
        paper_size: 0,
        size: 192,
        source: source.to_string(),
        watch: vec!["chksum"],
        key_technique: "inline expansion + interprocedural analysis + array privatization",
    }
}

/// MDG: water-molecule dynamics — "very little speedup possible" without
/// array privatization and multi-statement reductions (1.0× → 20.6×).
/// Its major loop is also the Figure 7 measurement subject.
pub fn mdg() -> Workload {
    let source = mdg_source(256, 32);
    Workload {
        name: "MDG",
        paper_size: 0,
        size: 256,
        source,
        watch: vec!["chksum"],
        key_technique: "array privatization (Fig. 7) + array reductions",
    }
}

/// The MDG major loop, parameterized for the Fig. 7 experiment.
pub fn mdg_source(nmol: usize, nsite: usize) -> String {
    format!(
        "
      PROGRAM MDG
      PARAMETER (NMOL = {nmol}, NSITE = {nsite}, NSTEP = 3)
      REAL X(NMOL), ACC(NSITE), RS(NSITE), SOFF(NSITE), CHKSUM
      DO 10 I = 1, NMOL
        X(I) = 0.4 + 0.002 * REAL(I)
   10 CONTINUE
      DO 15 K = 1, NSITE
        ACC(K) = 0.0
        SOFF(K) = 0.01 * REAL(K)
   15 CONTINUE
      DO 90 IS = 1, NSTEP
C       major loop: per-molecule site distances in a privatizable work
C       array, then two accumulation statements per site
        DO 40 I = 1, NMOL
          DO 20 K = 1, NSITE
            RS(K) = X(I) + SOFF(K)
   20     CONTINUE
          DO 30 K = 1, NSITE
            ACC(K) = ACC(K) + RS(K) * 0.001
            ACC(K) = ACC(K) + RS(K) * RS(K) * 0.0001
   30     CONTINUE
   40   CONTINUE
        DO 50 I = 1, NMOL
          X(I) = X(I) + 1.0E-5 * ACC(MOD(I, NSITE) + 1)
   50   CONTINUE
   90 CONTINUE
      CHKSUM = 0.0
      DO 95 K = 1, NSITE
        CHKSUM = CHKSUM + ACC(K)
   95 CONTINUE
      END
"
    )
}

/// MG3D: seismic 3-D migration — big grids whose sweeps privatize a
/// depth pencil (0.9× → 48.8×; the manual version also escapes the
/// serial version's memory pressure).
pub fn mg3d() -> Workload {
    let source = "
      PROGRAM MG3D
      PARAMETER (NX = 32, NY = 32, NZ = 32, NSTEP = 3)
      REAL P(NX, NY, NZ), PENC(32), CHKSUM
      DO 30 K = 1, NZ
        DO 20 J = 1, NY
          DO 10 I = 1, NX
            P(I, J, K) = 0.01 * REAL(I) + 0.02 * REAL(J) + 0.005 * REAL(K)
   10     CONTINUE
   20   CONTINUE
   30 CONTINUE
      DO 90 IS = 1, NSTEP
        DO 70 K = 1, NZ
          DO 60 J = 1, NY
            DO 40 I = 1, NX
              PENC(I) = P(I, J, K) * 0.9
   40       CONTINUE
            DO 50 I = 2, NX - 1
              P(I, J, K) = PENC(I) + 0.05 * (PENC(I - 1) + PENC(I + 1))
   50       CONTINUE
   60     CONTINUE
   70   CONTINUE
   90 CONTINUE
      CHKSUM = 0.0
      DO 95 K = 1, NZ
        CHKSUM = CHKSUM + P(K, K, K)
   95 CONTINUE
      END
";
    Workload {
        name: "MG3D",
        paper_size: 0,
        size: 32,
        source: source.to_string(),
        watch: vec!["chksum"],
        key_technique: "array privatization of depth pencils at scale",
    }
}

/// OCEAN: linearized multi-dimensional indexing (65 % of serial time)
/// plus multiplicative generalized induction variables
/// (0.7× → 16.7×).
pub fn ocean() -> Workload {
    let source = "
      PROGRAM OCEAN
      PARAMETER (NN = 512, MM = 24, NSTEP = 3)
      REAL A(NN * MM), B(NN * MM), W(NN), CHKSUM, WF
      INTEGER MSTR
      MSTR = MM
      DO 20 J = 1, NN
        DO 10 I = 1, MM
          A((J - 1) * MSTR + I) = 0.001 * REAL(I) + 0.01 * REAL(J)
          B((J - 1) * MSTR + I) = 0.002 * REAL(I) - 0.01 * REAL(J)
   10   CONTINUE
   20 CONTINUE
C     geometric-progression weights (multiplicative GIV)
      WF = 1.0
      DO 30 I = 1, NN
        WF = WF * 1.01
        W(I) = WF
   30 CONTINUE
      DO 90 IS = 1, NSTEP
C       the hot loops: every array indexed through the linearized form
        DO 50 J = 1, NN
          DO 40 I = 2, MM - 1
            A((J - 1) * MSTR + I) = A((J - 1) * MSTR + I) * 0.98
     &          + 0.01 * (B((J - 1) * MSTR + I - 1)
     &          + B((J - 1) * MSTR + I + 1)) * W(J)
   40     CONTINUE
   50   CONTINUE
   90 CONTINUE
      CHKSUM = 0.0
      DO 95 J = 1, NN
        CHKSUM = CHKSUM + A((J - 1) * MSTR + 1) + A((J - 1) * MSTR + MM)
   95 CONTINUE
      END
";
    Workload {
        name: "OCEAN",
        paper_size: 0,
        size: 512,
        source: source.to_string(),
        watch: vec!["chksum"],
        key_technique: "run-time dependence test + multiplicative GIVs",
    }
}

/// TRACK: target tracking — commutative scoreboard updates through
/// computed indices need unordered critical sections; much of the rest
/// is short, branchy loops (0.4× → 5.2×).
pub fn track() -> Workload {
    let source = "
      PROGRAM TRACK
      PARAMETER (NOBS = 384, NTRK = 48, NSTEP = 3)
      REAL SCORE(NTRK), OBS(NOBS), CHKSUM, G
      INTEGER HIT(NOBS)
      DO 10 I = 1, NOBS
        OBS(I) = 0.5 + 0.001 * REAL(I)
        HIT(I) = MOD(I * 7, NTRK) + 1
   10 CONTINUE
      DO 15 K = 1, NTRK
        SCORE(K) = 0.0
   15 CONTINUE
      DO 90 IS = 1, NSTEP
C       scoreboard accumulation through a computed track index; the
C       per-observation likelihood evaluation is real work outside the
C       lock (a short gating window scan)
        DO 30 I = 1, NOBS
          G = 0.0
          DO 25 L = 1, 24
            G = G + SQRT(OBS(I) + 0.05 * REAL(L)) * 0.04
   25     CONTINUE
          SCORE(HIT(I)) = SCORE(HIT(I)) + OBS(I) * G
   30   CONTINUE
C       per-track smoothing: a short recurrence chain
        DO 40 K = 2, NTRK
          SCORE(K) = SCORE(K) + 0.25 * SCORE(K - 1)
   40   CONTINUE
C       observation update
        DO 50 I = 1, NOBS
          OBS(I) = OBS(I) * 0.999 + 1.0E-4 * SCORE(HIT(I))
   50   CONTINUE
   90 CONTINUE
      CHKSUM = 0.0
      DO 95 K = 1, NTRK
        CHKSUM = CHKSUM + SCORE(K)
   95 CONTINUE
      END
";
    Workload {
        name: "TRACK",
        paper_size: 0,
        size: 384,
        source: source.to_string(),
        watch: vec!["chksum"],
        key_technique: "unordered critical sections (+DOACROSS)",
    }
}

/// TRFD: two-electron integral transformation — triangular loops whose
/// flattened output index is a generalized induction variable
/// (0.8× → 43.2×).
pub fn trfd() -> Workload {
    let source = "
      PROGRAM TRFD
      PARAMETER (NB = 96, NPAIR = NB * (NB + 1) / 2, NSTEP = 3)
      REAL V(NPAIR), XJ(NB), SC(NB), TW(NB), CHKSUM, T
      INTEGER IJ
      DO 10 I = 1, NB
        XJ(I) = 0.3 + 0.004 * REAL(I)
        SC(I) = 1.0 / (1.0 + 0.05 * REAL(I))
   10 CONTINUE
      DO 90 IS = 1, NSTEP
C       triangular transformation: the flattened pair index IJ is a
C       triangular GIV - the recurrence defeats the 1991 pipeline
        IJ = 0
        DO 40 I = 1, NB
          DO 30 J = 1, I
            IJ = IJ + 1
            V(IJ) = XJ(I) * XJ(J) + 0.001 * REAL(IS)
   30     CONTINUE
   40   CONTINUE
C       contraction back onto the basis through a privatizable scaled
C       pair buffer (short vectors, Fig. 6 subject)
        DO 60 I = 1, NB
          DO 45 J = 1, I
            TW(J) = V(I * (I - 1) / 2 + J) * SC(J)
   45     CONTINUE
          T = 0.0
          DO 50 J = 1, I
            T = T + TW(J)
   50     CONTINUE
          XJ(I) = XJ(I) + 1.0E-5 * T
   60   CONTINUE
   90 CONTINUE
      CHKSUM = 0.0
      DO 95 I = 1, NB
        CHKSUM = CHKSUM + XJ(I)
   95 CONTINUE
      END
";
    Workload {
        name: "TRFD",
        paper_size: 0,
        size: 96,
        source: source.to_string(),
        watch: vec!["chksum"],
        key_technique: "triangular generalized induction variables",
    }
}

/// QCD: the random-number dependence cycle serializes half the
/// computation (0.5× → 1.81× with the cycle fully serialized; the paper
/// footnote's parallel-RNG variant is measured separately by the
/// harness).
pub fn qcd() -> Workload {
    qcd_variant(QcdRng::Serial)
}

/// QCD RNG handling variants (paper Table 2 footnote 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QcdRng {
    /// Sequential linear-congruential stream: the cycle serializes the
    /// update half (validates; speedup 1.8 in the paper).
    Serial,
    /// Per-iteration hashed generator ("parallel random numbers"):
    /// breaks the cycle entirely (20.8 in the paper).
    Parallel,
    /// The RNG draw protected by a lock inside a hand-written `XDOALL`
    /// (4.5 in the paper): draws are assigned to links in lock order,
    /// so results differ from the serial run but are statistically
    /// equivalent.
    Critical,
}

/// QCD proxy with a selectable RNG strategy (the paper's footnote
/// compares the serial-recurrence generator against a parallel one).
pub fn qcd_variant(rng: QcdRng) -> Workload {
    // Every variant does the same per-link "SU(3)-ish" smearing work
    // (the DO 25 recurrence); only the random-number handling differs.
    // The real QCD spends dozens of flops per link, which is what makes
    // the critical-section variant pay off: the draw is a tiny fenced
    // region in front of a big parallel body.
    let half1 = match rng {
        QcdRng::Serial => {
            "        DO 30 I = 1, NLINK
          ISEED = MOD(ISEED * 1103 + 12345, 65536)
          W = 1.0E-6 * REAL(ISEED)
          DO 25 K = 1, 12
            W = 0.9 * W + 1.0E-8 * REAL(K)
   25     CONTINUE
          U(I) = U(I) + W
   30   CONTINUE"
        }
        QcdRng::Parallel => {
            "        DO 30 I = 1, NLINK
          IH = MOD(I * 1103 + IS * 12345, 65536)
          W = 1.0E-6 * REAL(IH)
          DO 25 K = 1, 12
            W = 0.9 * W + 1.0E-8 * REAL(K)
   25     CONTINUE
          U(I) = U(I) + W
   30   CONTINUE"
        }
        QcdRng::Critical => {
            // Hand-written Cedar Fortran (the driver keeps input
            // parallel loops as directives): only the RNG draw sits in
            // the critical section; the link update runs concurrently.
            // The draws land on links in lock-acquisition order, so the
            // program computes different (statistically equivalent)
            // numbers — exactly the paper's caveat for this variant.
            "        XDOALL I = 1, NLINK
          INTEGER ID
          REAL W
          CALL LOCK(1)
          ISEED = MOD(ISEED * 1103 + 12345, 65536)
          ID = ISEED
          CALL UNLOCK(1)
          W = 1.0E-6 * REAL(ID)
          DO 25 K = 1, 12
            W = 0.9 * W + 1.0E-8 * REAL(K)
   25     CONTINUE
          U(I) = U(I) + W
        END XDOALL"
        }
    };
    let source = format!(
        "
      PROGRAM QCD
      PARAMETER (NLINK = 512, NSTEP = 4)
      REAL U(NLINK), S(NLINK), CHKSUM
      INTEGER ISEED, IH
      ISEED = 4711
      DO 10 I = 1, NLINK
        U(I) = 1.0 + 0.001 * REAL(I)
   10 CONTINUE
      DO 90 IS = 1, NSTEP
C       half 1: gauge-link update driven by the RNG recurrence
{half1}
C       half 2: plaquette-style measurement (clean DOALL)
        DO 40 I = 2, NLINK - 1
          S(I) = U(I) * U(I + 1) + U(I) * U(I - 1)
   40   CONTINUE
        S(1) = U(1)
        S(NLINK) = U(NLINK)
        DO 50 I = 1, NLINK
          U(I) = U(I) * 0.9999 + 1.0E-7 * S(I)
   50   CONTINUE
   90 CONTINUE
      CHKSUM = 0.0
      DO 95 I = 1, NLINK
        CHKSUM = CHKSUM + U(I)
   95 CONTINUE
      END
"
    );
    Workload {
        name: "QCD",
        paper_size: 0,
        size: 512,
        source,
        watch: vec!["chksum"],
        key_technique: "RNG dependence cycle (footnote variants)",
    }
}

/// SPEC77: spectral weather — transform loops with scalar/array
/// reductions plus privatizable stage buffers (2.4× → 15.7×).
pub fn spec77() -> Workload {
    let source = "
      PROGRAM SPEC77
      PARAMETER (NLAT = 96, NWAVE = 48, NSTEP = 3)
      REAL FLD(NLAT), SPC(NWAVE), LEG(NWAVE), PLM(NWAVE, NLAT)
      REAL CHKSUM, T
      DO 10 I = 1, NLAT
        FLD(I) = SIN(0.1 * REAL(I))
   10 CONTINUE
      DO 15 M = 1, NWAVE
        SPC(M) = 0.0
   15 CONTINUE
      DO 18 I = 1, NLAT
        DO 17 M = 1, NWAVE
          PLM(M, I) = COS(0.02 * REAL(M * I))
   17   CONTINUE
   18 CONTINUE
      DO 90 IS = 1, NSTEP
C       analysis: per-latitude Legendre weights (privatizable buffer)
C       accumulated into spectral coefficients (array reduction)
        DO 40 I = 1, NLAT
          DO 20 M = 1, NWAVE
            LEG(M) = PLM(M, I) * (1.0 + 1.0E-3 * FLD(I))
   20     CONTINUE
          DO 30 M = 1, NWAVE
            SPC(M) = SPC(M) + FLD(I) * LEG(M)
   30     CONTINUE
   40   CONTINUE
C       synthesis: clean DOALL with an inner reduction
        DO 60 I = 1, NLAT
          T = 0.0
          DO 50 M = 1, NWAVE
            T = T + SPC(M) * PLM(M, I)
   50     CONTINUE
          FLD(I) = FLD(I) * 0.5 + 1.0E-4 * T
   60   CONTINUE
   90 CONTINUE
      CHKSUM = 0.0
      DO 95 M = 1, NWAVE
        CHKSUM = CHKSUM + SPC(M)
   95 CONTINUE
      END
";
    Workload {
        name: "SPEC77",
        paper_size: 0,
        size: 96,
        source: source.to_string(),
        watch: vec!["chksum"],
        key_technique: "array reductions + privatized stage buffers",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cedar_restructure::{restructure, PassConfig};
    use cedar_sim::MachineConfig;

    /// Serial vs restructured equivalence under a config.
    fn check(w: &Workload, cfg: &PassConfig) -> (f64, f64) {
        let p0 = w.compile();
        let r = restructure(&p0, cfg);
        let mc = MachineConfig::cedar_config1_scaled();
        let s0 = cedar_sim::run(&p0, mc.clone())
            .unwrap_or_else(|e| panic!("{} serial: {e}", w.name));
        let s1 = cedar_sim::run(&r.program, mc).unwrap_or_else(|e| {
            panic!(
                "{} restructured: {e}\n{}",
                w.name,
                cedar_ir::print::print_program(&r.program)
            )
        });
        for v in &w.watch {
            let a = s0.read_f64(v).unwrap();
            let b = s1.read_f64(v).unwrap();
            for (x, y) in a.iter().zip(&b) {
                assert!(
                    (x - y).abs() <= 1e-3 * x.abs().max(1.0),
                    "{} [{}]: {x} vs {y}",
                    w.name,
                    v
                );
            }
        }
        (s0.cycles(), s1.cycles())
    }

    #[test]
    fn all_proxies_equivalent_under_automatic() {
        for w in all() {
            check(&w, &PassConfig::automatic_1991());
        }
    }

    #[test]
    fn all_proxies_equivalent_under_manual() {
        for w in all() {
            check(&w, &PassConfig::manual_improved());
        }
    }

    #[test]
    fn manual_beats_automatic_where_the_paper_says() {
        // The signature cases: MDG, OCEAN, TRFD, ADM.
        for name in ["MDG", "OCEAN", "TRFD", "ADM"] {
            let w = all().into_iter().find(|w| w.name == name).unwrap();
            let (_, auto) = check(&w, &PassConfig::automatic_1991());
            let (_, manual) = check(&w, &PassConfig::manual_improved());
            assert!(
                manual < auto,
                "{name}: manual {manual} !< auto {auto}"
            );
        }
    }

    #[test]
    fn qcd_parallel_rng_beats_serial_rng() {
        let serial_rng = qcd_variant(QcdRng::Serial);
        let par_rng = qcd_variant(QcdRng::Parallel);
        let (_, t_ser) = check(&serial_rng, &PassConfig::manual_improved());
        let (_, t_par) = check(&par_rng, &PassConfig::manual_improved());
        assert!(t_par < t_ser, "parallel RNG {t_par} !< serial RNG {t_ser}");
    }
}
