//! Table 1 workloads: the Conjugate Gradient algorithm and nine
//! Numerical-Recipes-style linear algebra routines, written clean-room.
//!
//! Size mapping (paper → ours; the simulator's capacity scale of 128
//! keeps the working-set/cluster-memory ratios): routines whose paper
//! sizes stayed inside the 16 MB cluster memory stay inside our 128 KB
//! scaled cluster memory; `mprove` (and, mildly, CG) exceed it exactly
//! as the paper describes ("for sizes greater than 800, the amount of
//! data needed in the serial version exceeds the size of physical
//! memory, causing thrashing, whereas the data of the parallel version
//! fits in the larger global memory").

use crate::Workload;

/// All ten Table 1 workloads in table order.
pub fn all() -> Vec<Workload> {
    vec![
        cg(184),
        ludcmp(128),
        lubksb(128),
        sparse(256),
        gaussj(96),
        svbksb(112),
        svdcmp(96),
        mprove(192),
        toeplz(192),
        tridag(512),
    ]
}

/// Conjugate gradient on a dense SPD system (paper size 400, speedup
/// 163×: library dot products plus the serial version's memory
/// pressure).
pub fn cg(n: usize) -> Workload {
    let source = format!(
        "
      PROGRAM CGRUN
      PARAMETER (N = {n}, NITER = 8)
      REAL A(N, N), B(N), X(N), R(N), P(N), Q(N), Z(N)
      REAL CHKSUM
      DO 20 J = 1, N
        DO 10 I = 1, N
          A(I, J) = 1.0 / (1.0 + 3.0 * ABS(REAL(I - J)))
   10   CONTINUE
        A(J, J) = A(J, J) + REAL(N)
   20 CONTINUE
      DO 30 I = 1, N
        B(I) = 1.0 + 0.001 * REAL(I)
   30 CONTINUE
      CALL TSTART
      CALL CG(A, B, X, R, P, Q, Z, N, NITER)
      CALL TSTOP
      CHKSUM = 0.0
      DO 40 I = 1, N
        CHKSUM = CHKSUM + X(I)
   40 CONTINUE
      END

      SUBROUTINE CG(A, B, X, R, P, Q, Z, N, NITER)
      INTEGER N, NITER
      REAL A(N, N), B(N), X(N), R(N), P(N), Q(N), Z(N)
      REAL RZ, RZNEW, PQ, ALPHA, BETA, T
      DO 10 I = 1, N
        X(I) = 0.0
        R(I) = B(I)
        P(I) = B(I)
   10 CONTINUE
      RZ = 0.0
      DO 20 I = 1, N
        RZ = RZ + R(I) * R(I)
   20 CONTINUE
      DO 90 IT = 1, NITER
        DO 40 I = 1, N
          T = 0.0
          DO 30 J = 1, N
            T = T + A(J, I) * P(J)
   30     CONTINUE
          Q(I) = T
   40   CONTINUE
        PQ = 0.0
        DO 50 I = 1, N
          PQ = PQ + P(I) * Q(I)
   50   CONTINUE
        ALPHA = RZ / PQ
        DO 60 I = 1, N
          X(I) = X(I) + ALPHA * P(I)
          R(I) = R(I) - ALPHA * Q(I)
   60   CONTINUE
        RZNEW = 0.0
        DO 70 I = 1, N
          RZNEW = RZNEW + R(I) * R(I)
   70   CONTINUE
        BETA = RZNEW / RZ
        RZ = RZNEW
        DO 80 I = 1, N
          P(I) = R(I) + BETA * P(I)
   80   CONTINUE
   90 CONTINUE
      END
"
    );
    Workload {
        name: "CG",
        paper_size: 400,
        size: n,
        source,
        watch: vec!["chksum", "x"],
        key_technique: "library dot product (two-level parallel reduction)",
    }
}

/// LU decomposition (Crout-style elimination; paper size 1000, 9.2×).
pub fn ludcmp(n: usize) -> Workload {
    let source = format!(
        "
      PROGRAM LURUN
      PARAMETER (N = {n})
      REAL A(N, N), CHKSUM
      DO 20 J = 1, N
        DO 10 I = 1, N
          A(I, J) = 1.0 / (1.0 + 2.0 * ABS(REAL(I - J)))
   10   CONTINUE
        A(J, J) = A(J, J) + REAL(N)
   20 CONTINUE
      CALL TSTART
      CALL LUDCMP(A, N)
      CALL TSTOP
      CHKSUM = 0.0
      DO 30 I = 1, N
        CHKSUM = CHKSUM + A(I, I)
   30 CONTINUE
      END

      SUBROUTINE LUDCMP(A, N)
      INTEGER N
      REAL A(N, N), PIV
      DO 40 K = 1, N - 1
        PIV = 1.0 / A(K, K)
        DO 10 I = K + 1, N
          A(I, K) = A(I, K) * PIV
   10   CONTINUE
        DO 30 J = K + 1, N
          DO 20 I = K + 1, N
            A(I, J) = A(I, J) - A(I, K) * A(K, J)
   20     CONTINUE
   30   CONTINUE
   40 CONTINUE
      END
"
    );
    Workload {
        name: "ludcmp",
        paper_size: 1000,
        size: n,
        source,
        watch: vec!["chksum"],
        key_technique: "DOALL elimination updates; serial pivot chain",
    }
}

/// LU back-substitution (paper size 1000, 6.8×: serial outer recurrence,
/// parallel inner reductions).
pub fn lubksb(n: usize) -> Workload {
    let source = format!(
        "
      PROGRAM LBRUN
      PARAMETER (N = {n})
      REAL A(N, N), B(N), CHKSUM
      DO 20 J = 1, N
        DO 10 I = 1, N
          A(I, J) = 1.0 / (1.0 + 2.0 * ABS(REAL(I - J)))
   10   CONTINUE
        A(J, J) = A(J, J) + REAL(N)
   20 CONTINUE
      DO 30 I = 1, N
        B(I) = 0.5 + 0.01 * REAL(I)
   30 CONTINUE
      CALL TSTART
      CALL LUBKSB(A, B, N)
      CALL TSTOP
      CHKSUM = 0.0
      DO 40 I = 1, N
        CHKSUM = CHKSUM + B(I)
   40 CONTINUE
      END

      SUBROUTINE LUBKSB(A, B, N)
      INTEGER N
      REAL A(N, N), B(N), T
      DO 20 I = 2, N
        T = B(I)
        DO 10 J = 1, I - 1
          T = T - A(I, J) * B(J)
   10   CONTINUE
        B(I) = T
   20 CONTINUE
      DO 40 I = N, 1, -1
        T = B(I)
        DO 30 J = I + 1, N
          T = T - A(I, J) * B(J)
   30   CONTINUE
        B(I) = T / A(I, I)
   40 CONTINUE
      END
"
    );
    Workload {
        name: "lubksb",
        paper_size: 1000,
        size: n,
        source,
        watch: vec!["chksum"],
        key_technique: "parallel inner-product library calls under a serial recurrence",
    }
}

/// Sparse matrix–vector iteration in row-pointer storage (paper size
/// 800, 29×: gather reads do not block DOALL).
pub fn sparse(n: usize) -> Workload {
    let source = format!(
        "
      PROGRAM SPRUN
      PARAMETER (N = {n}, NDIAG = 16, NNZ = N * NDIAG, NITER = 6)
      REAL VAL(NNZ), X(N), Y(N), CHKSUM
      INTEGER COL(NNZ), ROWST(N + 1)
      K = 0
      DO 20 I = 1, N
        ROWST(I) = K + 1
        DO 10 J = 1, NDIAG
          K = K + 1
          COL(K) = MOD(I * 3 + J * 7, N) + 1
          VAL(K) = 1.0 / REAL(I + J)
   10   CONTINUE
   20 CONTINUE
      ROWST(N + 1) = K + 1
      DO 30 I = 1, N
        X(I) = 1.0 + 0.001 * REAL(I)
   30 CONTINUE
      CALL TSTART
      DO 50 IT = 1, NITER
        CALL SPMV(VAL, COL, ROWST, X, Y, N)
        DO 40 I = 1, N
          X(I) = 0.9 * X(I) + 0.1 * Y(I)
   40   CONTINUE
   50 CONTINUE
      CALL TSTOP
      CHKSUM = 0.0
      DO 60 I = 1, N
        CHKSUM = CHKSUM + X(I)
   60 CONTINUE
      END

      SUBROUTINE SPMV(VAL, COL, ROWST, X, Y, N)
      INTEGER N, COL(*), ROWST(N + 1)
      REAL VAL(*), X(N), Y(N), T
      DO 20 I = 1, N
        T = 0.0
        DO 10 K = ROWST(I), ROWST(I + 1) - 1
          T = T + VAL(K) * X(COL(K))
   10   CONTINUE
        Y(I) = T
   20 CONTINUE
      END
"
    );
    Workload {
        name: "sparse",
        paper_size: 800,
        size: n,
        source,
        watch: vec!["chksum"],
        key_technique: "DOALL over rows despite indirect (gather) reads",
    }
}

/// Gauss–Jordan elimination with hoisted pivot row (paper size 600,
/// 10×).
pub fn gaussj(n: usize) -> Workload {
    let source = format!(
        "
      PROGRAM GJRUN
      PARAMETER (N = {n})
      REAL A(N, N), B(N), ROWK(N), CHKSUM, PIV, F, BK
      DO 20 J = 1, N
        DO 10 I = 1, N
          A(I, J) = 1.0 / (1.0 + 2.0 * ABS(REAL(I - J)))
   10   CONTINUE
        A(J, J) = A(J, J) + REAL(N)
   20 CONTINUE
      DO 30 I = 1, N
        B(I) = 1.0 + 0.01 * REAL(I)
   30 CONTINUE
      CALL TSTART
      DO 90 K = 1, N
        PIV = 1.0 / A(K, K)
        DO 40 J = 1, N
          A(K, J) = A(K, J) * PIV
          ROWK(J) = A(K, J)
   40   CONTINUE
        B(K) = B(K) * PIV
        BK = B(K)
        DO 60 I = 1, K - 1
          F = A(I, K)
          DO 50 J = 1, N
            A(I, J) = A(I, J) - F * ROWK(J)
   50     CONTINUE
          B(I) = B(I) - F * BK
   60   CONTINUE
        DO 80 I = K + 1, N
          F = A(I, K)
          DO 70 J = 1, N
            A(I, J) = A(I, J) - F * ROWK(J)
   70     CONTINUE
          B(I) = B(I) - F * BK
   80   CONTINUE
   90 CONTINUE
      CALL TSTOP
      CHKSUM = 0.0
      DO 95 I = 1, N
        CHKSUM = CHKSUM + B(I)
   95 CONTINUE
      END
"
    );
    Workload {
        name: "gaussj",
        paper_size: 600,
        size: n,
        source,
        watch: vec!["chksum"],
        key_technique: "DOALL row updates with privatized multiplier",
    }
}

/// SVD back-substitution (paper size 200, 32×: two clean n² sweeps).
pub fn svbksb(n: usize) -> Workload {
    let source = format!(
        "
      PROGRAM SVRUN
      PARAMETER (N = {n})
      REAL U(N, N), V(N, N), W(N), B(N), X(N), TMP(N), CHKSUM, S
      DO 20 J = 1, N
        DO 10 I = 1, N
          U(I, J) = SIN(0.1 * REAL(I * J))
          V(I, J) = COS(0.1 * REAL(I + J))
   10   CONTINUE
   20 CONTINUE
      DO 30 I = 1, N
        W(I) = 1.0 + 0.5 * REAL(I)
        B(I) = 1.0 / REAL(I)
   30 CONTINUE
      CALL TSTART
      DO 50 J = 1, N
        S = 0.0
        IF (W(J) .NE. 0.0) THEN
          DO 40 I = 1, N
            S = S + U(I, J) * B(I)
   40     CONTINUE
          S = S / W(J)
        END IF
        TMP(J) = S
   50 CONTINUE
      DO 70 J = 1, N
        S = 0.0
        DO 60 K = 1, N
          S = S + V(J, K) * TMP(K)
   60   CONTINUE
        X(J) = S
   70 CONTINUE
      CALL TSTOP
      CHKSUM = 0.0
      DO 80 I = 1, N
        CHKSUM = CHKSUM + X(I)
   80 CONTINUE
      END
"
    );
    Workload {
        name: "svbksb",
        paper_size: 200,
        size: n,
        source,
        watch: vec!["chksum", "x"],
        key_technique: "DOALL over columns with privatized accumulator",
    }
}

/// Householder bidiagonalization — the compute core of `svdcmp`
/// (paper size 200, 7.2×: a serial elimination chain over parallel
/// column updates).
pub fn svdcmp(n: usize) -> Workload {
    let source = format!(
        "
      PROGRAM SDRUN
      PARAMETER (N = {n})
      REAL A(N, N), D(N), CHKSUM, S, BETA, T
      DO 20 J = 1, N
        DO 10 I = 1, N
          A(I, J) = SIN(0.05 * REAL(I * J)) + 2.0 / REAL(I + J)
   10   CONTINUE
        A(J, J) = A(J, J) + 4.0
   20 CONTINUE
      CALL TSTART
      DO 80 K = 1, N - 1
        S = 0.0
        DO 30 I = K, N
          S = S + A(I, K) * A(I, K)
   30   CONTINUE
        D(K) = SQRT(S)
        BETA = 1.0 / (S + 1.0E-6)
        DO 60 J = K + 1, N
          T = 0.0
          DO 40 I = K, N
            T = T + A(I, K) * A(I, J)
   40     CONTINUE
          T = T * BETA
          DO 50 I = K, N
            A(I, J) = A(I, J) - T * A(I, K)
   50     CONTINUE
   60   CONTINUE
   80 CONTINUE
      CALL TSTOP
      D(N) = A(N, N)
      CHKSUM = 0.0
      DO 90 I = 1, N
        CHKSUM = CHKSUM + D(I)
   90 CONTINUE
      END
"
    );
    Workload {
        name: "svdcmp",
        paper_size: 200,
        size: n,
        source,
        watch: vec!["chksum"],
        key_technique: "DOALL Householder column updates under a serial chain",
    }
}

/// Iterative improvement of a linear solve (paper size 1000, **1079×**:
/// the serial version's two-matrix working set thrashes cluster memory;
/// the parallel version's data lives in the larger global memory).
pub fn mprove(n: usize) -> Workload {
    let source = format!(
        "
      PROGRAM MPRUN
      PARAMETER (N = {n}, NITER = 4)
      REAL A(N, N), ALUD(N, N), B(N), X(N), R(N), CHKSUM
      DO 20 J = 1, N
        DO 10 I = 1, N
          A(I, J) = 1.0 / (1.0 + 2.0 * ABS(REAL(I - J)))
          ALUD(I, J) = A(I, J) * 0.01
   10   CONTINUE
        A(J, J) = A(J, J) + REAL(N)
        ALUD(J, J) = A(J, J)
   20 CONTINUE
      DO 30 I = 1, N
        B(I) = 1.0 + 0.01 * REAL(I)
        X(I) = B(I) / A(I, I)
   30 CONTINUE
      CALL TSTART
      DO 40 IT = 1, NITER
        CALL MPROVE(A, ALUD, B, X, R, N)
   40 CONTINUE
      CALL TSTOP
      CHKSUM = 0.0
      DO 50 I = 1, N
        CHKSUM = CHKSUM + X(I)
   50 CONTINUE
      END

      SUBROUTINE MPROVE(A, ALUD, B, X, R, N)
      INTEGER N
      REAL A(N, N), ALUD(N, N), B(N), X(N), R(N), S, T
      DO 20 I = 1, N
        S = -B(I)
        DO 10 J = 1, N
          S = S + A(I, J) * X(J)
   10   CONTINUE
        R(I) = S
   20 CONTINUE
C     solve ALUD * dx = r (forward/back sweeps on the stored factors)
      DO 40 I = 2, N
        T = R(I)
        DO 30 J = 1, I - 1
          T = T - ALUD(I, J) * R(J)
   30   CONTINUE
        R(I) = T
   40 CONTINUE
      DO 60 I = N, 1, -1
        T = R(I)
        DO 50 J = I + 1, N
          T = T - ALUD(I, J) * R(J)
   50   CONTINUE
        R(I) = T / ALUD(I, I)
   60 CONTINUE
      DO 70 I = 1, N
        X(I) = X(I) - R(I)
   70 CONTINUE
      END
"
    );
    Workload {
        name: "mprove",
        paper_size: 1000,
        size: n,
        source,
        watch: vec!["chksum"],
        key_technique: "global-memory placement rescues a thrashing working set",
    }
}

/// Toeplitz system solve by iterative bordering (paper size 800, 1.3×:
/// short coupled inner loops defeat parallel gain).
pub fn toeplz(n: usize) -> Workload {
    let source = format!(
        "
      PROGRAM TZRUN
      PARAMETER (N = {n})
      REAL TR(2 * N - 1), Y(N), X(N), G(N), H(N), CHKSUM
      REAL SXN, SGN, DENOM
      DO 10 I = 1, 2 * N - 1
        TR(I) = 1.0 / (1.0 + 0.3 * ABS(REAL(I - N)))
   10 CONTINUE
      TR(N) = TR(N) + 4.0
      DO 20 I = 1, N
        Y(I) = 1.0 + 0.01 * REAL(I)
   20 CONTINUE
      X(1) = Y(1) / TR(N)
      G(1) = TR(N - 1) / TR(N)
      CALL TSTART
      DO 90 M = 2, N
        SXN = -Y(M)
        SGN = -TR(N - M + 1)
        DO 30 J = 1, M - 1
          SXN = SXN + TR(N + M - J) * X(J)
          SGN = SGN + TR(N + M - J) * G(J)
   30   CONTINUE
        DENOM = SGN - TR(N)
        X(M) = SXN / DENOM
        DO 40 J = 1, M - 1
          H(J) = X(J) - X(M) * G(J)
   40   CONTINUE
        DO 50 J = 1, M - 1
          X(J) = H(J)
   50   CONTINUE
        IF (M .LT. N) THEN
          SGN = -TR(N - M)
          DO 60 J = 1, M - 1
            SGN = SGN + TR(N - M + J) * G(J)
   60     CONTINUE
          G(M) = SGN / DENOM
          DO 70 J = 1, M - 1
            H(J) = G(J) - G(M) * G(M - J)
   70     CONTINUE
          DO 80 J = 1, M - 1
            G(J) = H(J)
   80     CONTINUE
        END IF
   90 CONTINUE
      CALL TSTOP
      CHKSUM = 0.0
      DO 95 I = 1, N
        CHKSUM = CHKSUM + X(I)
   95 CONTINUE
      END
"
    );
    Workload {
        name: "toeplz",
        paper_size: 800,
        size: n,
        source,
        watch: vec!["chksum"],
        key_technique: "Levinson recursion: short, coupled loops resist parallelism",
    }
}

/// Tridiagonal solve (paper size 800, 2.1×: first-order recurrences).
pub fn tridag(n: usize) -> Workload {
    let source = format!(
        "
      PROGRAM TDRUN
      PARAMETER (N = {n}, NITER = 10)
      REAL A(N), B(N), C(N), R(N), U(N), GAM(N), CHKSUM
      DO 10 I = 1, N
        A(I) = -1.0
        B(I) = 4.0 + 0.001 * REAL(I)
        C(I) = -1.0
        R(I) = 1.0 + 0.01 * REAL(I)
   10 CONTINUE
      CALL TSTART
      DO 20 IT = 1, NITER
        CALL TRIDAG(A, B, C, R, U, GAM, N)
        DO 15 I = 1, N
          R(I) = 0.5 * R(I) + 0.5 * U(I)
   15   CONTINUE
   20 CONTINUE
      CALL TSTOP
      CHKSUM = 0.0
      DO 30 I = 1, N
        CHKSUM = CHKSUM + U(I)
   30 CONTINUE
      END

      SUBROUTINE TRIDAG(A, B, C, R, U, GAM, N)
      INTEGER N
      REAL A(N), B(N), C(N), R(N), U(N), GAM(N), BET
      BET = B(1)
      U(1) = R(1) / BET
      DO 10 J = 2, N
        GAM(J) = C(J - 1) / BET
        BET = B(J) - A(J) * GAM(J)
        U(J) = (R(J) - A(J) * U(J - 1)) / BET
   10 CONTINUE
      DO 20 J = N - 1, 1, -1
        U(J) = U(J) - GAM(J + 1) * U(J + 1)
   20 CONTINUE
      END
"
    );
    Workload {
        name: "tridag",
        paper_size: 800,
        size: n,
        source,
        watch: vec!["chksum"],
        key_technique: "first-order recurrences serialize both sweeps",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cedar_restructure::{restructure, PassConfig};
    use cedar_sim::MachineConfig;

    /// Compile, restructure, run both, assert result equivalence.
    fn check(w: &Workload) -> (f64, f64) {
        let p0 = w.compile();
        let r = restructure(&p0, &PassConfig::automatic_1991());
        let mc = MachineConfig::cedar_config1_scaled();
        let s0 = cedar_sim::run(&p0, mc.clone())
            .unwrap_or_else(|e| panic!("{} serial: {e}", w.name));
        let s1 = cedar_sim::run(&r.program, mc).unwrap_or_else(|e| {
            panic!(
                "{} restructured: {e}\n{}",
                w.name,
                cedar_ir::print::print_program(&r.program)
            )
        });
        for v in &w.watch {
            let a = s0.read_f64(v).unwrap_or_else(|| panic!("{}: no {v}", w.name));
            let b = s1.read_f64(v).unwrap_or_else(|| panic!("{}: no {v} (par)", w.name));
            for (x, y) in a.iter().zip(&b) {
                assert!(
                    (x - y).abs() <= 1e-4 * x.abs().max(1.0),
                    "{}: {v}: {x} vs {y}",
                    w.name
                );
            }
        }
        (s0.cycles(), s1.cycles())
    }

    // Small-size equivalence smoke tests (fast); full-size runs live in
    // the experiment harness.

    #[test]
    fn cg_small_equivalent_and_faster() {
        let (s, p) = check(&cg(48));
        assert!(p < s, "cg: par {p} !< ser {s}");
    }

    #[test]
    fn ludcmp_small_equivalent() {
        let (s, p) = check(&ludcmp(32));
        assert!(p < s, "ludcmp: par {p} !< ser {s}");
    }

    #[test]
    fn lubksb_small_equivalent() {
        check(&lubksb(32));
    }

    #[test]
    fn sparse_small_equivalent_and_faster() {
        let (s, p) = check(&sparse(64));
        assert!(p < s);
    }

    #[test]
    fn gaussj_small_equivalent_and_faster() {
        let (s, p) = check(&gaussj(32));
        assert!(p < s, "gaussj: par {p} !< ser {s}");
    }

    #[test]
    fn svbksb_small_equivalent_and_faster() {
        let (s, p) = check(&svbksb(48));
        assert!(p < s);
    }

    #[test]
    fn svdcmp_small_equivalent() {
        check(&svdcmp(32));
    }

    #[test]
    fn mprove_small_equivalent() {
        check(&mprove(32));
    }

    #[test]
    fn toeplz_small_equivalent() {
        check(&toeplz(48));
    }

    #[test]
    fn tridag_small_equivalent() {
        check(&tridag(64));
    }
}
