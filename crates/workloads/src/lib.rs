#![warn(missing_docs)]
//! Fortran 77 workload sources for the Cedar restructurer experiments.
//!
//! Two suites mirror the paper's §4.1 evaluation:
//!
//! * [`linalg`] — the Conjugate Gradient algorithm and nine
//!   Numerical-Recipes-style linear algebra routines of **Table 1**,
//!   written clean-room in the accepted F77 dialect;
//! * [`perfect`] — twelve kernels that proxy the Perfect Benchmarks
//!   programs of **Table 2**. Each proxy is built so the *automatic*
//!   pipeline fails (or wins) for the same stated reason as in the
//!   paper, and each §4.1 technique unlocks the same program it
//!   unlocked there (array privatization for MDG/ADM, generalized
//!   induction variables and the run-time test for OCEAN, triangular
//!   GIVs for TRFD, the RNG dependence cycle for QCD, critical sections
//!   for TRACK, loop granularity/fusion for FLO52, ...).
//!
//! Every workload is a *complete program* (driver + routines): the
//! driver initializes data deterministically, invokes the kernel, and
//! reduces results into named checksum variables that the experiment
//! harness (and the equivalence tests) read back from the simulator.
//!
//! Paper sizes vs. ours: interpreting 10⁹ operations is pointless, so
//! sizes are scaled down (the `paper_size`/`size` fields record the
//! mapping) and the machine-capacity scale in `cedar-sim` keeps the
//! working-set/capacity ratios — which drive the paging results — the
//! same. See EXPERIMENTS.md.

pub mod linalg;
pub mod perfect;

/// One runnable workload.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Table/figure row name (e.g. "ludcmp", "MDG").
    pub name: &'static str,
    /// The data size the paper reports for this row.
    pub paper_size: usize,
    /// The scaled size we run.
    pub size: usize,
    /// Complete fixed-form Fortran 77 source.
    pub source: String,
    /// Variables of the main program to read back as results (first one
    /// is the primary checksum).
    pub watch: Vec<&'static str>,
    /// The §4.1 technique the paper credits for this workload's manual
    /// improvement (documentation only).
    pub key_technique: &'static str,
}

impl Workload {
    /// Parse + lower the source.
    pub fn compile(&self) -> cedar_ir::Program {
        cedar_ir::compile_source(&self.source)
            .unwrap_or_else(|e| panic!("workload `{}` failed to compile: {e}", self.name))
    }
}

/// All Table 1 workloads at their default scaled sizes.
pub fn table1_workloads() -> Vec<Workload> {
    linalg::all()
}

/// All Table 2 (Perfect proxy) workloads.
pub fn table2_workloads() -> Vec<Workload> {
    perfect::all()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_workloads_compile() {
        for w in table1_workloads().iter().chain(&table2_workloads()) {
            let p = w.compile();
            assert!(p.main().is_some(), "workload `{}` has no PROGRAM unit", w.name);
        }
    }

    #[test]
    fn registry_is_complete() {
        let t1: Vec<&str> = table1_workloads().iter().map(|w| w.name).collect();
        assert_eq!(
            t1,
            vec![
                "CG", "ludcmp", "lubksb", "sparse", "gaussj", "svbksb", "svdcmp",
                "mprove", "toeplz", "tridag"
            ]
        );
        let t2: Vec<&str> = table2_workloads().iter().map(|w| w.name).collect();
        assert_eq!(
            t2,
            vec![
                "ARC2D", "FLO52", "BDNA", "DYFESM", "ADM", "MDG", "MG3D", "OCEAN",
                "TRACK", "TRFD", "QCD", "SPEC77"
            ]
        );
    }
}
