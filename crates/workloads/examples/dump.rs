fn main() {
    let name = std::env::args().nth(1).unwrap_or("MDG".into());
    let manual = std::env::args().nth(2).as_deref() == Some("manual");
    let w = cedar_workloads::table2_workloads().into_iter()
        .chain(cedar_workloads::table1_workloads())
        .find(|w| w.name == name).unwrap();
    let cfg = if manual { cedar_restructure::PassConfig::manual_improved() } else { cedar_restructure::PassConfig::automatic_1991() };
    let p = w.compile();
    let r = cedar_restructure::restructure(&p, &cfg);
    println!("{}", r.report);
    if std::env::args().nth(3).as_deref() == Some("src") {
        println!("{}", cedar_ir::print::print_program(&r.program));
    }
    let mc = cedar_sim::MachineConfig::cedar_config1_scaled();
    let s0 = cedar_sim::run(&p, mc.clone()).unwrap();
    let s1 = cedar_sim::run(&r.program, mc).unwrap();
    println!("serial {:.0}  variant {:.0}  speedup {:.2}", s0.cycles(), s1.cycles(), s0.cycles()/s1.cycles());
    println!("serial paged={:.0} variant paged={:.0}", s0.stats.paged_accesses, s1.stats.paged_accesses);
}
