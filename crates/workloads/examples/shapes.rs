use cedar_restructure::{restructure, PassConfig};
use cedar_sim::MachineConfig;

fn run(w: &cedar_workloads::Workload, cfg: &PassConfig, mc: &MachineConfig) -> f64 {
    let p0 = w.compile();
    let r = restructure(&p0, cfg);
    cedar_sim::run(&r.program, mc.clone()).unwrap().cycles()
}

fn main() {
    let mc = MachineConfig::cedar_config1_scaled();
    println!("{:<8} {:>14} {:>14} {:>14} {:>8} {:>8}", "name", "serial", "auto", "manual", "s/a", "s/m");
    for w in cedar_workloads::table2_workloads() {
        let ser = run(&w, &PassConfig::serial(), &mc);
        let auto = run(&w, &PassConfig::automatic_1991(), &mc);
        let man = run(&w, &PassConfig::manual_improved(), &mc);
        println!("{:<8} {:>14.0} {:>14.0} {:>14.0} {:>8.2} {:>8.2}", w.name, ser, auto, man, ser/auto, ser/man);
    }
}
