//! The per-request engine: one HTTP request becomes a supervised
//! retry ladder.
//!
//! Where the batch harness ([`cedar_experiments::supervise::run_cells`])
//! sweeps many cells and retries stragglers after the fact, the service
//! walks one request up the same degradation ladder inline: attempt at
//! the breaker's entry rung, classify any failure (panic, structured
//! simulator fault, deadline), sleep a jittered backoff, retry one rung
//! safer. A request that fails at every rung is quarantined exactly
//! like a batch cell — deduplicated crash bundle and all — and the
//! client gets a structured error referencing the bundle instead of a
//! stack trace.
//!
//! Determinism note: the request **label** (`serve/<fnv of the request
//! key>`) keys the chaos draws, so a given `(CEDAR_CHAOS, request)`
//! pair always injects the same faults — the chaos integration tests
//! and the load-test gates rely on predicting recovery vs quarantine
//! per request, not on sampling.

use crate::breaker::Breaker;
use crate::error::{self, kind};
use crate::json::Json;
use cedar_experiments::supervise::{self, CellError, Rung, Supervisor};
use cedar_experiments::{cache, json_escape, run_program};
use cedar_restructure::{BackendKind, EmitInput, PassConfig, Target};
use cedar_sim::{MachineConfig, SimError};
use cedar_verify::{restructure_validated, ValidationConfig, ValidationReport};
use std::hash::{Hash, Hasher};
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Engine knobs shared by every request.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Supervisor profile: chaos seed, per-attempt wall-clock deadline,
    /// crash-bundle root.
    pub sup: Supervisor,
    /// First retry backoff; attempt `k` waits `base · 2^(k-1)` plus a
    /// deterministic 0–50 % jitter keyed on the request label
    /// ([`cedar_par::backoff`], shared with the campaign workers).
    pub backoff_base: Duration,
    /// Perturbation seeds for validated requests (trimmed from the
    /// batch default of 8 — a service pays per request).
    pub validate_seeds: Vec<u64>,
}

impl Default for EngineConfig {
    fn default() -> EngineConfig {
        EngineConfig {
            sup: Supervisor {
                chaos: None,
                deadline: Some(Duration::from_secs(30)),
                bundle_dir: PathBuf::from("target/crash-bundles"),
                bundle_cap: supervise::DEFAULT_BUNDLE_CAP,
            },
            backoff_base: Duration::from_millis(10),
            validate_seeds: vec![1, 2],
        }
    }
}

/// One parsed `/restructure` request.
#[derive(Debug, Clone)]
pub struct ServeRequest {
    /// Fortran source text.
    pub source: String,
    /// Free-form (`true`, the fuzz/corpus dialect) or fixed-form F77.
    pub free_form: bool,
    /// Pass configuration: `auto` (default), `manual`, or `serial`.
    pub config: String,
    /// Machine model: `cedar` (default) or `fx80`.
    pub machine: String,
    /// Emission dialect for the `restructured` response field:
    /// `cedar` (default), `openmp`, or `serial`.
    pub backend: BackendKind,
    /// Variables to report watched results for.
    pub watch: Vec<String>,
    /// Differentially validate the output (perturbed schedules, race
    /// check) before returning it.
    pub validate: bool,
    /// Per-attempt wall-clock deadline override, milliseconds.
    pub deadline_ms: Option<u64>,
}

impl ServeRequest {
    /// A request with defaults: free-form, `auto`, `cedar`, validated.
    pub fn new(source: impl Into<String>) -> ServeRequest {
        ServeRequest {
            source: source.into(),
            free_form: true,
            config: "auto".into(),
            machine: "cedar".into(),
            backend: BackendKind::Cedar,
            watch: Vec::new(),
            validate: true,
            deadline_ms: None,
        }
    }

    /// Parse the JSON request body.
    pub fn from_json(v: &Json) -> Result<ServeRequest, String> {
        let source = v
            .get("source")
            .and_then(Json::as_str)
            .ok_or("`source` (string) is required")?;
        if source.trim().is_empty() {
            return Err("`source` is empty".into());
        }
        let mut req = ServeRequest::new(source);
        if let Some(form) = v.get("form") {
            match form.as_str() {
                Some("free") => req.free_form = true,
                Some("fixed") => req.free_form = false,
                _ => return Err("`form` must be \"free\" or \"fixed\"".into()),
            }
        }
        if let Some(cfg) = v.get("config") {
            match cfg.as_str() {
                Some(c @ ("auto" | "manual" | "serial")) => req.config = c.into(),
                _ => return Err("`config` must be \"auto\", \"manual\", or \"serial\"".into()),
            }
        }
        if let Some(m) = v.get("machine") {
            match m.as_str() {
                Some(c @ ("cedar" | "fx80")) => req.machine = c.into(),
                _ => return Err("`machine` must be \"cedar\" or \"fx80\"".into()),
            }
        }
        if let Some(b) = v.get("backend") {
            let s = b.as_str().ok_or("`backend` must be a string")?;
            req.backend = s.parse().map_err(|e| format!("`backend`: {e}"))?;
        }
        if let Some(w) = v.get("watch") {
            let items = w.as_arr().ok_or("`watch` must be an array of strings")?;
            for item in items {
                req.watch.push(
                    item.as_str()
                        .ok_or("`watch` entries must be strings")?
                        .to_string(),
                );
            }
        }
        if let Some(b) = v.get("validate") {
            req.validate = b.as_bool().ok_or("`validate` must be a boolean")?;
        }
        if let Some(d) = v.get("deadline_ms") {
            let ms = d.as_f64().ok_or("`deadline_ms` must be a number")?;
            if ms <= 0.0 || !ms.is_finite() {
                return Err("`deadline_ms` must be positive".into());
            }
            req.deadline_ms = Some(ms as u64);
        }
        Ok(req)
    }

    /// Serialize back to a request body (clients: load test, tests).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"source\": \"{}\", \"form\": \"{}\", \"config\": \"{}\", \"machine\": \"{}\", \"backend\": \"{}\", \"watch\": [{}], \"validate\": {}{}}}",
            json_escape(&self.source),
            if self.free_form { "free" } else { "fixed" },
            self.config,
            self.machine,
            self.backend,
            self.watch
                .iter()
                .map(|w| format!("\"{}\"", json_escape(w)))
                .collect::<Vec<_>>()
                .join(", "),
            self.validate,
            match self.deadline_ms {
                Some(ms) => format!(", \"deadline_ms\": {ms}"),
                None => String::new(),
            },
        )
    }

    /// Content key: two requests with equal keys are behaviorally
    /// identical end to end, so the server coalesces them in flight and
    /// the process-wide caches absorb repeats.
    pub fn key(&self) -> u64 {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.source.hash(&mut h);
        self.free_form.hash(&mut h);
        self.config.hash(&mut h);
        self.machine.hash(&mut h);
        self.backend.hash(&mut h);
        self.watch.hash(&mut h);
        self.validate.hash(&mut h);
        h.finish()
    }

    /// Supervision label: names the chaos-draw key and the crash-bundle
    /// cell for this request.
    pub fn label(&self) -> String {
        format!("serve/{:016x}", self.key())
    }
}

/// The outcome the server needs for counters and the response.
#[derive(Debug)]
pub struct Handled {
    /// HTTP status.
    pub status: u16,
    /// Response body (JSON).
    pub body: String,
    /// Ladder retries this request needed (0 = first attempt worked).
    pub retries: u32,
    /// The request failed at every rung and a bundle was attempted.
    pub quarantined: bool,
}

enum AttemptFail {
    /// The front end rejected the source: deterministic, never retried.
    Compile(String),
    /// A structured simulator error surfaced as a `Result` (validation
    /// path) rather than a panic.
    Sim(SimError),
}

struct Output {
    restructured: String,
    report: String,
    serial_cycles: f64,
    parallel_cycles: f64,
    stats: cedar_sim::ExecStats,
    validation: Option<ValidationReport>,
}

fn pass_for(req: &ServeRequest) -> PassConfig {
    let base = match req.config.as_str() {
        "manual" => PassConfig::manual_improved(),
        "serial" => PassConfig::serial(),
        _ => PassConfig::automatic_1991(),
    };
    if req.machine == "fx80" {
        base.for_target(Target::Fx80)
    } else {
        base
    }
}

fn machine_for(req: &ServeRequest) -> MachineConfig {
    match req.machine.as_str() {
        "fx80" => MachineConfig::fx80_scaled(),
        _ => MachineConfig::cedar_config1_scaled(),
    }
}

/// One attempt's real work; runs under the supervisor's cell context,
/// so the phase gates, rung adjustment, and cancel token all apply.
fn attempt_body(
    req: &ServeRequest,
    pass: &PassConfig,
    mc: &MachineConfig,
    cfg: &EngineConfig,
) -> Result<Output, AttemptFail> {
    supervise::gate("compile");
    let compiled = if req.free_form {
        cedar_ir::compile_free(&req.source)
    } else {
        cedar_ir::compile_source(&req.source)
    };
    let program = compiled.map_err(|e| AttemptFail::Compile(e.to_string()))?;
    let watch: Vec<&str> = req.watch.iter().map(String::as_str).collect();

    // Serial reference (memoized; gates "simulate" internally).
    let serial = run_program(&program, None, mc, &watch);

    if req.validate {
        supervise::gate("validate");
        let vcfg = ValidationConfig {
            seeds: cfg.validate_seeds.clone(),
            ..ValidationConfig::default()
        };
        let v = restructure_validated(
            &program,
            &supervise::adjust_pass(pass),
            &supervise::adjust_machine(mc),
            &watch,
            &vcfg,
        )
        .map_err(AttemptFail::Sim)?;
        let out = run_program(&v.program, None, mc, &watch);
        let emitted = req.backend.backend().emit(&EmitInput {
            original: &program,
            restructured: &v.program,
            report: &v.report,
        });
        Ok(Output {
            restructured: emitted,
            report: v.report.to_string(),
            serial_cycles: serial.cycles,
            parallel_cycles: out.cycles,
            stats: out.stats,
            validation: Some(v.validation),
        })
    } else {
        supervise::gate("restructure");
        let full = cache::restructured_full(&program, &supervise::adjust_pass(pass));
        let out = run_program(&full.0, None, mc, &watch);
        let emitted = req.backend.backend().emit(&EmitInput {
            original: &program,
            restructured: &full.0,
            report: &full.1,
        });
        Ok(Output {
            restructured: emitted,
            report: full.1.to_string(),
            serial_cycles: serial.cycles,
            parallel_cycles: out.cycles,
            stats: out.stats,
            validation: None,
        })
    }
}

fn verification_json(v: &Option<ValidationReport>) -> String {
    match v {
        None => "null".to_string(),
        Some(v) => format!(
            "{{\"attempts\": {}, \"fallbacks\": {}, \"seed_runs\": {}, \"all_bit_identical\": {}, \"degraded_to_serial\": {}}}",
            v.attempts,
            v.fallbacks.len(),
            v.seed_runs.len(),
            v.all_bit_identical(),
            v.degraded_to_serial,
        ),
    }
}

fn success_body(
    out: &Output,
    rung: Rung,
    entry: Rung,
    retries: u32,
    duration: Duration,
) -> String {
    let speedup = if out.parallel_cycles > 0.0 {
        out.serial_cycles / out.parallel_cycles
    } else {
        0.0
    };
    format!(
        "{{\"schema\": \"cedar-serve-v1\", \"restructured\": \"{}\", \"report\": \"{}\", \"stats\": {{\"serial_cycles\": {:.1}, \"parallel_cycles\": {:.1}, \"speedup\": {:.3}, \"scalar_ops\": {}, \"vector_elems\": {}, \"parallel_loops\": {}}}, \"verification\": {}, \"service\": {{\"rung\": \"{}\", \"entry_rung\": \"{}\", \"retries\": {}, \"coalesced\": false, \"duration_ms\": {:.1}}}}}",
        json_escape(&out.restructured),
        json_escape(&out.report),
        out.serial_cycles,
        out.parallel_cycles,
        speedup,
        out.stats.scalar_ops,
        out.stats.vector_elems,
        out.stats.parallel_loops,
        verification_json(&out.validation),
        rung.label(),
        entry.label(),
        retries,
        duration.as_secs_f64() * 1e3,
    )
}

/// Run one request through the retry ladder. Never panics: every
/// failure mode becomes a structured response.
pub fn handle(req: &ServeRequest, cfg: &EngineConfig, breaker: &Breaker) -> Handled {
    let started = Instant::now();
    let pass = pass_for(req);
    let mc = machine_for(req);
    let mut sup = cfg.sup.clone();
    if let Some(ms) = req.deadline_ms {
        sup.deadline = Some(Duration::from_millis(ms));
    }
    let label = req.label();
    let entry = breaker.entry_rung(&req.config);
    let start = Rung::LADDER.iter().position(|r| *r == entry).unwrap_or(0);

    let mut attempts: Vec<(&'static str, CellError)> = Vec::new();
    for (i, rung) in Rung::LADDER[start..].iter().enumerate() {
        if i > 0 {
            std::thread::sleep(cedar_par::backoff(cfg.backoff_base, &label, i));
        }
        let outcome =
            supervise::run_attempt(&sup, &label, *rung, || attempt_body(req, &pass, &mc, cfg));
        match outcome {
            Ok(Ok(out)) => {
                breaker.record(&req.config, entry, Some(*rung));
                let retries = attempts.len() as u32;
                return Handled {
                    status: 200,
                    body: success_body(&out, *rung, entry, retries, started.elapsed()),
                    retries,
                    quarantined: false,
                };
            }
            Ok(Err(AttemptFail::Compile(msg))) => {
                // The front end is deterministic and chaos-free:
                // retrying or penalizing the breaker would be noise.
                return Handled {
                    status: error::status_for(kind::COMPILE_ERROR),
                    body: error::error_json(kind::COMPILE_ERROR, &msg, None, &[]),
                    retries: attempts.len() as u32,
                    quarantined: false,
                };
            }
            Ok(Err(AttemptFail::Sim(e))) => {
                attempts.push((rung.label(), CellError::from_sim_error(&e)));
            }
            Err(cell_error) => attempts.push((rung.label(), cell_error)),
        }
    }

    // Every rung failed: quarantine. The bundle is deduplicated by
    // minimized-source digest, so identical failing requests share one
    // directory whose hit count grows instead.
    breaker.record(&req.config, entry, None);
    let bundle = supervise::write_quarantine_bundle(&sup, &label, Some(&req.source), &attempts);
    let last = &attempts.last().expect("ladder ran at least one rung").1;
    let attempt_kinds: Vec<(&'static str, &'static str)> =
        attempts.iter().map(|(r, e)| (*r, error::kind_for(e))).collect();
    let k = error::kind_for(last);
    Handled {
        status: error::status_for(k),
        body: error::error_json(k, &error::message_for(last), bundle.as_deref(), &attempt_kinds),
        retries: attempts.len().saturating_sub(1) as u32,
        quarantined: true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CLEAN: &str = "program p\nreal a(64)\ninteger i\ndo 10 i = 1, 64\n  a(i) = real(i) * 2.0\n10 continue\nprint *, a(64)\nend\n";

    fn quiet_engine(tag: &str) -> EngineConfig {
        EngineConfig {
            sup: Supervisor {
                chaos: None,
                deadline: None,
                bundle_dir: PathBuf::from(format!("target/test-serve-bundles/{tag}")),
                bundle_cap: 64,
            },
            backoff_base: Duration::from_millis(1),
            validate_seeds: vec![1],
        }
    }

    #[test]
    fn clean_request_succeeds_first_attempt() {
        let mut req = ServeRequest::new(CLEAN);
        req.watch.push("a".into());
        let cfg = quiet_engine("clean");
        let breaker = Breaker::new(3, Duration::from_secs(5));
        let h = handle(&req, &cfg, &breaker);
        assert_eq!(h.status, 200, "{}", h.body);
        assert_eq!(h.retries, 0);
        assert!(h.body.contains("\"schema\": \"cedar-serve-v1\""));
        assert!(h.body.contains("\"rung\": \"normal\""));
        assert!(h.body.contains("\"all_bit_identical\""), "{}", h.body);
        let v = Json::parse(&h.body).expect("response is valid JSON");
        assert!(v.get("restructured").unwrap().as_str().unwrap().contains("doall"));
    }

    #[test]
    fn compile_errors_are_400_without_retry() {
        let req = ServeRequest::new("this is not fortran at all (");
        let cfg = quiet_engine("compile");
        let breaker = Breaker::new(3, Duration::from_secs(5));
        let h = handle(&req, &cfg, &breaker);
        assert_eq!(h.status, 400, "{}", h.body);
        assert!(h.body.contains("\"kind\": \"compile-error\""), "{}", h.body);
        assert_eq!(h.retries, 0);
        assert!(!h.quarantined);
    }

    #[test]
    fn backend_selects_the_emission_dialect() {
        let cfg = quiet_engine("backend");
        let breaker = Breaker::new(3, Duration::from_secs(5));

        let mut req = ServeRequest::new(CLEAN);
        req.backend = BackendKind::OpenMp;
        let h = handle(&req, &cfg, &breaker);
        assert_eq!(h.status, 200, "{}", h.body);
        let v = Json::parse(&h.body).unwrap();
        let text = v.get("restructured").unwrap().as_str().unwrap().to_string();
        assert!(text.contains("!$omp parallel do"), "{text}");
        assert!(!text.contains("doall"), "Cedar dialect leaked:\n{text}");

        let mut serial = ServeRequest::new(CLEAN);
        serial.backend = BackendKind::Serial;
        let h = handle(&serial, &cfg, &breaker);
        assert_eq!(h.status, 200, "{}", h.body);
        let v = Json::parse(&h.body).unwrap();
        let text = v.get("restructured").unwrap().as_str().unwrap().to_string();
        assert!(!text.contains("doall") && !text.contains("!$omp"), "{text}");

        // Backend choice is part of the content key: the coalescer and
        // caches must not serve one backend's emission for another.
        assert_ne!(req.key(), serial.key());
        assert_ne!(req.key(), ServeRequest::new(CLEAN).key());
    }

    #[test]
    fn request_key_discriminates_and_label_is_stable() {
        let a = ServeRequest::new(CLEAN);
        let mut b = ServeRequest::new(CLEAN);
        assert_eq!(a.key(), b.key());
        assert_eq!(a.label(), b.label());
        b.config = "manual".into();
        assert_ne!(a.key(), b.key());
        assert!(a.label().starts_with("serve/"));
    }

    #[test]
    fn request_json_round_trips() {
        let mut req = ServeRequest::new("program p\nend\n");
        req.watch = vec!["a1".into(), "s2".into()];
        req.validate = false;
        req.config = "manual".into();
        req.deadline_ms = Some(1500);
        let parsed = ServeRequest::from_json(&Json::parse(&req.to_json()).unwrap()).unwrap();
        assert_eq!(parsed.key(), req.key());
        assert_eq!(parsed.deadline_ms, Some(1500));
        assert!(!parsed.validate);
    }

    #[test]
    fn bad_requests_are_rejected_with_reasons() {
        for (body, needle) in [
            ("{}", "`source`"),
            ("{\"source\": \"\"}", "empty"),
            ("{\"source\": \"x\", \"config\": \"fastest\"}", "`config`"),
            ("{\"source\": \"x\", \"machine\": \"cray\"}", "`machine`"),
            ("{\"source\": \"x\", \"backend\": \"f90\"}", "`backend`"),
            ("{\"source\": \"x\", \"watch\": \"a\"}", "`watch`"),
            ("{\"source\": \"x\", \"deadline_ms\": -5}", "positive"),
        ] {
            let err = ServeRequest::from_json(&Json::parse(body).unwrap()).unwrap_err();
            assert!(err.contains(needle), "{body} -> {err}");
        }
    }

    #[test]
    fn retry_backoff_is_the_shared_cedar_par_implementation() {
        // The ladder's sleep is `cedar_par::backoff` — assert the
        // contract the engine relies on (growth + determinism) against
        // the shared implementation so a drift there fails here too.
        let base = Duration::from_millis(10);
        let a1 = cedar_par::backoff(base, "serve/x", 1);
        let a2 = cedar_par::backoff(base, "serve/x", 2);
        assert!(a1 >= base && a1 < base * 2, "{a1:?}");
        assert!(a2 >= base * 2 && a2 < base * 3, "{a2:?}");
        assert_eq!(a1, cedar_par::backoff(base, "serve/x", 1));
    }
}
