//! The long-running server: admission control, a worker pool, request
//! coalescing, and graceful shutdown around the per-request engine.
//!
//! Architecture (DESIGN.md §12): one acceptor thread owns the listener
//! and enforces **admission control** — a connection either enters the
//! bounded queue or is answered `429 queue-full` on the spot (load
//! shedding; the server never builds unbounded backlog). Worker threads
//! pop connections, parse HTTP, and route; `/restructure` requests run
//! the supervised retry ladder ([`crate::engine`]). In-flight identical
//! requests are **coalesced**: followers park their connection on the
//! leader's flight record and receive a copy of its response, so a
//! thundering herd of one hot source costs one restructure.
//!
//! **Graceful shutdown**: `POST /shutdown` (or
//! [`Server::initiate_shutdown`]) flips the draining flag, pokes the
//! acceptor awake, and lets the workers finish everything already
//! admitted before they exit — queued work is drained, never dropped;
//! new arrivals get `503 shutting-down`.

use crate::breaker::Breaker;
use crate::engine::{self, EngineConfig, ServeRequest};
use crate::error::{self, kind};
use crate::http;
use crate::json::Json;
use std::collections::{HashMap, VecDeque};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Server construction parameters.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address (`127.0.0.1:0` picks a free port).
    pub addr: String,
    /// Worker threads handling requests.
    pub workers: usize,
    /// Admission-queue capacity; connections beyond it are shed.
    pub queue_cap: usize,
    /// Engine knobs (chaos, deadlines, backoff, bundles).
    pub engine: EngineConfig,
    /// Consecutive escalations before the circuit breaker opens.
    pub breaker_threshold: u32,
    /// How long an open breaker skips straight to its rescue rung.
    pub breaker_cooldown: Duration,
    /// Root of a crash-safe result store ([`cedar_store::Store`]).
    /// When set, every 200 `/restructure` response is persisted keyed
    /// by [`ServeRequest::key`], and a restarted server replays stored
    /// responses byte-identically instead of recomputing. `None`
    /// (the default) keeps the server fully in-memory.
    pub store_dir: Option<std::path::PathBuf>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 4,
            queue_cap: 64,
            engine: EngineConfig::default(),
            breaker_threshold: 3,
            breaker_cooldown: Duration::from_secs(5),
            store_dir: None,
        }
    }
}

impl ServerConfig {
    /// Read overrides from the environment: `CEDAR_SERVE_ADDR`,
    /// `CEDAR_SERVE_WORKERS`, `CEDAR_SERVE_QUEUE`, `CEDAR_SERVE_STORE`
    /// (persistent result-store directory), plus the supervised
    /// engine's own `CEDAR_CHAOS` / `CEDAR_CELL_DEADLINE` /
    /// `CEDAR_BUNDLE_DIR`.
    pub fn from_env() -> ServerConfig {
        let mut cfg = ServerConfig::default();
        if let Ok(addr) = std::env::var("CEDAR_SERVE_ADDR") {
            cfg.addr = addr;
        }
        if let Some(n) = env_usize("CEDAR_SERVE_WORKERS") {
            cfg.workers = n.max(1);
        }
        if let Some(n) = env_usize("CEDAR_SERVE_QUEUE") {
            cfg.queue_cap = n.max(1);
        }
        if let Ok(dir) = std::env::var("CEDAR_SERVE_STORE") {
            if !dir.trim().is_empty() {
                cfg.store_dir = Some(dir.into());
            }
        }
        cfg.engine.sup = cedar_experiments::Supervisor::from_env();
        cfg
    }
}

fn env_usize(name: &str) -> Option<usize> {
    std::env::var(name).ok().and_then(|s| s.trim().parse().ok())
}

/// Monotonic service counters, exposed at `/metrics` and read by the
/// load-test gates.
#[derive(Debug, Default)]
pub struct Counters {
    /// Connections admitted to the queue.
    pub accepted: AtomicU64,
    /// 200 responses (including coalesced copies).
    pub served: AtomicU64,
    /// Connections shed with 429 at admission.
    pub shed: AtomicU64,
    /// Requests that succeeded only after ladder retries.
    pub recovered: AtomicU64,
    /// Requests that failed at every rung (bundle written).
    pub quarantined: AtomicU64,
    /// Requests answered from another request's in-flight computation.
    pub coalesced: AtomicU64,
    /// 4xx responses (bad request, compile error, not found).
    pub client_errors: AtomicU64,
}

impl Counters {
    fn json(&self, draining: bool, breaker: &Breaker, store: Option<&cedar_store::Store>) -> String {
        let store_json = match store {
            None => "null".to_string(),
            Some(s) => {
                let st = s.stats();
                format!(
                    "{{\"hits\": {}, \"misses\": {}, \"corrupt_recovered\": {}, \"puts\": {}, \"entries\": {}}}",
                    st.hits, st.misses, st.corrupt_recovered, st.puts, s.len(),
                )
            }
        };
        format!(
            "{{\"schema\": \"cedar-serve-metrics-v1\", \"accepted\": {}, \"served\": {}, \"shed\": {}, \"recovered\": {}, \"quarantined\": {}, \"coalesced\": {}, \"client_errors\": {}, \"draining\": {}, \"breaker\": {}, \"store\": {}}}",
            self.accepted.load(Ordering::Relaxed),
            self.served.load(Ordering::Relaxed),
            self.shed.load(Ordering::Relaxed),
            self.recovered.load(Ordering::Relaxed),
            self.quarantined.load(Ordering::Relaxed),
            self.coalesced.load(Ordering::Relaxed),
            self.client_errors.load(Ordering::Relaxed),
            draining,
            breaker.status_json(),
            store_json,
        )
    }
}

struct Shared {
    cfg: ServerConfig,
    addr: SocketAddr,
    breaker: Breaker,
    queue: Mutex<VecDeque<TcpStream>>,
    queue_cv: Condvar,
    draining: AtomicBool,
    counters: Counters,
    /// In-flight `/restructure` computations by request key; the value
    /// holds follower connections awaiting the leader's response.
    flights: Mutex<HashMap<u64, Vec<TcpStream>>>,
    /// Optional persistent result store: 200 responses keyed by
    /// [`ServeRequest::key`] survive restarts and are replayed
    /// byte-identically.
    store: Option<cedar_store::Store>,
}

/// A running server; dropping it does **not** stop it — call
/// [`Server::shutdown`] (or hit `POST /shutdown` and [`Server::join`]).
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: JoinHandle<()>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Bind and start the acceptor + worker threads.
    ///
    /// When [`ServerConfig::store_dir`] is set the result store is
    /// opened (writable, single-writer) before the listener starts; a
    /// store that cannot be opened — locked by a live process, or an
    /// unwritable directory — fails the whole start rather than running
    /// silently without persistence.
    pub fn start(cfg: ServerConfig) -> std::io::Result<Server> {
        let store = match &cfg.store_dir {
            None => None,
            Some(dir) => Some(cedar_store::Store::open(dir).map_err(|e| {
                std::io::Error::other(format!("result store {}: {e}", dir.display()))
            })?),
        };
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            breaker: Breaker::new(cfg.breaker_threshold, cfg.breaker_cooldown),
            cfg,
            addr,
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            draining: AtomicBool::new(false),
            counters: Counters::default(),
            flights: Mutex::new(HashMap::new()),
            store,
        });
        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || accept_loop(listener, &shared))
        };
        let workers = (0..shared.cfg.workers.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        Ok(Server { addr, shared, acceptor, workers })
    }

    /// `host:port` the server is listening on.
    pub fn addr(&self) -> String {
        self.addr.to_string()
    }

    /// A snapshot of the service counters.
    pub fn counters(&self) -> &Counters {
        &self.shared.counters
    }

    /// Begin draining: stop admitting, let workers finish the queue.
    pub fn initiate_shutdown(&self) {
        begin_drain(&self.shared);
    }

    /// Wait for the acceptor and workers to exit (after a drain was
    /// initiated via [`Server::initiate_shutdown`] or `POST /shutdown`).
    pub fn join(self) {
        let _ = self.acceptor.join();
        for w in self.workers {
            let _ = w.join();
        }
    }

    /// [`Server::initiate_shutdown`] + [`Server::join`].
    pub fn shutdown(self) {
        self.initiate_shutdown();
        self.join();
    }
}

fn begin_drain(shared: &Shared) {
    shared.draining.store(true, Ordering::SeqCst);
    shared.queue_cv.notify_all();
    // Poke the acceptor out of its blocking accept; the throwaway
    // connection is answered (or dropped) and the loop exits.
    let _ = TcpStream::connect(shared.addr);
}

fn accept_loop(listener: TcpListener, shared: &Shared) {
    for conn in listener.incoming() {
        let Ok(mut stream) = conn else { continue };
        stream.set_read_timeout(Some(Duration::from_secs(5))).ok();
        stream.set_write_timeout(Some(Duration::from_secs(5))).ok();
        if shared.draining.load(Ordering::SeqCst) {
            // Answer the straggler that woke us, then stop accepting.
            if http::read_request(&mut stream).is_ok() {
                http::write_response(
                    &mut stream,
                    error::status_for(kind::SHUTTING_DOWN),
                    &error::error_json(
                        kind::SHUTTING_DOWN,
                        "server is draining; no new work is admitted",
                        None,
                        &[],
                    ),
                );
            }
            break;
        }
        let mut queue = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
        if queue.len() >= shared.cfg.queue_cap {
            drop(queue);
            shared.counters.shed.fetch_add(1, Ordering::Relaxed);
            // Load shedding: consume the request (so the client's write
            // completes cleanly) and answer with the structured 429.
            let _ = http::read_request(&mut stream);
            http::write_response(
                &mut stream,
                error::status_for(kind::QUEUE_FULL),
                &error::error_json(
                    kind::QUEUE_FULL,
                    "admission queue is full; retry with backoff",
                    None,
                    &[],
                ),
            );
        } else {
            queue.push_back(stream);
            shared.counters.accepted.fetch_add(1, Ordering::Relaxed);
            drop(queue);
            shared.queue_cv.notify_one();
        }
    }
    // Acceptor exit: make sure sleeping workers observe the drain.
    shared.queue_cv.notify_all();
}

fn worker_loop(shared: &Shared) {
    loop {
        let stream = {
            let mut queue = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(s) = queue.pop_front() {
                    break Some(s);
                }
                if shared.draining.load(Ordering::SeqCst) {
                    break None;
                }
                queue = shared
                    .queue_cv
                    .wait(queue)
                    .unwrap_or_else(|e| e.into_inner());
            }
        };
        match stream {
            Some(mut s) => handle_connection(shared, &mut s),
            None => return, // drained and draining: exit
        }
    }
}

fn handle_connection(shared: &Shared, stream: &mut TcpStream) {
    let req = match http::read_request(stream) {
        Ok(r) => r,
        Err(e) => {
            shared.counters.client_errors.fetch_add(1, Ordering::Relaxed);
            http::write_response(
                stream,
                400,
                &error::error_json(kind::BAD_REQUEST, &format!("malformed request: {e}"), None, &[]),
            );
            return;
        }
    };
    let draining = shared.draining.load(Ordering::SeqCst);
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => http::write_response(stream, 200, "{\"ok\": true}"),
        ("GET", "/readyz") => {
            if draining {
                http::write_response(
                    stream,
                    error::status_for(kind::SHUTTING_DOWN),
                    &error::error_json(kind::SHUTTING_DOWN, "draining", None, &[]),
                );
            } else {
                http::write_response(stream, 200, "{\"ready\": true}");
            }
        }
        ("GET", "/metrics") => {
            let body = shared.counters.json(draining, &shared.breaker, shared.store.as_ref());
            http::write_response(stream, 200, &body);
        }
        ("POST", "/shutdown") => {
            begin_drain(shared);
            http::write_response(stream, 200, "{\"ok\": true, \"draining\": true}");
        }
        ("POST", "/restructure") => restructure_endpoint(shared, stream, &req.body),
        _ => {
            shared.counters.client_errors.fetch_add(1, Ordering::Relaxed);
            http::write_response(
                stream,
                error::status_for(kind::NOT_FOUND),
                &error::error_json(
                    kind::NOT_FOUND,
                    &format!("no such endpoint: {} {}", req.method, req.path),
                    None,
                    &[],
                ),
            );
        }
    }
}

fn restructure_endpoint(shared: &Shared, stream: &mut TcpStream, body: &str) {
    let parsed = match Json::parse(body) {
        Ok(v) => v,
        Err(e) => {
            shared.counters.client_errors.fetch_add(1, Ordering::Relaxed);
            http::write_response(
                stream,
                error::status_for(kind::PARSE_ERROR),
                &error::error_json(kind::PARSE_ERROR, &format!("body is not JSON: {e}"), None, &[]),
            );
            return;
        }
    };
    let sreq = match ServeRequest::from_json(&parsed) {
        Ok(r) => r,
        Err(e) => {
            shared.counters.client_errors.fetch_add(1, Ordering::Relaxed);
            http::write_response(
                stream,
                error::status_for(kind::BAD_REQUEST),
                &error::error_json(kind::BAD_REQUEST, &e, None, &[]),
            );
            return;
        }
    };

    // Persistent store first: a previous run (or a previous process —
    // this is the warm-restart path) may have the finished response on
    // disk. A verified entry is replayed **verbatim**, so a restarted
    // server is byte-identical to the one that computed the result; a
    // torn or corrupt entry is quarantined by `get` and falls through
    // to recomputation, which re-persists a fresh copy below.
    let key = sreq.key();
    if let Some(store) = &shared.store {
        if let Some(bytes) = store.get(key) {
            if let Ok(body) = String::from_utf8(bytes) {
                shared.counters.served.fetch_add(1, Ordering::Relaxed);
                http::write_response(stream, 200, &body);
                return;
            }
        }
    }

    // Coalescing: if an identical request is already being computed,
    // park this connection on its flight record — the leader answers
    // it. Registration happens under the flights lock, and the leader
    // removes the record and collects waiters under the same lock, so
    // no follower can be orphaned between check and park.
    {
        let mut flights = shared.flights.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(waiters) = flights.get_mut(&key) {
            let parked = stream.try_clone();
            match parked {
                Ok(s) => {
                    waiters.push(s);
                    shared.counters.coalesced.fetch_add(1, Ordering::Relaxed);
                    return;
                }
                Err(_) => { /* fall through: compute independently */ }
            }
        } else {
            flights.insert(key, Vec::new());
        }
    }

    let handled = engine::handle(&sreq, &shared.cfg.engine, &shared.breaker);

    let waiters = {
        let mut flights = shared.flights.lock().unwrap_or_else(|e| e.into_inner());
        flights.remove(&key).unwrap_or_default()
    };
    let follower_count = waiters.len() as u64;

    if handled.status == 200 {
        shared
            .counters
            .served
            .fetch_add(1 + follower_count, Ordering::Relaxed);
        if handled.retries > 0 {
            shared.counters.recovered.fetch_add(1, Ordering::Relaxed);
        }
        // Persist the leader's body (with `"coalesced": false`) so a
        // replay after restart matches what the leader's client saw.
        // Best-effort: a full disk or injected fault degrades the
        // server to recompute-on-restart, never to a failed response.
        if let Some(store) = &shared.store {
            if let Err(e) = store.put(key, handled.body.as_bytes()) {
                eprintln!("cedar-serve: result store put failed: {e}");
            }
        }
    } else if handled.quarantined {
        shared.counters.quarantined.fetch_add(1, Ordering::Relaxed);
    } else if handled.status < 500 {
        shared.counters.client_errors.fetch_add(1, Ordering::Relaxed);
    }

    http::write_response(stream, handled.status, &handled.body);
    if !waiters.is_empty() {
        // Followers get the same response with the coalesced marker
        // flipped (the success body carries exactly one such field;
        // error bodies carry none and pass through unchanged).
        let body = handled
            .body
            .replacen("\"coalesced\": false", "\"coalesced\": true", 1);
        for mut w in waiters {
            http::write_response(&mut w, handled.status, &body);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn test_config(tag: &str) -> ServerConfig {
        let mut cfg = ServerConfig {
            workers: 2,
            ..ServerConfig::default()
        };
        cfg.engine.sup.chaos = None;
        cfg.engine.sup.deadline = None;
        cfg.engine.sup.bundle_dir = PathBuf::from(format!("target/test-serve-bundles/{tag}"));
        cfg.engine.backoff_base = Duration::from_millis(1);
        cfg
    }

    const T: Duration = Duration::from_secs(30);

    #[test]
    fn health_endpoints_and_unknown_routes() {
        let server = Server::start(test_config("health")).unwrap();
        let addr = server.addr();
        assert_eq!(http::get(&addr, "/healthz", T).unwrap(), (200, "{\"ok\": true}".into()));
        assert_eq!(http::get(&addr, "/readyz", T).unwrap().0, 200);
        let (status, body) = http::get(&addr, "/nope", T).unwrap();
        assert_eq!(status, 404);
        assert!(body.contains("\"kind\": \"not-found\""), "{body}");
        let (status, metrics) = http::get(&addr, "/metrics", T).unwrap();
        assert_eq!(status, 200);
        assert!(metrics.contains("\"schema\": \"cedar-serve-metrics-v1\""), "{metrics}");
        server.shutdown();
    }

    #[test]
    fn restructure_round_trip_and_shutdown_drains() {
        let server = Server::start(test_config("roundtrip")).unwrap();
        let addr = server.addr();
        let mut req = ServeRequest::new(
            "program p\nreal a(32)\ninteger i\ndo 10 i = 1, 32\n  a(i) = real(i)\n10 continue\nprint *, a(32)\nend\n",
        );
        req.validate = false;
        let (status, body) = http::post(&addr, "/restructure", &req.to_json(), T).unwrap();
        assert_eq!(status, 200, "{body}");
        assert!(body.contains("\"speedup\""), "{body}");
        // Shutdown via the endpoint: readyz flips, then the server joins.
        let (status, _) = http::post(&addr, "/shutdown", "", T).unwrap();
        assert_eq!(status, 200);
        server.join();
    }

    #[test]
    fn concurrent_identical_requests_coalesce() {
        let mut cfg = test_config("coalesce");
        // Hundreds of perturbed validation runs keep the leader in
        // flight for tens of milliseconds — long enough that the
        // followers, sent a few ms later, reliably find it computing.
        cfg.engine.validate_seeds = (1..=400).collect();
        let server = Server::start(cfg).unwrap();
        let addr = server.addr();
        let req = ServeRequest::new(
            "program p\nreal a(256), s\ninteger i\ns = 0.0\ndo 10 i = 1, 256\n  a(i) = real(i) * 0.5\n10 continue\ndo 20 i = 1, 256\n  s = s + a(i)\n20 continue\nprint *, s\nend\n",
        );
        let body = req.to_json();
        let bodies: Vec<(u16, String)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..3)
                .map(|i: u64| {
                    let (addr, body) = (addr.clone(), body.clone());
                    scope.spawn(move || {
                        if i > 0 {
                            std::thread::sleep(Duration::from_millis(3 * i));
                        }
                        http::post(&addr, "/restructure", &body, T).unwrap()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let coalesced = server.counters().coalesced.load(std::sync::atomic::Ordering::Relaxed);
        assert!(coalesced >= 1, "identical in-flight requests must share one computation");
        let reports: Vec<&str> = bodies
            .iter()
            .map(|(status, b)| {
                assert_eq!(*status, 200, "{b}");
                let (_, rest) = b.split_once("\"report\": \"").unwrap();
                rest.split("\", \"stats\"").next().unwrap()
            })
            .collect();
        assert!(reports.windows(2).all(|w| w[0] == w[1]), "answers must agree");
        let marked = bodies
            .iter()
            .filter(|(_, b)| b.contains("\"coalesced\": true"))
            .count() as u64;
        assert_eq!(marked, coalesced, "followers carry the coalesced marker");
        server.shutdown();
    }

    #[test]
    fn bad_bodies_get_structured_errors() {
        let server = Server::start(test_config("badbody")).unwrap();
        let addr = server.addr();
        let (status, body) = http::post(&addr, "/restructure", "{not json", T).unwrap();
        assert_eq!(status, 400);
        assert!(body.contains("\"kind\": \"parse-error\""), "{body}");
        let (status, body) = http::post(&addr, "/restructure", "{\"x\": 1}", T).unwrap();
        assert_eq!(status, 400);
        assert!(body.contains("\"kind\": \"bad-request\""), "{body}");
        server.shutdown();
    }
}
