//! Hand-rolled HTTP/1.1, sized to the service's needs: one request per
//! connection (`Connection: close`), `Content-Length`-framed bodies,
//! no chunked encoding, no keep-alive. Both the server side
//! ([`read_request`] / [`write_response`]) and the client side
//! ([`get`] / [`post`], used by the load-test harness and the
//! integration tests) live here so the two ends can never drift.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Largest accepted request body (16 MiB) — an admission-control guard
/// so a hostile `Content-Length` cannot make a worker allocate
/// unboundedly.
pub const MAX_BODY: usize = 16 << 20;

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    /// Upper-cased method (`GET`, `POST`, ...).
    pub method: String,
    /// Request target as sent (no query parsing; the service needs none).
    pub path: String,
    /// Decoded body (empty when the request carried none).
    pub body: String,
}

/// Read and frame one request from `stream`. Errors are strings; the
/// caller answers them with a 400.
pub fn read_request(stream: &mut TcpStream) -> Result<Request, String> {
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 4096];
    let header_end = loop {
        if let Some(pos) = find_blank_line(&buf) {
            break pos;
        }
        if buf.len() > 64 << 10 {
            return Err("header section exceeds 64 KiB".into());
        }
        let n = stream.read(&mut chunk).map_err(|e| format!("read: {e}"))?;
        if n == 0 {
            return Err("connection closed before headers completed".into());
        }
        buf.extend_from_slice(&chunk[..n]);
    };

    let head = std::str::from_utf8(&buf[..header_end])
        .map_err(|e| format!("non-UTF-8 headers: {e}"))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let method = parts.next().ok_or("empty request line")?.to_uppercase();
    let path = parts.next().ok_or("request line has no target")?.to_string();

    let mut content_length = 0usize;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|e| format!("bad content-length: {e}"))?;
            }
        }
    }
    if content_length > MAX_BODY {
        return Err(format!("body of {content_length} bytes exceeds {MAX_BODY}"));
    }

    let mut body = buf[header_end + 4..].to_vec();
    while body.len() < content_length {
        let n = stream.read(&mut chunk).map_err(|e| format!("read body: {e}"))?;
        if n == 0 {
            return Err("connection closed mid-body".into());
        }
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(content_length);
    let body = String::from_utf8(body).map_err(|e| format!("non-UTF-8 body: {e}"))?;
    Ok(Request { method, path, body })
}

fn find_blank_line(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Reason phrase for the status codes the service emits.
fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

/// Write a complete JSON response and flush. Failures are swallowed —
/// a client that hung up mid-response is its own problem, never the
/// server's.
pub fn write_response(stream: &mut TcpStream, status: u16, body: &str) {
    let head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        reason(status),
        body.len(),
    );
    let _ = stream.write_all(head.as_bytes());
    let _ = stream.write_all(body.as_bytes());
    let _ = stream.flush();
}

/// Client: one round trip, returning `(status, body)`. `timeout` bounds
/// each socket operation, not the whole exchange.
fn round_trip(
    addr: &str,
    request: &str,
    timeout: Duration,
) -> Result<(u16, String), String> {
    let mut stream =
        TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    stream.set_read_timeout(Some(timeout)).ok();
    stream.set_write_timeout(Some(timeout)).ok();
    stream
        .write_all(request.as_bytes())
        .map_err(|e| format!("send: {e}"))?;
    let mut response = Vec::new();
    stream
        .read_to_end(&mut response)
        .map_err(|e| format!("receive: {e}"))?;
    let text = String::from_utf8(response).map_err(|e| format!("non-UTF-8 response: {e}"))?;
    let (head, body) = text
        .split_once("\r\n\r\n")
        .ok_or("response has no header/body separator")?;
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("bad status line: {}", head.lines().next().unwrap_or("")))?;
    Ok((status, body.to_string()))
}

/// `GET path` against `addr`, returning `(status, body)`.
pub fn get(addr: &str, path: &str, timeout: Duration) -> Result<(u16, String), String> {
    round_trip(
        addr,
        &format!("GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n"),
        timeout,
    )
}

/// `POST path` with a JSON body against `addr`, returning
/// `(status, body)`.
pub fn post(
    addr: &str,
    path: &str,
    body: &str,
    timeout: Duration,
) -> Result<(u16, String), String> {
    round_trip(
        addr,
        &format!(
            "POST {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len(),
        ),
        timeout,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    #[test]
    fn request_response_round_trip() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            let req = read_request(&mut s).unwrap();
            assert_eq!(req.method, "POST");
            assert_eq!(req.path, "/echo");
            write_response(&mut s, 200, &format!("{{\"len\": {}}}", req.body.len()));
        });
        let body = "x".repeat(10_000); // bigger than one read chunk
        let (status, resp) =
            post(&addr, "/echo", &body, Duration::from_secs(5)).unwrap();
        assert_eq!(status, 200);
        assert_eq!(resp, "{\"len\": 10000}");
        server.join().unwrap();
    }

    #[test]
    fn oversized_content_length_is_rejected() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            assert!(read_request(&mut s).is_err());
            write_response(&mut s, 400, "{}");
        });
        let mut stream = TcpStream::connect(&addr).unwrap();
        stream
            .write_all(
                format!(
                    "POST /x HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
                    MAX_BODY + 1
                )
                .as_bytes(),
            )
            .unwrap();
        let mut out = Vec::new();
        stream.read_to_end(&mut out).unwrap();
        assert!(String::from_utf8_lossy(&out).starts_with("HTTP/1.1 400"));
        server.join().unwrap();
    }
}
