//! The service's error taxonomy: every failure a request can hit maps
//! onto a stable `error.kind` string, an HTTP status, and one of the
//! repo's exit classes (0 ok / 1 program-or-validation / 2 harness —
//! the same taxonomy `cedar_experiments::exitcode` gives the batch
//! binaries), rendered as a structured JSON body.
//!
//! Two invariants, enforced here and tested in `tests/serve_chaos.rs`:
//!
//! 1. **Stable kinds.** The `kind` strings are an API: the service-side
//!    kinds below plus every [`SimErrorKind::as_str`] tag. Clients
//!    branch on them; they never change spelling.
//! 2. **No leaked internals.** A panic payload or backtrace never
//!    reaches a client — panics are reported as kind `panicked` with a
//!    fixed message, and the gory details go to the crash bundle the
//!    response references instead.

use cedar_experiments::json_escape;
use cedar_experiments::supervise::{CellError, CellErrorKind};

/// Service-side error kinds (program/simulator kinds come from
/// [`cedar_sim::SimErrorKind::as_str`]).
pub mod kind {
    /// Request body is not valid JSON.
    pub const PARSE_ERROR: &str = "parse-error";
    /// Request body is JSON but not a valid request (missing `source`,
    /// unknown `config`, ...).
    pub const BAD_REQUEST: &str = "bad-request";
    /// The Fortran front end rejected the source.
    pub const COMPILE_ERROR: &str = "compile-error";
    /// Unknown endpoint.
    pub const NOT_FOUND: &str = "not-found";
    /// Admission queue full; the request was shed, retry later.
    pub const QUEUE_FULL: &str = "queue-full";
    /// The server is draining for shutdown.
    pub const SHUTTING_DOWN: &str = "shutting-down";
    /// The request panicked the engine at every ladder rung.
    pub const PANICKED: &str = "panicked";
    /// The request exceeded its wall-clock deadline at every rung.
    pub const TIMED_OUT: &str = "timed-out";
}

/// HTTP status for an error kind. Simulator kinds are 422 — the
/// *program* is faulty and deterministically so (a real deadlock or
/// out-of-bounds is the client's bug, not the service's) — except
/// `timeout`, which is the deadline machinery and maps with
/// [`kind::TIMED_OUT`] to 504.
pub fn status_for(kind: &str) -> u16 {
    match kind {
        kind::PARSE_ERROR | kind::BAD_REQUEST | kind::COMPILE_ERROR => 400,
        kind::NOT_FOUND => 404,
        kind::QUEUE_FULL => 429,
        kind::SHUTTING_DOWN => 503,
        kind::PANICKED => 500,
        kind::TIMED_OUT | "timeout" => 504,
        // Everything else is a structured simulator/program fault.
        _ => 422,
    }
}

/// The repo-wide exit class (`cedar_experiments::exitcode`) a kind
/// belongs to: program/validation faults are class 1, harness-side
/// conditions (shed, drain, panic, deadline) are class 2.
pub fn exit_class(kind: &str) -> i32 {
    match status_for(kind) {
        400 | 404 | 422 => cedar_experiments::exitcode::VALIDATION,
        _ => cedar_experiments::exitcode::HARNESS,
    }
}

/// The stable kind for one classified ladder attempt: the structured
/// simulator kind when the failure carried one, else the cell
/// classification (`panicked` / `timed-out`).
pub fn kind_for(e: &CellError) -> &'static str {
    if let Some(sim) = e.sim {
        return sim.as_str();
    }
    match e.kind {
        CellErrorKind::Panicked => kind::PANICKED,
        CellErrorKind::TimedOut => kind::TIMED_OUT,
        CellErrorKind::Failed => kind::PANICKED, // unreachable: Failed implies sim
    }
}

/// The client-safe message for one attempt. Structured simulator
/// errors are safe (they describe the *program*); panic payloads are
/// not (they describe the *engine*) and are replaced wholesale.
pub fn message_for(e: &CellError) -> String {
    match e.kind {
        CellErrorKind::Panicked => {
            "internal engine failure; details preserved in the crash bundle".to_string()
        }
        _ => e.msg.clone(),
    }
}

/// Render a structured error body:
/// `{"schema": ..., "error": {"kind", "message", "exit_class",
/// "bundle", "attempts"}}`. `attempts` lists `(rung, kind)` per ladder
/// attempt — enough to see the degradation path without exposing
/// internals.
pub fn error_json(
    kind: &str,
    message: &str,
    bundle: Option<&str>,
    attempts: &[(&'static str, &'static str)],
) -> String {
    let attempts_json = attempts
        .iter()
        .map(|(rung, k)| format!("{{\"rung\": \"{rung}\", \"kind\": \"{k}\"}}"))
        .collect::<Vec<_>>()
        .join(", ");
    format!(
        "{{\"schema\": \"cedar-serve-v1\", \"error\": {{\"kind\": \"{}\", \"message\": \"{}\", \"exit_class\": {}, \"bundle\": {}, \"attempts\": [{}]}}}}",
        json_escape(kind),
        json_escape(message),
        exit_class(kind),
        match bundle {
            Some(b) => format!("\"{}\"", json_escape(b)),
            None => "null".to_string(),
        },
        attempts_json,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use cedar_sim::SimErrorKind;

    #[test]
    fn every_sim_kind_has_a_status_and_class() {
        let kinds = [
            SimErrorKind::Deadlock,
            SimErrorKind::OutOfBounds,
            SimErrorKind::Uninit,
            SimErrorKind::TypeError,
            SimErrorKind::DivByZero,
            SimErrorKind::Unsupported,
            SimErrorKind::Limit,
            SimErrorKind::Timeout,
            SimErrorKind::BadProgram,
            SimErrorKind::DataRace,
        ];
        for k in kinds {
            let status = status_for(k.as_str());
            if k == SimErrorKind::Timeout {
                assert_eq!(status, 504);
                assert_eq!(exit_class(k.as_str()), 2);
            } else {
                assert_eq!(status, 422, "{}", k.as_str());
                assert_eq!(exit_class(k.as_str()), 1, "{}", k.as_str());
            }
        }
    }

    #[test]
    fn service_kind_statuses() {
        assert_eq!(status_for(kind::QUEUE_FULL), 429);
        assert_eq!(status_for(kind::SHUTTING_DOWN), 503);
        assert_eq!(status_for(kind::PANICKED), 500);
        assert_eq!(status_for(kind::TIMED_OUT), 504);
        assert_eq!(status_for(kind::BAD_REQUEST), 400);
        assert_eq!(status_for(kind::NOT_FOUND), 404);
        assert_eq!(exit_class(kind::QUEUE_FULL), 2);
        assert_eq!(exit_class(kind::COMPILE_ERROR), 1);
    }

    #[test]
    fn panic_messages_never_leak() {
        let e = CellError {
            kind: CellErrorKind::Panicked,
            msg: "index out of bounds at src/secret_internal.rs:42".to_string(),
            sim: None,
            backtrace: Some("stack backtrace:\n 0: secret".to_string()),
        };
        let body = error_json(kind_for(&e), &message_for(&e), Some("target/b/x"), &[]);
        assert!(!body.contains("secret"), "{body}");
        assert!(body.contains("\"kind\": \"panicked\""), "{body}");
        assert!(body.contains("crash bundle"), "{body}");
    }

    #[test]
    fn sim_errors_keep_their_structured_kind() {
        let sim = cedar_sim::SimError::new(
            SimErrorKind::Deadlock,
            cedar_ir::Span::new(7),
            "await(2) never satisfied",
        );
        let e = CellError::from_sim_error(&sim);
        assert_eq!(kind_for(&e), "deadlock");
        assert!(message_for(&e).contains("await(2) never satisfied"));
        let body = error_json(
            kind_for(&e),
            &message_for(&e),
            None,
            &[("normal", "deadlock"), ("serial", "deadlock")],
        );
        assert!(body.contains("\"exit_class\": 1"), "{body}");
        assert!(body.contains("{\"rung\": \"serial\", \"kind\": \"deadlock\"}"), "{body}");
    }
}
