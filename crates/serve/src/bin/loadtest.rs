//! `loadtest` — replay the `cedar-fuzz` generator against an
//! in-process server at configurable concurrency, optionally under
//! `CEDAR_CHAOS`, and write latency/throughput/robustness numbers to
//! `BENCH_serve.json`.
//!
//! The run doubles as the acceptance harness for the service's
//! robustness guarantees (gated here and in CI's serve-smoke job):
//!
//! * **nothing is lost** — every submitted request receives a
//!   response; shed requests (429) are retried until admitted;
//! * **no naked failures** — every quarantine response (422/500/504)
//!   references a crash bundle;
//! * **shedding happens** — with more clients than workers + queue
//!   slots, the admission queue must actually shed;
//! * **recovery happens** — under chaos, at least one request must
//!   succeed only after ladder retries.
//!
//! Exit codes follow the repo convention: 0 ok, 1 a gate failed,
//! 2 harness error.

use cedar_fuzz::{GenProgram, Latency};
use cedar_serve::{http, Json, ServeRequest, Server, ServerConfig};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

const USAGE: &str = "usage: loadtest [--requests N] [--clients N] [--workers N] [--queue N]
                [--chaos SEED] [--out PATH] [--check PATH]
  --requests N   total requests to replay (default 500)
  --clients N    concurrent client threads (default 8)
  --workers N    server worker threads (default 2)
  --queue N      admission queue capacity (default 2)
  --chaos SEED   chaos seed (default: CEDAR_CHAOS from the environment)
  --out PATH     where to write the benchmark JSON (default BENCH_serve.json)
  --check PATH   fail (exit 1) if p99 regressed >25% +25ms vs this baseline";

struct Args {
    requests: usize,
    clients: usize,
    workers: usize,
    queue: usize,
    chaos: Option<u64>,
    out: PathBuf,
    check: Option<PathBuf>,
}

fn harness_fail(msg: &str) -> ! {
    eprintln!("loadtest: {msg}");
    std::process::exit(cedar_experiments::exitcode::HARNESS);
}

fn parse_args() -> Args {
    let mut a = Args {
        requests: 500,
        clients: 8,
        workers: 2,
        queue: 2,
        chaos: std::env::var("CEDAR_CHAOS")
            .ok()
            .and_then(|s| cedar_experiments::chaos::parse_seed(&s)),
        out: PathBuf::from("BENCH_serve.json"),
        check: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut take = |name: &str| {
            args.next()
                .unwrap_or_else(|| harness_fail(&format!("{name} needs a value\n{USAGE}")))
        };
        match arg.as_str() {
            "--requests" => a.requests = parse_n(&take("--requests")),
            "--clients" => a.clients = parse_n(&take("--clients")),
            "--workers" => a.workers = parse_n(&take("--workers")),
            "--queue" => a.queue = parse_n(&take("--queue")),
            "--chaos" => {
                let s = take("--chaos");
                a.chaos = Some(
                    cedar_experiments::chaos::parse_seed(&s)
                        .unwrap_or_else(|| harness_fail(&format!("bad chaos seed {s:?}"))),
                );
            }
            "--out" => a.out = PathBuf::from(take("--out")),
            "--check" => a.check = Some(PathBuf::from(take("--check"))),
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => harness_fail(&format!("unknown flag {other}\n{USAGE}")),
        }
    }
    a
}

fn parse_n(s: &str) -> usize {
    match s.trim().parse::<usize>() {
        Ok(n) if n > 0 => n,
        _ => harness_fail(&format!("expected a positive integer, got {s:?}\n{USAGE}")),
    }
}

/// Per-client tally, merged after the run.
#[derive(Default)]
struct Tally {
    latency: Latency,
    ok: u64,
    quarantined: u64,
    shed_retries: u64,
    /// Gate violations: lost requests, naked 5xx, unexpected statuses.
    violations: Vec<String>,
}

fn main() {
    let args = parse_args();

    // Seeds repeat so the run exercises the content-keyed caches and
    // in-flight coalescing, not just cold work: adjacent indices are
    // duplicates (picked up near-simultaneously by different clients,
    // so they overlap in flight), and the index space wraps so later
    // requests replay earlier programs against warm caches.
    let unique = (args.requests * 2 / 5).max(1);
    let seed_of = |i: usize| ((i / 2) % unique) as u64;
    eprintln!(
        "loadtest: generating {} requests ({} unique programs) ...",
        args.requests, unique
    );
    let bodies: Vec<String> = (0..args.requests)
        .map(|i| {
            let seed = seed_of(i);
            let mut req = ServeRequest::new(GenProgram::generate(seed).render().source);
            req.validate = false; // exact phase set; validation is covered elsewhere
            req.to_json()
        })
        .collect();

    let mut cfg = ServerConfig {
        workers: args.workers,
        queue_cap: args.queue,
        ..ServerConfig::default()
    };
    cfg.engine.sup.chaos = args.chaos;
    cfg.engine.sup.deadline = Some(Duration::from_secs(30));
    cfg.engine.sup.bundle_dir = PathBuf::from("target/crash-bundles/loadtest");
    cfg.engine.backoff_base = Duration::from_millis(2);
    let server = match Server::start(cfg) {
        Ok(s) => s,
        Err(e) => harness_fail(&format!("bind failed: {e}")),
    };
    let addr = server.addr();
    eprintln!(
        "loadtest: {} clients -> {} (workers={}, queue={}, chaos={})",
        args.clients,
        addr,
        args.workers,
        args.queue,
        args.chaos.map_or("off".to_string(), |s| s.to_string()),
    );

    let next = AtomicUsize::new(0);
    let merged = Mutex::new(Tally::default());
    let started = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..args.clients {
            scope.spawn(|| {
                let mut t = Tally::default();
                let timeout = Duration::from_secs(120);
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= bodies.len() {
                        break;
                    }
                    let seed = seed_of(i);
                    let label = format!("seed-{seed}");
                    let sent = Instant::now();
                    // Shed requests are retried until admitted: load
                    // shedding must degrade latency, never lose work.
                    let outcome = loop {
                        match http::post(&addr, "/restructure", &bodies[i], timeout) {
                            Ok((429, _)) => {
                                t.shed_retries += 1;
                                std::thread::sleep(Duration::from_millis(2));
                            }
                            other => break other,
                        }
                    };
                    t.latency.record_duration(label, sent.elapsed());
                    match outcome {
                        Ok((200, _)) => t.ok += 1,
                        Ok((status @ (422 | 500 | 504), body)) => {
                            t.quarantined += 1;
                            let bundled = Json::parse(&body).is_ok_and(|v| {
                                v.get("error")
                                    .and_then(|e| e.get("bundle"))
                                    .is_some_and(|b| !b.is_null())
                            });
                            if !bundled {
                                t.violations.push(format!(
                                    "request {i} (seed {seed}): {status} without a crash bundle: {body}"
                                ));
                            }
                        }
                        Ok((status, body)) => t.violations.push(format!(
                            "request {i} (seed {seed}): unexpected status {status}: {body}"
                        )),
                        Err(e) => t
                            .violations
                            .push(format!("request {i} (seed {seed}) lost: {e}")),
                    }
                }
                let mut m = merged.lock().unwrap();
                m.ok += t.ok;
                m.quarantined += t.quarantined;
                m.shed_retries += t.shed_retries;
                m.violations.extend(t.violations);
                m.latency.absorb(t.latency);
            });
        }
    });
    let wall = started.elapsed();
    let tally = merged.into_inner().unwrap();

    let (_, metrics_body) = http::get(&addr, "/metrics", Duration::from_secs(10))
        .unwrap_or_else(|e| harness_fail(&format!("metrics fetch failed: {e}")));
    let metrics = Json::parse(&metrics_body)
        .unwrap_or_else(|e| harness_fail(&format!("metrics not JSON: {e}")));
    let counter = |name: &str| {
        metrics
            .get(name)
            .and_then(Json::as_f64)
            .unwrap_or_else(|| harness_fail(&format!("metrics missing {name}: {metrics_body}")))
            as u64
    };
    let (shed, recovered, quarantined_srv, coalesced) = (
        counter("shed"),
        counter("recovered"),
        counter("quarantined"),
        counter("coalesced"),
    );

    // Graceful shutdown must drain: the server joins without force.
    match http::post(&addr, "/shutdown", "", Duration::from_secs(10)) {
        Ok((200, _)) => {}
        other => harness_fail(&format!("shutdown request failed: {other:?}")),
    }
    server.join();

    let throughput = args.requests as f64 / wall.as_secs_f64();
    let bench = format!(
        "{{\n  \"schema\": \"cedar-serve-bench-v1\",\n  \"requests\": {},\n  \"clients\": {},\n  \"workers\": {},\n  \"queue_cap\": {},\n  \"chaos\": {},\n  \"latency_ms\": {},\n  \"throughput_rps\": {:.2},\n  \"shed\": {},\n  \"shed_retries\": {},\n  \"recovered\": {},\n  \"quarantined\": {},\n  \"coalesced\": {},\n  \"slowest\": {}\n}}\n",
        args.requests,
        args.clients,
        args.workers,
        args.queue,
        args.chaos.map_or("null".to_string(), |s| s.to_string()),
        tally.latency.summary_json(),
        throughput,
        shed,
        tally.shed_retries,
        recovered,
        quarantined_srv,
        coalesced,
        tally.latency.slowest_json(5),
    );
    if let Err(e) = std::fs::write(&args.out, &bench) {
        harness_fail(&format!("writing {}: {e}", args.out.display()));
    }
    eprintln!(
        "loadtest: {} ok, {} quarantined, shed {} (retries {}), recovered {}, coalesced {}, {:.1} req/s, p50 {:.1} ms, p99 {:.1} ms",
        tally.ok,
        tally.quarantined,
        shed,
        tally.shed_retries,
        recovered,
        coalesced,
        throughput,
        tally.latency.percentile(50.0),
        tally.latency.percentile(99.0),
    );

    // Gates.
    let mut failures = tally.violations;
    if tally.ok + tally.quarantined != args.requests as u64 {
        failures.push(format!(
            "accounting: {} ok + {} quarantined != {} submitted",
            tally.ok, tally.quarantined, args.requests
        ));
    }
    if args.clients > args.workers + args.queue && shed == 0 {
        failures.push(format!(
            "no load shedding: {} clients against {} workers + {} queue slots never hit a full queue",
            args.clients, args.workers, args.queue
        ));
    }
    if args.chaos.is_some() && recovered == 0 {
        failures.push("chaos was on but no request recovered via ladder retries".to_string());
    }
    if let Some(check) = &args.check {
        match baseline_p99(check) {
            Ok(old) => {
                let new = tally.latency.percentile(99.0);
                let limit = old * 1.25 + 25.0;
                if new > limit {
                    failures.push(format!(
                        "p99 regression: {new:.1} ms > {limit:.1} ms (baseline {old:.1} ms +25% +25ms)"
                    ));
                } else {
                    eprintln!("loadtest: p99 {new:.1} ms within {limit:.1} ms budget (baseline {old:.1} ms)");
                }
            }
            Err(e) => harness_fail(&format!("baseline {}: {e}", check.display())),
        }
    }

    if !failures.is_empty() {
        eprintln!("loadtest: {} gate failure(s):", failures.len());
        for (i, f) in failures.iter().enumerate().take(20) {
            eprintln!("  [{i}] {f}");
        }
        std::process::exit(cedar_experiments::exitcode::VALIDATION);
    }
    eprintln!("loadtest: all gates passed; wrote {}", args.out.display());
}

fn baseline_p99(path: &PathBuf) -> Result<f64, String> {
    let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    let v = Json::parse(&text).map_err(|e| format!("not JSON: {e}"))?;
    v.get("latency_ms")
        .and_then(|l| l.get("p99"))
        .and_then(Json::as_f64)
        .ok_or_else(|| "missing latency_ms.p99".to_string())
}
