//! `serve` — run the restructurer service until told to drain.
//!
//! Configuration comes from the environment (`CEDAR_SERVE_ADDR`,
//! `CEDAR_SERVE_WORKERS`, `CEDAR_SERVE_QUEUE`, `CEDAR_SERVE_STORE`,
//! `CEDAR_CHAOS`, `CEDAR_CELL_DEADLINE`, `CEDAR_BUNDLE_DIR`) with
//! flag overrides.
//! The process exits when a client POSTs `/shutdown` and the drain
//! completes.

use cedar_serve::{Server, ServerConfig};

const USAGE: &str = "usage: serve [--addr HOST:PORT] [--workers N] [--queue N] [--store DIR]
  --addr HOST:PORT   bind address (default 127.0.0.1:0, i.e. any free port)
  --workers N        worker threads (default 4)
  --queue N          admission queue capacity (default 64)
  --store DIR        persist results in a crash-safe store at DIR; a
                     restarted server replays them byte-identically";

fn main() {
    let mut cfg = ServerConfig::from_env();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut take = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{name} needs a value\n{USAGE}");
                std::process::exit(cedar_experiments::exitcode::HARNESS);
            })
        };
        match arg.as_str() {
            "--addr" => cfg.addr = take("--addr"),
            "--workers" => cfg.workers = parse_n(&take("--workers")),
            "--queue" => cfg.queue_cap = parse_n(&take("--queue")),
            "--store" => cfg.store_dir = Some(take("--store").into()),
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            other => {
                eprintln!("unknown flag {other}\n{USAGE}");
                std::process::exit(cedar_experiments::exitcode::HARNESS);
            }
        }
    }

    let server = match Server::start(cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("serve: bind failed: {e}");
            std::process::exit(cedar_experiments::exitcode::HARNESS);
        }
    };
    eprintln!("cedar-serve listening on {}", server.addr());
    eprintln!("POST /restructure to submit work, POST /shutdown to drain and exit");
    server.join();
    eprintln!("cedar-serve drained; exiting");
}

fn parse_n(s: &str) -> usize {
    match s.trim().parse::<usize>() {
        Ok(n) if n > 0 => n,
        _ => {
            eprintln!("expected a positive integer, got {s:?}\n{USAGE}");
            std::process::exit(cedar_experiments::exitcode::HARNESS);
        }
    }
}
