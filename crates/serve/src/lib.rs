//! `cedar-serve` — the restructurer as a long-running, fault-tolerant
//! service.
//!
//! The batch binaries answer "restructure this file once"; this crate
//! answers "keep restructuring whatever arrives, and stay up". It
//! accepts Fortran 77 source over a hand-rolled HTTP/1.1 + JSON
//! protocol (std-only: `TcpListener`, no external dependencies) and
//! returns the restructured Cedar Fortran, the transformation report,
//! simulation statistics, and a verification verdict.
//!
//! The robustness layer between socket and restructurer:
//!
//! * **admission control** — a bounded queue; overload is shed with a
//!   structured 429 instead of building backlog ([`server`]);
//! * **deadlines** — per-request wall-clock budgets enforced through
//!   the supervised-cell cancel tokens ([`engine`]);
//! * **retries with degradation** — failed attempts back off with
//!   deterministic jitter and walk the `supervise` ladder (normal →
//!   no-fast-paths → races-on → serial) before a request is
//!   quarantined with a crash-bundle reference ([`engine`]);
//! * **circuit breaking** — a pass configuration that keeps needing
//!   rescue starts subsequent requests at the rung that saves it
//!   ([`breaker`]);
//! * **coalescing** — identical in-flight requests share one
//!   computation ([`server`]), stacked on the content-keyed result
//!   caches in `cedar-experiments`;
//! * **graceful shutdown** — draining finishes admitted work, new
//!   arrivals get 503 ([`server`]);
//! * **structured errors** — the full `SimError` taxonomy and the
//!   repo's exit classes map to stable `error.kind` strings; panic
//!   payloads never leak to clients ([`error`]).
//!
//! Binaries: `serve` runs the server; `loadtest` replays the
//! `cedar-fuzz` generator against an in-process server under
//! `CEDAR_CHAOS` and writes latency/throughput/shed/recovery numbers
//! to `BENCH_serve.json`.

#![warn(missing_docs)]

pub mod breaker;
pub mod engine;
pub mod error;
pub mod http;
pub mod json;
pub mod server;

pub use breaker::Breaker;
pub use engine::{handle, EngineConfig, Handled, ServeRequest};
pub use json::Json;
pub use server::{Server, ServerConfig};
