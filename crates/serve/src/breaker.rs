//! Circuit breaker: when requests under one pass configuration keep
//! needing the degradation ladder, stop paying for the doomed attempts
//! and start subsequent requests directly at the rung that has been
//! rescuing them.
//!
//! State is kept per pass name (`auto` / `manual` / `serial`) — "a pass
//! that keeps failing" is the unit the ISSUE names, and it matches how
//! a deployment would see a restructurer regression: one configuration
//! goes bad while the others stay healthy. The policy is the classic
//! three-state machine:
//!
//! * **closed** — requests enter the ladder at `normal`;
//! * **open** — after `threshold` *consecutive* requests needed
//!   escalation (or quarantined), entry jumps to the highest rung that
//!   rescued them, for `cooldown`;
//! * **half-open** — once the cooldown lapses, the next request probes
//!   at `normal` again; success closes the breaker, another escalation
//!   re-opens it.
//!
//! Time is only consulted on state *reads* (`Instant::now` vs a stored
//! deadline), so tests can drive the machine synthetically with a zero
//! cooldown.

use cedar_experiments::supervise::Rung;
use std::collections::HashMap;
use std::sync::Mutex;
use std::time::{Duration, Instant};

#[derive(Debug, Clone)]
struct PassState {
    /// Consecutive requests that needed escalation beyond `normal`.
    consecutive: u32,
    /// While `Some` and in the future, the breaker is open.
    open_until: Option<Instant>,
    /// Highest rung that rescued a recent escalated request (entry
    /// point while open).
    rescue: Rung,
}

/// Per-pass circuit breaker; shared across worker threads.
#[derive(Debug)]
pub struct Breaker {
    threshold: u32,
    cooldown: Duration,
    state: Mutex<HashMap<String, PassState>>,
}

impl Breaker {
    /// A breaker that opens after `threshold` consecutive escalations
    /// and stays open for `cooldown`.
    pub fn new(threshold: u32, cooldown: Duration) -> Breaker {
        Breaker { threshold, cooldown, state: Mutex::new(HashMap::new()) }
    }

    /// The rung a new request under `pass` should enter the ladder at:
    /// `normal` when closed or half-open (probe), the rescue rung while
    /// open.
    pub fn entry_rung(&self, pass: &str) -> Rung {
        let state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        match state.get(pass) {
            Some(s) if s.open_until.is_some_and(|t| Instant::now() < t) => s.rescue,
            _ => Rung::Normal,
        }
    }

    /// Record a finished request: the rung it entered at, the rung it
    /// succeeded at (`None` = quarantined at every rung).
    pub fn record(&self, pass: &str, entry: Rung, succeeded_at: Option<Rung>) {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        let s = state.entry(pass.to_string()).or_insert(PassState {
            consecutive: 0,
            open_until: None,
            rescue: Rung::Normal,
        });
        match succeeded_at {
            // A clean first-attempt success while entering at `normal`
            // is the only event that closes the breaker — success at an
            // elevated entry rung proves nothing about `normal`.
            Some(rung) if rung == entry && entry == Rung::Normal => {
                s.consecutive = 0;
                s.open_until = None;
                s.rescue = Rung::Normal;
            }
            outcome => {
                s.consecutive += 1;
                // The rung that rescued the request becomes the entry
                // point while open; a quarantine teaches nothing better
                // than the deepest rung.
                s.rescue = s.rescue.max(outcome.unwrap_or(Rung::Serial)).max(entry);
                if s.consecutive >= self.threshold {
                    s.open_until = Some(Instant::now() + self.cooldown);
                }
            }
        }
    }

    /// `{"pass": {"state": "closed|open", "consecutive": n,
    /// "entry_rung": "..."}}` for `/metrics`; passes sorted for
    /// deterministic output.
    pub fn status_json(&self) -> String {
        let state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        let mut passes: Vec<&String> = state.keys().collect();
        passes.sort();
        let items: Vec<String> = passes
            .iter()
            .map(|p| {
                let s = &state[*p];
                let open = s.open_until.is_some_and(|t| Instant::now() < t);
                format!(
                    "\"{}\": {{\"state\": \"{}\", \"consecutive\": {}, \"entry_rung\": \"{}\"}}",
                    cedar_experiments::json_escape(p),
                    if open { "open" } else { "closed" },
                    s.consecutive,
                    if open { s.rescue.label() } else { Rung::Normal.label() },
                )
            })
            .collect();
        format!("{{{}}}", items.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opens_after_threshold_and_skips_to_rescue_rung() {
        let b = Breaker::new(3, Duration::from_secs(60));
        assert_eq!(b.entry_rung("auto"), Rung::Normal);
        b.record("auto", Rung::Normal, Some(Rung::NoFastPaths));
        b.record("auto", Rung::Normal, Some(Rung::RacesOn));
        assert_eq!(b.entry_rung("auto"), Rung::Normal, "below threshold stays closed");
        b.record("auto", Rung::Normal, Some(Rung::NoFastPaths));
        assert_eq!(b.entry_rung("auto"), Rung::RacesOn, "opens at highest rescue rung");
        assert_eq!(b.entry_rung("manual"), Rung::Normal, "other passes unaffected");
    }

    #[test]
    fn success_at_normal_closes() {
        let b = Breaker::new(2, Duration::from_secs(60));
        b.record("auto", Rung::Normal, Some(Rung::Serial));
        b.record("auto", Rung::Normal, None); // quarantine counts too
        assert_eq!(b.entry_rung("auto"), Rung::Serial);
        // A clean probe at normal closes the breaker.
        b.record("auto", Rung::Normal, Some(Rung::Normal));
        assert_eq!(b.entry_rung("auto"), Rung::Normal);
        let json = b.status_json();
        assert!(json.contains("\"auto\": {\"state\": \"closed\""), "{json}");
    }

    #[test]
    fn cooldown_lapse_half_opens() {
        let b = Breaker::new(1, Duration::ZERO);
        b.record("auto", Rung::Normal, Some(Rung::NoFastPaths));
        // Open with a zero cooldown is immediately lapsed: the next
        // request probes at normal.
        assert_eq!(b.entry_rung("auto"), Rung::Normal);
        // But the escalation streak is intact — one more failure
        // re-opens instantly.
        b.record("auto", Rung::Normal, Some(Rung::Serial));
        assert!(b.status_json().contains("\"consecutive\": 2"));
    }

    #[test]
    fn success_at_elevated_entry_does_not_close() {
        let b = Breaker::new(1, Duration::from_secs(60));
        b.record("auto", Rung::Normal, Some(Rung::NoFastPaths));
        assert_eq!(b.entry_rung("auto"), Rung::NoFastPaths);
        // While open, requests succeed at the rescue rung; that must
        // not reset the breaker (normal is still unproven).
        b.record("auto", Rung::NoFastPaths, Some(Rung::NoFastPaths));
        assert_eq!(b.entry_rung("auto"), Rung::NoFastPaths);
        let json = b.status_json();
        assert!(json.contains("\"state\": \"open\""), "{json}");
        assert!(json.contains("\"entry_rung\": \"no-fast-paths\""), "{json}");
    }
}
