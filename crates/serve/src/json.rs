//! JSON reader for request bodies.
//!
//! The parser itself lives in [`cedar_experiments::jsonio`] — it was
//! born here but moved down the stack when the campaign coordinator
//! needed to parse shard uploads and journal records with the same
//! code. This module re-exports it so `cedar_serve::json::Json` (and
//! `cedar_serve::Json`) keep working for every existing caller.

pub use cedar_experiments::jsonio::Json;
