//! Statement classification and recursive-descent parsing.
//!
//! Parsing happens in three stages:
//! 1. card assembly + tokenization (in [`crate::lexer`]), producing
//!    [`RawStmt`]s;
//! 2. a pre-pass that rewrites label-terminated `DO label ...` loops
//!    (including loops sharing one terminator label) into `END DO` form;
//! 3. recursive descent over the statement stream, with a Pratt-style
//!    expression parser inside each statement.

use crate::ast::*;
use crate::error::{Error, Result};
use crate::span::Span;
use crate::token::Tok;

/// One tokenized logical statement.
#[derive(Debug, Clone)]
pub struct RawStmt {
    /// Statement label, if any.
    pub label: Option<u32>,
    /// The statement's tokens.
    pub tokens: Vec<Tok>,
    /// Source line of the initial card.
    pub line: u32,
}

impl RawStmt {
    fn span(&self) -> Span {
        Span::new(self.line)
    }
    /// Canonical statement keyword, joining two-word forms
    /// (`GO TO` → `goto`, `END IF` → `endif`, `ELSE IF` → `elseif`,
    /// `END DO` → `enddo`, `END CDOALL` → `endcdoall`,
    /// `DOUBLE PRECISION` → `doubleprecision`,
    /// `PROCESS COMMON` → `processcommon`, `DO WHILE` → `dowhile`,
    /// `IMPLICIT NONE` → `implicitnone`).
    fn keyword(&self) -> Option<String> {
        let first = self.tokens.first()?.ident()?;
        let second = self.tokens.get(1).and_then(|t| t.ident());
        let joined = match (first, second) {
            ("go", Some("to")) => Some("goto"),
            ("end", Some(k2 @ ("if" | "do" | "where"))) => {
                return Some(format!("end{k2}"));
            }
            ("end", Some(k2)) if k2.ends_with("doall") || k2.ends_with("doacross") => {
                return Some(format!("end{k2}"));
            }
            ("else", Some("if")) => Some("elseif"),
            ("double", Some("precision")) => Some("doubleprecision"),
            ("process", Some("common")) => Some("processcommon"),
            ("implicit", Some("none")) => Some("implicitnone"),
            ("do", Some("while")) => Some("dowhile"),
            _ => None,
        };
        Some(joined.map(str::to_string).unwrap_or_else(|| first.to_string()))
    }

    /// True if the statement is an assignment (`name = ...` or
    /// `name(...) = ...`): an `=` at paren depth 0 with no depth-0 comma
    /// before it.
    fn looks_like_assignment(&self) -> bool {
        if !matches!(self.tokens.first(), Some(Tok::Ident(_))) {
            return false;
        }
        let mut depth = 0i32;
        for t in &self.tokens {
            match t {
                Tok::LParen => depth += 1,
                Tok::RParen => depth -= 1,
                Tok::Comma if depth == 0 => return false,
                Tok::Equals if depth == 0 => return true,
                _ => {}
            }
        }
        false
    }
}

const DECL_KEYWORDS: &[&str] = &[
    "integer",
    "real",
    "doubleprecision",
    "logical",
    "character",
    "dimension",
    "parameter",
    "common",
    "processcommon",
    "global",
    "cluster",
    "data",
    "external",
    "intrinsic",
    "save",
    "implicit",
    "implicitnone",
    "equivalence",
];

const PARALLEL_DO_KEYWORDS: &[(&str, LoopClass)] = &[
    ("cdoall", LoopClass::CDoall),
    ("sdoall", LoopClass::SDoall),
    ("xdoall", LoopClass::XDoall),
    ("doall", LoopClass::XDoall), // generic DOALL defaults to machine-wide
    ("cdoacross", LoopClass::CDoacross),
    ("sdoacross", LoopClass::SDoacross),
    ("xdoacross", LoopClass::XDoacross),
    ("doacross", LoopClass::CDoacross),
];

/// Parse the full statement stream into program units.
pub fn parse_units(raw: Vec<RawStmt>) -> Result<SourceFile> {
    let raw = rewrite_labeled_dos(raw)?;
    let mut p = Units { stmts: raw, pos: 0, recover: false, errors: Vec::new(), reported_eof: false };
    let mut units = Vec::new();
    while !p.at_end() {
        units.push(p.parse_unit()?);
    }
    Ok(SourceFile { units })
}

/// Parse the full statement stream with **statement-boundary recovery**:
/// instead of stopping at the first error, record a diagnostic, skip the
/// offending statement (the token stream is one `RawStmt` per logical
/// line, so any failure leaves the cursor at a statement boundary), and
/// keep parsing. A program-unit header that fails resynchronizes past
/// the unit's `END`.
///
/// Returns every unit that could be built plus all diagnostics in the
/// order they were detected. An empty error list means the result is
/// identical to what [`parse_units`] would return.
pub fn parse_units_recovering(raw: Vec<RawStmt>) -> (SourceFile, Vec<Error>) {
    let (raw, errors) = rewrite_labeled_dos_recovering(raw);
    let mut p = Units { stmts: raw, pos: 0, recover: true, errors, reported_eof: false };
    let mut units = Vec::new();
    while !p.at_end() {
        let start = p.pos;
        match p.parse_unit() {
            Ok(u) => units.push(u),
            Err(e) => {
                p.errors.push(e);
                // Resync: skip to just past the next top-level END so the
                // following unit gets a clean start.
                if p.pos == start {
                    p.pos += 1;
                }
                while let Some(st) = p.peek() {
                    let is_end = st.keyword().as_deref() == Some("end");
                    p.pos += 1;
                    if is_end {
                        break;
                    }
                }
            }
        }
    }
    (SourceFile { units }, p.errors)
}

/// Stage 2: turn `DO <label> v = ...` + terminator-labeled statement into
/// `DO v = ...` ... stmt ... `END DO`(s). Loops sharing one terminator
/// close together, the terminating statement executing inside the
/// innermost loop (F77 semantics).
fn rewrite_labeled_dos(raw: Vec<RawStmt>) -> Result<Vec<RawStmt>> {
    let (out, mut errors) = rewrite_labeled_dos_recovering(raw);
    match errors.is_empty() {
        true => Ok(out),
        false => Err(errors.remove(0)),
    }
}

/// Label-rewrite core shared by the strict and recovering parsers: every
/// structural problem becomes a diagnostic and the rewrite keeps going —
/// an out-of-range label is dropped, a `DO`-terminates-`DO` keeps both
/// loops open, and loops still open at end of file are closed with
/// synthesized `END DO`s so the statement parser sees balanced blocks.
fn rewrite_labeled_dos_recovering(raw: Vec<RawStmt>) -> (Vec<RawStmt>, Vec<Error>) {
    let mut out = Vec::with_capacity(raw.len());
    let mut errors = Vec::new();
    let mut stack: Vec<u32> = Vec::new();
    let mut last_line = 0u32;
    for mut st in raw {
        last_line = st.line;
        // `DO 100 I = ...` / `DO 100 WHILE (...)`?
        let is_do = st
            .tokens
            .first()
            .is_some_and(|t| t.is_kw("do"));
        if is_do {
            if let Some(Tok::Int(lbl)) = st.tokens.get(1) {
                match u32::try_from(*lbl) {
                    Ok(lbl) => {
                        stack.push(lbl);
                        st.tokens.remove(1);
                    }
                    Err(_) => {
                        errors.push(Error::structure(st.span(), "DO label out of range"));
                        st.tokens.remove(1);
                    }
                }
            }
        }
        let this_label = st.label;
        let span = st.span();
        let terminates = this_label.is_some_and(|l| stack.last() == Some(&l));
        if terminates {
            let l = this_label.unwrap();
            if st.tokens.first().is_some_and(|t| t.is_kw("do")) {
                errors.push(Error::structure(
                    span,
                    "a DO statement may not terminate another DO loop",
                ));
                out.push(st);
                continue;
            }
            out.push(st);
            while stack.last() == Some(&l) {
                stack.pop();
                out.push(RawStmt {
                    label: None,
                    tokens: vec![Tok::Ident("end".into()), Tok::Ident("do".into())],
                    line: span.line,
                });
            }
        } else {
            out.push(st);
        }
    }
    for l in stack.iter().rev() {
        errors.push(Error::structure(
            Span::NONE,
            format!("DO loop terminated by label {l} never closed"),
        ));
        out.push(RawStmt {
            label: None,
            tokens: vec![Tok::Ident("end".into()), Tok::Ident("do".into())],
            line: last_line,
        });
    }
    (out, errors)
}

struct Units {
    stmts: Vec<RawStmt>,
    pos: usize,
    /// Statement-boundary recovery: record diagnostics in `errors` and
    /// keep parsing instead of propagating the first failure.
    recover: bool,
    errors: Vec<Error>,
    /// An unexpected end of file is reported once, not once per open block.
    reported_eof: bool,
}

impl Units {
    fn at_end(&self) -> bool {
        self.pos >= self.stmts.len()
    }
    fn peek(&self) -> Option<&RawStmt> {
        self.stmts.get(self.pos)
    }
    fn next(&mut self) -> Option<RawStmt> {
        let s = self.stmts.get(self.pos).cloned();
        if s.is_some() {
            self.pos += 1;
        }
        s
    }

    fn parse_unit(&mut self) -> Result<ProgramUnit> {
        let head = self.peek().expect("parse_unit at end").clone();
        let span = head.span();
        let kw = head.keyword();
        let (kind, name, args) = match kw.as_deref() {
            Some("program") => {
                self.next();
                let mut t = TokParser::new(&head.tokens[1..], span);
                let name = t.expect_ident("program name")?;
                t.expect_end()?;
                (UnitKind::Program, name, Vec::new())
            }
            Some("subroutine") => {
                self.next();
                let mut t = TokParser::new(&head.tokens[1..], span);
                let name = t.expect_ident("subroutine name")?;
                let args = t.opt_dummy_args()?;
                t.expect_end()?;
                (UnitKind::Subroutine, name, args)
            }
            Some("function") => {
                self.next();
                let mut t = TokParser::new(&head.tokens[1..], span);
                let name = t.expect_ident("function name")?;
                let args = t.opt_dummy_args()?;
                t.expect_end()?;
                (UnitKind::Function(None), name, args)
            }
            Some(k) if type_keyword(k).is_some() && is_typed_function(&head) => {
                self.next();
                let ty = type_keyword(k).unwrap();
                let skip = if k == "doubleprecision" { 2 } else { 1 };
                let mut t = TokParser::new(&head.tokens[skip..], span);
                // Optional `*len` after the type.
                if t.eat(&Tok::Star) {
                    t.expect_int("type length")?;
                }
                t.expect_kw("function")?;
                let name = t.expect_ident("function name")?;
                let args = t.opt_dummy_args()?;
                t.expect_end()?;
                (UnitKind::Function(Some(ty)), name, args)
            }
            // A unit with no header is an unnamed main program.
            _ => (UnitKind::Program, "main".to_string(), Vec::new()),
        };

        let mut decls = Vec::new();
        while let Some(st) = self.peek() {
            match st.keyword().as_deref() {
                Some("format") => {
                    self.next();
                }
                Some(k) if DECL_KEYWORDS.contains(&k) => {
                    let st = self.next().unwrap();
                    match parse_decl(&st) {
                        Ok(d) => decls.push(d),
                        Err(e) if self.recover => self.errors.push(e),
                        Err(e) => return Err(e),
                    }
                }
                _ => break,
            }
        }

        let body = self.parse_block(&["end"])?;
        match self.next() {
            Some(st) if st.keyword().as_deref() == Some("end") => {}
            Some(st) => {
                let e = Error::structure(st.span(), "expected END of program unit");
                if !self.recover {
                    return Err(e);
                }
                self.errors.push(e);
            }
            None => {
                let e = Error::structure(span, "program unit not terminated by END");
                if !self.recover {
                    return Err(e);
                }
                // parse_block already reported the unexpected EOF.
                if !self.reported_eof {
                    self.errors.push(e);
                }
            }
        }
        Ok(ProgramUnit { kind, name, args, decls, body, span })
    }

    /// Parse statements until one whose keyword is in `terminators`
    /// (left unconsumed).
    fn parse_block(&mut self, terminators: &[&str]) -> Result<Vec<Stmt>> {
        let mut out = Vec::new();
        loop {
            let Some(st) = self.peek() else {
                let e = Error::structure(
                    Span::NONE,
                    format!("unexpected end of file; expected one of {terminators:?}"),
                );
                if !self.recover {
                    return Err(e);
                }
                // Report the truncation once, then hand back whatever the
                // block held so the enclosing construct can finish.
                if !self.reported_eof {
                    self.reported_eof = true;
                    self.errors.push(e);
                }
                return Ok(out);
            };
            if let Some(kw) = st.keyword() {
                if terminators.contains(&kw.as_str()) {
                    return Ok(out);
                }
                if kw == "format" {
                    self.next();
                    continue;
                }
            }
            // `parse_stmt` consumes whole `RawStmt`s, so after a failure
            // the cursor is already at the next statement boundary:
            // record the diagnostic and carry on from there.
            match self.parse_stmt() {
                Ok(s) => out.push(s),
                Err(e) if self.recover => self.errors.push(e),
                Err(e) => return Err(e),
            }
        }
    }

    fn parse_stmt(&mut self) -> Result<Stmt> {
        let st = self.next().expect("parse_stmt at end");
        let span = st.span();
        let label = st.label;
        // Keyword dispatch comes first: `DO I = 1, N` would otherwise
        // satisfy the assignment heuristic. Variables named after
        // statement keywords are not supported (documented restriction).
        let kw = st.keyword().unwrap_or_default();
        let kind = match kw.as_str() {
            "if" => self.parse_if(&st)?,
            "do" => self.parse_do(&st, LoopClass::Seq)?,
            "dowhile" => self.parse_do_while(&st)?,
            "$omp" => self.parse_omp(&st)?,
            "continue" | "return" | "stop" | "call" | "goto" | "where" | "print"
            | "write" | "read" | "assign" => parse_simple_stmt(&st)?,
            _ => {
                if let Some(&(_, class)) =
                    PARALLEL_DO_KEYWORDS.iter().find(|(k, _)| *k == kw)
                {
                    self.parse_do(&st, class)?
                } else if st.looks_like_assignment() {
                    parse_simple_stmt(&st)?
                } else {
                    return Err(Error::parse(
                        span,
                        format!("unrecognized statement starting with `{kw}`"),
                    ));
                }
            }
        };
        Ok(Stmt { span, label, kind })
    }

    /// `IF (cond) THEN` block form, or `IF (cond) stmt` logical form.
    fn parse_if(&mut self, st: &RawStmt) -> Result<StmtKind> {
        let span = st.span();
        let mut t = TokParser::new(&st.tokens[1..], span);
        t.expect(&Tok::LParen)?;
        let cond = t.expr()?;
        t.expect(&Tok::RParen)?;
        if t.eat_kw("then") {
            t.expect_end()?;
            let then_body = self.parse_block(&["elseif", "else", "endif"])?;
            let mut elifs = Vec::new();
            let mut else_body = Vec::new();
            loop {
                let nxt = self.next().ok_or_else(|| {
                    Error::structure(span, "block IF not terminated by END IF")
                })?;
                match nxt.keyword().as_deref() {
                    Some("elseif") => {
                        let mut t2 = TokParser::new(&nxt.tokens[2..], nxt.span());
                        t2.expect(&Tok::LParen)?;
                        let c = t2.expr()?;
                        t2.expect(&Tok::RParen)?;
                        t2.expect_kw("then")?;
                        t2.expect_end()?;
                        let b = self.parse_block(&["elseif", "else", "endif"])?;
                        elifs.push((c, b));
                    }
                    Some("else") => {
                        else_body = self.parse_block(&["endif"])?;
                        // In recovery mode a truncated file can end inside
                        // the ELSE block: parse_block already reported the
                        // EOF, so just close the IF with what we salvaged.
                        if let Some(endif) = self.next() {
                            debug_assert_eq!(endif.keyword().as_deref(), Some("endif"));
                        }
                        break;
                    }
                    Some("endif") => break,
                    _ => unreachable!("parse_block terminator invariant"),
                }
            }
            Ok(StmtKind::If { cond, then_body, elifs, else_body })
        } else {
            // Logical IF: the rest of the tokens form one simple statement.
            let rest = RawStmt {
                label: None,
                tokens: t.remaining().to_vec(),
                line: st.line,
            };
            if rest.tokens.is_empty() {
                return Err(Error::parse(span, "logical IF with no statement"));
            }
            if matches!(
                rest.keyword().as_deref(),
                Some("if" | "do" | "dowhile" | "else" | "endif" | "end")
            ) {
                return Err(Error::parse(
                    span,
                    "logical IF may only control a simple statement",
                ));
            }
            let inner = parse_simple_stmt(&rest)?;
            Ok(StmtKind::If {
                cond,
                then_body: vec![Stmt::new(span, inner)],
                elifs: Vec::new(),
                else_body: Vec::new(),
            })
        }
    }

    /// `DO v = e1, e2 [, e3]` in any scheduling class. Concurrent loops
    /// additionally allow loop-local declarations, a preamble before a
    /// `LOOP` marker, and (SDO/XDO) a postamble after `ENDLOOP`
    /// (paper Figure 3).
    fn parse_do(&mut self, st: &RawStmt, class: LoopClass) -> Result<StmtKind> {
        let span = st.span();
        let mut t = TokParser::new(&st.tokens[1..], span);
        let var = t.expect_ident("loop control variable")?;
        t.expect(&Tok::Equals)?;
        let start = t.expr()?;
        t.expect(&Tok::Comma)?;
        let end = t.expr()?;
        let step = if t.eat(&Tok::Comma) { Some(t.expr()?) } else { None };
        t.expect_end()?;

        let end_kw = format!("end{}", st.keyword().unwrap());
        let end_kws: &[&str] = &[&end_kw, "enddo"];

        let mut decls = Vec::new();
        let mut preamble = Vec::new();
        if class.is_parallel() {
            while let Some(nxt) = self.peek() {
                match nxt.keyword().as_deref() {
                    Some(k) if DECL_KEYWORDS.contains(&k) => {
                        let d = self.next().unwrap();
                        decls.push(parse_decl(&d)?);
                    }
                    _ => break,
                }
            }
            // Statements before an explicit LOOP marker form the preamble.
            if self.block_contains_marker("loop", end_kws) {
                preamble = self.parse_block(&["loop"])?;
                self.next(); // consume LOOP
            }
        }

        let (body, postamble);
        if class.is_parallel() && self.block_contains_marker("endloop", end_kws) {
            body = self.parse_block(&["endloop"])?;
            self.next(); // consume ENDLOOP
            postamble = self.parse_block(end_kws)?;
        } else {
            body = self.parse_block(end_kws)?;
            postamble = Vec::new();
        }
        self.next(); // consume END DO / END CDOALL / ...
        Ok(StmtKind::Do { class, var, start, end, step, decls, preamble, body, postamble })
    }

    /// `!$omp parallel do [private(...)] [reduction(op:x)]` (assembled by
    /// the lexer into a `$omp ...` statement), annotating the sequential
    /// `DO` on the next statement. Only the clause subset our OpenMP
    /// emission backend produces is accepted.
    fn parse_omp(&mut self, st: &RawStmt) -> Result<StmtKind> {
        let span = st.span();
        let mut t = TokParser::new(&st.tokens[1..], span);
        t.expect_kw("parallel")?;
        t.expect_kw("do")?;
        let mut privates = Vec::new();
        let mut reductions = Vec::new();
        while !t.at_end() {
            let clause = t.expect_ident("OpenMP clause name")?;
            match clause.as_str() {
                "private" => {
                    t.expect(&Tok::LParen)?;
                    loop {
                        privates.push(t.expect_ident("private variable")?);
                        if !t.eat(&Tok::Comma) {
                            break;
                        }
                    }
                    t.expect(&Tok::RParen)?;
                }
                "reduction" => {
                    t.expect(&Tok::LParen)?;
                    let op = if t.eat(&Tok::Plus) {
                        OmpRedOp::Add
                    } else if t.eat(&Tok::Star) {
                        OmpRedOp::Mul
                    } else if t.eat_kw("min") {
                        OmpRedOp::Min
                    } else if t.eat_kw("max") {
                        OmpRedOp::Max
                    } else {
                        return Err(Error::parse(
                            span,
                            format!("unsupported reduction operator {}", t.describe_next()),
                        ));
                    };
                    t.expect(&Tok::Colon)?;
                    reductions.push((op, t.expect_ident("reduction variable")?));
                    t.expect(&Tok::RParen)?;
                }
                other => {
                    return Err(Error::parse(
                        span,
                        format!("unsupported OpenMP clause `{other}`"),
                    ));
                }
            }
        }
        match self.peek().and_then(|n| n.keyword()) {
            Some(k) if k == "do" => {}
            _ => {
                return Err(Error::parse(
                    span,
                    "`!$omp parallel do` must be followed by a DO loop",
                ));
            }
        }
        let inner = self.parse_stmt()?;
        Ok(StmtKind::OmpParallelDo { privates, reductions, body: Box::new(inner) })
    }

    /// Does a `loop`/`endloop` marker occur in the current nesting level
    /// before the loop's END keyword? (Scan ahead tracking nesting.)
    fn block_contains_marker(&self, marker: &str, end_kws: &[&str]) -> bool {
        let mut depth = 0usize;
        for st in &self.stmts[self.pos..] {
            let Some(kw) = st.keyword() else { continue };
            let kw = kw.as_str();
            if depth == 0 {
                if kw == marker {
                    return true;
                }
                if end_kws.contains(&kw) {
                    return false;
                }
            }
            if kw == "do"
                || kw == "dowhile"
                || PARALLEL_DO_KEYWORDS.iter().any(|(k, _)| *k == kw)
            {
                depth += 1;
            } else if kw.starts_with("end") && kw != "end" && kw != "endif" && kw != "endwhere"
            {
                depth = depth.saturating_sub(1);
            }
        }
        false
    }

    fn parse_do_while(&mut self, st: &RawStmt) -> Result<StmtKind> {
        let span = st.span();
        let mut t = TokParser::new(&st.tokens[2..], span);
        t.expect(&Tok::LParen)?;
        let cond = t.expr()?;
        t.expect(&Tok::RParen)?;
        t.expect_end()?;
        let body = self.parse_block(&["enddo"])?;
        self.next();
        Ok(StmtKind::DoWhile { cond, body })
    }
}

fn is_typed_function(st: &RawStmt) -> bool {
    // `REAL FUNCTION F(...)`: look for `function` within the first few
    // tokens, followed by an identifier and `(` or end.
    st.tokens
        .iter()
        .take(5)
        .enumerate()
        .any(|(i, t)| t.is_kw("function") && matches!(st.tokens.get(i + 1), Some(Tok::Ident(_))))
}

fn type_keyword(k: &str) -> Option<TypeSpec> {
    match k {
        "integer" => Some(TypeSpec::Integer),
        "real" => Some(TypeSpec::Real),
        "doubleprecision" => Some(TypeSpec::Double),
        "logical" => Some(TypeSpec::Logical),
        "character" => Some(TypeSpec::Character),
        _ => None,
    }
}

/// Parse a simple (non-block) executable statement.
fn parse_simple_stmt(st: &RawStmt) -> Result<StmtKind> {
    let span = st.span();
    let is_simple_kw = matches!(
        st.keyword().as_deref(),
        Some(
            "continue" | "return" | "stop" | "call" | "goto" | "where" | "print" | "write"
                | "read" | "assign"
        )
    );
    if !is_simple_kw && st.looks_like_assignment() {
        let mut t = TokParser::new(&st.tokens, span);
        let lhs = t.designator()?;
        t.expect(&Tok::Equals)?;
        let rhs = t.expr()?;
        t.expect_end()?;
        return Ok(StmtKind::Assign { lhs, rhs });
    }
    let kw = st.keyword().unwrap_or_default();
    match kw.as_str() {
        "continue" => Ok(StmtKind::Continue),
        "return" => Ok(StmtKind::Return),
        "stop" => Ok(StmtKind::Stop),
        "call" => {
            let mut t = TokParser::new(&st.tokens[1..], span);
            let name = t.expect_ident("subroutine name")?;
            let mut args = Vec::new();
            if t.eat(&Tok::LParen) && !t.eat(&Tok::RParen) {
                loop {
                    args.push(t.expr()?);
                    if t.eat(&Tok::Comma) {
                        continue;
                    }
                    t.expect(&Tok::RParen)?;
                    break;
                }
            }
            t.expect_end()?;
            Ok(StmtKind::Call { name, args })
        }
        "goto" => {
            let skip = if st.tokens[0].is_kw("go") { 2 } else { 1 };
            let mut t = TokParser::new(&st.tokens[skip..], span);
            let target = t.expect_int("statement label")?;
            t.expect_end()?;
            let target = u32::try_from(target)
                .map_err(|_| Error::parse(span, "label out of range"))?;
            Ok(StmtKind::Goto(target))
        }
        "where" => {
            let mut t = TokParser::new(&st.tokens[1..], span);
            t.expect(&Tok::LParen)?;
            let mask = t.expr()?;
            t.expect(&Tok::RParen)?;
            let lhs = t.designator()?;
            t.expect(&Tok::Equals)?;
            let rhs = t.expr()?;
            t.expect_end()?;
            Ok(StmtKind::Where { mask, lhs, rhs })
        }
        "print" | "write" | "read" => {
            let io = match kw.as_str() {
                "print" => IoKind::Print,
                "write" => IoKind::Write,
                _ => IoKind::Read,
            };
            let mut t = TokParser::new(&st.tokens[1..], span);
            // Control list: `(unit, fmt)` for WRITE/READ, `*,`/`fmt,` for
            // PRINT. We skip the control part entirely.
            if t.eat(&Tok::LParen) {
                let mut depth = 1;
                while depth > 0 {
                    match t.next() {
                        Some(Tok::LParen) => depth += 1,
                        Some(Tok::RParen) => depth -= 1,
                        Some(_) => {}
                        None => {
                            return Err(Error::parse(span, "unterminated I/O control list"))
                        }
                    }
                }
            } else {
                // PRINT *, ... or PRINT 100, ...
                match t.next() {
                    Some(Tok::Star) | Some(Tok::Int(_)) => {}
                    _ => return Err(Error::parse(span, "expected format in PRINT")),
                }
                if !t.at_end() {
                    t.expect(&Tok::Comma)?;
                }
            }
            let mut args = Vec::new();
            if !t.at_end() {
                loop {
                    args.push(t.expr()?);
                    if t.eat(&Tok::Comma) {
                        continue;
                    }
                    break;
                }
            }
            t.expect_end()?;
            Ok(StmtKind::Io { kind: io, args })
        }
        "assign" => Err(Error::unsupported(span, "ASSIGN statement")),
        "" => Err(Error::parse(span, "empty statement")),
        other => Err(Error::parse(span, format!("unrecognized statement `{other}`"))),
    }
}

/// Parse one specification statement.
fn parse_decl(st: &RawStmt) -> Result<Decl> {
    let span = st.span();
    let kw = st.keyword().unwrap();
    let kind = match kw.as_str() {
        "integer" | "real" | "doubleprecision" | "logical" | "character" => {
            let mut ty = type_keyword(&kw).unwrap();
            let skip = if kw == "doubleprecision" { 2 } else { 1 };
            let mut t = TokParser::new(&st.tokens[skip..], span);
            if t.eat(&Tok::Star) {
                let len = t.expect_int("type length")?;
                ty = match (ty, len) {
                    (TypeSpec::Real, 8) => TypeSpec::Double,
                    (TypeSpec::Real, _) => TypeSpec::Real,
                    (TypeSpec::Integer, _) => TypeSpec::Integer,
                    (TypeSpec::Logical, _) => TypeSpec::Logical,
                    (other, _) => other,
                };
            }
            let entities = t.entity_list()?;
            t.expect_end()?;
            DeclKind::Type { ty, entities }
        }
        "dimension" => {
            let mut t = TokParser::new(&st.tokens[1..], span);
            let entities = t.entity_list()?;
            t.expect_end()?;
            DeclKind::Dimension { entities }
        }
        "parameter" => {
            let mut t = TokParser::new(&st.tokens[1..], span);
            t.expect(&Tok::LParen)?;
            let mut assigns = Vec::new();
            loop {
                let name = t.expect_ident("parameter name")?;
                t.expect(&Tok::Equals)?;
                assigns.push((name, t.expr()?));
                if t.eat(&Tok::Comma) {
                    continue;
                }
                break;
            }
            t.expect(&Tok::RParen)?;
            t.expect_end()?;
            DeclKind::Parameter { assigns }
        }
        "common" | "processcommon" => {
            let process = kw == "processcommon";
            let skip = if process { 2 } else { 1 };
            let mut t = TokParser::new(&st.tokens[skip..], span);
            let block = if t.eat(&Tok::Slash) {
                let name = t.expect_ident("common block name")?;
                t.expect(&Tok::Slash)?;
                Some(name)
            } else {
                // Blank common, written `//` (one Concat token) or with
                // the slashes omitted entirely.
                t.eat(&Tok::Concat);
                None
            };
            let entities = t.entity_list()?;
            t.expect_end()?;
            DeclKind::Common { block, entities, process }
        }
        "global" | "cluster" => {
            let vis = if kw == "global" { Visibility::Global } else { Visibility::Cluster };
            let mut t = TokParser::new(&st.tokens[1..], span);
            let names = t.name_list()?;
            t.expect_end()?;
            DeclKind::Visibility { vis, names }
        }
        "data" => {
            let mut t = TokParser::new(&st.tokens[1..], span);
            let mut names = Vec::new();
            let mut values = Vec::new();
            loop {
                loop {
                    names.push(t.designator()?);
                    if t.eat(&Tok::Comma) {
                        continue;
                    }
                    break;
                }
                t.expect(&Tok::Slash)?;
                loop {
                    values.push(t.data_value()?);
                    if t.eat(&Tok::Comma) {
                        continue;
                    }
                    break;
                }
                t.expect(&Tok::Slash)?;
                if t.eat(&Tok::Comma) || (!t.at_end() && matches!(t.peek(), Some(Tok::Ident(_))))
                {
                    continue;
                }
                break;
            }
            t.expect_end()?;
            DeclKind::Data { names, values }
        }
        "external" | "intrinsic" | "save" => {
            let mut t = TokParser::new(&st.tokens[1..], span);
            let names = t.name_list()?;
            t.expect_end()?;
            match kw.as_str() {
                "external" => DeclKind::External(names),
                "intrinsic" => DeclKind::Intrinsic(names),
                _ => DeclKind::Save(names),
            }
        }
        "implicitnone" => DeclKind::ImplicitNone,
        "implicit" => {
            return Err(Error::unsupported(
                span,
                "IMPLICIT letter ranges (use IMPLICIT NONE or default rules)",
            ))
        }
        "equivalence" => {
            let mut t = TokParser::new(&st.tokens[1..], span);
            let mut groups = Vec::new();
            loop {
                t.expect(&Tok::LParen)?;
                let mut g = Vec::new();
                loop {
                    g.push(t.designator()?);
                    if t.eat(&Tok::Comma) {
                        continue;
                    }
                    break;
                }
                t.expect(&Tok::RParen)?;
                groups.push(g);
                if t.eat(&Tok::Comma) {
                    continue;
                }
                break;
            }
            t.expect_end()?;
            DeclKind::Equivalence(groups)
        }
        other => return Err(Error::parse(span, format!("unrecognized declaration `{other}`"))),
    };
    Ok(Decl { span, kind })
}

/// Token-level parser for the inside of one statement.
struct TokParser<'a> {
    toks: &'a [Tok],
    pos: usize,
    span: Span,
}

impl<'a> TokParser<'a> {
    fn new(toks: &'a [Tok], span: Span) -> Self {
        TokParser { toks, pos: 0, span }
    }
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }
    fn peek2(&self) -> Option<&Tok> {
        self.toks.get(self.pos + 1)
    }
    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }
    fn at_end(&self) -> bool {
        self.pos >= self.toks.len()
    }
    fn remaining(&self) -> &'a [Tok] {
        &self.toks[self.pos..]
    }
    fn eat(&mut self, t: &Tok) -> bool {
        if self.peek() == Some(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }
    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek().is_some_and(|t| t.is_kw(kw)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }
    fn expect(&mut self, t: &Tok) -> Result<()> {
        if self.eat(t) {
            Ok(())
        } else {
            Err(Error::parse(
                self.span,
                format!("expected `{t}`, found {}", self.describe_next()),
            ))
        }
    }
    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(Error::parse(
                self.span,
                format!("expected `{kw}`, found {}", self.describe_next()),
            ))
        }
    }
    fn expect_ident(&mut self, what: &str) -> Result<String> {
        match self.next() {
            Some(Tok::Ident(s)) => Ok(s),
            _ => Err(Error::parse(self.span, format!("expected {what}"))),
        }
    }
    fn expect_int(&mut self, what: &str) -> Result<i64> {
        match self.next() {
            Some(Tok::Int(v)) => Ok(v),
            _ => Err(Error::parse(self.span, format!("expected {what}"))),
        }
    }
    fn expect_end(&mut self) -> Result<()> {
        if self.at_end() {
            Ok(())
        } else {
            Err(Error::parse(
                self.span,
                format!("trailing tokens: {}", self.describe_next()),
            ))
        }
    }
    fn describe_next(&self) -> String {
        match self.peek() {
            Some(t) => format!("`{t}`"),
            None => "end of statement".to_string(),
        }
    }

    /// `( a, b, c )` dummy-argument list; absent parens mean no args.
    fn opt_dummy_args(&mut self) -> Result<Vec<String>> {
        let mut args = Vec::new();
        if self.eat(&Tok::LParen) && !self.eat(&Tok::RParen) {
            loop {
                args.push(self.expect_ident("dummy argument")?);
                if self.eat(&Tok::Comma) {
                    continue;
                }
                self.expect(&Tok::RParen)?;
                break;
            }
        }
        Ok(args)
    }

    fn name_list(&mut self) -> Result<Vec<String>> {
        let mut names = Vec::new();
        loop {
            names.push(self.expect_ident("name")?);
            if self.eat(&Tok::Comma) {
                continue;
            }
            break;
        }
        Ok(names)
    }

    /// `name` or `name(dims)` entities, comma-separated.
    fn entity_list(&mut self) -> Result<Vec<Entity>> {
        let mut out = Vec::new();
        loop {
            let name = self.expect_ident("variable name")?;
            let mut dims = Vec::new();
            if self.eat(&Tok::LParen) {
                loop {
                    dims.push(self.dim_bound()?);
                    if self.eat(&Tok::Comma) {
                        continue;
                    }
                    self.expect(&Tok::RParen)?;
                    break;
                }
            }
            out.push(Entity { name, dims });
            if self.eat(&Tok::Comma) {
                continue;
            }
            break;
        }
        Ok(out)
    }

    /// `upper`, `lower:upper`, or `*`.
    fn dim_bound(&mut self) -> Result<DimBound> {
        if self.eat(&Tok::Star) {
            return Ok(DimBound { lower: None, upper: None });
        }
        let first = self.expr()?;
        if self.eat(&Tok::Colon) {
            if self.eat(&Tok::Star) {
                Ok(DimBound { lower: Some(first), upper: None })
            } else {
                let upper = self.expr()?;
                Ok(DimBound { lower: Some(first), upper: Some(upper) })
            }
        } else {
            Ok(DimBound { lower: None, upper: Some(first) })
        }
    }

    /// `[count *] constant` in a DATA value list.
    fn data_value(&mut self) -> Result<(u32, Expr)> {
        if let (Some(Tok::Int(n)), Some(Tok::Star)) = (self.peek(), self.peek2()) {
            let n = *n;
            self.next();
            self.next();
            let v = self.constant()?;
            let n = u32::try_from(n)
                .map_err(|_| Error::parse(self.span, "DATA repeat count out of range"))?;
            return Ok((n, v));
        }
        Ok((1, self.constant()?))
    }

    fn constant(&mut self) -> Result<Expr> {
        let neg = self.eat(&Tok::Minus);
        if !neg {
            self.eat(&Tok::Plus);
        }
        let e = match self.next() {
            Some(Tok::Int(v)) => Expr::Int(v),
            Some(Tok::Real { value, is_double }) => Expr::Real { value, is_double },
            Some(Tok::Logical(b)) => Expr::Logical(b),
            Some(Tok::Str(s)) => Expr::Str(s),
            _ => return Err(Error::parse(self.span, "expected constant")),
        };
        Ok(if neg { Expr::Un(UnOp::Neg, Box::new(e)) } else { e })
    }

    /// A designator: `name` or `name(args)` — the only valid assignment
    /// targets and DATA/EQUIVALENCE items.
    fn designator(&mut self) -> Result<Expr> {
        let name = self.expect_ident("variable")?;
        if self.peek() == Some(&Tok::LParen) {
            self.next();
            let args = self.arg_list()?;
            Ok(Expr::NameArgs { name, args })
        } else {
            Ok(Expr::Name(name))
        }
    }

    // ----- expression grammar (F77 precedence) -----
    // expr        := equiv
    // equiv       := disj { (.EQV.|.NEQV.) disj }
    // disj        := conj { .OR. conj }
    // conj        := negation { .AND. negation }
    // negation    := [.NOT.] relation
    // relation    := concat [ relop concat ]
    // concat      := additive { // additive }
    // additive    := [+|-] term { (+|-) term }
    // term        := factor { (*|/) factor }
    // factor      := primary [ ** factor ]      (right associative)

    pub fn expr(&mut self) -> Result<Expr> {
        let mut l = self.disj()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Eqv) => BinOp::Eqv,
                Some(Tok::Neqv) => BinOp::Neqv,
                _ => break,
            };
            self.next();
            let r = self.disj()?;
            l = Expr::bin(op, l, r);
        }
        Ok(l)
    }

    fn disj(&mut self) -> Result<Expr> {
        let mut l = self.conj()?;
        while self.eat(&Tok::Or) {
            let r = self.conj()?;
            l = Expr::bin(BinOp::Or, l, r);
        }
        Ok(l)
    }

    fn conj(&mut self) -> Result<Expr> {
        let mut l = self.negation()?;
        while self.eat(&Tok::And) {
            let r = self.negation()?;
            l = Expr::bin(BinOp::And, l, r);
        }
        Ok(l)
    }

    fn negation(&mut self) -> Result<Expr> {
        if self.eat(&Tok::Not) {
            let e = self.negation()?;
            return Ok(Expr::Un(UnOp::Not, Box::new(e)));
        }
        self.relation()
    }

    fn relation(&mut self) -> Result<Expr> {
        let l = self.concat()?;
        let op = match self.peek() {
            Some(Tok::Eq) => BinOp::Eq,
            Some(Tok::Ne) => BinOp::Ne,
            Some(Tok::Lt) => BinOp::Lt,
            Some(Tok::Le) => BinOp::Le,
            Some(Tok::Gt) => BinOp::Gt,
            Some(Tok::Ge) => BinOp::Ge,
            _ => return Ok(l),
        };
        self.next();
        let r = self.concat()?;
        Ok(Expr::bin(op, l, r))
    }

    fn concat(&mut self) -> Result<Expr> {
        let mut l = self.additive()?;
        while self.eat(&Tok::Concat) {
            let r = self.additive()?;
            l = Expr::bin(BinOp::Concat, l, r);
        }
        Ok(l)
    }

    fn additive(&mut self) -> Result<Expr> {
        let mut l = if self.eat(&Tok::Minus) {
            Expr::Un(UnOp::Neg, Box::new(self.term()?))
        } else if self.eat(&Tok::Plus) {
            Expr::Un(UnOp::Plus, Box::new(self.term()?))
        } else {
            self.term()?
        };
        loop {
            let op = match self.peek() {
                Some(Tok::Plus) => BinOp::Add,
                Some(Tok::Minus) => BinOp::Sub,
                _ => break,
            };
            self.next();
            let r = self.term()?;
            l = Expr::bin(op, l, r);
        }
        Ok(l)
    }

    fn term(&mut self) -> Result<Expr> {
        let mut l = self.factor()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Star) => BinOp::Mul,
                Some(Tok::Slash) => BinOp::Div,
                _ => break,
            };
            self.next();
            let r = self.factor()?;
            l = Expr::bin(op, l, r);
        }
        Ok(l)
    }

    fn factor(&mut self) -> Result<Expr> {
        let base = self.primary()?;
        if self.eat(&Tok::Pow) {
            // `**` is right-associative; `-` binds the exponent:
            // `a ** -b` is legal in most F77 compilers' extension set.
            let exp = if self.eat(&Tok::Minus) {
                Expr::Un(UnOp::Neg, Box::new(self.factor()?))
            } else {
                self.factor()?
            };
            return Ok(Expr::bin(BinOp::Pow, base, exp));
        }
        Ok(base)
    }

    fn primary(&mut self) -> Result<Expr> {
        match self.next() {
            Some(Tok::Int(v)) => Ok(Expr::Int(v)),
            Some(Tok::Real { value, is_double }) => Ok(Expr::Real { value, is_double }),
            Some(Tok::Logical(b)) => Ok(Expr::Logical(b)),
            Some(Tok::Str(s)) => Ok(Expr::Str(s)),
            Some(Tok::LParen) => {
                let e = self.expr()?;
                self.expect(&Tok::RParen)?;
                Ok(e)
            }
            Some(Tok::Ident(name)) => {
                if self.peek() == Some(&Tok::LParen) {
                    self.next();
                    let args = self.arg_list()?;
                    Ok(Expr::NameArgs { name, args })
                } else {
                    Ok(Expr::Name(name))
                }
            }
            other => Err(Error::parse(
                self.span,
                format!(
                    "expected expression, found {}",
                    other.map_or("end of statement".into(), |t| format!("`{t}`"))
                ),
            )),
        }
    }

    /// Argument list after a consumed `(`; consumes the closing `)`.
    /// Items may be expressions or array sections.
    fn arg_list(&mut self) -> Result<Vec<ArgExpr>> {
        let mut args = Vec::new();
        if self.eat(&Tok::RParen) {
            return Ok(args);
        }
        loop {
            args.push(self.arg_item()?);
            if self.eat(&Tok::Comma) {
                continue;
            }
            self.expect(&Tok::RParen)?;
            break;
        }
        Ok(args)
    }

    fn arg_item(&mut self) -> Result<ArgExpr> {
        // `:`-led section.
        if self.eat(&Tok::Colon) {
            return self.finish_section(None);
        }
        let first = self.expr()?;
        if self.eat(&Tok::Colon) {
            return self.finish_section(Some(first));
        }
        Ok(ArgExpr::Expr(first))
    }

    /// After `lower? :` — parse optional upper and optional `: stride`.
    fn finish_section(&mut self, lower: Option<Expr>) -> Result<ArgExpr> {
        let upper = match self.peek() {
            Some(Tok::Comma) | Some(Tok::RParen) | Some(Tok::Colon) | None => None,
            _ => Some(self.expr()?),
        };
        let stride = if self.eat(&Tok::Colon) { Some(self.expr()?) } else { None };
        Ok(ArgExpr::Section { lower, upper, stride })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{parse_free, parse_source};

    fn stmt1(src: &str) -> Stmt {
        let f = parse_free(&format!("subroutine t\n{src}\nend\n")).unwrap();
        f.units[0].body[0].clone()
    }

    #[test]
    fn omp_parallel_do_with_clauses() {
        let src = "      subroutine s(a, n, t)\n      real a(n), t\n\
                   !$omp parallel do private(x)\n!$omp&  reduction(+:t)\n\
                   \x20     do i = 1, n\n      t = t + a(i)\n\
                   \x20     end do\n      end\n";
        let f = parse_source(src).unwrap();
        let StmtKind::OmpParallelDo { privates, reductions, body } =
            &f.units[0].body[0].kind
        else {
            panic!("{:?}", f.units[0].body[0].kind)
        };
        assert_eq!(privates, &["x"]);
        assert_eq!(reductions, &[(OmpRedOp::Add, "t".to_string())]);
        assert!(matches!(body.kind, StmtKind::Do { class: LoopClass::Seq, .. }));
    }

    #[test]
    fn omp_directive_parses_in_free_form_too() {
        let f = parse_free(
            "subroutine s(a, n)\nreal a(n)\n!$omp parallel do\ndo i = 1, n\n\
             a(i) = 0.0\nend do\nend\n",
        )
        .unwrap();
        assert!(matches!(
            f.units[0].body[0].kind,
            StmtKind::OmpParallelDo { .. }
        ));
    }

    #[test]
    fn omp_reduction_operators() {
        for (spelling, op) in
            [("*", OmpRedOp::Mul), ("min", OmpRedOp::Min), ("max", OmpRedOp::Max)]
        {
            let f = parse_free(&format!(
                "subroutine s(a, n, t)\nreal a(n), t\n\
                 !$omp parallel do reduction({spelling}:t)\ndo i = 1, n\n\
                 t = t + a(i)\nend do\nend\n"
            ))
            .unwrap();
            let StmtKind::OmpParallelDo { reductions, .. } = &f.units[0].body[0].kind
            else {
                panic!()
            };
            assert_eq!(reductions, &[(op, "t".to_string())]);
        }
    }

    #[test]
    fn omp_without_do_is_an_error() {
        let e = parse_free(
            "subroutine s(x)\n!$omp parallel do\nx = 1.0\nend\n",
        );
        assert!(e.is_err());
    }

    #[test]
    fn omp_unknown_clause_is_an_error() {
        let e = parse_free(
            "subroutine s(a, n)\nreal a(n)\n!$omp parallel do schedule(static)\n\
             do i = 1, n\na(i) = 0.0\nend do\nend\n",
        );
        assert!(e.is_err());
    }

    #[test]
    fn assignment_precedence() {
        let s = stmt1("x = a + b * c ** 2");
        let StmtKind::Assign { rhs, .. } = &s.kind else { panic!() };
        // a + (b * (c ** 2))
        let Expr::Bin(BinOp::Add, _, r) = rhs else { panic!("{rhs:?}") };
        let Expr::Bin(BinOp::Mul, _, rr) = &**r else { panic!() };
        assert!(matches!(&**rr, Expr::Bin(BinOp::Pow, _, _)));
    }

    #[test]
    fn unary_minus_binds_whole_term() {
        let s = stmt1("x = -a * b");
        let StmtKind::Assign { rhs, .. } = &s.kind else { panic!() };
        assert!(matches!(rhs, Expr::Un(UnOp::Neg, _)));
    }

    #[test]
    fn power_right_associative() {
        let s = stmt1("x = a ** b ** c");
        let StmtKind::Assign { rhs, .. } = &s.kind else { panic!() };
        let Expr::Bin(BinOp::Pow, _, r) = rhs else { panic!() };
        assert!(matches!(&**r, Expr::Bin(BinOp::Pow, _, _)));
    }

    #[test]
    fn labeled_do_continue() {
        let src = "\
subroutine s(a, n)
real a(n)
do 10 i = 1, n
a(i) = 0.0
10 continue
end
";
        let f = parse_free(src).unwrap();
        let StmtKind::Do { body, class, var, .. } = &f.units[0].body[0].kind else {
            panic!()
        };
        assert_eq!(*class, LoopClass::Seq);
        assert_eq!(var, "i");
        // body = assignment + the terminating CONTINUE
        assert_eq!(body.len(), 2);
        assert!(matches!(body[1].kind, StmtKind::Continue));
    }

    #[test]
    fn shared_do_termination_label() {
        let src = "\
subroutine s(a, n, m)
real a(n, m)
do 100 j = 1, m
do 100 i = 1, n
100 a(i, j) = 0.0
end
";
        let f = parse_free(src).unwrap();
        let StmtKind::Do { body: outer, .. } = &f.units[0].body[0].kind else { panic!() };
        assert_eq!(outer.len(), 1);
        let StmtKind::Do { body: inner, .. } = &outer[0].kind else { panic!() };
        assert_eq!(inner.len(), 1);
        assert!(matches!(inner[0].kind, StmtKind::Assign { .. }));
    }

    #[test]
    fn block_if_elseif_else() {
        let src = "\
subroutine s(x, y)
if (x .gt. 0.0) then
y = 1.0
else if (x .lt. 0.0) then
y = -1.0
else
y = 0.0
end if
end
";
        let f = parse_free(src).unwrap();
        let StmtKind::If { then_body, elifs, else_body, .. } = &f.units[0].body[0].kind
        else {
            panic!()
        };
        assert_eq!(then_body.len(), 1);
        assert_eq!(elifs.len(), 1);
        assert_eq!(else_body.len(), 1);
    }

    #[test]
    fn logical_if() {
        let s = stmt1("if (x .gt. big) big = x");
        let StmtKind::If { then_body, elifs, else_body, .. } = &s.kind else { panic!() };
        assert_eq!(then_body.len(), 1);
        assert!(elifs.is_empty() && else_body.is_empty());
    }

    #[test]
    fn cedar_parallel_loop_with_locals_and_preamble() {
        let src = "\
subroutine s(a, b, n)
global a, b, n
xdoall i = 1, n, 32
integer upper
real t(32)
loop
upper = min(i + 31, n)
t(1:upper-i+1) = b(i:upper)
a(i:upper) = t(1:upper-i+1)
endloop
end xdoall
end
";
        let f = parse_free(src).unwrap();
        let unit = &f.units[0];
        assert!(matches!(
            unit.decls[0].kind,
            DeclKind::Visibility { vis: Visibility::Global, .. }
        ));
        let StmtKind::Do { class, decls, preamble, body, postamble, step, .. } =
            &unit.body[0].kind
        else {
            panic!()
        };
        assert_eq!(*class, LoopClass::XDoall);
        assert_eq!(decls.len(), 2);
        assert!(preamble.is_empty());
        assert_eq!(body.len(), 3);
        assert!(postamble.is_empty());
        assert!(step.is_some());
    }

    #[test]
    fn doacross_with_cascade_sync() {
        let src = "\
subroutine s(a, b, c, d, e, f, g, h, n)
cdoacross i = 1, n
c(i) = d(i) + e(i)
g(i) = f(i) * h(i)
call await(1, 1)
b(i) = a(i) + b(i - 1)
call advance(1)
end cdoacross
end
";
        let f = parse_free(src).unwrap();
        let StmtKind::Do { class, body, .. } = &f.units[0].body[0].kind else { panic!() };
        assert_eq!(*class, LoopClass::CDoacross);
        assert_eq!(body.len(), 5);
        assert!(matches!(&body[2].kind, StmtKind::Call { name, .. } if name == "await"));
    }

    #[test]
    fn common_blocks_and_parameter() {
        let src = "\
subroutine s
parameter (n = 100)
common /blk/ a(n), b
process common /gbl/ c(n)
a(1) = b + c(1)
end
";
        let f = parse_free(src).unwrap();
        let d = &f.units[0].decls;
        assert!(matches!(&d[0].kind, DeclKind::Parameter { assigns } if assigns.len() == 1));
        assert!(
            matches!(&d[1].kind, DeclKind::Common { block: Some(b), process: false, .. } if b == "blk")
        );
        assert!(matches!(&d[2].kind, DeclKind::Common { process: true, .. }));
    }

    #[test]
    fn data_statement_with_repeat() {
        let src = "subroutine s\nreal x(4), y\ndata x /3*0.0, 1.0/, y /2.5/\nx(1) = y\nend\n";
        let f = parse_free(src).unwrap();
        let DeclKind::Data { names, values } = &f.units[0].decls[1].kind else { panic!() };
        assert_eq!(names.len(), 2);
        assert_eq!(values[0].0, 3);
        assert_eq!(values.len(), 3);
    }

    #[test]
    fn where_statement() {
        let s = stmt1("where (a(1:n) .gt. 0.0) b(1:n) = sqrt(a(1:n))");
        assert!(matches!(s.kind, StmtKind::Where { .. }));
    }

    #[test]
    fn do_while() {
        let src = "subroutine s(x)\ndo while (x .gt. 1.0)\nx = x / 2.0\nend do\nend\n";
        let f = parse_free(src).unwrap();
        assert!(matches!(f.units[0].body[0].kind, StmtKind::DoWhile { .. }));
    }

    #[test]
    fn typed_function_header() {
        let src = "\
real function dot(a, b, n)
real a(n), b(n)
dot = 0.0
do 10 i = 1, n
10 dot = dot + a(i) * b(i)
end
";
        let f = parse_free(src).unwrap();
        assert_eq!(f.units[0].kind, UnitKind::Function(Some(TypeSpec::Real)));
        assert_eq!(f.units[0].args, vec!["a", "b", "n"]);
    }

    #[test]
    fn io_statements_parse_loosely() {
        let src = "program p\nwrite (6, 100) x, y\nprint *, z\nend\n";
        let f = parse_free(src).unwrap();
        assert!(matches!(
            f.units[0].body[0].kind,
            StmtKind::Io { kind: IoKind::Write, .. }
        ));
        assert!(matches!(
            f.units[0].body[1].kind,
            StmtKind::Io { kind: IoKind::Print, .. }
        ));
    }

    #[test]
    fn multiple_units() {
        let src = "program p\ncall s\nend\nsubroutine s\nreturn\nend\n";
        let f = parse_free(src).unwrap();
        assert_eq!(f.units.len(), 2);
        assert!(f.unit("s").is_some());
    }

    #[test]
    fn array_sections() {
        let s = stmt1("a(i:j:2) = b(:, k)");
        let StmtKind::Assign { lhs, rhs } = &s.kind else { panic!() };
        let Expr::NameArgs { args, .. } = lhs else { panic!() };
        assert!(matches!(
            &args[0],
            ArgExpr::Section { lower: Some(_), upper: Some(_), stride: Some(_) }
        ));
        let Expr::NameArgs { args, .. } = rhs else { panic!() };
        assert!(matches!(
            &args[0],
            ArgExpr::Section { lower: None, upper: None, stride: None }
        ));
        assert!(matches!(&args[1], ArgExpr::Expr(_)));
    }

    #[test]
    fn unclosed_do_is_error() {
        let src = "subroutine s\ndo i = 1, 10\nx = 1\nend\n";
        assert!(parse_free(src).is_err());
    }

    #[test]
    fn fixed_form_full_unit() {
        let src = "
      SUBROUTINE DAXPY(N, A, X, Y)
      INTEGER N
      REAL A, X(N), Y(N)
      DO 10 I = 1, N
         Y(I) = Y(I) + A * X(I)
   10 CONTINUE
      RETURN
      END
";
        let f = parse_source(src).unwrap();
        assert_eq!(f.units[0].name, "daxpy");
        assert_eq!(f.units[0].args.len(), 4);
    }

    #[test]
    fn goto_parses() {
        let s = stmt1("go to 100");
        assert!(matches!(s.kind, StmtKind::Goto(100)));
    }

    #[test]
    fn arithmetic_if_is_unsupported() {
        // `IF (x) 10, 20, 30` — logical-IF path will fail to parse the
        // label list as a statement.
        let src = "subroutine s(x)\nif (x) 10, 20, 30\nend\n";
        assert!(parse_free(src).is_err());
    }
}
