//! Line assembly (fixed-form card handling, continuation, labels) and
//! statement tokenization.

use crate::error::{Error, Result};
use crate::span::Span;
use crate::token::Tok;

/// One logical statement line after card assembly: label (if any), the
/// statement text with continuations joined, and the line number of the
/// initial card.
#[derive(Debug, Clone)]
pub struct LogicalLine {
    /// Statement label from columns 1–5, if any.
    pub label: Option<u32>,
    /// Statement text with continuations joined.
    pub text: String,
    /// Line number of the initial card.
    pub line: u32,
}

/// Assemble fixed-form cards into logical lines.
///
/// * Column 1 `C`, `c`, `*`, or `!` anywhere outside a character context
///   starts a comment.
/// * Columns 1–5 hold an optional numeric statement label.
/// * A non-blank, non-`0` character in column 6 marks a continuation of
///   the previous statement.
/// * Unlike strict F77 we do **not** discard text beyond column 72; the
///   workloads are authored within the limit and hand-edited files often
///   drift past it harmlessly.
pub fn assemble_fixed_form(src: &str) -> Result<Vec<LogicalLine>> {
    let mut out: Vec<LogicalLine> = Vec::new();
    for (idx, raw) in src.lines().enumerate() {
        let lineno = (idx + 1) as u32;
        let line = raw.trim_end();
        if line.is_empty() {
            continue;
        }
        let bytes = line.as_bytes();
        // OpenMP conditional-compilation sentinel: `!$omp` in columns
        // 1–5 makes the card a directive, not a comment; `!$omp&` (an
        // `&` in column 6) continues the previous directive line.
        if line.get(..5).is_some_and(|p| p.eq_ignore_ascii_case("!$omp")) && line.len() > 5 {
            let after = &line[5..];
            if let Some(cont) = after.strip_prefix('&') {
                let rest = strip_inline_comment(cont);
                match out.last_mut() {
                    Some(prev) => {
                        prev.text.push(' ');
                        prev.text.push_str(rest.trim());
                        continue;
                    }
                    None => {
                        return Err(Error::structure(
                            Span::new(lineno),
                            "`!$omp&` continuation with no directive to continue",
                        ))
                    }
                }
            }
            let text = format!("$omp {}", strip_inline_comment(after).trim());
            out.push(LogicalLine { label: None, text, line: lineno });
            continue;
        }
        match bytes[0] {
            b'C' | b'c' | b'*' | b'!' => continue,
            _ => {}
        }
        // Continuation card?
        if bytes.len() > 6 {
            let c6 = bytes[5];
            let head = &line[..5];
            if c6 != b' ' && c6 != b'0' && head.trim().is_empty() {
                let rest = strip_inline_comment(&line[6..]);
                match out.last_mut() {
                    Some(prev) => {
                        prev.text.push(' ');
                        prev.text.push_str(rest.trim());
                        continue;
                    }
                    None => {
                        return Err(Error::structure(
                            Span::new(lineno),
                            "continuation card with no statement to continue",
                        ))
                    }
                }
            }
        }
        // Initial card: split label field / statement field.
        let (label_field, stmt_field) = if line.len() > 6 {
            (&line[..5], &line[6..])
        } else if line.len() >= 5 {
            (&line[..5], "")
        } else {
            (line, "")
        };
        let label_txt = label_field.trim();
        let label = if label_txt.is_empty() {
            None
        } else {
            Some(label_txt.parse::<u32>().map_err(|_| {
                Error::lex(
                    Span::new(lineno),
                    format!("label field `{label_txt}` is not a number"),
                )
            })?)
        };
        let text = strip_inline_comment(stmt_field).trim().to_string();
        if text.is_empty() && label.is_none() {
            continue;
        }
        out.push(LogicalLine { label, text, line: lineno });
    }
    Ok(out)
}

/// Assemble free-form lines: `!` comments, a leading integer is a label,
/// a trailing `&` continues onto the next line.
pub fn assemble_free_form(src: &str) -> Result<Vec<LogicalLine>> {
    let mut out: Vec<LogicalLine> = Vec::new();
    let mut pending_cont = false;
    for (idx, raw) in src.lines().enumerate() {
        let lineno = (idx + 1) as u32;
        let t = raw.trim_start();
        // `!$omp` sentinel (directive, not comment) — same as fixed form;
        // a trailing `&` continues it through the ordinary mechanism.
        let line = if t.get(..5).is_some_and(|p| p.eq_ignore_ascii_case("!$omp"))
            && t.len() > 5
        {
            format!("$omp {}", strip_inline_comment(&t[5..]).trim())
        } else {
            strip_inline_comment(raw).trim().to_string()
        };
        if line.is_empty() {
            pending_cont = false;
            continue;
        }
        let (body, continues) = match line.strip_suffix('&') {
            Some(b) => (b.trim_end().to_string(), true),
            None => (line, false),
        };
        if pending_cont {
            let prev = out.last_mut().expect("continuation without previous line");
            prev.text.push(' ');
            prev.text.push_str(&body);
        } else {
            // Leading integer token is a statement label.
            let trimmed = body.trim_start();
            let digits: String = trimmed.chars().take_while(|c| c.is_ascii_digit()).collect();
            let (label, text) = if !digits.is_empty()
                && trimmed[digits.len()..].starts_with([' ', '\t'])
            {
                (
                    Some(digits.parse::<u32>().map_err(|_| {
                        Error::lex(Span::new(lineno), "label too large")
                    })?),
                    trimmed[digits.len()..].trim().to_string(),
                )
            } else {
                (None, trimmed.to_string())
            };
            out.push(LogicalLine { label, text, line: lineno });
        }
        pending_cont = continues;
    }
    Ok(out)
}

/// Remove a `!` comment that is not inside a character literal.
fn strip_inline_comment(s: &str) -> &str {
    let mut in_str: Option<char> = None;
    for (i, c) in s.char_indices() {
        match in_str {
            Some(q) => {
                if c == q {
                    in_str = None;
                }
            }
            None => match c {
                '\'' | '"' => in_str = Some(c),
                '!' => return &s[..i],
                _ => {}
            },
        }
    }
    s
}

/// Tokenize one assembled statement.
pub fn tokenize(text: &str, line: u32) -> Result<Vec<Tok>> {
    let span = Span::new(line);
    let b = text.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0usize;
    while i < b.len() {
        let c = b[i] as char;
        match c {
            ' ' | '\t' => i += 1,
            '(' => {
                toks.push(Tok::LParen);
                i += 1;
            }
            ')' => {
                toks.push(Tok::RParen);
                i += 1;
            }
            ',' => {
                toks.push(Tok::Comma);
                i += 1;
            }
            '=' => {
                toks.push(Tok::Equals);
                i += 1;
            }
            '+' => {
                toks.push(Tok::Plus);
                i += 1;
            }
            '-' => {
                toks.push(Tok::Minus);
                i += 1;
            }
            ':' => {
                toks.push(Tok::Colon);
                i += 1;
            }
            '*' => {
                if b.get(i + 1) == Some(&b'*') {
                    toks.push(Tok::Pow);
                    i += 2;
                } else {
                    toks.push(Tok::Star);
                    i += 1;
                }
            }
            '/' => {
                if b.get(i + 1) == Some(&b'/') {
                    toks.push(Tok::Concat);
                    i += 2;
                } else {
                    toks.push(Tok::Slash);
                    i += 1;
                }
            }
            '\'' | '"' => {
                let quote = c;
                let mut s = String::new();
                let mut j = i + 1;
                loop {
                    match b.get(j) {
                        None => {
                            return Err(Error::lex(span, "unterminated character literal"))
                        }
                        Some(&q) if q as char == quote => {
                            if b.get(j + 1) == Some(&(quote as u8)) {
                                s.push(quote);
                                j += 2;
                            } else {
                                j += 1;
                                break;
                            }
                        }
                        Some(&q) => {
                            s.push(q as char);
                            j += 1;
                        }
                    }
                }
                toks.push(Tok::Str(s));
                i = j;
            }
            '.' => {
                // Dot-operator, logical literal, or a real like `.5`.
                if let Some((tok, len)) = lex_dot_word(&text[i..]) {
                    toks.push(tok);
                    i += len;
                } else if b.get(i + 1).is_some_and(|d| d.is_ascii_digit()) {
                    let (tok, len) = lex_number(&text[i..], span)?;
                    toks.push(tok);
                    i += len;
                } else {
                    return Err(Error::lex(span, format!("stray `.` in `{text}`")));
                }
            }
            _ if c.is_ascii_digit() => {
                let (tok, len) = lex_number(&text[i..], span)?;
                toks.push(tok);
                i += len;
            }
            _ if c.is_ascii_alphabetic() || c == '_' || c == '$' => {
                let mut j = i + 1;
                while j < b.len() {
                    let d = b[j] as char;
                    if d.is_ascii_alphanumeric() || d == '_' || d == '$' {
                        j += 1;
                    } else {
                        break;
                    }
                }
                toks.push(Tok::Ident(text[i..j].to_ascii_lowercase()));
                i = j;
            }
            _ => {
                return Err(Error::lex(span, format!("unexpected character `{c}`")));
            }
        }
    }
    Ok(toks)
}

/// Recognize `.EQ.` etc. and `.TRUE.`/`.FALSE.` at the start of `s`.
fn lex_dot_word(s: &str) -> Option<(Tok, usize)> {
    const WORDS: &[(&str, Tok)] = &[
        ("eq", Tok::Eq),
        ("ne", Tok::Ne),
        ("lt", Tok::Lt),
        ("le", Tok::Le),
        ("gt", Tok::Gt),
        ("ge", Tok::Ge),
        ("and", Tok::And),
        ("or", Tok::Or),
        ("not", Tok::Not),
        ("eqv", Tok::Eqv),
        ("neqv", Tok::Neqv),
        ("true", Tok::Logical(true)),
        ("false", Tok::Logical(false)),
    ];
    let rest = &s[1..];
    for (w, tok) in WORDS {
        if rest.len() > w.len()
            && rest[..w.len()].eq_ignore_ascii_case(w)
            && rest.as_bytes()[w.len()] == b'.'
        {
            // `.e.`-style: make sure longer words win (`.eqv.` vs `.eq.`),
            // guaranteed because the table is checked with exact-length
            // match against the dot terminator.
            return Some((tok.clone(), w.len() + 2));
        }
    }
    None
}

/// Lex an integer or real literal starting at the beginning of `s`.
/// Returns the token and consumed byte length.
fn lex_number(s: &str, span: Span) -> Result<(Tok, usize)> {
    let b = s.as_bytes();
    let mut j = 0usize;
    while j < b.len() && b[j].is_ascii_digit() {
        j += 1;
    }
    let mut is_real = false;
    let mut is_double = false;
    if j < b.len() && b[j] == b'.' {
        // Careful: `1.eq.2` — the dot may start an operator.
        if lex_dot_word(&s[j..]).is_none() {
            is_real = true;
            j += 1;
            while j < b.len() && b[j].is_ascii_digit() {
                j += 1;
            }
        }
    }
    if j < b.len() && matches!(b[j], b'e' | b'E' | b'd' | b'D') {
        let mut k = j + 1;
        if k < b.len() && matches!(b[k], b'+' | b'-') {
            k += 1;
        }
        if k < b.len() && b[k].is_ascii_digit() {
            is_real = true;
            if matches!(b[j], b'd' | b'D') {
                is_double = true;
            }
            j = k;
            while j < b.len() && b[j].is_ascii_digit() {
                j += 1;
            }
        }
    }
    let text = &s[..j];
    if is_real {
        let norm = text.replace(['d', 'D'], "e");
        let value: f64 = norm
            .parse()
            .map_err(|_| Error::lex(span, format!("bad real literal `{text}`")))?;
        Ok((Tok::Real { value, is_double }, j))
    } else {
        let value: i64 = text
            .parse()
            .map_err(|_| Error::lex(span, format!("integer literal `{text}` out of range")))?;
        Ok((Tok::Int(value), j))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<Tok> {
        tokenize(s, 1).unwrap()
    }

    #[test]
    fn fixed_form_labels_and_continuation() {
        let src = "\
C comment card
      X = 1.0
     & + 2.0
  100 CONTINUE
";
        let lines = assemble_fixed_form(src).unwrap();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0].text, "X = 1.0 + 2.0");
        assert_eq!(lines[0].label, None);
        assert_eq!(lines[1].label, Some(100));
        assert_eq!(lines[1].text, "CONTINUE");
    }

    #[test]
    fn comment_cards_all_forms() {
        let src = "C a\nc b\n* c\n      X = 1 ! trailing\n";
        let lines = assemble_fixed_form(src).unwrap();
        assert_eq!(lines.len(), 1);
        assert_eq!(lines[0].text, "X = 1");
    }

    #[test]
    fn continuation_without_statement_errors() {
        let src = "     & + 2.0\n";
        assert!(assemble_fixed_form(src).is_err());
    }

    #[test]
    fn free_form_continuation_and_labels() {
        let src = "x = 1 + &\n    2\n10 continue\n";
        let lines = assemble_free_form(src).unwrap();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0].text, "x = 1 + 2");
        assert_eq!(lines[1].label, Some(10));
    }

    #[test]
    fn tokenizes_operators() {
        assert_eq!(
            toks("a = b ** 2 // c"),
            vec![
                Tok::Ident("a".into()),
                Tok::Equals,
                Tok::Ident("b".into()),
                Tok::Pow,
                Tok::Int(2),
                Tok::Concat,
                Tok::Ident("c".into()),
            ]
        );
    }

    #[test]
    fn tokenizes_dot_operators_and_reals() {
        assert_eq!(
            toks("IF (X .GE. 1.5E-2) Y = .TRUE."),
            vec![
                Tok::Ident("if".into()),
                Tok::LParen,
                Tok::Ident("x".into()),
                Tok::Ge,
                Tok::Real { value: 1.5e-2, is_double: false },
                Tok::RParen,
                Tok::Ident("y".into()),
                Tok::Equals,
                Tok::Logical(true),
            ]
        );
    }

    #[test]
    fn integer_dot_operator_ambiguity() {
        // `1.eq.2` must lex as Int(1) .eq. Int(2), not Real(1.0).
        assert_eq!(toks("1.eq.2"), vec![Tok::Int(1), Tok::Eq, Tok::Int(2)]);
        // But `1.5` is a real and `1.` is a real.
        assert_eq!(toks("1."), vec![Tok::Real { value: 1.0, is_double: false }]);
    }

    #[test]
    fn double_exponent_marks_double() {
        match &toks("1.5d0")[0] {
            Tok::Real { value, is_double } => {
                assert_eq!(*value, 1.5);
                assert!(is_double);
            }
            other => panic!("unexpected token {other:?}"),
        }
    }

    #[test]
    fn string_literals_with_doubled_quotes() {
        assert_eq!(toks("'it''s'"), vec![Tok::Str("it's".into())]);
    }

    #[test]
    fn unterminated_string_is_error() {
        assert!(tokenize("'oops", 1).is_err());
    }

    #[test]
    fn leading_dot_real() {
        assert_eq!(toks(".5"), vec![Tok::Real { value: 0.5, is_double: false }]);
    }
}
