//! Source positions. Fortran is line-oriented; a 1-based line number is
//! enough to produce useful diagnostics for fixed-form sources.

use std::fmt;

/// A source location: the 1-based line of the first card of the logical
/// line the construct came from.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Span {
    /// 1-based source line (0 = compiler-generated).
    pub line: u32,
}

impl Span {
    /// The "no source location" marker for generated code.
    pub const NONE: Span = Span { line: 0 };

    /// Span for a 1-based line number.
    pub fn new(line: u32) -> Self {
        Span { line }
    }
}

impl fmt::Debug for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.line)
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "<generated>")
        } else {
            write!(f, "line {}", self.line)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(Span::new(12).to_string(), "line 12");
        assert_eq!(Span::NONE.to_string(), "<generated>");
        assert_eq!(format!("{:?}", Span::new(3)), "L3");
    }
}
