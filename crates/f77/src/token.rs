//! Statement-level tokens. Fortran keywords are *not* reserved at the
//! lexical level; they are ordinary identifiers that the parser
//! interprets by position.

use std::fmt;

/// One lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Identifier or keyword, lower-cased (Fortran is case-insensitive).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Real literal; `is_double` records a `D` exponent or will be set by
    /// `DOUBLE PRECISION` typing during lowering.
    #[allow(missing_docs)]
    Real { value: f64, is_double: bool },
    /// Character literal (quotes stripped, doubled quotes unescaped).
    Str(String),
    /// Logical literals `.TRUE.` / `.FALSE.`.
    Logical(bool),

    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `=`
    Equals,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `**`
    Pow,    // **
    /// `//` (character concatenation)
    Concat, // //
    /// `:`
    Colon,

    // Relational / logical dot-operators.
    /// `.EQ.`
    Eq,
    /// `.NE.`
    Ne,
    /// `.LT.`
    Lt,
    /// `.LE.`
    Le,
    /// `.GT.`
    Gt,
    /// `.GE.`
    Ge,
    /// `.AND.`
    And,
    /// `.OR.`
    Or,
    /// `.NOT.`
    Not,
    /// `.EQV.`
    Eqv,
    /// `.NEQV.`
    Neqv,
}

impl Tok {
    /// Is this token the given keyword? (Keywords are just identifiers.)
    pub fn is_kw(&self, kw: &str) -> bool {
        matches!(self, Tok::Ident(s) if s == kw)
    }

    /// The identifier text, if this token is one.
    pub fn ident(&self) -> Option<&str> {
        match self {
            Tok::Ident(s) => Some(s),
            _ => None,
        }
    }
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "{s}"),
            Tok::Int(v) => write!(f, "{v}"),
            Tok::Real { value, .. } => write!(f, "{value}"),
            Tok::Str(s) => write!(f, "'{s}'"),
            Tok::Logical(true) => write!(f, ".true."),
            Tok::Logical(false) => write!(f, ".false."),
            Tok::LParen => write!(f, "("),
            Tok::RParen => write!(f, ")"),
            Tok::Comma => write!(f, ","),
            Tok::Equals => write!(f, "="),
            Tok::Plus => write!(f, "+"),
            Tok::Minus => write!(f, "-"),
            Tok::Star => write!(f, "*"),
            Tok::Slash => write!(f, "/"),
            Tok::Pow => write!(f, "**"),
            Tok::Concat => write!(f, "//"),
            Tok::Colon => write!(f, ":"),
            Tok::Eq => write!(f, ".eq."),
            Tok::Ne => write!(f, ".ne."),
            Tok::Lt => write!(f, ".lt."),
            Tok::Le => write!(f, ".le."),
            Tok::Gt => write!(f, ".gt."),
            Tok::Ge => write!(f, ".ge."),
            Tok::And => write!(f, ".and."),
            Tok::Or => write!(f, ".or."),
            Tok::Not => write!(f, ".not."),
            Tok::Eqv => write!(f, ".eqv."),
            Tok::Neqv => write!(f, ".neqv."),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_test_is_case_normalized() {
        assert!(Tok::Ident("doall".into()).is_kw("doall"));
        assert!(!Tok::Int(3).is_kw("doall"));
    }

    #[test]
    fn display_round_trips_simple_tokens() {
        assert_eq!(Tok::Pow.to_string(), "**");
        assert_eq!(Tok::Real { value: 1.5, is_double: false }.to_string(), "1.5");
    }
}
