//! Abstract syntax for the accepted dialect: Fortran 77 plus the vector
//! subset and the Cedar Fortran parallel extensions (so restructurer
//! output parses back with the same grammar).
//!
//! The AST is deliberately *syntactic*: `NameArgs` may be an array
//! element, an array section, or a function reference — `cedar-ir`
//! resolves the ambiguity against symbol tables during lowering.

use crate::span::Span;

/// A whole source file: one or more program units.
#[derive(Debug, Clone, PartialEq)]
pub struct SourceFile {
    /// Program units in source order.
    pub units: Vec<ProgramUnit>,
}

impl SourceFile {
    /// Find a unit by (lower-case) name.
    pub fn unit(&self, name: &str) -> Option<&ProgramUnit> {
        self.units.iter().find(|u| u.name == name)
    }
}

/// PROGRAM / SUBROUTINE / FUNCTION.
#[derive(Debug, Clone, PartialEq)]
pub struct ProgramUnit {
    /// PROGRAM / SUBROUTINE / FUNCTION.
    pub kind: UnitKind,
    /// Unit name, lower-cased.
    pub name: String,
    /// Dummy argument names, in order.
    pub args: Vec<String>,
    /// Specification statements.
    pub decls: Vec<Decl>,
    /// Executable statements.
    pub body: Vec<Stmt>,
    /// Line of the unit header.
    pub span: Span,
}

#[derive(Debug, Clone, PartialEq, Eq)]
/// Kind of program unit.
pub enum UnitKind {
    /// A main PROGRAM.
    Program,
    /// A SUBROUTINE.
    Subroutine,
    /// Function with an optional explicit result type from the header
    /// (`REAL FUNCTION F(...)`).
    Function(Option<TypeSpec>),
}

/// Fortran base types of the dialect. CHARACTER is carried through the
/// front end for diagnostics but rejected during lowering except in I/O.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TypeSpec {
    /// `INTEGER`.
    Integer,
    /// `REAL`.
    Real,
    /// `DOUBLE PRECISION` / `REAL*8`.
    Double,
    /// `LOGICAL`.
    Logical,
    /// `CHARACTER` (front-end only; rejected at lowering).
    Character,
}

/// Cedar Fortran data-visibility classes (paper §2.1, Figure 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Visibility {
    /// One copy in global memory, visible to all processors of all
    /// clusters (`GLOBAL` / `PROCESS COMMON`).
    Global,
    /// One copy per cluster (`CLUSTER` / plain `COMMON`; the Cedar
    /// Fortran default for data declared outside loops).
    Cluster,
}

/// One declared entity, possibly with array bounds.
#[derive(Debug, Clone, PartialEq)]
pub struct Entity {
    /// Entity name, lower-cased.
    pub name: String,
    /// Array bounds; empty for scalars.
    pub dims: Vec<DimBound>,
}

impl Entity {
    /// A scalar (dimension-less) entity.
    pub fn scalar(name: impl Into<String>) -> Self {
        Entity { name: name.into(), dims: Vec::new() }
    }
}

/// One dimension declarator: `upper`, `lower:upper`, or `*` (assumed
/// size, `upper == None`).
#[derive(Debug, Clone, PartialEq)]
pub struct DimBound {
    /// Lower bound (defaults to 1).
    pub lower: Option<Expr>,
    /// Upper bound; `None` means assumed size (`*`).
    pub upper: Option<Expr>,
}

/// A specification statement.
#[derive(Debug, Clone, PartialEq)]
pub struct Decl {
    /// Source line of the statement.
    pub span: Span,
    /// What was declared.
    pub kind: DeclKind,
}

#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)] // payload fields are described by the variant docs
pub enum DeclKind {
    /// `INTEGER a, b(10)` — also produced by `REAL*8` (mapped to Double).
    Type { ty: TypeSpec, entities: Vec<Entity> },
    /// `DIMENSION a(n, m)`.
    Dimension { entities: Vec<Entity> },
    /// `PARAMETER (n = 100, pi = 3.14)`.
    Parameter { assigns: Vec<(String, Expr)> },
    /// `COMMON /blk/ a, b` (`process == true` for Cedar `PROCESS COMMON`,
    /// which places the block in global memory).
    Common { block: Option<String>, entities: Vec<Entity>, process: bool },
    /// Cedar `GLOBAL a, b` / `CLUSTER a, b`.
    Visibility { vis: Visibility, names: Vec<String> },
    /// `DATA a, b /1.0, 2*0.0/` — names paired positionally with
    /// repeat-counted constants.
    Data { names: Vec<Expr>, values: Vec<(u32, Expr)> },
    /// `EXTERNAL f, g`.
    External(Vec<String>),
    /// `INTRINSIC sqrt` (accepted and ignored).
    Intrinsic(Vec<String>),
    /// `SAVE a, b` (accepted and ignored; no cross-call reuse).
    Save(Vec<String>),
    /// `IMPLICIT NONE`.
    ImplicitNone,
    /// Parsed but rejected at lowering (aliasing defeats the analyses the
    /// paper's restructurer also refuses to reason about).
    Equivalence(Vec<Vec<Expr>>),
}

/// Loop scheduling classes (paper §2.1, Figure 3). `Seq` is an ordinary
/// Fortran DO; the rest are Cedar Fortran concurrent loops.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LoopClass {
    /// Sequential `DO`.
    Seq,
    /// All CEs of one cluster (hardware microtasking).
    CDoall,
    /// One CE per cluster (runtime-library microtasking).
    SDoall,
    /// All CEs of all clusters.
    XDoall,
    /// Ordered intra-cluster loop with cascade synchronization.
    CDoacross,
    /// Ordered one-CE-per-cluster loop.
    SDoacross,
    /// Ordered machine-wide loop.
    XDoacross,
}

impl LoopClass {
    /// Any concurrent class (everything but `Seq`).
    pub fn is_parallel(self) -> bool {
        !matches!(self, LoopClass::Seq)
    }
    /// A DOACROSS class (iterations start in order).
    pub fn is_ordered(self) -> bool {
        matches!(
            self,
            LoopClass::CDoacross | LoopClass::SDoacross | LoopClass::XDoacross
        )
    }
    /// The Cedar Fortran keyword for this class.
    pub fn keyword(self) -> &'static str {
        match self {
            LoopClass::Seq => "do",
            LoopClass::CDoall => "cdoall",
            LoopClass::SDoall => "sdoall",
            LoopClass::XDoall => "xdoall",
            LoopClass::CDoacross => "cdoacross",
            LoopClass::SDoacross => "sdoacross",
            LoopClass::XDoacross => "xdoacross",
        }
    }
}

/// An executable statement with optional statement label.
#[derive(Debug, Clone, PartialEq)]
pub struct Stmt {
    /// Source line.
    pub span: Span,
    /// Statement label (columns 1–5), if any.
    pub label: Option<u32>,
    /// The statement itself.
    pub kind: StmtKind,
}

impl Stmt {
    /// An unlabeled statement.
    pub fn new(span: Span, kind: StmtKind) -> Self {
        Stmt { span, label: None, kind }
    }
}

#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)] // payload fields are described by the variant docs
pub enum StmtKind {
    /// Scalar or vector assignment; the LHS is a `Name` or `NameArgs`.
    Assign { lhs: Expr, rhs: Expr },
    /// Single-statement `WHERE (mask) a(...) = ...` masked vector
    /// assignment (fortran90 subset used by the restructurer).
    Where { mask: Expr, lhs: Expr, rhs: Expr },
    /// Block IF / ELSE IF / ELSE.
    If {
        cond: Expr,
        then_body: Vec<Stmt>,
        elifs: Vec<(Expr, Vec<Stmt>)>,
        else_body: Vec<Stmt>,
    },
    /// DO in any scheduling class, including Cedar concurrent loops with
    /// loop-local declarations and pre/postambles (Figure 3).
    Do {
        class: LoopClass,
        var: String,
        start: Expr,
        end: Expr,
        step: Option<Expr>,
        /// Loop-local declarations (concurrent loops only).
        decls: Vec<Decl>,
        /// Executed once per participating CE before its first iteration.
        preamble: Vec<Stmt>,
        body: Vec<Stmt>,
        /// Executed once per CE after its last iteration (SDO/XDO only).
        postamble: Vec<Stmt>,
    },
    /// MIL-STD-1753 `DO WHILE (cond) ... END DO`.
    DoWhile { cond: Expr, body: Vec<Stmt> },
    /// `!$omp parallel do [private(...)] [reduction(op:x)]` applied to
    /// the sequential `DO` that follows it. Produced by the OpenMP
    /// emission backend; lowering rewrites it into an `XDOALL` with
    /// synthesized privatization and reduction machinery.
    OmpParallelDo {
        privates: Vec<String>,
        reductions: Vec<(OmpRedOp, String)>,
        body: Box<Stmt>,
    },
    /// `CALL name(args)`.
    Call { name: String, args: Vec<Expr> },
    /// `GOTO label` (parsed; rejected at lowering).
    Goto(u32),
    /// `CONTINUE` (dropped at lowering).
    Continue,
    /// `RETURN`.
    Return,
    /// `STOP`.
    Stop,
    /// I/O statements are parsed loosely and simulated as no-ops with a
    /// fixed cost; `args` kept for diagnostics.
    Io { kind: IoKind, args: Vec<Expr> },
}

/// Operator of an OpenMP `reduction(op:var)` clause — the subset our
/// restructurer can synthesize partials for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OmpRedOp {
    /// `reduction(+:x)`
    Add,
    /// `reduction(*:x)`
    Mul,
    /// `reduction(min:x)`
    Min,
    /// `reduction(max:x)`
    Max,
}

/// Which I/O statement a loosely-parsed [`StmtKind::Io`] came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoKind {
    /// `PRINT fmt, list`.
    Print,
    /// `WRITE (unit, fmt) list`.
    Write,
    /// `READ (unit, fmt) list`.
    Read,
}

/// Expressions.
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)] // payload fields are described by the variant docs
pub enum Expr {
    /// Integer literal.
    Int(i64),
    /// Real literal (`is_double` for `D` exponents).
    Real { value: f64, is_double: bool },
    /// `.TRUE.` / `.FALSE.`.
    Logical(bool),
    /// Character literal.
    Str(String),
    /// Bare name: scalar variable or whole-array reference.
    Name(String),
    /// `name(list)` — array element, array section, function or
    /// intrinsic reference; disambiguated during lowering.
    NameArgs { name: String, args: Vec<ArgExpr> },
    /// Unary operation.
    Un(UnOp, Box<Expr>),
    /// Binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
}

impl Expr {
    /// A bare name expression.
    pub fn name(s: impl Into<String>) -> Expr {
        Expr::Name(s.into())
    }
    /// Binary operation helper.
    pub fn bin(op: BinOp, l: Expr, r: Expr) -> Expr {
        Expr::Bin(op, Box::new(l), Box::new(r))
    }
    /// The base identifier of a Name / NameArgs expression.
    pub fn base_name(&self) -> Option<&str> {
        match self {
            Expr::Name(n) => Some(n),
            Expr::NameArgs { name, .. } => Some(name),
            _ => None,
        }
    }
}

/// One item of a `name(...)` argument list.
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)] // payload fields are described by the variant docs
pub enum ArgExpr {
    Expr(Expr),
    /// `lower:upper:stride` with all parts optional (`a(:)`, `a(1:n)`,
    /// `a(1:n:2)`).
    Section {
        lower: Option<Expr>,
        upper: Option<Expr>,
        stride: Option<Expr>,
    },
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Unary minus.
    Neg,
    /// Unary plus (dropped at lowering).
    Plus,
    /// `.NOT.`.
    Not,
}

/// Binary operators with F77 semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `**`
    Pow,
    /// `//` (character concatenation; rejected at lowering).
    Concat,
    /// `.EQ.`
    Eq,
    /// `.NE.`
    Ne,
    /// `.LT.`
    Lt,
    /// `.LE.`
    Le,
    /// `.GT.`
    Gt,
    /// `.GE.`
    Ge,
    /// `.AND.`
    And,
    /// `.OR.`
    Or,
    /// `.EQV.`
    Eqv,
    /// `.NEQV.`
    Neqv,
}

impl BinOp {
    /// `.EQ.`/`.NE.`/`.LT.`/`.LE.`/`.GT.`/`.GE.`.
    pub fn is_relational(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
        )
    }
    /// `.AND.`/`.OR.`/`.EQV.`/`.NEQV.`.
    pub fn is_logical(self) -> bool {
        matches!(self, BinOp::And | BinOp::Or | BinOp::Eqv | BinOp::Neqv)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loop_class_predicates() {
        assert!(!LoopClass::Seq.is_parallel());
        assert!(LoopClass::XDoall.is_parallel());
        assert!(LoopClass::CDoacross.is_ordered());
        assert!(!LoopClass::CDoall.is_ordered());
        assert_eq!(LoopClass::SDoall.keyword(), "sdoall");
    }

    #[test]
    fn base_name_extraction() {
        let e = Expr::NameArgs { name: "a".into(), args: vec![ArgExpr::Expr(Expr::Int(1))] };
        assert_eq!(e.base_name(), Some("a"));
        assert_eq!(Expr::Int(3).base_name(), None);
    }
}
