#![warn(missing_docs)]
//! Fortran 77 front end for the Cedar restructurer.
//!
//! This crate parses the input dialect of the Cedar Fortran translation
//! system described in *Restructuring Fortran Programs for Cedar*
//! (Eigenmann, Hoeflinger, Jaxon, Li, Padua; ICPP 1991):
//!
//! * fixed-form Fortran 77 (comment cards, labels in columns 1–5,
//!   continuation in column 6),
//! * the Fortran 90 vector subset the restructurer accepts as input
//!   (array sections `a(i:j:k)`, whole-array expressions, `WHERE`),
//! * the MIL-STD-1753 `DO WHILE` / `END DO` extensions (accepted by the
//!   1988 KAP the paper's restructurer is based on), and
//! * the **Cedar Fortran** output dialect of the restructurer
//!   (`CDOALL`/`SDOALL`/`XDOALL`/`*DOACROSS` loops with loop-local
//!   declarations and preambles, `GLOBAL`/`CLUSTER`/`PROCESS COMMON`
//!   visibility declarations), so that restructurer output can be parsed
//!   back for round-trip testing.
//!
//! The entry points are [`parse_source`] (a whole source file of program
//! units) and [`parse_free`] (the same grammar with free-form line
//! handling, convenient in tests).
//!
//! # Dialect restrictions
//!
//! The classic Fortran 66/77 features that would require a token-free
//! scanner are not supported: blanks are significant (`DO10I=1,10` must be
//! written `DO 10 I = 1, 10`), Hollerith constants are rejected, and
//! variables may not be named after statement keywords. Arithmetic IF,
//! computed GOTO, and `ASSIGN` are parsed and reported as unsupported.
//! All workloads shipped in `cedar-workloads` are written in this dialect.

pub mod ast;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod span;
pub mod token;

pub use ast::*;
pub use error::{Error, Result};
pub use span::Span;

/// Parse a fixed-form Fortran 77 / Cedar Fortran source file into a list
/// of program units.
pub fn parse_source(src: &str) -> Result<SourceFile> {
    let lines = lexer::assemble_fixed_form(src)?;
    parse_lines(lines)
}

/// Parse free-form source: every physical line is one statement, `&` at
/// end of line continues, `!` starts a comment. Labels are a leading
/// integer token. Useful for tests and embedded snippets.
pub fn parse_free(src: &str) -> Result<SourceFile> {
    let lines = lexer::assemble_free_form(src)?;
    parse_lines(lines)
}

/// The result of a recovering parse: every program unit that could be
/// built plus every diagnostic encountered along the way.
///
/// Produced by [`parse_source_recovering`] / [`parse_free_recovering`].
/// When `errors` is empty the file is exactly what the strict entry
/// points would have returned; otherwise `file` holds a best-effort
/// partial parse (statements and units that failed are skipped).
#[derive(Debug)]
pub struct ParseOutcome {
    /// Units recovered from the parts of the file that parsed.
    pub file: SourceFile,
    /// All diagnostics: lexical errors first (collected while tokenizing
    /// each logical line), then parser diagnostics in detection order.
    pub errors: Vec<Error>,
}

impl ParseOutcome {
    /// True if the whole file parsed cleanly.
    pub fn is_clean(&self) -> bool {
        self.errors.is_empty()
    }
}

/// Parse fixed-form source with statement-boundary recovery: instead of
/// stopping at the first error like [`parse_source`], collect a
/// diagnostic per offending statement and keep going, so one run reports
/// every problem in the file.
pub fn parse_source_recovering(src: &str) -> ParseOutcome {
    match lexer::assemble_fixed_form(src) {
        Ok(lines) => parse_lines_recovering(lines),
        Err(e) => ParseOutcome { file: SourceFile { units: Vec::new() }, errors: vec![e] },
    }
}

/// Parse free-form source with statement-boundary recovery (the
/// recovering counterpart of [`parse_free`]).
pub fn parse_free_recovering(src: &str) -> ParseOutcome {
    match lexer::assemble_free_form(src) {
        Ok(lines) => parse_lines_recovering(lines),
        Err(e) => ParseOutcome { file: SourceFile { units: Vec::new() }, errors: vec![e] },
    }
}

fn parse_lines_recovering(lines: Vec<lexer::LogicalLine>) -> ParseOutcome {
    let mut errors = Vec::new();
    let mut stmts = Vec::with_capacity(lines.len());
    for line in &lines {
        match lexer::tokenize(&line.text, line.line) {
            Ok(toks) => {
                if !toks.is_empty() {
                    stmts.push(parser::RawStmt {
                        label: line.label,
                        tokens: toks,
                        line: line.line,
                    });
                }
            }
            // A statement that does not even tokenize is dropped whole;
            // the parser resynchronizes at the next logical line.
            Err(e) => errors.push(e),
        }
    }
    let (file, mut parse_errors) = parser::parse_units_recovering(stmts);
    errors.append(&mut parse_errors);
    ParseOutcome { file, errors }
}

fn parse_lines(lines: Vec<lexer::LogicalLine>) -> Result<SourceFile> {
    let mut stmts = Vec::with_capacity(lines.len());
    for line in &lines {
        let toks = lexer::tokenize(&line.text, line.line)?;
        if toks.is_empty() {
            continue;
        }
        stmts.push(parser::RawStmt {
            label: line.label,
            tokens: toks,
            line: line.line,
        });
    }
    parser::parse_units(stmts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_minimal_program() {
        let src = "
      PROGRAM MAIN
      INTEGER I
      I = 1
      END
";
        let f = parse_source(src).unwrap();
        assert_eq!(f.units.len(), 1);
        assert_eq!(f.units[0].name, "main");
    }

    #[test]
    fn recovery_reports_multiple_diagnostics_per_file() {
        // Three independent problems: a lexical error (stray `?`), a
        // malformed assignment, and an unrecognized statement. Strict
        // parsing stops at the first; the recovering parse reports all
        // three and still builds the unit around them.
        let src = "
program p
x = 1.0 ?
y = = 2.0
frobnicate the loop
z = 3.0
end
";
        let out = parse_free_recovering(src);
        assert_eq!(out.errors.len(), 3, "diagnostics: {:?}", out.errors);
        assert!(!out.is_clean());
        // Every diagnostic carries the line it was detected on.
        let lines: Vec<u32> = out.errors.iter().map(|e| e.span.line).collect();
        assert_eq!(lines, vec![3, 4, 5]);
        // The unit survives with the statements that did parse.
        assert_eq!(out.file.units.len(), 1);
        assert_eq!(out.file.units[0].body.len(), 1); // only `z = 3.0` survives
        // Strict parsing reports only the first problem.
        let strict = parse_free(src).unwrap_err();
        assert_eq!(strict.span.line, 3);
    }

    #[test]
    fn recovery_resyncs_at_next_unit() {
        // A broken subroutine header loses that unit, but parsing
        // resynchronizes past its END and the next unit still parses.
        let src = "
subroutine 42bad(a)
x = 1.0
end
subroutine good(a, n)
real a(n)
a(1) = 1.0
end
";
        let out = parse_free_recovering(src);
        assert!(!out.errors.is_empty());
        assert_eq!(out.file.units.len(), 1);
        assert_eq!(out.file.units[0].name, "good");
    }

    #[test]
    fn recovery_reports_truncated_file_once() {
        let src = "
program p
do i = 1, 10
x = 1.0
";
        let out = parse_free_recovering(src);
        assert_eq!(out.errors.len(), 1, "diagnostics: {:?}", out.errors);
        // The partial unit still carries the loop body parsed so far.
        assert_eq!(out.file.units.len(), 1);
    }

    #[test]
    fn recovery_is_identity_on_clean_source() {
        let src = "
program p
real a(10)
do i = 1, 10
a(i) = i * 2.0
end do
end
";
        let out = parse_free_recovering(src);
        assert!(out.is_clean(), "diagnostics: {:?}", out.errors);
        let strict = parse_free(src).unwrap();
        assert_eq!(format!("{:?}", out.file), format!("{strict:?}"));
    }

    #[test]
    fn free_form_matches_fixed_form() {
        let fixed = "
      SUBROUTINE S(A, N)
      REAL A(N)
      DO 10 I = 1, N
      A(I) = A(I) + 1.0
   10 CONTINUE
      END
";
        let free = "
subroutine s(a, n)
real a(n)
do 10 i = 1, n
a(i) = a(i) + 1.0
10 continue
end
";
        let a = parse_source(fixed).unwrap();
        let b = parse_free(free).unwrap();
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }
}
