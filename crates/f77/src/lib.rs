#![warn(missing_docs)]
//! Fortran 77 front end for the Cedar restructurer.
//!
//! This crate parses the input dialect of the Cedar Fortran translation
//! system described in *Restructuring Fortran Programs for Cedar*
//! (Eigenmann, Hoeflinger, Jaxon, Li, Padua; ICPP 1991):
//!
//! * fixed-form Fortran 77 (comment cards, labels in columns 1–5,
//!   continuation in column 6),
//! * the Fortran 90 vector subset the restructurer accepts as input
//!   (array sections `a(i:j:k)`, whole-array expressions, `WHERE`),
//! * the MIL-STD-1753 `DO WHILE` / `END DO` extensions (accepted by the
//!   1988 KAP the paper's restructurer is based on), and
//! * the **Cedar Fortran** output dialect of the restructurer
//!   (`CDOALL`/`SDOALL`/`XDOALL`/`*DOACROSS` loops with loop-local
//!   declarations and preambles, `GLOBAL`/`CLUSTER`/`PROCESS COMMON`
//!   visibility declarations), so that restructurer output can be parsed
//!   back for round-trip testing.
//!
//! The entry points are [`parse_source`] (a whole source file of program
//! units) and [`parse_free`] (the same grammar with free-form line
//! handling, convenient in tests).
//!
//! # Dialect restrictions
//!
//! The classic Fortran 66/77 features that would require a token-free
//! scanner are not supported: blanks are significant (`DO10I=1,10` must be
//! written `DO 10 I = 1, 10`), Hollerith constants are rejected, and
//! variables may not be named after statement keywords. Arithmetic IF,
//! computed GOTO, and `ASSIGN` are parsed and reported as unsupported.
//! All workloads shipped in `cedar-workloads` are written in this dialect.

pub mod ast;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod span;
pub mod token;

pub use ast::*;
pub use error::{Error, Result};
pub use span::Span;

/// Parse a fixed-form Fortran 77 / Cedar Fortran source file into a list
/// of program units.
pub fn parse_source(src: &str) -> Result<SourceFile> {
    let lines = lexer::assemble_fixed_form(src)?;
    parse_lines(lines)
}

/// Parse free-form source: every physical line is one statement, `&` at
/// end of line continues, `!` starts a comment. Labels are a leading
/// integer token. Useful for tests and embedded snippets.
pub fn parse_free(src: &str) -> Result<SourceFile> {
    let lines = lexer::assemble_free_form(src)?;
    parse_lines(lines)
}

fn parse_lines(lines: Vec<lexer::LogicalLine>) -> Result<SourceFile> {
    let mut stmts = Vec::with_capacity(lines.len());
    for line in &lines {
        let toks = lexer::tokenize(&line.text, line.line)?;
        if toks.is_empty() {
            continue;
        }
        stmts.push(parser::RawStmt {
            label: line.label,
            tokens: toks,
            line: line.line,
        });
    }
    parser::parse_units(stmts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_minimal_program() {
        let src = "
      PROGRAM MAIN
      INTEGER I
      I = 1
      END
";
        let f = parse_source(src).unwrap();
        assert_eq!(f.units.len(), 1);
        assert_eq!(f.units[0].name, "main");
    }

    #[test]
    fn free_form_matches_fixed_form() {
        let fixed = "
      SUBROUTINE S(A, N)
      REAL A(N)
      DO 10 I = 1, N
      A(I) = A(I) + 1.0
   10 CONTINUE
      END
";
        let free = "
subroutine s(a, n)
real a(n)
do 10 i = 1, n
a(i) = a(i) + 1.0
10 continue
end
";
        let a = parse_source(fixed).unwrap();
        let b = parse_free(free).unwrap();
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }
}
