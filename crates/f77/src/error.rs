//! Front-end diagnostics.

use crate::span::Span;
use std::fmt;

/// Front-end result type.
pub type Result<T> = std::result::Result<T, Error>;

/// A front-end error with the source line it was detected on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    /// Source line the error was detected on.
    pub span: Span,
    /// What went wrong.
    pub kind: ErrorKind,
}

/// Error categories the front end reports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ErrorKind {
    /// Malformed token (bad character, unterminated string, bad number).
    Lex(String),
    /// Grammar violation.
    Parse(String),
    /// Syntactically valid Fortran we deliberately do not support
    /// (arithmetic IF, computed GOTO, Hollerith, ...).
    Unsupported(String),
    /// Block structure errors: unclosed DO/IF, mismatched END, label
    /// problems.
    Structure(String),
}

impl Error {
    /// A lexical error at `span`.
    pub fn lex(span: Span, msg: impl Into<String>) -> Self {
        Error { span, kind: ErrorKind::Lex(msg.into()) }
    }
    /// A syntax error at `span`.
    pub fn parse(span: Span, msg: impl Into<String>) -> Self {
        Error { span, kind: ErrorKind::Parse(msg.into()) }
    }
    /// A deliberately unsupported construct at `span`.
    pub fn unsupported(span: Span, msg: impl Into<String>) -> Self {
        Error { span, kind: ErrorKind::Unsupported(msg.into()) }
    }
    /// A block-structure error at `span`.
    pub fn structure(span: Span, msg: impl Into<String>) -> Self {
        Error { span, kind: ErrorKind::Structure(msg.into()) }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (tag, msg) = match &self.kind {
            ErrorKind::Lex(m) => ("lexical error", m),
            ErrorKind::Parse(m) => ("syntax error", m),
            ErrorKind::Unsupported(m) => ("unsupported construct", m),
            ErrorKind::Structure(m) => ("structure error", m),
        };
        write!(f, "{}: {tag}: {msg}", self.span)
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_line_and_kind() {
        let e = Error::parse(Span::new(7), "expected `)`");
        assert_eq!(e.to_string(), "line 7: syntax error: expected `)`");
        let e = Error::unsupported(Span::new(2), "arithmetic IF");
        assert!(e.to_string().contains("unsupported construct"));
    }
}
