//! Robustness: the front end must return a diagnostic — never panic,
//! never loop — on arbitrary input. The strategies below aim at the
//! parser's soft spots: near-valid programs with random statement soup,
//! random punctuation storms, and pathological label/continuation use.

use cedar_f77::{parse_free, parse_source};
use proptest::prelude::*;

/// Fragments that look almost like Fortran — the interesting failure
/// space (pure noise dies in the lexer immediately).
fn stmt_soup() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("x = 1.0".to_string()),
        Just("do 10 i = 1, n".to_string()),
        Just("do i = 1,".to_string()),
        Just("10 continue".to_string()),
        Just("end do".to_string()),
        Just("if (x .gt.".to_string()),
        Just("if (x) then".to_string()),
        Just("else".to_string()),
        Just("end if".to_string()),
        Just("call f(".to_string()),
        Just("real a(".to_string()),
        Just("common //".to_string()),
        Just("cdoall i = 1, 8".to_string()),
        Just("end cdoall".to_string()),
        Just("loop".to_string()),
        Just("endloop".to_string()),
        Just("where (a .gt. 0.0) a = 1".to_string()),
        Just("a(1:2:3:4) = 5".to_string()),
        Just("x = ((((1".to_string()),
        Just("goto 99".to_string()),
        Just("return".to_string()),
        Just("end".to_string()),
        "[a-z =()+,0-9.*]{0,24}",
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn parser_never_panics_on_statement_soup(
        stmts in prop::collection::vec(stmt_soup(), 0..12),
        wrap in any::<bool>(),
    ) {
        let mut src = String::new();
        if wrap {
            src.push_str("subroutine s(a, n)\n");
        }
        for st in &stmts {
            src.push_str(st);
            src.push('\n');
        }
        if wrap {
            src.push_str("end\n");
        }
        // Ok or Err are both fine; panics and hangs are not.
        let _ = parse_free(&src);
    }

    #[test]
    fn fixed_form_never_panics_on_random_columns(
        lines in prop::collection::vec("[ 0-9a-zC*!&=().,+]{0,80}", 0..16),
    ) {
        let src = lines.join("\n");
        let _ = parse_source(&src);
    }

    #[test]
    fn labels_and_continuations_never_panic(
        label in 0u32..100000,
        cont in "[&1x]",
        body in "[a-z0-9 =+]{0,30}",
    ) {
        // A labelled card followed by a continuation card.
        let src = format!(
            "      PROGRAM P\n{label:>5} X = 1.0\n     {cont}{body}\n      END\n"
        );
        let _ = parse_source(&src);
    }
}
