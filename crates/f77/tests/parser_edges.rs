//! Edge cases of the fixed-form lexer and the statement parser that the
//! unit tests inside the crate do not already cover: column rules,
//! continuation lines, Cedar Fortran loop forms with preambles and
//! postambles, and the diagnostics for malformed input.

use cedar_f77::ast::{DeclKind, Expr, LoopClass, StmtKind, Visibility};
use cedar_f77::{parse_free, parse_source};

// ---------------------------------------------------------------------
// fixed-form column rules
// ---------------------------------------------------------------------

#[test]
fn comment_lines_and_blank_lines_are_skipped() {
    let src = "
C     a classic comment line
*     an asterisk comment line
!     a bang comment line

      PROGRAM P
      X = 1.0
C     trailing comment
      END
";
    let f = parse_source(src).expect("comments must be ignored");
    assert_eq!(f.units.len(), 1);
    assert_eq!(f.units[0].body.len(), 1);
}

#[test]
fn continuation_lines_join_statements() {
    // Any non-blank, non-zero character in column 6 continues the
    // previous statement.
    let src = "
      PROGRAM P
      X = 1.0 +
     &    2.0 +
     1    3.0
      END
";
    let f = parse_source(src).expect("continuations must join");
    let StmtKind::Assign { rhs, .. } = &f.units[0].body[0].kind else {
        panic!()
    };
    // ((1 + 2) + 3): two Add nodes.
    let Expr::Bin(_, l, _) = rhs else { panic!("{rhs:?}") };
    assert!(matches!(&**l, Expr::Bin(..)));
}

#[test]
fn columns_past_72_stay_significant() {
    // Documented deviation from strict F77: the lexer does NOT discard
    // text beyond column 72 (the workload sources use the full width),
    // so an expression continuing past the card boundary still parses.
    let stmt = "      X = 1.0";
    let pad = " ".repeat(72 - stmt.len());
    let src = format!("\n      PROGRAM P\n{stmt}{pad}+ 2.0\n      END\n");
    let f = parse_source(&src).expect("text past column 72 is kept");
    let StmtKind::Assign { rhs, .. } = &f.units[0].body[0].kind else { panic!() };
    assert!(matches!(rhs, Expr::Bin(..)), "{rhs:?}");
}

#[test]
fn statement_labels_in_columns_1_to_5() {
    let src = "
      PROGRAM P
  100 X = 1.0
      GO TO 100
      END
";
    let f = parse_source(src).expect("labels must parse");
    assert_eq!(f.units[0].body[0].label, Some(100));
    assert!(matches!(f.units[0].body[1].kind, StmtKind::Goto { .. }));
}

#[test]
fn blanks_inside_keywords_are_insignificant() {
    // Fixed-form Fortran ignores blanks: `GO TO`, `END IF`, `ELSE IF`.
    let src = "
      PROGRAM P
      IF (X .GT. 0.0) THEN
        Y = 1.0
      ELSE IF (X .LT. 0.0) THEN
        Y = 2.0
      END IF
      GO TO 10
   10 CONTINUE
      END
";
    let f = parse_source(src).expect("blanked keywords");
    assert!(matches!(f.units[0].body[0].kind, StmtKind::If { .. }));
}

// ---------------------------------------------------------------------
// Cedar Fortran loop forms
// ---------------------------------------------------------------------

#[test]
fn cdoall_with_locals_preamble_and_loop_marker() {
    // Figure 3 of the paper: loop-local declarations, a preamble that
    // runs once per participant, then the LOOP marker.
    let src = "
      SUBROUTINE S(A, B, N)
      REAL A(N), B(N)
      CDOALL I = 1, N
        REAL T
        T = 0.0
      LOOP
        A(I) = B(I) + T
      END CDOALL
      END
";
    let f = parse_source(src).expect("cdoall with preamble");
    let StmtKind::Do { class, decls, preamble, body, .. } = &f.units[0].body[0].kind
    else {
        panic!()
    };
    assert_eq!(*class, LoopClass::CDoall);
    assert_eq!(decls.len(), 1);
    assert_eq!(preamble.len(), 1);
    assert_eq!(body.len(), 1);
}

#[test]
fn sdoall_with_postamble_after_endloop() {
    let src = "
      SUBROUTINE S(A, N, TOTAL)
      REAL A(N), TOTAL
      SDOALL I = 1, N
        REAL P
        P = 0.0
      LOOP
        P = P + A(I)
      ENDLOOP
        TOTAL = TOTAL + P
      END SDOALL
      END
";
    let f = parse_source(src).expect("sdoall with postamble");
    let StmtKind::Do { class, postamble, .. } = &f.units[0].body[0].kind else {
        panic!()
    };
    assert_eq!(*class, LoopClass::SDoall);
    assert_eq!(postamble.len(), 1);
}

#[test]
fn generic_doall_defaults_to_machine_wide() {
    let src = "
      SUBROUTINE S(A, N)
      REAL A(N)
      DOALL I = 1, N
        A(I) = 0.0
      END DOALL
      END
";
    let f = parse_source(src).expect("plain doall");
    let StmtKind::Do { class, .. } = &f.units[0].body[0].kind else { panic!() };
    assert_eq!(*class, LoopClass::XDoall);
}

#[test]
fn doacross_variants_parse() {
    for (kw, class) in [
        ("CDOACROSS", LoopClass::CDoacross),
        ("SDOACROSS", LoopClass::SDoacross),
        ("XDOACROSS", LoopClass::XDoacross),
    ] {
        let src = format!(
            "\n      SUBROUTINE S(A, N)\n      REAL A(N)\n      {kw} I = 2, N\n        A(I) = A(I-1)\n      END {kw}\n      END\n"
        );
        let f = parse_source(&src).unwrap_or_else(|e| panic!("{kw}: {e}"));
        let StmtKind::Do { class: c, .. } = &f.units[0].body[0].kind else { panic!() };
        assert_eq!(*c, class, "{kw}");
    }
}

#[test]
fn do_with_explicit_step() {
    let f = parse_free("subroutine s(a, n)\nreal a(n)\ndo i = n, 1, -2\na(i) = 0.0\nend do\nend\n")
        .unwrap();
    let StmtKind::Do { step, .. } = &f.units[0].body[0].kind else { panic!() };
    assert!(step.is_some());
}

#[test]
fn dowhile_parses() {
    let f = parse_free("subroutine s(x)\ndo while (x .gt. 1.0)\nx = x * 0.5\nend do\nend\n")
        .unwrap();
    assert!(matches!(f.units[0].body[0].kind, StmtKind::DoWhile { .. }));
}

// ---------------------------------------------------------------------
// declarations
// ---------------------------------------------------------------------

#[test]
fn process_common_is_global() {
    let src = "
      SUBROUTINE S
      PROCESS COMMON /SHARED/ X, Y(10)
      X = 1.0
      END
";
    let f = parse_source(src).expect("process common");
    let decl = f.units[0]
        .decls
        .iter()
        .find_map(|d| match &d.kind {
            DeclKind::Common { block, process, .. } => Some((block.clone(), *process)),
            _ => None,
        })
        .expect("common decl present");
    assert_eq!(decl.0.as_deref(), Some("shared"));
    assert!(decl.1);
}

#[test]
fn global_and_cluster_visibility_decls() {
    let src = "
      SUBROUTINE S(N)
      GLOBAL G
      CLUSTER C
      REAL G(100), C(100)
      G(1) = 1.0
      END
";
    let f = parse_source(src).expect("global/cluster decls");
    let vis: Vec<Visibility> = f.units[0]
        .decls
        .iter()
        .filter_map(|d| match &d.kind {
            DeclKind::Visibility { vis, .. } => Some(*vis),
            _ => None,
        })
        .collect();
    assert!(vis.contains(&Visibility::Global));
    assert!(vis.contains(&Visibility::Cluster));
}

#[test]
fn blank_common_forms() {
    for decl in ["COMMON X, Y", "COMMON // X, Y"] {
        let src = format!("\n      SUBROUTINE S\n      {decl}\n      X = 1.0\n      END\n");
        let f = parse_source(&src).unwrap_or_else(|e| panic!("{decl}: {e}"));
        let is_blank = f.units[0].decls.iter().any(|d| {
            matches!(&d.kind, DeclKind::Common { block: None, .. })
        });
        assert!(is_blank, "{decl} should be blank common");
    }
}

// ---------------------------------------------------------------------
// vector statements
// ---------------------------------------------------------------------

#[test]
fn strided_section_expression() {
    let f = parse_free("subroutine s(a, n)\nreal a(n)\na(1:n:2) = 0.0\nend\n").unwrap();
    let StmtKind::Assign { lhs, .. } = &f.units[0].body[0].kind else { panic!() };
    let sections = format!("{lhs:?}");
    assert!(sections.contains("Section"), "{sections}");
    assert!(sections.contains("stride: Some"), "{sections}");
}

#[test]
fn where_statement_parses() {
    let f = parse_free(
        "subroutine s(a, b, n)\nreal a(n), b(n)\nwhere (b(1:n) .gt. 0.0) a(1:n) = b(1:n)\nend\n",
    )
    .unwrap();
    assert!(matches!(f.units[0].body[0].kind, StmtKind::Where { .. }));
}

// ---------------------------------------------------------------------
// diagnostics
// ---------------------------------------------------------------------

#[test]
fn unclosed_do_is_an_error() {
    let err = parse_free("subroutine s(a, n)\nreal a(n)\ndo 10 i = 1, n\na(i) = 0.0\nend\n")
        .unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("10"), "should name the missing label: {msg}");
}

#[test]
fn mismatched_end_do_is_an_error() {
    assert!(parse_free("subroutine s\nx = 1.0\nend do\nend\n").is_err());
}

#[test]
fn assign_statement_is_rejected_with_unsupported() {
    let err =
        parse_free("subroutine s\nassign 10 to k\n10 continue\nend\n").unwrap_err();
    assert!(err.to_string().to_lowercase().contains("assign"));
}

#[test]
fn missing_then_is_an_error() {
    assert!(parse_free("subroutine s(x, y)\nif (x .gt. 0.0 then\ny = 1.0\nend if\nend\n").is_err());
}

#[test]
fn error_reports_line_number() {
    let err = parse_free("subroutine s\nx = (1.0\nend\n").unwrap_err();
    assert!(err.to_string().contains(':'), "span in message: {err}");
}
