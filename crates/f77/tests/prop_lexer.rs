//! Property tests for the lexer and the fixed-form card assembler.

use cedar_f77::lexer::{assemble_fixed_form, tokenize};
use cedar_f77::token::Tok;
use proptest::prelude::*;

/// Generate a random token that has an unambiguous textual rendering.
fn token_strategy() -> impl Strategy<Value = Tok> {
    prop_oneof![
        "[a-z][a-z0-9]{0,6}".prop_filter("avoid dot-operator words", |s| {
            !matches!(
                s.as_str(),
                "eq" | "ne" | "lt" | "le" | "gt" | "ge" | "and" | "or" | "not" | "eqv"
                    | "neqv" | "true" | "false"
            )
        })
        .prop_map(Tok::Ident),
        (0i64..1_000_000).prop_map(Tok::Int),
        Just(Tok::LParen),
        Just(Tok::RParen),
        Just(Tok::Comma),
        Just(Tok::Equals),
        Just(Tok::Plus),
        Just(Tok::Minus),
        Just(Tok::Star),
        Just(Tok::Slash),
        Just(Tok::Pow),
        Just(Tok::Colon),
        Just(Tok::Eq),
        Just(Tok::Ne),
        Just(Tok::Lt),
        Just(Tok::Le),
        Just(Tok::Gt),
        Just(Tok::Ge),
        Just(Tok::And),
        Just(Tok::Or),
        Just(Tok::Not),
        Just(Tok::Logical(true)),
        Just(Tok::Logical(false)),
    ]
}

proptest! {
    /// Rendering a token sequence with spaces and re-lexing returns the
    /// same sequence.
    #[test]
    fn tokens_round_trip(toks in prop::collection::vec(token_strategy(), 1..24)) {
        let text: Vec<String> = toks.iter().map(|t| t.to_string()).collect();
        let line = text.join(" ");
        let relexed = tokenize(&line, 1).unwrap_or_else(|e| panic!("{e}: `{line}`"));
        prop_assert_eq!(relexed, toks);
    }

    /// Fixed-form assembly: any statement split across continuation
    /// cards re-assembles to the same token stream.
    #[test]
    fn continuation_cards_reassemble(
        words in prop::collection::vec("[a-z][a-z0-9]{0,5}", 2..10),
        split in 1usize..8,
    ) {
        let split = split.min(words.len() - 1);
        let stmt = words.join(" + ");
        let one_line = format!("      X = {stmt}\n");
        let head = words[..split].join(" + ");
        let tail = words[split..].join(" + ");
        let two_lines = format!("      X = {head} +\n     &    {tail}\n");

        let a = assemble_fixed_form(&one_line).unwrap();
        let b = assemble_fixed_form(&two_lines).unwrap();
        prop_assert_eq!(a.len(), 1);
        prop_assert_eq!(b.len(), 1);
        let ta = tokenize(&a[0].text, 1).unwrap();
        let tb = tokenize(&b[0].text, 1).unwrap();
        prop_assert_eq!(ta, tb);
    }

    /// Real literals survive the round trip within floating tolerance.
    #[test]
    fn real_literals_lex_exactly(v in 0.0f64..1e6) {
        let text = format!("{v:?}");
        let toks = tokenize(&text, 1).unwrap();
        prop_assert_eq!(toks.len(), 1);
        match &toks[0] {
            Tok::Real { value, .. } => prop_assert_eq!(*value, v),
            Tok::Int(i) => prop_assert_eq!(*i as f64, v),
            other => prop_assert!(false, "unexpected token {:?}", other),
        }
    }
}
