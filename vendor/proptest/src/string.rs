//! Tiny regex-subset generator backing `&str` strategies.
//!
//! Supports the forms the workspace's tests use: literal characters,
//! character classes `[...]` with ranges (`a-z`, `0-9`) and literal
//! members, and `{m}` / `{m,n}` quantifiers on the preceding element.
//! Anything else panics loudly so a new pattern is noticed immediately.

use crate::test_runner::TestRng;

enum Element {
    /// A set of candidate characters, one picked per repetition.
    Class(Vec<char>),
    /// A literal character.
    Lit(char),
}

struct Piece {
    element: Element,
    min: usize,
    max: usize,
}

fn parse(pattern: &str) -> Vec<Piece> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut pieces = Vec::new();
    let mut k = 0;
    while k < chars.len() {
        let element = match chars[k] {
            '[' => {
                let close = chars[k + 1..]
                    .iter()
                    .position(|&c| c == ']')
                    .unwrap_or_else(|| panic!("unclosed `[` in pattern `{pattern}`"))
                    + k
                    + 1;
                let mut set = Vec::new();
                let body = &chars[k + 1..close];
                let mut j = 0;
                while j < body.len() {
                    if j + 2 < body.len() && body[j + 1] == '-' {
                        let (lo, hi) = (body[j], body[j + 2]);
                        assert!(lo <= hi, "bad range {lo}-{hi} in `{pattern}`");
                        for c in lo..=hi {
                            set.push(c);
                        }
                        j += 3;
                    } else {
                        set.push(body[j]);
                        j += 1;
                    }
                }
                assert!(!set.is_empty(), "empty class in `{pattern}`");
                k = close + 1;
                Element::Class(set)
            }
            '{' | '}' | ']' | '*' | '+' | '?' | '|' | '\\' | '(' | ')' => {
                panic!("unsupported regex construct `{}` in `{pattern}`", chars[k])
            }
            c => {
                k += 1;
                Element::Lit(c)
            }
        };
        // Optional quantifier.
        let (min, max) = if k < chars.len() && chars[k] == '{' {
            let close = chars[k + 1..]
                .iter()
                .position(|&c| c == '}')
                .unwrap_or_else(|| panic!("unclosed `{{` in pattern `{pattern}`"))
                + k
                + 1;
            let body: String = chars[k + 1..close].iter().collect();
            k = close + 1;
            match body.split_once(',') {
                Some((m, n)) => (
                    m.trim().parse().expect("bad quantifier"),
                    n.trim().parse().expect("bad quantifier"),
                ),
                None => {
                    let m: usize = body.trim().parse().expect("bad quantifier");
                    (m, m)
                }
            }
        } else {
            (1, 1)
        };
        assert!(min <= max, "bad quantifier {{{min},{max}}} in `{pattern}`");
        pieces.push(Piece { element, min, max });
    }
    pieces
}

/// Generate a random string matching the (subset) pattern.
pub fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let mut out = String::new();
    for piece in parse(pattern) {
        let count = piece.min + rng.below((piece.max - piece.min + 1) as u64) as usize;
        for _ in 0..count {
            match &piece.element {
                Element::Lit(c) => out.push(*c),
                Element::Class(set) => out.push(set[rng.below(set.len() as u64) as usize]),
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identifier_pattern() {
        let mut rng = TestRng::new(11);
        for _ in 0..200 {
            let s = generate_from_pattern("[a-z][a-z0-9]{0,6}", &mut rng);
            assert!(!s.is_empty() && s.len() <= 7, "{s}");
            assert!(s.chars().next().unwrap().is_ascii_lowercase());
            assert!(s.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit()));
        }
    }

    #[test]
    fn class_with_literals_and_spaces() {
        let mut rng = TestRng::new(5);
        for _ in 0..100 {
            let s = generate_from_pattern("[ 0-9a-zC*!&=().,+]{0,80}", &mut rng);
            assert!(s.len() <= 80);
            for c in s.chars() {
                assert!(
                    " *!&=().,+C".contains(c) || c.is_ascii_digit() || c.is_ascii_lowercase(),
                    "unexpected `{c}`"
                );
            }
        }
    }

    #[test]
    fn single_class_defaults_to_one_char() {
        let mut rng = TestRng::new(6);
        for _ in 0..50 {
            let s = generate_from_pattern("[&1x]", &mut rng);
            assert_eq!(s.chars().count(), 1);
            assert!("&1x".contains(&s));
        }
    }
}
