//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so the real crate cannot
//! be fetched. This vendored replacement implements the subset of the
//! proptest API this workspace uses — `proptest!`, `prop_oneof!`,
//! `prop_assert*!`, `Just`, numeric-range / regex-class / tuple / vec
//! strategies, `prop_map` / `prop_filter` / `prop_recursive`, and
//! `ProptestConfig::with_cases` — with a deterministic per-test RNG.
//!
//! Differences from the real crate (acceptable for this workspace):
//!
//! * no shrinking: a failing case reports the generated inputs verbatim;
//! * regex strategies support only character classes with ranges and
//!   `{m}` / `{m,n}` quantifiers (the only forms used here);
//! * cases are seeded from the test's module path, so runs are fully
//!   reproducible and independent of execution order.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// The prelude, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Namespace mirror of `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Fail the property with a message unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Fail the property unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`: {}",
            left,
            right,
            format!($($fmt)*)
        );
    }};
}

/// Fail the property if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: `left != right`\n  both: `{:?}`",
            left
        );
    }};
}

/// Uniform choice among several strategies with the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::union(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Define property tests: each `#[test] fn name(arg in strategy, ...)`
/// runs the body over `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (@run ($config:expr)
        $($(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let seed = $crate::test_runner::seed_from_name(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for case in 0..config.cases {
                    let mut rng = $crate::test_runner::TestRng::new(
                        seed ^ (case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
                    );
                    $(let $arg = $crate::strategy::Strategy::generate(&$strategy, &mut rng);)+
                    let describe = || {
                        let mut s = ::std::string::String::new();
                        $(s.push_str(&format!(
                            "  {} = {:?}\n", stringify!($arg), &$arg
                        ));)+
                        s
                    };
                    let inputs = describe();
                    let result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    match result {
                        Ok(()) => {}
                        Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                        Err($crate::test_runner::TestCaseError::Fail(msg)) => panic!(
                            "proptest case {case}/{} failed: {msg}\ninputs:\n{inputs}",
                            config.cases
                        ),
                    }
                }
            }
        )*
    };
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(
            @run ($crate::test_runner::ProptestConfig::default()) $($rest)*
        );
    };
}
