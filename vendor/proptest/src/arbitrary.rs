//! `any::<T>()` for the primitive types the workspace uses.

use crate::strategy::BoxedStrategy;
use crate::test_runner::TestRng;
use std::fmt::Debug;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Debug + Clone + 'static {
    /// Draw one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The canonical strategy for `T` (mirrors `proptest::arbitrary::any`).
pub fn any<T: Arbitrary>() -> BoxedStrategy<T> {
    BoxedStrategy::from_fn(T::arbitrary)
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.bool()
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, sign-symmetric, spanning several magnitudes — good
        // enough for property inputs without NaN/Inf plumbing.
        (rng.unit_f64() - 0.5) * 2e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::Strategy;

    #[test]
    fn bool_hits_both_sides() {
        let s = any::<bool>();
        let mut rng = TestRng::new(1);
        let vals: Vec<bool> = (0..64).map(|_| s.generate(&mut rng)).collect();
        assert!(vals.iter().any(|&b| b) && vals.iter().any(|&b| !b));
    }
}
