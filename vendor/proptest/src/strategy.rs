//! The `Strategy` trait, `Just`, boxed strategies, and combinators.

use crate::test_runner::TestRng;
use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// A generator of test values.
///
/// Unlike the real crate there is no value tree and no shrinking: a
/// strategy is just a deterministic function of the RNG state.
pub trait Strategy: Clone + 'static {
    /// The type of generated values.
    type Value: Debug + Clone + 'static;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Type-erase the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized,
    {
        let s = self;
        BoxedStrategy::from_fn(move |rng| s.generate(rng))
    }

    /// Map generated values through a function.
    fn prop_map<U, F>(self, f: F) -> BoxedStrategy<U>
    where
        U: Debug + Clone + 'static,
        F: Fn(Self::Value) -> U + 'static,
        Self: Sized,
    {
        let s = self;
        BoxedStrategy::from_fn(move |rng| f(s.generate(rng)))
    }

    /// Keep only values passing the predicate; retries generation, and
    /// panics (in lieu of proptest's global rejection cap) if the
    /// predicate rejects 1000 draws in a row.
    fn prop_filter<F>(self, whence: impl Into<String>, f: F) -> BoxedStrategy<Self::Value>
    where
        F: Fn(&Self::Value) -> bool + 'static,
        Self: Sized,
    {
        let s = self;
        let whence = whence.into();
        BoxedStrategy::from_fn(move |rng| {
            for _ in 0..1000 {
                let v = s.generate(rng);
                if f(&v) {
                    return v;
                }
            }
            panic!("prop_filter rejected 1000 consecutive values: {whence}")
        })
    }

    /// Build recursive values: `self` is the leaf strategy, and `f`
    /// wraps an inner strategy into a one-level-deeper one. `depth`
    /// bounds the recursion; the size/branch hints are accepted for API
    /// compatibility but unused.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        R: Strategy<Value = Self::Value>,
        F: Fn(BoxedStrategy<Self::Value>) -> R + 'static,
        Self: Sized,
    {
        let mut layer = self.clone().boxed();
        for _ in 0..depth {
            // Each layer picks leaves half the time so expected depth
            // stays small even when `depth` is large.
            layer = union(vec![self.clone().boxed(), f(layer).boxed()]);
        }
        layer
    }
}

/// A type-erased, reference-counted strategy.
pub struct BoxedStrategy<T> {
    generator: Rc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> BoxedStrategy<T> {
    /// Wrap a generator function.
    pub fn from_fn(f: impl Fn(&mut TestRng) -> T + 'static) -> Self {
        BoxedStrategy { generator: Rc::new(f) }
    }
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy { generator: Rc::clone(&self.generator) }
    }
}

impl<T: Debug + Clone + 'static> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.generator)(rng)
    }
    fn boxed(self) -> BoxedStrategy<T> {
        self
    }
}

/// A strategy producing exactly one value (mirrors `proptest::strategy::Just`).
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Debug + Clone + 'static> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among strategies of the same value type (backs
/// `prop_oneof!`).
pub fn union<T: Debug + Clone + 'static>(arms: Vec<BoxedStrategy<T>>) -> BoxedStrategy<T> {
    assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
    BoxedStrategy::from_fn(move |rng| {
        let k = rng.below(arms.len() as u64) as usize;
        arms[k].generate(rng)
    })
}

// ---- numeric ranges ----

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                rng.int_in(self.start as i128, self.end as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                rng.int_in(lo as i128, hi as i128 + 1) as $t
            }
        }
    )*};
}

int_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

// ---- regex-class string strategies ----

impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::generate_from_pattern(self, rng)
    }
}

// ---- tuples ----

macro_rules! tuple_strategy {
    ($(($($s:ident $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A 0);
    (A 0, B 1);
    (A 0, B 1, C 2);
    (A 0, B 1, C 2, D 3);
    (A 0, B 1, C 2, D 3, E 4);
    (A 0, B 1, C 2, D 3, E 4, F 5);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = TestRng::new(42);
        for _ in 0..200 {
            let v = (1usize..5).generate(&mut rng);
            assert!((1..5).contains(&v));
            let w = (-3i64..=3).generate(&mut rng);
            assert!((-3..=3).contains(&w));
            let (a, b) = ((0u32..10), (0.0f64..1.0)).generate(&mut rng);
            assert!(a < 10 && (0.0..1.0).contains(&b));
        }
    }

    #[test]
    fn oneof_covers_all_arms() {
        let s = union(vec![Just(1u8).boxed(), Just(2u8).boxed(), Just(3u8).boxed()]);
        let mut rng = TestRng::new(7);
        let mut seen = [false; 4];
        for _ in 0..100 {
            seen[s.generate(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    #[test]
    fn recursive_terminates() {
        let leaf = Just("x".to_string()).boxed();
        let s = leaf.prop_recursive(4, 48, 2, |inner| {
            (inner.clone(), inner).prop_map(|(a, b)| format!("({a}+{b})"))
        });
        let mut rng = TestRng::new(9);
        for _ in 0..50 {
            let v = s.generate(&mut rng);
            assert!(v.contains('x'));
        }
    }

    #[test]
    fn filter_retries() {
        let s = (0u32..100).prop_filter("even", |v| v % 2 == 0);
        let mut rng = TestRng::new(3);
        for _ in 0..100 {
            assert_eq!(s.generate(&mut rng) % 2, 0);
        }
    }
}
