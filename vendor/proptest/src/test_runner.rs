//! Test configuration, error type, and the deterministic RNG.

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real crate defaults to 256; interpreted-simulator tests
        // here are comparatively expensive, so default lower. Tests that
        // need more ask via `with_cases`.
        ProptestConfig { cases: 64 }
    }
}

/// Why a test case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The property failed (assertion message).
    Fail(String),
    /// The input was rejected (filter); not a failure.
    Reject(String),
}

impl TestCaseError {
    /// A failing case with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
    /// A rejected (skipped) case.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "test case failed: {m}"),
            TestCaseError::Reject(m) => write!(f, "input rejected: {m}"),
        }
    }
}

/// FNV-1a over the test name: a stable per-test base seed.
pub fn seed_from_name(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// SplitMix64: tiny, fast, and plenty for test-input generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator with the given seed.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`; `bound` must be positive.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Fair coin.
    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// Uniform signed integer in `[lo, hi)` (i128 to avoid overflow).
    pub fn int_in(&mut self, lo: i128, hi: i128) -> i128 {
        debug_assert!(lo < hi);
        let span = (hi - lo) as u128;
        lo + (self.next_u64() as u128 % span) as i128
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_spread() {
        let mut a = TestRng::new(seed_from_name("x"));
        let mut b = TestRng::new(seed_from_name("x"));
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(va, vb);
        let mut c = TestRng::new(seed_from_name("y"));
        assert_ne!(va[0], c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = TestRng::new(1);
        for _ in 0..1000 {
            let v = r.int_in(-5, 7);
            assert!((-5..7).contains(&v));
            let u = r.unit_f64();
            assert!((0.0..1.0).contains(&u));
            assert!(r.below(3) < 3);
        }
    }
}
