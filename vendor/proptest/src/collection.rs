//! Collection strategies (`prop::collection::vec`).

use crate::strategy::{BoxedStrategy, Strategy};

/// Size specification for collection strategies: an exact length, a
/// half-open range, or an inclusive range.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    /// Minimum length (inclusive).
    pub min: usize,
    /// Maximum length (inclusive).
    pub max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec size range");
        SizeRange { min: r.start, max: r.end - 1 }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        SizeRange { min: *r.start(), max: *r.end() }
    }
}

/// A vector of values from `element`, with a length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BoxedStrategy<Vec<S::Value>> {
    let size = size.into();
    BoxedStrategy::from_fn(move |rng| {
        let len = size.min + rng.below((size.max - size.min + 1) as u64) as usize;
        (0..len).map(|_| element.generate(rng)).collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::Just;
    use crate::test_runner::TestRng;

    #[test]
    fn lengths_respect_spec() {
        let mut rng = TestRng::new(3);
        let exact = vec(Just(1u8), 4);
        let ranged = vec(Just(1u8), 1..5);
        for _ in 0..100 {
            assert_eq!(exact.generate(&mut rng).len(), 4);
            let n = ranged.generate(&mut rng).len();
            assert!((1..5).contains(&n));
        }
    }
}
