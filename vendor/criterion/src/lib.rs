//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access, so the real crate
//! cannot be fetched. This replacement keeps the workspace's benches
//! compiling and runnable: it times each `bench_function` over a small
//! number of wall-clock samples and prints a median + spread line, with
//! none of criterion's statistics, plotting, or baseline storage.

use std::time::Instant;

/// Throughput annotation (printed alongside timings).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        println!("group: {name}");
        BenchmarkGroup {
            sample_size: self.sample_size,
            throughput: None,
        }
    }
}

/// A group of related benchmarks.
pub struct BenchmarkGroup {
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Annotate subsequent benchmarks with a throughput figure.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Time one benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut samples: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut b = Bencher { elapsed_ns: 0.0, iters: 0 };
            f(&mut b);
            if b.iters > 0 {
                samples.push(b.elapsed_ns / b.iters as f64);
            }
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        let median = samples.get(samples.len() / 2).copied().unwrap_or(0.0);
        let lo = samples.first().copied().unwrap_or(0.0);
        let hi = samples.last().copied().unwrap_or(0.0);
        let mut line = format!(
            "  {id}: {} [{} .. {}]",
            fmt_ns(median),
            fmt_ns(lo),
            fmt_ns(hi)
        );
        if let Some(t) = self.throughput {
            let (amount, unit) = match t {
                Throughput::Bytes(n) => (n as f64, "MB/s"),
                Throughput::Elements(n) => (n as f64, "Melem/s"),
            };
            if median > 0.0 {
                line.push_str(&format!(
                    "  {:.1} {unit}",
                    amount / median * 1e9 / 1e6
                ));
            }
        }
        println!("{line}");
        self
    }

    /// End the group (printing nothing extra).
    pub fn finish(&mut self) {}
}

/// Passed to the benchmark closure; its `iter` runs and times the body.
pub struct Bencher {
    elapsed_ns: f64,
    iters: u64,
}

impl Bencher {
    /// Run the routine once per sample, timing it.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        let out = routine();
        self.elapsed_ns += start.elapsed().as_secs_f64() * 1e9;
        self.iters += 1;
        std::hint::black_box(out);
    }
}

/// Re-export so `criterion::black_box` keeps working.
pub use std::hint::black_box;

/// Collect benchmark functions into a runner (mirrors criterion's macro).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.2} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.2} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_times_without_panicking() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("smoke");
        g.sample_size(3);
        g.throughput(Throughput::Elements(10));
        let mut ran = 0u32;
        g.bench_function("noop", |b| b.iter(|| ran += 1));
        g.finish();
        assert!(ran >= 3);
    }

    #[test]
    fn ns_formatting() {
        assert_eq!(fmt_ns(500.0), "500 ns");
        assert_eq!(fmt_ns(2_500.0), "2.50 µs");
        assert_eq!(fmt_ns(3_000_000.0), "3.00 ms");
        assert_eq!(fmt_ns(1.5e9), "1.50 s");
    }
}
