//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access, so the real crate
//! cannot be fetched. This replacement keeps the workspace's benches
//! compiling and runnable: it times each `bench_function` over a small
//! number of wall-clock samples and prints a median + spread line, with
//! none of criterion's statistics, plotting, or baseline storage.
//!
//! Beyond the print-only surface of the real crate, every measurement
//! is also recorded in a process-wide [`BenchReport`]: call
//! [`report`] for a snapshot, or set `CRITERION_JSON=path` to have
//! [`criterion_main!`] write the full report as JSON on exit.

use std::sync::Mutex;
use std::time::Instant;

/// Throughput annotation (printed alongside timings).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// One recorded measurement: a `bench_function` call's wall-time
/// summary over its samples.
#[derive(Debug, Clone)]
pub struct Sample {
    /// Group the benchmark ran under.
    pub group: String,
    /// Benchmark id within the group.
    pub id: String,
    /// Median nanoseconds per iteration.
    pub median_ns: f64,
    /// Fastest sample (ns/iter).
    pub min_ns: f64,
    /// Slowest sample (ns/iter).
    pub max_ns: f64,
    /// Samples taken.
    pub samples: usize,
}

static RECORDED: Mutex<Vec<Sample>> = Mutex::new(Vec::new());

/// Wall-time report accumulated across every group run so far.
#[derive(Debug, Clone, Default)]
pub struct BenchReport {
    /// Measurements in execution order.
    pub samples: Vec<Sample>,
}

impl BenchReport {
    /// Sum of median wall times, in seconds — a single scalar for
    /// "how long does one pass over everything take".
    pub fn total_median_s(&self) -> f64 {
        self.samples.iter().map(|s| s.median_ns).sum::<f64>() / 1e9
    }

    /// Serialize as JSON (no external dependencies; ids are escaped).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"schema\": \"criterion-stub-v1\",\n");
        out.push_str("  \"samples\": [\n");
        for (k, s) in self.samples.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"group\": \"{}\", \"id\": \"{}\", \"median_ns\": {:.1}, \
                 \"min_ns\": {:.1}, \"max_ns\": {:.1}, \"samples\": {}}}{}\n",
                escape(&s.group),
                escape(&s.id),
                s.median_ns,
                s.min_ns,
                s.max_ns,
                s.samples,
                if k + 1 < self.samples.len() { "," } else { "" }
            ));
        }
        out.push_str("  ],\n");
        out.push_str(&format!(
            "  \"total_median_s\": {:.6}\n}}\n",
            self.total_median_s()
        ));
        out
    }

    /// Write the JSON report to `path`.
    pub fn write_json(&self, path: &str) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }
}

/// Snapshot of every measurement recorded so far in this process.
pub fn report() -> BenchReport {
    BenchReport { samples: RECORDED.lock().unwrap().clone() }
}

/// If `CRITERION_JSON` is set, write the accumulated report there.
/// Called by [`criterion_main!`] after all groups finish; harmless to
/// call directly.
pub fn write_env_report() {
    if let Ok(path) = std::env::var("CRITERION_JSON") {
        report()
            .write_json(&path)
            .unwrap_or_else(|e| panic!("CRITERION_JSON={path}: {e}"));
        eprintln!("criterion: wrote {path}");
    }
}

fn escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            '\n' => "\\n".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        println!("group: {name}");
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            throughput: None,
        }
    }
}

/// A group of related benchmarks.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Annotate subsequent benchmarks with a throughput figure.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Time one benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut samples: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut b = Bencher { elapsed_ns: 0.0, iters: 0 };
            f(&mut b);
            if b.iters > 0 {
                samples.push(b.elapsed_ns / b.iters as f64);
            }
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        let median = samples.get(samples.len() / 2).copied().unwrap_or(0.0);
        let lo = samples.first().copied().unwrap_or(0.0);
        let hi = samples.last().copied().unwrap_or(0.0);
        RECORDED.lock().unwrap().push(Sample {
            group: self.name.clone(),
            id: id.to_string(),
            median_ns: median,
            min_ns: lo,
            max_ns: hi,
            samples: samples.len(),
        });
        let mut line = format!(
            "  {id}: {} [{} .. {}]",
            fmt_ns(median),
            fmt_ns(lo),
            fmt_ns(hi)
        );
        if let Some(t) = self.throughput {
            let (amount, unit) = match t {
                Throughput::Bytes(n) => (n as f64, "MB/s"),
                Throughput::Elements(n) => (n as f64, "Melem/s"),
            };
            if median > 0.0 {
                line.push_str(&format!(
                    "  {:.1} {unit}",
                    amount / median * 1e9 / 1e6
                ));
            }
        }
        println!("{line}");
        self
    }

    /// End the group (printing nothing extra).
    pub fn finish(&mut self) {}
}

/// Passed to the benchmark closure; its `iter` runs and times the body.
pub struct Bencher {
    elapsed_ns: f64,
    iters: u64,
}

impl Bencher {
    /// Run the routine once per sample, timing it.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        let out = routine();
        self.elapsed_ns += start.elapsed().as_secs_f64() * 1e9;
        self.iters += 1;
        std::hint::black_box(out);
    }
}

/// Re-export so `criterion::black_box` keeps working.
pub use std::hint::black_box;

/// Collect benchmark functions into a runner (mirrors criterion's macro).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emit `main` running the given groups, then honoring `CRITERION_JSON`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
            $crate::write_env_report();
        }
    };
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.2} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.2} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_times_without_panicking() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("smoke");
        g.sample_size(3);
        g.throughput(Throughput::Elements(10));
        let mut ran = 0u32;
        g.bench_function("noop", |b| b.iter(|| ran += 1));
        g.finish();
        assert!(ran >= 3);
    }

    #[test]
    fn report_records_and_serializes() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("json \"grp\"");
        g.sample_size(2);
        g.bench_function("spin", |b| b.iter(|| std::hint::black_box(1 + 1)));
        g.finish();
        let r = report();
        let s = r
            .samples
            .iter()
            .find(|s| s.id == "spin")
            .expect("sample recorded");
        assert_eq!(s.samples, 2);
        assert!(s.min_ns <= s.median_ns && s.median_ns <= s.max_ns);
        let json = r.to_json();
        assert!(json.contains("\"schema\": \"criterion-stub-v1\""));
        assert!(json.contains("json \\\"grp\\\""), "group name escaped: {json}");
        assert!(json.contains("\"total_median_s\""));
        assert!(json.ends_with("}\n"));
    }

    #[test]
    fn ns_formatting() {
        assert_eq!(fmt_ns(500.0), "500 ns");
        assert_eq!(fmt_ns(2_500.0), "2.50 µs");
        assert_eq!(fmt_ns(3_000_000.0), "3.00 ms");
        assert_eq!(fmt_ns(1.5e9), "1.50 s");
    }
}
