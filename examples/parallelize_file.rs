//! A command-line front door to the restructurer: read fixed-form
//! Fortran 77, emit Cedar Fortran.
//!
//! ```text
//! cargo run --release --example parallelize_file -- [FILE.f] [flags]
//!
//!   FILE.f        fixed-form Fortran 77 source (reads a built-in MDG
//!                 sample when omitted)
//!   --manual      enable the §4.1 "manually improved" technique set
//!   --fx80        target the Alliant FX/80 (cluster classes only)
//!   --report      print per-loop decisions instead of the output code
//!   --simulate    also run serial vs. restructured on the Cedar model
//! ```

use cedar_restructure::{restructure, PassConfig, Target};
use cedar_sim::MachineConfig;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flags: Vec<&str> = args.iter().map(|s| s.as_str()).filter(|s| s.starts_with("--")).collect();
    let file = args.iter().find(|s| !s.starts_with("--"));

    let src = match file {
        Some(path) => std::fs::read_to_string(path)
            .unwrap_or_else(|e| die(&format!("cannot read {path}: {e}"))),
        None => {
            eprintln!("(no input file given; using the built-in MDG sample)");
            cedar_workloads::perfect::mdg().source
        }
    };

    let program = match cedar_ir::compile_source(&src) {
        Ok(p) => p,
        Err(e) => die(&format!("front end: {e}")),
    };

    let mut cfg = if flags.contains(&"--manual") {
        PassConfig::manual_improved()
    } else {
        PassConfig::automatic_1991()
    };
    if flags.contains(&"--fx80") {
        cfg = cfg.for_target(Target::Fx80);
    }

    let result = restructure(&program, &cfg);
    if flags.contains(&"--report") {
        print!("{}", result.report);
    } else {
        print!("{}", cedar_ir::print::print_program(&result.program));
    }

    if flags.contains(&"--simulate") {
        let mc = if flags.contains(&"--fx80") {
            MachineConfig::fx80_scaled()
        } else {
            MachineConfig::cedar_config1_scaled()
        };
        let serial = cedar_sim::run(&program, mc.clone())
            .unwrap_or_else(|e| die(&format!("serial simulation: {e}")));
        let par = cedar_sim::run(&result.program, mc)
            .unwrap_or_else(|e| die(&format!("parallel simulation: {e}")));
        eprintln!(
            "serial {:.0} cycles, restructured {:.0} cycles, speedup {:.2}x",
            serial.cycles(),
            par.cycles(),
            serial.cycles() / par.cycles()
        );
    }
}

fn die(msg: &str) -> ! {
    eprintln!("parallelize_file: {msg}");
    std::process::exit(1);
}
