//! §2.2.2 of the paper: subroutine-level tasking with `ctskstart` /
//! `mtskstart` / `tskwait`.
//!
//! Cedar Fortran offers two ways to fork a subroutine call as a
//! concurrent task: `ctskstart` builds a complete Fortran environment
//! for the task ("a costly operation"), while the microtasking library's
//! `mtskstart` reuses pre-spawned helper tasks — cheap, but forbidden
//! from using synchronization (the paper's deadlock rule, which the
//! simulator enforces).
//!
//! This example runs the same two-phase pipeline three ways — serial
//! calls, `ctskstart` tasks, `mtskstart` tasks — and prints the startup
//! cost asymmetry; then demonstrates the deadlock rule being rejected.
//!
//! Run with: `cargo run --release --example subroutine_tasking`

use cedar_sim::MachineConfig;

fn pipeline(fork: &str) -> String {
    let (call_a, call_b, wait) = match fork {
        "serial" => (
            "      CALL SMOOTH(A, N, 0.25)".to_string(),
            "      CALL SMOOTH(B, N, 0.50)".to_string(),
            String::new(),
        ),
        f => (
            format!("      CALL {}(SMOOTH, A, N, 0.25)", f.to_uppercase()),
            format!("      CALL {}(SMOOTH, B, N, 0.50)", f.to_uppercase()),
            "      CALL TSKWAIT".to_string(),
        ),
    };
    format!(
        "
      PROGRAM TASKED
      PARAMETER (N = 4096)
      REAL A(N), B(N), CHKSUM
      GLOBAL A, B
      DO 10 I = 1, N
        A(I) = 0.001 * REAL(I)
        B(I) = 1.0 - 0.0005 * REAL(I)
   10 CONTINUE
{call_a}
{call_b}
{wait}
      CHKSUM = A(N) + B(N)
      END

      SUBROUTINE SMOOTH(X, N, W)
      INTEGER N
      REAL X(N), W
      DO 30 K = 1, 8
        DO 20 I = 2, N - 1
          X(I) = (1.0 - W) * X(I) + 0.5 * W * (X(I - 1) + X(I + 1))
   20   CONTINUE
   30 CONTINUE
      END
"
    )
}

fn main() {
    let mc = MachineConfig::cedar_config1();
    let mut results = Vec::new();
    for fork in ["serial", "ctskstart", "mtskstart"] {
        let program = cedar_ir::compile_source(&pipeline(fork)).expect("valid source");
        let sim = cedar_sim::run(&program, mc.clone()).expect("run");
        results.push((fork, sim.cycles(), sim.read_f64("chksum").unwrap()[0]));
    }

    // All three must compute the same values (tasks write disjoint arrays).
    let base = results[0].2;
    for (fork, _, chk) in &results {
        assert!(
            (chk - base).abs() <= 1e-6 * base.abs(),
            "{fork}: {chk} vs {base}"
        );
    }

    println!("two independent smoothing passes, forked three ways:");
    for (fork, cycles, _) in &results {
        println!("  {fork:<10} {cycles:>10.0} cycles");
    }
    let ctsk = results[1].1;
    let mtsk = results[2].1;
    println!(
        "\nmtskstart saves {:.0} cycles over ctskstart per run — the\n\
         helper-task pool skips building a full Fortran environment\n\
         (ctskstart start cost {:.0} vs mtskstart {:.0}).",
        ctsk - mtsk,
        mc.ctsk_start,
        mc.mtsk_start
    );

    // The §2.2.2 deadlock rule: a task forked through the microtasking
    // library may not synchronize (it could be queued behind the very
    // task it waits for). The simulator rejects it up front.
    let bad = "
      PROGRAM BAD
      REAL X
      CALL MTSKSTART(UPD, X)
      CALL TSKWAIT
      END

      SUBROUTINE UPD(X)
      REAL X
      CALL LOCK(1)
      X = X + 1.0
      CALL UNLOCK(1)
      END
";
    let program = cedar_ir::compile_source(bad).expect("parses fine");
    match cedar_sim::run(&program, mc) {
        Err(e) => println!("\ndeadlock rule enforced: {e}"),
        Ok(_) => panic!("synchronization inside an mtskstart thread must be rejected"),
    }
}
