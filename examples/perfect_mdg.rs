//! The MDG story end-to-end (paper §4.1.2–4.1.3): "very little speedup
//! is possible" without array privatization and multi-statement
//! reductions.
//!
//! Runs the MDG proxy under the automatic 1991 pipeline and under the
//! manually-improved technique set, prints both decision reports, and
//! compares simulated speedups — reproducing one row of Table 2.
//!
//! Run with: `cargo run --release --example perfect_mdg`

use cedar_restructure::{restructure, PassConfig};
use cedar_sim::MachineConfig;

fn main() {
    let w = cedar_workloads::perfect::mdg();
    let program = w.compile();
    let mc = MachineConfig::cedar_config1_scaled();

    let serial = cedar_sim::run(&program, mc.clone()).expect("serial");
    println!("serial: {:.0} cycles\n", serial.cycles());

    for (label, cfg) in [
        ("automatic (1991 restructurer)", PassConfig::automatic_1991()),
        ("manually improved (§4.1 techniques)", PassConfig::manual_improved()),
    ] {
        let r = restructure(&program, &cfg);
        println!("=== {label} ===");
        print!("{}", r.report);
        let sim = cedar_sim::run(&r.program, mc.clone()).expect("restructured");
        // Same answers?
        let a = serial.read_f64("chksum").unwrap()[0];
        let b = sim.read_f64("chksum").unwrap()[0];
        assert!((a - b).abs() <= 1e-3 * a.abs(), "checksum mismatch: {a} vs {b}");
        println!(
            "cycles: {:.0}   speedup over serial: {:.2}x\n",
            sim.cycles(),
            serial.cycles() / sim.cycles()
        );
    }

    println!(
        "Paper Table 2 row (Cedar): automatic 1.0x, manually improved 20.6x —\n\
         the manual/automatic *gap* is the reproduced claim: array privatization\n\
         plus multi-statement array reductions unlock MDG's major loop."
    );
}
