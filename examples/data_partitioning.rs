//! Data placement on the Cedar hierarchy (paper §4.2.2–4.2.3): sweep
//! the Conjugate Gradient algorithm over 1–4 clusters under two
//! placement strategies — everything in global memory vs. partitioned
//! across the cluster memories — reproducing Figure 8's two curves.
//!
//! Run with: `cargo run --release --example data_partitioning`

use cedar_restructure::{restructure, PassConfig, Target};
use cedar_sim::MachineConfig;

fn main() {
    let w = cedar_workloads::linalg::cg(384);
    let program = w.compile();

    // Reference: optimized for one cluster, data in cluster memory.
    let mut base_cfg = PassConfig::manual_improved().for_target(Target::Fx80);
    base_cfg.globalize = false;
    let base = restructure(&program, &base_cfg).program;
    let base_sim = cedar_sim::run(&base, MachineConfig::cedar_config1().with_clusters(1))
        .expect("baseline");
    let t0 = region(&base_sim);
    println!("baseline (1 cluster, cluster memory): {t0:.0} cycles\n");
    println!("{:<28} {:>9} {:>9} {:>9} {:>9}", "strategy", "1 cl", "2 cl", "3 cl", "4 cl");

    for (label, partition) in [("global-memory placement", false), ("data distribution", true)] {
        let mut cfg = PassConfig::manual_improved();
        cfg.data_partitioning = partition;
        let prog = restructure(&program, &cfg).program;
        let mut row = format!("{label:<28}");
        for clusters in 1..=4 {
            let mc = MachineConfig::cedar_config1().with_clusters(clusters);
            let sim = cedar_sim::run(&prog, mc).expect("variant");
            row.push_str(&format!(" {:>9.2}", t0 / region(&sim)));
        }
        println!("{row}");
    }
    println!(
        "\nShape to observe (paper Fig. 8): the global curve rises then\n\
         flattens as the interconnect saturates; the distribution curve\n\
         starts below it and scales near-linearly, crossing above by\n\
         three to four clusters."
    );
}

/// Timer-region cycles (the workloads bracket their kernels with
/// CALL TSTART / CALL TSTOP).
fn region(sim: &cedar_sim::Simulator<'_>) -> f64 {
    if sim.stats.region_cycles > 0.0 {
        sim.stats.region_cycles
    } else {
        sim.cycles()
    }
}
