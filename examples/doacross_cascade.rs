//! Figure 4 of the paper: a recurrence loop run as a `CDOACROSS` with
//! cascade (await/advance) synchronization.
//!
//! The loop below carries a true dependence through `A` — iteration `i`
//! reads `A(i-1)` — so it can never be a DOALL. But most of each
//! iteration's work (the smoothing sweep that produces `C`) is
//! independent. The restructurer fences only the recurrence statement
//! between `await`/`advance` pairs (§3.3), so iterations overlap
//! everywhere except the fenced region, exactly as the paper's Figure 4
//! sketches:
//!
//! ```fortran
//!       CDOACROSS i = 2, n
//!         call await(1, i - 1)
//!         a(i) = 0.5 * a(i-1) + b(i)      ! synchronized recurrence
//!         call advance(1)
//!         ... independent smoothing work ...
//!       END DO
//! ```
//!
//! Run with: `cargo run --release --example doacross_cascade`

use cedar_restructure::{restructure, LoopDecision, PassConfig};
use cedar_sim::MachineConfig;

const SRC: &str = "
      PROGRAM CASCAD
      PARAMETER (N = 2048, M = 4)
      REAL A(N), B(N), C(N), CHKSUM
      DO 10 I = 1, N
        B(I) = 1.0 + 0.0001 * REAL(I)
        C(I) = 0.0
   10 CONTINUE
      A(1) = 1.0
      DO 20 I = 2, N
        A(I) = 0.5 * A(I-1) + B(I)
        S = 0.0
        T = B(I)
        DO 15 J = 1, M
          T = 0.5 * T + 0.125
          S = S + T * T
   15   CONTINUE
        C(I) = S / REAL(M)
   20 CONTINUE
      CHKSUM = 0.0
      DO 30 I = 1, N
        CHKSUM = CHKSUM + A(I) + C(I)
   30 CONTINUE
      END
";

fn main() {
    let program = cedar_ir::compile_source(SRC).expect("valid Fortran 77");

    let result = restructure(&program, &PassConfig::automatic_1991());
    println!("=== restructurer decisions ===\n{}", result.report);

    // The recurrence loop must have been turned into a DOACROSS, not a
    // DOALL (the carried dependence through A forbids that) and not
    // left serial (the independent smoothing work makes overlap pay).
    let doacross = result
        .report
        .loops
        .iter()
        .find(|l| matches!(l.decision, LoopDecision::Doacross { .. }))
        .expect("the recurrence loop should run as a DOACROSS");
    println!(
        "recurrence loop at line {} -> {:?}\n",
        doacross.span.line, doacross.decision
    );

    println!("=== Cedar Fortran output ===");
    println!("{}", cedar_ir::print::print_program(&result.program));

    let mc = MachineConfig::cedar_config1();
    let serial = cedar_sim::run(&program, mc.clone()).expect("serial run");
    let parallel = cedar_sim::run(&result.program, mc).expect("doacross run");

    let s = serial.read_f64("chksum").unwrap()[0];
    let p = parallel.read_f64("chksum").unwrap()[0];
    assert!(
        (s - p).abs() < 1e-3 * s.abs(),
        "results must agree: {s} vs {p}"
    );

    println!("=== simulation (Cedar, 1 cluster x 8 CEs) ===");
    println!("serial:      {:>12.0} cycles", serial.cycles());
    println!("doacross:    {:>12.0} cycles", parallel.cycles());
    println!(
        "speedup:     {:>12.2}x",
        serial.cycles() / parallel.cycles()
    );
    println!(
        "cascade ops: {} awaits, {} advances, {:.0} cycles stalled",
        parallel.stats.awaits, parallel.stats.advances, parallel.stats.await_stall_cycles
    );
    println!(
        "\nThe speedup sits well below the 8x DOALL ideal: every iteration\n\
         still waits for its predecessor's fenced statement, so the gain\n\
         is bounded by the delay factor of Section 3.3."
    );
}
