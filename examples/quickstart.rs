//! Quickstart: run the full Cedar pipeline on the paper's own §3.2
//! example loop —
//!
//! ```fortran
//!       DO i = 1, n
//!         t = b(i)
//!         a(i) = sqrt(t)
//!       END DO
//! ```
//!
//! parse → restructure (automatic 1991 pipeline) → print the Cedar
//! Fortran output → simulate serial vs. parallel on the Cedar model.
//!
//! Run with: `cargo run --release --example quickstart`

use cedar_restructure::{restructure, PassConfig};
use cedar_sim::MachineConfig;

const SRC: &str = "
      PROGRAM QUICK
      PARAMETER (N = 4096)
      REAL A(N), B(N), CHKSUM
      DO 10 I = 1, N
        B(I) = 1.0 + 0.001 * REAL(I)
   10 CONTINUE
      DO 20 I = 1, N
        T = B(I)
        A(I) = SQRT(T)
   20 CONTINUE
      CHKSUM = 0.0
      DO 30 I = 1, N
        CHKSUM = CHKSUM + A(I)
   30 CONTINUE
      END
";

fn main() {
    // 1. Parse fixed-form Fortran 77 and lower to the shared IR.
    let program = cedar_ir::compile_source(SRC).expect("valid Fortran 77");

    // 2. Restructure with the automatic 1991 technique set.
    let result = restructure(&program, &PassConfig::automatic_1991());
    println!("=== restructurer decisions ===\n{}", result.report);
    println!("=== Cedar Fortran output ===");
    println!("{}", cedar_ir::print::print_program(&result.program));

    // 3. Simulate both versions on the Cedar Configuration 1 model.
    let mc = MachineConfig::cedar_config1();
    let serial = cedar_sim::run(&program, mc.clone()).expect("serial run");
    let parallel = cedar_sim::run(&result.program, mc).expect("parallel run");

    let s = serial.read_f64("chksum").unwrap()[0];
    let p = parallel.read_f64("chksum").unwrap()[0];
    assert!((s - p).abs() < 1e-3 * s.abs(), "results must agree: {s} vs {p}");

    println!("=== simulation ===");
    println!("serial:   {:>12.0} cycles", serial.cycles());
    println!("parallel: {:>12.0} cycles", parallel.cycles());
    println!("speedup:  {:>12.1}x", serial.cycles() / parallel.cycles());
    println!(
        "parallel loops: {}, prefetched elements: {}",
        parallel.stats.parallel_loops, parallel.stats.prefetched_elems
    );
}
