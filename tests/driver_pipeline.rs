//! Pass-pipeline refactor regression gate.
//!
//! The driver was split from one monolithic `driver.rs` into an explicit
//! pass pipeline (`crates/core/src/passes/`). These fixtures were
//! captured from the pre-refactor driver on the pinned `tests/corpus/`
//! seeds: the restructured emission and the decision `Report` must both
//! stay byte-identical across the split, for every preset config.
//!
//! `UPDATE_GOLDEN=1 cargo test --test driver_pipeline` regenerates the
//! fixtures — only do that for an intentional behavior change, and say
//! so in the commit message.

use cedar_ir::print::print_program;
use cedar_restructure::{restructure, PassConfig};
use std::fs;
use std::path::PathBuf;

const REPORT_MARKER: &str = "=== REPORT ===\n";

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn configs() -> Vec<(&'static str, PassConfig)> {
    vec![
        ("auto", PassConfig::automatic_1991()),
        ("manual", PassConfig::manual_improved()),
    ]
}

#[test]
fn pipeline_matches_prerefactor_fixtures_on_pinned_corpus() {
    let corpus = repo_root().join("tests/corpus");
    let fixtures = repo_root().join("tests/fixtures/driver_pipeline");
    let update = std::env::var_os("UPDATE_GOLDEN").is_some();
    if update {
        fs::create_dir_all(&fixtures).unwrap();
    }

    let mut entries: Vec<PathBuf> = fs::read_dir(&corpus)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|x| x == "f"))
        .collect();
    entries.sort();
    assert!(entries.len() >= 8, "pinned corpus shrank to {}", entries.len());

    let mut checked = 0usize;
    for path in &entries {
        let src = fs::read_to_string(path).unwrap();
        let program = cedar_ir::compile_free(&src)
            .unwrap_or_else(|e| panic!("{} no longer compiles: {e}", path.display()));
        let stem = path.file_stem().unwrap().to_string_lossy().to_string();
        for (tag, cfg) in configs() {
            let result = restructure(&program, &cfg);
            let snap = format!(
                "{}{REPORT_MARKER}{}",
                print_program(&result.program),
                result.report
            );
            let fixture = fixtures.join(format!("{stem}.{tag}.snap"));
            if update {
                fs::write(&fixture, &snap).unwrap();
            } else {
                let want = fs::read_to_string(&fixture).unwrap_or_else(|e| {
                    panic!(
                        "missing fixture {} ({e}); run with UPDATE_GOLDEN=1 to capture",
                        fixture.display()
                    )
                });
                assert_eq!(
                    snap,
                    want,
                    "driver output drifted from the pre-refactor fixture for {stem} ({tag})"
                );
            }
            checked += 1;
        }
    }
    assert!(checked >= 16, "expected >= 16 fixture comparisons, did {checked}");
}
