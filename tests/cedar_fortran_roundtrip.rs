//! The restructurer's output is *source code*: every transformed
//! program must print as Cedar Fortran that the front end parses back
//! to a semantically identical program.
//!
//! The check is two-fold per workload and technique set:
//! 1. print → parse → print reaches a fixpoint (identical text);
//! 2. the re-parsed program simulates to the same results and the same
//!    cycle count as the in-memory one (nothing is lost in text).

use cedar_restructure::{restructure, PassConfig};
use cedar_sim::MachineConfig;

fn round_trip(name: &str, program: &cedar_ir::Program, watch: &[&str]) {
    let text1 = cedar_ir::print::print_program(program);
    let reparsed = cedar_ir::compile_source(&text1)
        .unwrap_or_else(|e| panic!("{name}: emitted Cedar Fortran failed to re-parse: {e}\n{text1}"));
    let text2 = cedar_ir::print::print_program(&reparsed);
    assert_eq!(text1, text2, "{name}: print→parse→print must be a fixpoint");

    let mc = MachineConfig::cedar_config1_scaled();
    let a = cedar_sim::run(program, mc.clone()).unwrap_or_else(|e| panic!("{name}: {e}"));
    let b = cedar_sim::run(&reparsed, mc).unwrap_or_else(|e| panic!("{name} reparsed: {e}"));
    assert_eq!(a.cycles(), b.cycles(), "{name}: cycle counts must survive the text");
    for v in watch {
        assert_eq!(
            a.read_f64(v),
            b.read_f64(v),
            "{name}: results must survive the text"
        );
    }
}

#[test]
fn all_perfect_proxies_round_trip_both_configs() {
    for w in cedar_workloads::table2_workloads() {
        let p = w.compile();
        for (tag, cfg) in [
            ("auto", PassConfig::automatic_1991()),
            ("manual", PassConfig::manual_improved()),
        ] {
            let r = restructure(&p, &cfg);
            round_trip(&format!("{}/{tag}", w.name), &r.program, &w.watch);
        }
    }
}

#[test]
fn small_linalg_round_trips() {
    use cedar_workloads::linalg::*;
    for w in [cg(48), ludcmp(32), sparse(64), tridag(96)] {
        let p = w.compile();
        let r = restructure(&p, &PassConfig::automatic_1991());
        round_trip(w.name, &r.program, &w.watch);
    }
}

#[test]
fn hand_written_cedar_fortran_parses_and_runs() {
    // Figure 3 / Figure 4 features in one program: loop classes,
    // loop-local declarations, preamble/postamble markers, cascade
    // synchronization, GLOBAL declarations, vector statements.
    let src = "
      PROGRAM HAND
      PARAMETER (N = 256)
      REAL A(N), B(N), TOTAL
      GLOBAL A, B, TOTAL
      DO 10 I = 1, N
        B(I) = REAL(I)
   10 CONTINUE
      XDOALL I = 1, N, 32
        INTEGER I3, UP
        REAL T(32)
        I3 = MIN(32, N - I + 1)
        UP = I + I3 - 1
        T(1:I3) = B(I:UP)
        A(I:UP) = SQRT(T(1:I3))
      END XDOALL
      TOTAL = 0.0
      XDOALL I = 1, N
        REAL PART
        PART = 0.0
      LOOP
        PART = PART + A(I)
      ENDLOOP
        CALL LOCK(1)
        TOTAL = TOTAL + PART
        CALL UNLOCK(1)
      END XDOALL
      END
";
    let p = cedar_ir::compile_source(src).expect("hand-written Cedar Fortran");
    let sim = cedar_sim::run(&p, MachineConfig::cedar_config1()).expect("runs");
    let total = sim.read_f64("total").unwrap()[0];
    let expect: f64 = (1..=256).map(|i| (i as f64).sqrt()).sum();
    assert!((total - expect).abs() < 1e-6 * expect);
    round_trip("hand-written", &p, &["total"]);
}
