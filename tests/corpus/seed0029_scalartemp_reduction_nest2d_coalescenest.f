! cedar-fuzz seed=29 config=manual
! watch a1 exact
! watch b1 exact
! watch s2 approx
! watch a2 exact
! watch a3 exact
! watch a4 exact
program fz
real a1(192), b1(192)
real a2(192)
real a3(64, 64)
real a4(64, 2)
do i = 1, 192
b1(i) = 0.5 + 0.010417 * real(i)
end do
do i = 1, 192
t1 = b1(i) * 2.0
a1(i) = sqrt(t1) + t1 * 0.25
end do
do i = 1, 192
a2(i) = 0.5 + 0.010417 * real(i)
end do
s2 = 0.0
do i = 1, 192
s2 = s2 + a2(i)
end do
do j = 1, 64
do i = 1, 64
a3(i, j) = real(i) * 0.1 + real(j) * 0.2 + exp(real(i + j) * 0.05 * 0.01)
end do
end do
do i = 1, 2
do j = 1, 64
t4 = real(i) * 10.0 + real(j)
do k = 1, 4
t4 = 0.5 * t4 + 1.0
end do
a4(j, i) = t4
end do
end do
end
