! cedar-fuzz seed=17 config=manual
! watch a1 exact
! watch b1 exact
! watch a2 exact
! watch b2 exact
! watch s3 approx
! watch a3 exact
program fz
real a1(96), b1(96), c1(96)
real a2(128), b2(128), c2(128)
real a3(192)
do i = 1, 96
b1(i) = 0.5 + 0.020833 * real(i)
end do
do i = 1, 96
c1(i) = 0.5 + 0.020833 * real(i)
end do
a1(1) = 1.0
do i = 2, 96
t1 = sqrt(b1(i)) + sqrt(c1(i)) + sin(b1(i)) * cos(c1(i)) + exp(c1(i) * 0.01)
a1(i) = a1(i - 1) * 0.75 + t1
end do
do i = 1, 128
b2(i) = 0.5 + 0.015625 * real(i)
end do
do i = 1, 128
c2(i) = 0.5 + 0.015625 * real(i)
end do
a2(1) = 1.0
do i = 2, 128
t2 = sqrt(b2(i)) + sqrt(c2(i)) + sin(b2(i)) * cos(c2(i)) + exp(c2(i) * 0.01)
a2(i) = a2(i - 1) * 0.75 + t2
end do
do i = 1, 192
a3(i) = 0.5 + 0.010417 * real(i)
end do
s3 = 1.0
do i = 1, 192
s3 = s3 * (1.0 + 0.0001 * a3(i))
end do
end
