! cedar-fuzz seed=4 config=manual
! watch a1 approx
! watch b1 exact
! watch a2 approx
! watch w2 approx
! watch a3 exact
! watch a4 exact
program fz
real a1(96), b1(96, 12), w1(12)
real a2(512)
real a3(64, 2)
real a4(48, 3)
do i = 1, 96
do j = 1, 12
b1(i, j) = real(i) * 0.1 + real(j)
end do
a1(i) = 0.0
end do
do i = 1, 96
do j = 1, 12
w1(j) = b1(i, j) * 2.0
end do
do j = 1, 12
a1(i) = a1(i) + w1(j)
end do
end do
w2 = 1.0
do i = 1, 512
w2 = w2 * 1.001
a2(i) = w2 * 2.0
end do
do i = 1, 2
do j = 1, 64
t3 = real(i) * 10.0 + real(j)
do k = 1, 5
t3 = 0.5 * t3 + 1.0
end do
a3(j, i) = t3
end do
end do
do i = 1, 3
do j = 1, 48
t4 = real(i) * 10.0 + real(j)
do k = 1, 4
t4 = 0.5 * t4 + 1.0
end do
a4(j, i) = t4
end do
end do
end
