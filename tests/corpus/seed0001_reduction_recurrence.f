! cedar-fuzz seed=1 config=manual
! watch s1 approx
! watch a1 exact
! watch a2 exact
! watch b2 exact
program fz
real a1(192)
real a2(96), b2(96), c2(96)
do i = 1, 192
a1(i) = 0.5 + 0.010417 * real(i)
end do
s1 = 0.0
do i = 1, 192
s1 = s1 + a1(i) + a1(i) * 0.25
end do
do i = 1, 96
b2(i) = 0.5 + 0.020833 * real(i)
end do
do i = 1, 96
c2(i) = 0.5 + 0.020833 * real(i)
end do
a2(1) = 1.0
do i = 2, 96
t2 = sqrt(b2(i)) + sqrt(c2(i)) + sin(b2(i)) * cos(c2(i)) + exp(c2(i) * 0.01)
a2(i) = a2(i - 1) * 0.5 + t2
end do
end
