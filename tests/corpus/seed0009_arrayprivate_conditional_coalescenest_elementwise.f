! cedar-fuzz seed=9 config=manual
! watch a1 approx
! watch b1 exact
! watch a2 exact
! watch b2 exact
! watch a3 exact
! watch a4 exact
! watch b4 exact
program fz
real a1(64), b1(64, 8), w1(8)
real a2(192), b2(192)
real a3(48, 2)
real a4(192), b4(192)
do i = 1, 64
do j = 1, 8
b1(i, j) = real(i) * 0.1 + real(j)
end do
a1(i) = 0.0
end do
do i = 1, 64
do j = 1, 8
w1(j) = b1(i, j) * 2.0
end do
do j = 1, 8
a1(i) = a1(i) + w1(j)
end do
end do
do i = 1, 192
b2(i) = 0.5 + 0.010417 * real(i)
end do
do i = 1, 192
if (b2(i) .gt. 2.0) then
a2(i) = b2(i) * 2.0
else
a2(i) = (b2(i) * 0.5 + 1.0) + 1.0
end if
end do
do i = 1, 2
do j = 1, 48
t3 = real(i) * 10.0 + real(j)
do k = 1, 4
t3 = 0.5 * t3 + 1.0
end do
a3(j, i) = t3
end do
end do
do i = 1, 192
b4(i) = 0.5 + 0.010417 * real(i)
end do
do i = 1, 192
a4(i) = exp(b4(i) * 0.01) + b4(i) * 2.0
end do
end
