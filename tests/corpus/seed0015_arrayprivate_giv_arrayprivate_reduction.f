! cedar-fuzz seed=15 config=manual
! watch a1 approx
! watch b1 exact
! watch a2 approx
! watch w2 approx
! watch a3 approx
! watch b3 exact
! watch s4 approx
! watch a4 exact
program fz
real a1(96), b1(96, 16), w1(16)
real a2(512)
real a3(96), b3(96, 16), w3(16)
real a4(1024)
do i = 1, 96
do j = 1, 16
b1(i, j) = real(i) * 0.1 + real(j)
end do
a1(i) = 0.0
end do
do i = 1, 96
do j = 1, 16
w1(j) = b1(i, j) * 2.0
end do
do j = 1, 16
a1(i) = a1(i) + w1(j)
end do
end do
w2 = 1.0
do i = 1, 512
w2 = w2 * 1.001
a2(i) = w2 * 2.0
end do
do i = 1, 96
do j = 1, 16
b3(i, j) = real(i) * 0.1 + real(j)
end do
a3(i) = 0.0
end do
do i = 1, 96
do j = 1, 16
w3(j) = b3(i, j) * 2.0
end do
do j = 1, 16
a3(i) = a3(i) + w3(j)
end do
end do
do i = 1, 1024
a4(i) = 0.5 + 0.001953 * real(i)
end do
s4 = 0.0
do i = 1, 1024
s4 = s4 + a4(i)
end do
end
