! cedar-fuzz seed=0 config=manual
! watch a1 exact
! watch a2 approx
! watch b2 exact
program fz
real a1(48, 3)
real a2(64), b2(64, 12), w2(12)
do i = 1, 3
do j = 1, 48
t1 = real(i) * 10.0 + real(j)
do k = 1, 6
t1 = 0.5 * t1 + 1.0
end do
a1(j, i) = t1
end do
end do
do i = 1, 64
do j = 1, 12
b2(i, j) = real(i) * 0.1 + real(j)
end do
a2(i) = 0.0
end do
do i = 1, 64
do j = 1, 12
w2(j) = b2(i, j) * 2.0
end do
do j = 1, 12
a2(i) = a2(i) + w2(j)
end do
end do
end
