! cedar-fuzz seed=25 config=manual
! watch s1 approx
! watch a1 exact
! watch c2 exact
! watch a2 exact
! watch b2 exact
! watch a3 exact
! watch c3 exact
! watch a4 approx
! watch w4 approx
program fz
real a1(512)
real a2(256), b2(256)
real c2(256)
real a3(192), b3(192), c3(192)
real a4(128)
do i = 1, 512
a1(i) = 0.5 + 0.003906 * real(i)
end do
s1 = 1.0
do i = 1, 512
s1 = s1 * (1.0 + 0.0001 * a1(i))
end do
do i = 1, 256
b2(i) = 0.5 + 0.007812 * real(i)
end do
do i = 1, 256
a2(i) = sin(b2(i)) + b2(i) * 1.5
c2(i) = sqrt(b2(i)) * 2.0 + 1.0
end do
do i = 1, 192
b3(i) = 0.5 + 0.010417 * real(i)
end do
do i = 1, 192
a3(i) = b3(i) * 0.5 + 0.5
end do
do i = 1, 192
c3(i) = a3(i) * 1.25 + b3(i)
end do
w4 = 1.0
do i = 1, 128
w4 = w4 * 1.001
a4(i) = w4 * 2.0
end do
end
