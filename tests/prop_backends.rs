//! Cross-backend properties over generated programs.
//!
//! Three invariants every emission backend must hold for *any* program
//! the fuzz generator can produce, checked over a deterministic seed
//! sweep (the CI `backend-smoke` job covers thousands more seeds via
//! the `compare` binary; these are the always-on core):
//!
//! 1. **Re-parse closure** — every backend's output is legal input to
//!    the front end. An emission that cannot be re-compiled cannot be
//!    compared, shipped, or diffed.
//! 2. **Serial fidelity** — the serial backend's emission, re-parsed
//!    and simulated, reproduces the original program's memory
//!    bit-for-bit. It is the comparator's reference, so it is held to
//!    the strictest standard: no reassociation, no tolerance.
//! 3. **Report neutrality** — the restructuring [`Report`] is a
//!    function of the pass pipeline alone; choosing a different
//!    emission dialect must not change a single decision in it.

use cedar_fuzz::GenProgram;
use cedar_restructure::{restructure, BackendKind, EmitInput, PassConfig};
use cedar_sim::MachineConfig;
use cedar_verify::{first_bit_diff, Snapshot};

const SEEDS: u64 = 40;

fn snapshot(p: &cedar_ir::Program, watch: &[String]) -> Snapshot {
    let sim = cedar_sim::run(p, MachineConfig::cedar_config1_scaled())
        .unwrap_or_else(|e| panic!("simulation failed: {e}"));
    watch
        .iter()
        .filter_map(|w| sim.read_f64(w).map(|v| (w.clone(), v)))
        .collect()
}

#[test]
fn every_backend_emission_reparses() {
    for cfg in [PassConfig::manual_improved(), PassConfig::automatic_1991()] {
        for seed in 0..SEEDS {
            let r = GenProgram::generate(seed).render();
            let p = cedar_ir::compile_free(&r.source).unwrap();
            let rr = restructure(&p, &cfg);
            let input = EmitInput { original: &p, restructured: &rr.program, report: &rr.report };
            for kind in BackendKind::all() {
                let text = kind.backend().emit(&input);
                cedar_ir::compile_source(&text).unwrap_or_else(|e| {
                    panic!(
                        "seed {seed}: {kind} emission does not re-parse: {e}\n\
                         --- input ---\n{}\n--- emission ---\n{text}",
                        r.source
                    )
                });
            }
        }
    }
}

#[test]
fn serial_backend_is_bit_faithful_to_the_input() {
    let cfg = PassConfig::manual_improved();
    for seed in 0..SEEDS {
        let r = GenProgram::generate(seed).render();
        let p = cedar_ir::compile_free(&r.source).unwrap();
        let watch: Vec<String> = r.watch.iter().map(|w| w.name.clone()).collect();
        let reference = snapshot(&p, &watch);

        let rr = restructure(&p, &cfg);
        let input = EmitInput { original: &p, restructured: &rr.program, report: &rr.report };
        let text = BackendKind::Serial.backend().emit(&input);
        let reparsed = cedar_ir::compile_source(&text)
            .unwrap_or_else(|e| panic!("seed {seed}: serial emission does not re-parse: {e}"));
        let got = snapshot(&reparsed, &watch);

        if let Some(d) = first_bit_diff(&reference, &got) {
            panic!(
                "seed {seed}: serial emission is not bit-faithful at {d}\n\
                 --- input ---\n{}\n--- emission ---\n{text}",
                r.source
            );
        }
    }
}

#[test]
fn report_is_backend_neutral() {
    // emit() takes the report by reference and must not depend on which
    // dialect renders it: the same restructure drives all three, and a
    // fresh emit_with per backend reproduces the identical report.
    for seed in 0..SEEDS {
        let r = GenProgram::generate(seed).render();
        let p = cedar_ir::compile_free(&r.source).unwrap();
        let cfg = PassConfig::manual_improved();
        let reports: Vec<String> = BackendKind::all()
            .iter()
            .map(|k| cedar_restructure::emit_with(*k, &p, &cfg).1.to_string())
            .collect();
        assert_eq!(reports[0], reports[1], "seed {seed}: openmp changed the report");
        assert_eq!(reports[0], reports[2], "seed {seed}: serial changed the report");
    }
}
