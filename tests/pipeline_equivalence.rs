//! Cross-crate integration: for every workload in the registry, the
//! restructured program must compute the same results as the serial
//! original under both technique sets, on both machine models.
//!
//! This is the repository's strongest end-to-end guarantee: the
//! restructurer may only ever change *time*, never *values*.

use cedar_restructure::{restructure, PassConfig, Target};
use cedar_sim::MachineConfig;
use cedar_workloads::Workload;

fn check(w: &Workload, cfg: &PassConfig, mc: &MachineConfig, tag: &str) {
    let program = w.compile();
    let serial = cedar_sim::run(&program, mc.clone())
        .unwrap_or_else(|e| panic!("{} [{tag}] serial: {e}", w.name));
    let r = restructure(&program, cfg);
    let par = cedar_sim::run(&r.program, mc.clone()).unwrap_or_else(|e| {
        panic!(
            "{} [{tag}] restructured: {e}\n{}",
            w.name,
            cedar_ir::print::print_program(&r.program)
        )
    });
    for v in &w.watch {
        let a = serial.read_f64(v).unwrap_or_else(|| panic!("{}: missing {v}", w.name));
        let b = par.read_f64(v).unwrap_or_else(|| panic!("{}: missing {v} (par)", w.name));
        assert_eq!(a.len(), b.len(), "{} [{tag}] {v}: length", w.name);
        for (k, (x, y)) in a.iter().zip(&b).enumerate() {
            assert!(
                (x - y).abs() <= 1e-3 * x.abs().max(1.0),
                "{} [{tag}] {v}[{k}]: serial {x} vs restructured {y}",
                w.name,
            );
        }
    }
}

/// Reduced-size Table 1 workloads (full sizes run in the harness; the
/// test suite uses sizes that keep wall time in seconds).
fn small_linalg() -> Vec<Workload> {
    use cedar_workloads::linalg::*;
    vec![
        cg(48),
        ludcmp(32),
        lubksb(32),
        sparse(64),
        gaussj(32),
        svbksb(40),
        svdcmp(32),
        mprove(32),
        toeplz(48),
        tridag(96),
    ]
}

#[test]
fn linalg_automatic_on_cedar() {
    let mc = MachineConfig::cedar_config1_scaled();
    let cfg = PassConfig::automatic_1991();
    for w in small_linalg() {
        check(&w, &cfg, &mc, "auto/cedar");
    }
}

#[test]
fn linalg_manual_on_cedar() {
    let mc = MachineConfig::cedar_config1_scaled();
    let cfg = PassConfig::manual_improved();
    for w in small_linalg() {
        check(&w, &cfg, &mc, "manual/cedar");
    }
}

#[test]
fn linalg_automatic_on_fx80() {
    let mc = MachineConfig::fx80_scaled();
    let cfg = PassConfig::automatic_1991().for_target(Target::Fx80);
    for w in small_linalg() {
        check(&w, &cfg, &mc, "auto/fx80");
    }
}

#[test]
fn perfect_all_configs() {
    let cedar = MachineConfig::cedar_config1_scaled();
    let fx = MachineConfig::fx80_scaled();
    for w in cedar_workloads::table2_workloads() {
        check(&w, &PassConfig::automatic_1991(), &cedar, "auto/cedar");
        check(&w, &PassConfig::manual_improved(), &cedar, "manual/cedar");
        check(
            &w,
            &PassConfig::automatic_1991().for_target(Target::Fx80),
            &fx,
            "auto/fx80",
        );
        check(
            &w,
            &PassConfig::manual_improved().for_target(Target::Fx80),
            &fx,
            "manual/fx80",
        );
    }
}

#[test]
fn serial_config_never_changes_programs() {
    for w in cedar_workloads::table2_workloads() {
        let p = w.compile();
        let r = restructure(&p, &PassConfig::serial());
        assert_eq!(
            cedar_ir::print::print_program(&p),
            cedar_ir::print::print_program(&r.program),
            "{}: PassConfig::serial must be the identity",
            w.name
        );
    }
}

#[test]
fn machine_configurations_are_deterministic() {
    // Two identical runs must produce bit-identical cycle counts.
    let w = cedar_workloads::perfect::spec77();
    let p = w.compile();
    let r = restructure(&p, &PassConfig::manual_improved());
    let mc = MachineConfig::cedar_config1_scaled();
    let a = cedar_sim::run(&r.program, mc.clone()).unwrap().cycles();
    let b = cedar_sim::run(&r.program, mc).unwrap().cycles();
    assert_eq!(a, b, "simulation must be deterministic");
}
