//! Warm-restart persistence tests for the service result store
//! (DESIGN.md §15): a server started on a populated store replays
//! `/restructure` responses **byte-identically** without recomputing,
//! `/metrics` accounts for store traffic, and a corrupt entry heals by
//! recomputation instead of poisoning the response.

use cedar_serve::{http, Json, ServeRequest, Server, ServerConfig};
use std::path::PathBuf;
use std::time::Duration;

const T: Duration = Duration::from_secs(30);

const SOURCE: &str = "program p\nreal a(64), s\ninteger i\ns = 0.0\ndo 10 i = 1, 64\n  a(i) = real(i) * 1.5\n10 continue\ndo 20 i = 1, 64\n  s = s + a(i)\n20 continue\nprint *, s\nend\n";

/// Server config whose store lives at `target/test-serve-store/<tag>`,
/// left exactly as the previous run (if any) wrote it.
fn config_reopen(tag: &str) -> ServerConfig {
    let dir = PathBuf::from(format!("target/test-serve-store/{tag}"));
    let mut cfg = ServerConfig {
        workers: 2,
        store_dir: Some(dir.join("store")),
        ..ServerConfig::default()
    };
    cfg.engine.sup.chaos = None;
    cfg.engine.sup.deadline = None;
    cfg.engine.sup.bundle_dir = dir.join("bundles");
    cfg.engine.backoff_base = Duration::from_millis(1);
    cfg
}

/// [`config_reopen`] on a wiped directory: the cold-start config.
fn config(tag: &str) -> ServerConfig {
    let _ = std::fs::remove_dir_all(format!("target/test-serve-store/{tag}"));
    config_reopen(tag)
}

fn request() -> ServeRequest {
    let mut req = ServeRequest::new(SOURCE);
    req.watch.push("s".into());
    req
}

/// `/metrics` → the `store` object, or a panic when persistence is off.
fn store_metrics(addr: &str) -> Json {
    let (status, body) = http::get(addr, "/metrics", T).unwrap();
    assert_eq!(status, 200, "{body}");
    let v = Json::parse(&body).expect("metrics are valid JSON");
    let store = v.get("store").expect("metrics carry a store field");
    assert!(!store.is_null(), "store metrics missing: {body}");
    store.clone()
}

fn count(m: &Json, field: &str) -> u64 {
    m.get(field).and_then(Json::as_f64).unwrap_or_else(|| panic!("no {field} in {m:?}")) as u64
}

#[test]
fn warm_restart_replays_byte_identical_responses() {
    let cfg = config("warm");
    let body = request().to_json();

    // Cold run: compute, persist, answer.
    let server = Server::start(cfg.clone()).unwrap();
    let addr = server.addr();
    let (status, cold) = http::post(&addr, "/restructure", &body, T).unwrap();
    assert_eq!(status, 200, "{cold}");
    let m = store_metrics(&addr);
    assert_eq!(count(&m, "misses"), 1, "cold request misses the store: {m:?}");
    assert_eq!(count(&m, "puts"), 1, "cold response is persisted: {m:?}");
    // A repeat within the same process is already a store hit.
    let (status, repeat) = http::post(&addr, "/restructure", &body, T).unwrap();
    assert_eq!(status, 200);
    assert_eq!(repeat, cold, "same-process replay is byte-identical");
    server.shutdown();

    // Warm run: a brand-new process image (new Server, same dir) must
    // answer from disk, byte for byte, without touching the engine.
    let server = Server::start(config_reopen("warm")).unwrap();
    let addr = server.addr();
    let (status, warm) = http::post(&addr, "/restructure", &body, T).unwrap();
    assert_eq!(status, 200, "{warm}");
    assert_eq!(warm, cold, "warm restart must replay the stored bytes");
    let m = store_metrics(&addr);
    assert_eq!(count(&m, "hits"), 1, "warm request hits the store: {m:?}");
    assert_eq!(count(&m, "misses"), 0, "{m:?}");
    assert_eq!(count(&m, "corrupt_recovered"), 0, "{m:?}");
    assert_eq!(count(&m, "entries"), 1, "{m:?}");

    // A *different* request (different key) misses and is computed —
    // the body can coincide with `cold` (shared caches, rounded
    // timings), so the store counters are the discriminating signal.
    let mut other = request();
    other.config = "manual".into();
    let (status, fresh) = http::post(&addr, "/restructure", &other.to_json(), T).unwrap();
    assert_eq!(status, 200, "{fresh}");
    let m = store_metrics(&addr);
    assert_eq!(count(&m, "misses"), 1, "new key misses the store: {m:?}");
    assert_eq!(count(&m, "entries"), 2, "new result persisted: {m:?}");
    server.shutdown();
}

#[test]
fn corrupt_entries_recompute_and_repersist() {
    let cfg = config("corrupt");
    let store_root = cfg.store_dir.clone().unwrap();
    let req = request();
    let body = req.to_json();

    let server = Server::start(cfg).unwrap();
    let addr = server.addr();
    let (status, cold) = http::post(&addr, "/restructure", &body, T).unwrap();
    assert_eq!(status, 200, "{cold}");
    server.shutdown();

    // Flip one payload byte on disk: the checksum trailer must catch it.
    let entry = store_root.join("entries").join(format!("{:016x}", req.key()));
    let mut bytes = std::fs::read(&entry).unwrap();
    assert!(bytes.len() > cold.len(), "entry carries payload + trailer");
    bytes[0] ^= 0x40;
    std::fs::write(&entry, &bytes).unwrap();

    let server = Server::start(config_reopen("corrupt")).unwrap();
    let addr = server.addr();
    let (status, healed) = http::post(&addr, "/restructure", &body, T).unwrap();
    assert_eq!(status, 200, "{healed}");
    let m = store_metrics(&addr);
    assert_eq!(count(&m, "corrupt_recovered"), 1, "torn entry detected: {m:?}");
    assert_eq!(count(&m, "puts"), 1, "recomputed response re-persisted: {m:?}");
    // The quarantined copy is preserved for forensics…
    let corrupt: Vec<_> = std::fs::read_dir(store_root.join("corrupt")).unwrap().collect();
    assert_eq!(corrupt.len(), 1, "corrupt entry quarantined");
    // …and the store is healed: the next request replays from disk.
    let (status, replay) = http::post(&addr, "/restructure", &body, T).unwrap();
    assert_eq!(status, 200);
    assert_eq!(replay, healed, "healed entry replays byte-identically");
    server.shutdown();
}

#[test]
fn a_live_second_writer_is_refused_at_startup() {
    let cfg = config("locked");
    let server = Server::start(cfg.clone()).unwrap();
    let err = match Server::start(cfg) {
        Err(e) => e,
        Ok(_) => panic!("second server must not share the store"),
    };
    assert!(err.to_string().contains("locked"), "{err}");
    server.shutdown();
}
