//! Property test: any single-statement accumulation chain over a scalar
//! target — `t = t + x - y + z`, `t = t * x / y`, with the target at an
//! arbitrary (positive/numerator) position — must be recognized as a
//! reduction, parallelized, and still compute the same value as the
//! serial loop.
//!
//! This fuzzes the chain-flattening matcher in
//! `cedar_analysis::reduction` together with the library-substitution
//! and partial-accumulator rewrites in the driver.

use proptest::prelude::*;

use cedar_restructure::{restructure, LoopDecision, PassConfig};
use cedar_sim::MachineConfig;

const SUM_LEAVES: &[&str] = &["A(I)", "B(I)", "C(I)", "0.25", "A(I) * B(I)"];
const MUL_LEAVES: &[&str] = &[
    "(1.0 + 0.0001 * A(I))",
    "(1.0 + 0.00005 * B(I))",
    "(1.0 - 0.0001 * C(I))",
];

/// Build `t = <chain>` with the target inserted at `tpos` (always joined
/// by the positive operator so the chain is a legal reduction).
fn build_chain(leaf_idx: &[usize], neg: &[bool], tpos: usize, product: bool) -> String {
    let leaves: &[&str] = if product { MUL_LEAVES } else { SUM_LEAVES };
    let (op_pos, op_neg) = if product { ("*", "/") } else { ("+", "-") };
    let mut terms: Vec<(String, bool)> = leaf_idx
        .iter()
        .zip(neg)
        .map(|(&k, &n)| (leaves[k % leaves.len()].to_string(), n))
        .collect();
    let tpos = tpos % (terms.len() + 1);
    terms.insert(tpos, ("T".to_string(), false));
    let mut s = String::new();
    for (k, (leaf, n)) in terms.iter().enumerate() {
        if k == 0 {
            // A leading negation would make the first leaf `-x`, which
            // our chains never produce from Fortran source; fold it in
            // by starting `0 - x` instead.
            if *n {
                s.push_str("0.0 ");
                s.push_str(op_neg);
                s.push(' ');
            }
            s.push_str(leaf);
        } else {
            s.push(' ');
            s.push_str(if *n { op_neg } else { op_pos });
            s.push(' ');
            s.push_str(leaf);
        }
    }
    s
}

fn source(chain: &str, init: f64) -> String {
    format!(
        "\n      PROGRAM PCHAIN\n      PARAMETER (N = 192)\n      REAL A(N), B(N), C(N), T\n      DO 10 I = 1, N\n        A(I) = 0.5 + 0.001 * REAL(I)\n        B(I) = 1.0 + 0.0005 * REAL(I)\n        C(I) = 2.0 - 0.001 * REAL(I)\n   10 CONTINUE\n      T = {init:.1}\n      DO 20 I = 1, N\n        T = {chain}\n   20 CONTINUE\n      END\n"
    )
}

fn check_equivalent(chain: &str, init: f64) {
    let src = source(chain, init);
    let program = cedar_ir::compile_source(&src)
        .unwrap_or_else(|e| panic!("compile failed for `{chain}`: {e}"));
    let serial = cedar_sim::run(&program, MachineConfig::cedar_config1_scaled())
        .expect("serial run");

    let r = restructure(&program, &PassConfig::manual_improved());
    // The accumulation loop is the one at source line 11 (1-based data
    // line of `DO 20`); it must not have stayed serial.
    let rec = r
        .report
        .loops
        .iter()
        .filter(|l| l.unit == "pchain")
        .find(|l| l.span.line >= 10)
        .unwrap_or_else(|| panic!("no record for accumulation loop of `{chain}`"));
    assert!(
        !matches!(rec.decision, LoopDecision::Serial { .. }),
        "`t = {chain}` stayed serial: {:?}",
        rec.decision
    );

    let par = cedar_sim::run(&r.program, MachineConfig::cedar_config1_scaled())
        .unwrap_or_else(|e| {
            panic!(
                "restructured run failed for `{chain}`: {e}\n{}",
                cedar_ir::print::print_program(&r.program)
            )
        });
    let a = serial.read_f64("t").unwrap()[0];
    let b = par.read_f64("t").unwrap()[0];
    assert!(
        (a - b).abs() <= 1e-3 * a.abs().max(1.0),
        "`t = {chain}`: serial {a} vs restructured {b}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn sum_chains_parallelize_and_agree(
        leaf_idx in prop::collection::vec(0usize..5, 1..5),
        neg in prop::collection::vec(any::<bool>(), 4),
        tpos in 0usize..5,
    ) {
        // Constant-only chains (every leaf is `0.25`) are legitimately
        // left serial by the profitability gate; keep at least one
        // array leaf so the reduction is always worth parallelizing.
        let mut leaf_idx = leaf_idx;
        if leaf_idx.iter().all(|&k| k % SUM_LEAVES.len() == 3) {
            leaf_idx[0] = 0;
        }
        let chain = build_chain(&leaf_idx, &neg[..leaf_idx.len()], tpos, false);
        check_equivalent(&chain, 0.0);
    }

    #[test]
    fn product_chains_parallelize_and_agree(
        leaf_idx in prop::collection::vec(0usize..3, 1..4),
        neg in prop::collection::vec(any::<bool>(), 3),
        tpos in 0usize..4,
    ) {
        let chain = build_chain(&leaf_idx, &neg[..leaf_idx.len()], tpos, true);
        check_equivalent(&chain, 1.0);
    }
}

/// Promoted from `prop_reduction_chains.proptest-regressions`
/// (cc `2d204523…`, shrunk to `leaf_idx = [3, 3]`, all-positive,
/// `tpos = 3`): a constant-heavy sum chain that the profitability gate
/// used to leave serial. Replaying the exact proptest body — including
/// the constant-leaf guard that rewrites `[3, 3]` to `[0, 3]` — as a
/// named test keeps the historical find alive even if the seed file is
/// pruned or proptest's replay order changes.
#[test]
fn regression_constant_heavy_sum_chain_with_leading_target() {
    let mut leaf_idx = vec![3usize, 3];
    let neg = [false, false, false, false];
    let tpos = 3usize;
    if leaf_idx.iter().all(|&k| k % SUM_LEAVES.len() == 3) {
        leaf_idx[0] = 0;
    }
    let chain = build_chain(&leaf_idx, &neg[..leaf_idx.len()], tpos, false);
    // tpos wraps modulo (terms + 1): 3 % 3 = 0, so the target leads.
    assert_eq!(chain, "T + A(I) + 0.25");
    check_equivalent(&chain, 0.0);
    // The raw shrunk input (before the guard) is the all-constant chain
    // `T + 0.25 + 0.25`; it is legitimately left serial, so assert only
    // that the pipeline handles it without diverging — not that it
    // parallelizes.
    let src = source("T + 0.25 + 0.25", 0.0);
    let program = cedar_ir::compile_source(&src).expect("compile");
    let serial = cedar_sim::run(&program, MachineConfig::cedar_config1_scaled()).unwrap();
    let r = restructure(&program, &PassConfig::manual_improved());
    let par = cedar_sim::run(&r.program, MachineConfig::cedar_config1_scaled()).unwrap();
    assert_eq!(
        serial.read_f64("t").unwrap()[0].to_bits(),
        par.read_f64("t").unwrap()[0].to_bits(),
        "constant chain must be untouched (bit-identical)"
    );
}

/// Deterministic spot checks of shapes the paper's codes actually use.
#[test]
fn canonical_chain_shapes() {
    for chain in [
        "T + A(I)",
        "T + A(I) + C(I)",
        "A(I) + T + C(I)",
        "T - A(I) + B(I)",
        "T + A(I) * B(I) - C(I)",
    ] {
        check_equivalent(chain, 0.0);
    }
    for chain in [
        "T * (1.0 + 0.0001 * A(I))",
        "T * (1.0 + 0.0001 * A(I)) / (1.0 + 0.00005 * B(I))",
        "(1.0 + 0.0001 * A(I)) * T",
    ] {
        check_equivalent(chain, 1.0);
    }
}
