//! Breaker state-transition coverage at the *engine* level: real
//! requests through [`cedar_serve::handle`] with chaos injection, so
//! the transitions under test are driven by actual ladder escalations
//! and quarantines, not by calling `Breaker::record` by hand (the unit
//! tests in `breaker.rs` already do that).
//!
//! The machine walked here:
//!
//! * closed → **open**: `threshold` consecutive escalated requests trip
//!   the breaker, and the next request *enters the ladder at the rescue
//!   rung* — visible in its `service.entry_rung`;
//! * open stays open: success at an elevated entry proves nothing about
//!   `normal`, so the breaker must not reset;
//! * open → half-open → **closed**: after the cooldown a probe enters
//!   at `normal` again, and a clean success resets the streak;
//! * quarantine: a request that fails every rung counts toward the trip
//!   and teaches the breaker nothing better than `serial`.
//!
//! Chaos draws are deterministic in `(seed, label, rung, phase)`, so
//! each test *predicts* escalation vs quarantine per request with the
//! public probes, then asserts the breaker moved accordingly.

use cedar_experiments::chaos;
use cedar_experiments::supervise::{Rung, Supervisor};
use cedar_fuzz::GenProgram;
use cedar_serve::{handle, Breaker, EngineConfig, Json, ServeRequest};
use std::path::PathBuf;
use std::time::Duration;

const CHAOS: u64 = 42;
/// The phases a `validate: false` request gates, in order.
const PHASES: [&str; 3] = ["compile", "restructure", "simulate"];

fn chaos_engine(tag: &str) -> EngineConfig {
    let cfg = EngineConfig {
        sup: Supervisor {
            chaos: Some(CHAOS),
            deadline: None,
            bundle_dir: PathBuf::from(format!("target/test-serve-bundles/{tag}")),
            bundle_cap: 64,
        },
        backoff_base: Duration::from_millis(1),
        validate_seeds: vec![1],
    };
    let _ = std::fs::remove_dir_all(&cfg.sup.bundle_dir);
    cfg
}

fn request_for(seed: u64) -> ServeRequest {
    let mut req = ServeRequest::new(GenProgram::generate(seed).render().source);
    req.validate = false;
    req
}

/// A sticky non-delay fault fires on some phase of this request — it
/// will fail identically at every rung.
fn sticky_faulty(label: &str) -> bool {
    PHASES
        .iter()
        .any(|p| matches!(chaos::probe_sticky(CHAOS, label, p), Some(k) if k != "delay"))
}

/// A transient non-delay fault fires on some phase at this rung.
fn rung_fails(label: &str, rung: &str) -> bool {
    PHASES
        .iter()
        .any(|p| matches!(chaos::probe(CHAOS, label, rung, p), Some(k) if k != "delay"))
}

/// Fails at `normal`, clean somewhere safer: the ladder will rescue it.
fn transient(label: &str) -> bool {
    !sticky_faulty(label)
        && rung_fails(label, Rung::Normal.label())
        && Rung::LADDER[1..].iter().any(|r| !rung_fails(label, r.label()))
}

/// No fault at any rung: succeeds wherever the breaker makes it enter.
fn always_clean(label: &str) -> bool {
    !sticky_faulty(label) && Rung::LADDER.iter().all(|r| !rung_fails(label, r.label()))
}

/// First `n` distinct generated programs whose requests satisfy `want`.
fn find_requests(n: usize, want: impl Fn(&str) -> bool) -> Vec<ServeRequest> {
    let mut out = Vec::new();
    for seed in 0..3000u64 {
        let req = request_for(seed);
        if want(&req.label()) {
            out.push(req);
            if out.len() == n {
                return out;
            }
        }
    }
    panic!("only {} of {n} matching programs in 3000 seeds", out.len());
}

fn entry_rung_of(body: &str) -> String {
    Json::parse(body)
        .expect("response is valid JSON")
        .get("service")
        .and_then(|s| s.get("entry_rung"))
        .and_then(Json::as_str)
        .expect("service.entry_rung present")
        .to_string()
}

#[test]
fn consecutive_escalations_trip_the_breaker_and_elevate_the_entry_rung() {
    let cfg = chaos_engine("breaker-trip");
    let breaker = Breaker::new(3, Duration::from_secs(60));
    for (i, req) in find_requests(3, transient).iter().enumerate() {
        assert_eq!(
            breaker.entry_rung("auto"),
            Rung::Normal,
            "breaker must stay closed until the threshold ({i} escalations so far)"
        );
        let h = handle(req, &cfg, &breaker);
        assert_eq!(h.status, 200, "transient request must recover: {}", h.body);
        assert!(h.retries >= 1, "must have escalated: {}", h.body);
        assert_eq!(entry_rung_of(&h.body), "normal");
    }

    // Tripped: open, and entry jumps to the rung that rescued the
    // escalated requests. Other pass configs are untouched.
    let rescue = breaker.entry_rung("auto");
    assert_ne!(rescue, Rung::Normal, "three escalations must open the breaker");
    assert_eq!(breaker.entry_rung("manual"), Rung::Normal);
    let status = breaker.status_json();
    assert!(status.contains("\"auto\": {\"state\": \"open\""), "{status}");

    // A request arriving while open skips the doomed rungs entirely:
    // first attempt at the rescue rung, zero retries.
    let clean = &find_requests(1, always_clean)[0];
    let h = handle(clean, &cfg, &breaker);
    assert_eq!(h.status, 200, "{}", h.body);
    assert_eq!(h.retries, 0, "entry at the rescue rung must not re-walk the ladder");
    assert_eq!(entry_rung_of(&h.body), rescue.label());

    // That success proved nothing about `normal`: still open.
    assert_eq!(breaker.entry_rung("auto"), rescue);
    assert!(breaker.status_json().contains("\"auto\": {\"state\": \"open\""));
}

#[test]
fn a_clean_probe_after_the_cooldown_closes_the_breaker() {
    let cfg = chaos_engine("breaker-close");
    // Zero cooldown: "open" lapses immediately, so the very next
    // request is the half-open probe at `normal`.
    let breaker = Breaker::new(1, Duration::ZERO);
    let transient_req = &find_requests(1, transient)[0];
    let h = handle(transient_req, &cfg, &breaker);
    assert_eq!(h.status, 200, "{}", h.body);
    assert!(breaker.status_json().contains("\"consecutive\": 1"));

    let clean = &find_requests(1, always_clean)[0];
    let h = handle(clean, &cfg, &breaker);
    assert_eq!(h.status, 200, "{}", h.body);
    assert_eq!(entry_rung_of(&h.body), "normal", "half-open probes at normal");
    assert_eq!(h.retries, 0);

    // Clean success at `normal` closed it and reset the streak.
    assert_eq!(breaker.entry_rung("auto"), Rung::Normal);
    let status = breaker.status_json();
    assert!(status.contains("\"auto\": {\"state\": \"closed\", \"consecutive\": 0"), "{status}");
}

#[test]
fn a_quarantine_trips_the_breaker_to_the_deepest_rung() {
    let cfg = chaos_engine("breaker-quarantine");
    let breaker = Breaker::new(1, Duration::from_secs(60));
    let sticky = &find_requests(1, sticky_faulty)[0];
    let h = handle(sticky, &cfg, &breaker);
    assert!(h.quarantined, "sticky request must quarantine: {}", h.body);
    assert!(matches!(h.status, 422 | 500 | 504), "{}", h.status);

    // A quarantine teaches nothing better than `serial` — the next
    // request starts at the bottom of the ladder.
    assert_eq!(breaker.entry_rung("auto"), Rung::Serial);
    let status = breaker.status_json();
    assert!(status.contains("\"entry_rung\": \"serial\""), "{status}");
}
