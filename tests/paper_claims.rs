//! End-to-end assertions of the paper's headline claims — the
//! qualitative shapes of every table and figure, runnable as one test
//! target. (The experiment binaries print the full artifacts; these
//! tests pin the *orderings and crossovers* so regressions fail CI.)

use cedar_restructure::PassConfig;
use cedar_sim::MachineConfig;

fn speedup(w: &cedar_workloads::Workload, cfg: &PassConfig, mc: &MachineConfig) -> f64 {
    let (s, p) = cedar_experiments::pipeline::run_workload(w, cfg, mc);
    s.cycles / p.cycles
}

/// Table 1's stratification: the memory-pressure routines (`mprove`,
/// CG) exceed the machine's CE count; the mid-pack routines land in
/// single digits to tens; the recurrence-bound solvers barely move.
#[test]
fn table1_stratification() {
    use cedar_workloads::linalg::*;
    let mc = MachineConfig::cedar_config1_scaled();
    let cfg = PassConfig::automatic_1991();

    let s_mprove = speedup(&mprove(192), &cfg, &mc);
    let s_cg = speedup(&cg(184), &cfg, &mc);
    let s_ludcmp = speedup(&ludcmp(128), &cfg, &mc);
    let s_tridag = speedup(&tridag(512), &cfg, &mc);
    let s_toeplz = speedup(&toeplz(192), &cfg, &mc);

    assert!(s_mprove > 32.0, "mprove must beat the CE count: {s_mprove:.0}");
    assert!(s_cg > 32.0, "CG must beat the CE count: {s_cg:.0}");
    assert!(s_mprove > s_ludcmp && s_cg > s_ludcmp);
    assert!(
        (2.0..32.0).contains(&s_ludcmp),
        "ludcmp is mid-pack: {s_ludcmp:.1}"
    );
    assert!(s_tridag < 4.0, "tridag is recurrence-bound: {s_tridag:.1}");
    assert!(s_toeplz < 6.0, "toeplz is recurrence-bound: {s_toeplz:.1}");
}

/// Table 2's axis: the manual technique set beats the automatic one on
/// (nearly) every program, with QCD the known exception (the RNG cycle
/// serializes both).
#[test]
fn table2_manual_dominates_automatic() {
    let mc = MachineConfig::cedar_config1_scaled();
    let auto = PassConfig::automatic_1991();
    let manual = PassConfig::manual_improved();
    let mut improvements = Vec::new();
    for w in cedar_workloads::table2_workloads() {
        let a = speedup(&w, &auto, &mc);
        let m = speedup(&w, &manual, &mc);
        improvements.push(m / a);
        if w.name != "QCD" && w.name != "TRFD" {
            assert!(
                m >= a * 0.95,
                "{}: manual ({m:.2}) must not lose to automatic ({a:.2})",
                w.name
            );
        }
    }
    let avg = improvements.iter().sum::<f64>() / improvements.len() as f64;
    assert!(
        avg > 2.0,
        "average manual improvement must be substantial: {avg:.2} (paper: 17.2 on Cedar)"
    );
}

/// Figure 6: prefetch helps CG (long vectors, global data) far more
/// than TRFD (short vectors, privatized references).
#[test]
fn fig6_prefetch_ordering() {
    let bars = cedar_experiments::fig6::run();
    assert!(bars[0].gain > 1.5, "CG gain: {:.2}", bars[0].gain);
    assert!(bars[1].gain < bars[0].gain);
    assert!(bars[1].gain >= 1.0 && bars[1].gain < 1.5, "TRFD gain: {:.2}", bars[1].gain);
}

/// Figure 7: the expanded (global, extra-dimension) variant runs at a
/// fraction of the privatized variant's speed.
#[test]
fn fig7_expansion_penalty() {
    let f = cedar_experiments::fig7::run();
    assert!((0.2..0.9).contains(&f.expanded_relative), "{:.2}", f.expanded_relative);
}

/// Figure 8: global placement wins on one cluster and saturates; data
/// distribution scales near-linearly and crosses over.
#[test]
fn fig8_crossover() {
    let (series, _) = cedar_experiments::fig8::run();
    let g = &series[0].speeds;
    let d = &series[1].speeds;
    assert!(g[0] > 1.0 && g[0] > d[0]);
    assert!(d[3] > g[3], "distribution must win at 4 clusters");
}

/// Figure 9: fusing the outer loops helps, and helps more on Cedar than
/// on the FX/80 (SDOALL startup dominates).
#[test]
fn fig9_fusion_gain() {
    let ms = cedar_experiments::fig9::run();
    let fx = &ms[0];
    let cedar = &ms[1];
    assert!(cedar.c > cedar.b && cedar.b > cedar.a);
    assert!(
        cedar.c / cedar.b > fx.c / fx.b,
        "fusion gain must be larger on Cedar ({:.2}) than FX/80 ({:.2})",
        cedar.c / cedar.b,
        fx.c / fx.b
    );
}

/// The QCD footnote ladder (paper: 1.8 / 4.5 / 20.8): a critical
/// section around the RNG draw recovers part of the loss, and a
/// parallel generator turns the serialized ~1.4x into a large speedup.
#[test]
fn qcd_footnote_variants() {
    let (serial_rng, critical_rng, parallel_rng) =
        cedar_experiments::table2::qcd_footnote();
    assert!(
        critical_rng > 2.0 * serial_rng,
        "critical {critical_rng:.2} vs serialized {serial_rng:.2}"
    );
    assert!(
        parallel_rng > 2.0 * critical_rng,
        "parallel {parallel_rng:.2} vs critical {critical_rng:.2}"
    );
}
