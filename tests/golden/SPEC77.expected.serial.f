      program spec77
      integer nlat
      integer nwave
      integer nstep
      real fld(96)
      real spc(48)
      real leg(48)
      real plm(48, 96)
      real chksum
      real t
      integer i
      integer m
      integer is
        do i = 1, 96
          fld(i) = sin(0.1 * real(i))
        end do
        do m = 1, 48
          spc(m) = 0.0
        end do
        do i = 1, 96
          do m = 1, 48
            plm(m, i) = cos(0.02 * real(m * i))
          end do
        end do
        do is = 1, 3
          do i = 1, 96
            do m = 1, 48
              leg(m) = plm(m, i) * (1.0 + 0.001 * fld(i))
            end do
            do m = 1, 48
              spc(m) = spc(m) + fld(i) * leg(m)
            end do
          end do
          do i = 1, 96
            t = 0.0
            do m = 1, 48
              t = t + spc(m) * plm(m, i)
            end do
            fld(i) = fld(i) * 0.5 + 0.0001 * t
          end do
        end do
        chksum = 0.0
        do m = 1, 48
          chksum = chksum + spc(m)
        end do
      end

