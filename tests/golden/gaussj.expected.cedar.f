      program gjrun
      integer n
      real a(96, 96)
      real b(96)
      real rowk(96)
      real chksum
      real piv
      real f
      real bk
      integer j
      integer i
      integer k
      global a, b, rowk, bk, j, i, k
        sdoall j = 1, 96
          a(1:96, j) = 1.0 / (1.0 + 2.0 * abs(real(iota(1, 96) - j)))
          a(j, j) = a(j, j) + real(96)
          b(j) = 1.0 + 0.01 * real(j)
        end sdoall
        call tstart
        do k = 1, 96
          piv = 1.0 / a(k, k)
          cdoall j = 1, 96, 32
            integer i3
            integer upper
            i3 = min(32, 96 - j + 1)
            upper = j + i3 - 1
            a(k, j:upper) = a(k, j:upper) * piv
            rowk(j:upper) = a(k, j:upper)
          end cdoall
          b(k) = b(k) * piv
          bk = b(k)
          sdoall i = 1, k - 1
            real f$p
            f$p = a(i, k)
            a(i, 1:96) = a(i, 1:96) - f$p * rowk(1:96)
            b(i) = b(i) - f$p * bk
          end sdoall
          sdoall i = k + 1, 96
            real f$p$1
            f$p$1 = a(i, k)
            a(i, 1:96) = a(i, 1:96) - f$p$1 * rowk(1:96)
            b(i) = b(i) - f$p$1 * bk
          end sdoall
        end do
        call tstop
        chksum = 0.0
        chksum = chksum + sum$c(b(1:96))
      end

