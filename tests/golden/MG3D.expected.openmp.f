      program mg3d
      integer nx
      integer ny
      integer nz
      integer nstep
      real p(32, 32, 32)
      real penc(32)
      real chksum
      integer k
      integer j
      integer i
      integer is
      real penc$p(32)
!$omp parallel do
        do k = 1, 32
!$omp parallel do
          do j = 1, 32
            do i = 1, 32
              p(i, j, k) = 0.01 * real(i) + 0.02 * real(j) + 0.005 *
     &          real(k)
            end do
          end do
        end do
        do is = 1, 3
          do k = 1, 32
!$omp parallel do private(penc$p)
            do j = 1, 32
              penc$p(1:32) = p(1:32, j, k) * 0.9
              p(2:32 - 1, j, k) = penc$p(2:32 - 1) + 0.05 * (penc$p(2 -
     &          1:32 - 1 - 1) + penc$p(2 + 1:32 - 1 + 1))
            end do
          end do
        end do
        chksum = 0.0
        do k = 1, 32
          chksum = chksum + p(k, k, k)
        end do
      end

