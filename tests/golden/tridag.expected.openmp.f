      program tdrun
      integer n
      integer niter
      real a(512)
      real b(512)
      real c(512)
      real r(512)
      real u(512)
      real gam(512)
      real chksum
      integer i
      integer it
      integer tridag$n
      real tridag$bet
      integer tridag$j
      integer i3
      integer upper
      integer i3$1
      integer upper$1
!$omp parallel do private(i3, upper)
        do i = 1, 512, 32
          i3 = min(32, 512 - i + 1)
          upper = i + i3 - 1
          a(i:upper) = -1.0
          b(i:upper) = 4.0 + 0.001 * real(iota(i, upper))
          c(i:upper) = -1.0
          r(i:upper) = 1.0 + 0.01 * real(iota(i, upper))
        end do
        call tstart
        do it = 1, 10
          tridag$n = 512
          tridag$bet = b(1)
          u(1) = r(1) / tridag$bet
          do tridag$j = 2, tridag$n
            gam(tridag$j) = c(tridag$j - 1) / tridag$bet
            tridag$bet = b(tridag$j) - a(tridag$j) * gam(tridag$j)
            u(tridag$j) = (r(tridag$j) - a(tridag$j) * u(tridag$j - 1))
     &        / tridag$bet
          end do
          do tridag$j = tridag$n - 1, 1, -1
            u(tridag$j) = u(tridag$j) - gam(tridag$j + 1) * u(tridag$j +
     &        1)
          end do
!$omp parallel do private(i3$1, upper$1)
          do i = 1, 512, 32
            i3$1 = min(32, 512 - i + 1)
            upper$1 = i + i3$1 - 1
            r(i:upper$1) = 0.5 * r(i:upper$1) + 0.5 * u(i:upper$1)
          end do
        end do
        call tstop
        chksum = 0.0
        chksum = chksum + sum(u(1:512))
      end

      subroutine tridag(a, b, c, r, u, gam, n)
      real a(n)
      real b(n)
      real c(n)
      real r(n)
      real u(n)
      real gam(n)
      integer n
      real bet
      integer j
        bet = b(1)
        u(1) = r(1) / bet
        do j = 2, n
          gam(j) = c(j - 1) / bet
          bet = b(j) - a(j) * gam(j)
          u(j) = (r(j) - a(j) * u(j - 1)) / bet
        end do
        do j = n - 1, 1, -1
          u(j) = u(j) - gam(j + 1) * u(j + 1)
        end do
      end

