      program lbrun
      integer n
      real a(128, 128)
      real b(128)
      real chksum
      integer j
      integer i
      integer lubksb$n
      real lubksb$t
      integer lubksb$i
      integer lubksb$j
      global a, b, j
        sdoall j = 1, 128
          a(1:128, j) = 1.0 / (1.0 + 2.0 * abs(real(iota(1, 128) - j)))
          a(j, j) = a(j, j) + real(128)
          b(j) = 0.5 + 0.01 * real(j)
        end sdoall
        call tstart
        lubksb$n = 128
        do lubksb$i = 2, lubksb$n
          lubksb$t = b(lubksb$i)
          lubksb$t = lubksb$t + sum$c(-(a(lubksb$i, 1:lubksb$i - 1) *
     &      b(1:lubksb$i - 1)))
          b(lubksb$i) = lubksb$t
        end do
        do lubksb$i = lubksb$n, 1, -1
          lubksb$t = b(lubksb$i)
          lubksb$t = lubksb$t + sum$c(-(a(lubksb$i, lubksb$i +
     &      1:lubksb$n) * b(lubksb$i + 1:lubksb$n)))
          b(lubksb$i) = lubksb$t / a(lubksb$i, lubksb$i)
        end do
        call tstop
        chksum = 0.0
        chksum = chksum + sum$c(b(1:128))
      end

      subroutine lubksb(a, b, n)
      real a(n, n)
      real b(n)
      integer n
      real t
      integer i
      integer j
        do i = 2, n
          t = b(i)
          t = t + sum$c(-(a(i, 1:i - 1) * b(1:i - 1)))
          b(i) = t
        end do
        do i = n, 1, -1
          t = b(i)
          t = t + sum$c(-(a(i, i + 1:n) * b(i + 1:n)))
          b(i) = t / a(i, i)
        end do
      end

