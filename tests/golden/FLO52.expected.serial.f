      program flo52
      integer ni
      integer nj
      integer nstep
      real u(48, 64)
      real f(48)
      real g(48)
      real chksum
      integer j
      integer i
      integer is
        do j = 1, 64
          do i = 1, 48
            u(i, j) = 1.0 + 0.01 * real(i) + 0.002 * real(j)
          end do
        end do
        do is = 1, 12
          do j = 1, 64
            do i = 1, 48
              f(i) = 0.5 * u(i, j)
            end do
            do i = 1, 48
              u(i, j) = u(i, j) + 0.1 * f(i)
            end do
          end do
          do j = 1, 64
            do i = 1, 48
              g(i) = u(i, j) * u(i, j) * 0.001
            end do
            do i = 1, 48
              u(i, j) = u(i, j) - 0.05 * g(i)
            end do
          end do
        end do
        chksum = 0.0
        do j = 1, 64
          chksum = chksum + u(1, j) + u(48, j)
        end do
      end

