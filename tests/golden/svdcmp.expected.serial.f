      program sdrun
      integer n
      real a(96, 96)
      real d(96)
      real chksum
      real s
      real beta
      real t
      integer j
      integer i
      integer k
        do j = 1, 96
          do i = 1, 96
            a(i, j) = sin(0.05 * real(i * j)) + 2.0 / real(i + j)
          end do
          a(j, j) = a(j, j) + 4.0
        end do
        call tstart
        do k = 1, 96 - 1
          s = 0.0
          do i = k, 96
            s = s + a(i, k) * a(i, k)
          end do
          d(k) = sqrt(s)
          beta = 1.0 / (s + 1e-6)
          do j = k + 1, 96
            t = 0.0
            do i = k, 96
              t = t + a(i, k) * a(i, j)
            end do
            t = t * beta
            do i = k, 96
              a(i, j) = a(i, j) - t * a(i, k)
            end do
          end do
        end do
        call tstop
        d(96) = a(96, 96)
        chksum = 0.0
        do i = 1, 96
          chksum = chksum + d(i)
        end do
      end

