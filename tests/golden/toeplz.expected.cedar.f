      program tzrun
      integer n
      real tr(2 * 192 - 1)
      real y(192)
      real x(192)
      real g(192)
      real h(192)
      real chksum
      real sxn
      real sgn
      real denom
      integer i
      integer m
      integer j
        cdoall i = 1, 2 * 192 - 1, 32
          integer i3
          integer upper
          i3 = min(32, 2 * 192 - 1 - i + 1)
          upper = i + i3 - 1
          tr(i:upper) = 1.0 / (1.0 + 0.3 * abs(real(iota(i, upper) -
     &      192)))
        end cdoall
        tr(192) = tr(192) + 4.0
        cdoall i = 1, 192, 32
          integer i3$1
          integer upper$1
          i3$1 = min(32, 192 - i + 1)
          upper$1 = i + i3$1 - 1
          y(i:upper$1) = 1.0 + 0.01 * real(iota(i, upper$1))
        end cdoall
        x(1) = y(1) / tr(192)
        g(1) = tr(192 - 1) / tr(192)
        call tstart
        do m = 2, 192
          sxn = -y(m)
          sgn = -tr(192 - m + 1)
          do j = 1, m - 1
            sxn = sxn + tr(192 + m - j) * x(j)
            sgn = sgn + tr(192 + m - j) * g(j)
          end do
          denom = sgn - tr(192)
          x(m) = sxn / denom
          cdoall j = 1, m - 1, 32
            integer i3$2
            integer upper$2
            i3$2 = min(32, m - 1 - j + 1)
            upper$2 = j + i3$2 - 1
            h(j:upper$2) = x(j:upper$2) - x(m) * g(j:upper$2)
          end cdoall
          cdoall j = 1, m - 1, 32
            integer i3$3
            integer upper$3
            i3$3 = min(32, m - 1 - j + 1)
            upper$3 = j + i3$3 - 1
            x(j:upper$3) = h(j:upper$3)
          end cdoall
          if (m .lt. 192) then
            sgn = -tr(192 - m)
            sgn = sgn + dotproduct$c(tr(192 - m + 1:192 - m + (m - 1)),
     &        g(1:m - 1))
            g(m) = sgn / denom
            cdoall j = 1, m - 1, 32
              integer i3$4
              integer upper$4
              i3$4 = min(32, m - 1 - j + 1)
              upper$4 = j + i3$4 - 1
              h(j:upper$4) = g(j:upper$4) - g(m) * g(m - iota(j,
     &          upper$4))
            end cdoall
            cdoall j = 1, m - 1, 32
              integer i3$5
              integer upper$5
              i3$5 = min(32, m - 1 - j + 1)
              upper$5 = j + i3$5 - 1
              g(j:upper$5) = h(j:upper$5)
            end cdoall
          end if
        end do
        call tstop
        chksum = 0.0
        chksum = chksum + sum$c(x(1:192))
      end

