      program lurun
      integer n
      real a(128, 128)
      real chksum
      integer j
      integer i
        do j = 1, 128
          do i = 1, 128
            a(i, j) = 1.0 / (1.0 + 2.0 * abs(real(i - j)))
          end do
          a(j, j) = a(j, j) + real(128)
        end do
        call tstart
        call ludcmp(a(:, :), 128)
        call tstop
        chksum = 0.0
        do i = 1, 128
          chksum = chksum + a(i, i)
        end do
      end

      subroutine ludcmp(a, n)
      real a(n, n)
      integer n
      real piv
      integer k
      integer i
      integer j
        do k = 1, n - 1
          piv = 1.0 / a(k, k)
          do i = k + 1, n
            a(i, k) = a(i, k) * piv
          end do
          do j = k + 1, n
            do i = k + 1, n
              a(i, j) = a(i, j) - a(i, k) * a(k, j)
            end do
          end do
        end do
      end

