      program gjrun
      integer n
      real a(96, 96)
      real b(96)
      real rowk(96)
      real chksum
      real piv
      real f
      real bk
      integer j
      integer i
      integer k
        do j = 1, 96
          do i = 1, 96
            a(i, j) = 1.0 / (1.0 + 2.0 * abs(real(i - j)))
          end do
          a(j, j) = a(j, j) + real(96)
        end do
        do i = 1, 96
          b(i) = 1.0 + 0.01 * real(i)
        end do
        call tstart
        do k = 1, 96
          piv = 1.0 / a(k, k)
          do j = 1, 96
            a(k, j) = a(k, j) * piv
            rowk(j) = a(k, j)
          end do
          b(k) = b(k) * piv
          bk = b(k)
          do i = 1, k - 1
            f = a(i, k)
            do j = 1, 96
              a(i, j) = a(i, j) - f * rowk(j)
            end do
            b(i) = b(i) - f * bk
          end do
          do i = k + 1, 96
            f = a(i, k)
            do j = 1, 96
              a(i, j) = a(i, j) - f * rowk(j)
            end do
            b(i) = b(i) - f * bk
          end do
        end do
        call tstop
        chksum = 0.0
        do i = 1, 96
          chksum = chksum + b(i)
        end do
      end

