      program tzrun
      integer n
      real tr(2 * 192 - 1)
      real y(192)
      real x(192)
      real g(192)
      real h(192)
      real chksum
      real sxn
      real sgn
      real denom
      integer i
      integer m
      integer j
        do i = 1, 2 * 192 - 1
          tr(i) = 1.0 / (1.0 + 0.3 * abs(real(i - 192)))
        end do
        tr(192) = tr(192) + 4.0
        do i = 1, 192
          y(i) = 1.0 + 0.01 * real(i)
        end do
        x(1) = y(1) / tr(192)
        g(1) = tr(192 - 1) / tr(192)
        call tstart
        do m = 2, 192
          sxn = -y(m)
          sgn = -tr(192 - m + 1)
          do j = 1, m - 1
            sxn = sxn + tr(192 + m - j) * x(j)
            sgn = sgn + tr(192 + m - j) * g(j)
          end do
          denom = sgn - tr(192)
          x(m) = sxn / denom
          do j = 1, m - 1
            h(j) = x(j) - x(m) * g(j)
          end do
          do j = 1, m - 1
            x(j) = h(j)
          end do
          if (m .lt. 192) then
            sgn = -tr(192 - m)
            do j = 1, m - 1
              sgn = sgn + tr(192 - m + j) * g(j)
            end do
            g(m) = sgn / denom
            do j = 1, m - 1
              h(j) = g(j) - g(m) * g(m - j)
            end do
            do j = 1, m - 1
              g(j) = h(j)
            end do
          end if
        end do
        call tstop
        chksum = 0.0
        do i = 1, 192
          chksum = chksum + x(i)
        end do
      end

