      program arc2d
      integer nx
      integer ny
      integer nstep
      real u(96, 96)
      real rhs(96, 96)
      real pen(96)
      real chksum
      integer j
      integer i
      integer is
      real pen$p(96)
!$omp parallel do
        do j = 1, 96
          u(1:96, j) = sin(0.07 * real(iota(1, 96))) * cos(0.05 *
     &      real(j))
          rhs(1:96, j) = 0.0
        end do
        do is = 1, 3
!$omp parallel do
          do j = 2, 96 - 1
            rhs(2:96 - 1, j) = u(2 + 1:96 - 1 + 1, j) + u(2 - 1:96 - 1 -
     &        1, j) + u(2:96 - 1, j + 1) + u(2:96 - 1, j - 1) - 4.0 *
     &        u(2:96 - 1, j)
          end do
!$omp parallel do private(pen$p)
          do j = 2, 96 - 1
            pen$p(1:96) = rhs(1:96, j) * 0.25
            u(2:96 - 1, j) = u(2:96 - 1, j) + pen$p(2:96 - 1) + 0.1 *
     &        pen$p(2 - 1:96 - 1 - 1)
          end do
        end do
        chksum = 0.0
        do j = 1, 96
          chksum = chksum + u(j, j)
        end do
      end

