      program trfd
      integer nb
      integer npair
      integer nstep
      real v(4656)
      real xj(96)
      real sc(96)
      real tw(96)
      real chksum
      real t
      integer ij
      integer i
      integer is
      integer j
        do i = 1, 96
          xj(i) = 0.3 + 0.004 * real(i)
          sc(i) = 1.0 / (1.0 + 0.05 * real(i))
        end do
        do is = 1, 3
          ij = 0
          do i = 1, 96
            do j = 1, i
              ij = ij + 1
              v(ij) = xj(i) * xj(j) + 0.001 * real(is)
            end do
          end do
          do i = 1, 96
            do j = 1, i
              tw(j) = v(i * (i - 1) / 2 + j) * sc(j)
            end do
            t = 0.0
            do j = 1, i
              t = t + tw(j)
            end do
            xj(i) = xj(i) + 1e-5 * t
          end do
        end do
        chksum = 0.0
        do i = 1, 96
          chksum = chksum + xj(i)
        end do
      end

