      program mdg
      integer nmol
      integer nsite
      integer nstep
      real x(256)
      real acc(32)
      real rs(32)
      real soff(32)
      real chksum
      integer i
      integer k
      integer is
        do i = 1, 256
          x(i) = 0.4 + 0.002 * real(i)
        end do
        do k = 1, 32
          acc(k) = 0.0
          soff(k) = 0.01 * real(k)
        end do
        do is = 1, 3
          do i = 1, 256
            do k = 1, 32
              rs(k) = x(i) + soff(k)
            end do
            do k = 1, 32
              acc(k) = acc(k) + rs(k) * 0.001
              acc(k) = acc(k) + rs(k) * rs(k) * 0.0001
            end do
          end do
          do i = 1, 256
            x(i) = x(i) + 1e-5 * acc(mod(i, 32) + 1)
          end do
        end do
        chksum = 0.0
        do k = 1, 32
          chksum = chksum + acc(k)
        end do
      end

