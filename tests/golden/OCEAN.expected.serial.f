      program ocean
      integer nn
      integer mm
      integer nstep
      real a(512 * 24)
      real b(512 * 24)
      real w(512)
      real chksum
      real wf
      integer mstr
      integer j
      integer i
      integer is
        mstr = 24
        do j = 1, 512
          do i = 1, 24
            a((j - 1) * mstr + i) = 0.001 * real(i) + 0.01 * real(j)
            b((j - 1) * mstr + i) = 0.002 * real(i) - 0.01 * real(j)
          end do
        end do
        wf = 1.0
        do i = 1, 512
          wf = wf * 1.01
          w(i) = wf
        end do
        do is = 1, 3
          do j = 1, 512
            do i = 2, 24 - 1
              a((j - 1) * mstr + i) = a((j - 1) * mstr + i) * 0.98 +
     &          0.01 * (b((j - 1) * mstr + i - 1) + b((j - 1) * mstr + i
     &          + 1)) * w(j)
            end do
          end do
        end do
        chksum = 0.0
        do j = 1, 512
          chksum = chksum + a((j - 1) * mstr + 1) + a((j - 1) * mstr +
     &      24)
        end do
      end

