      program cgrun
      integer n
      integer niter
      real a(184, 184)
      real b(184)
      real x(184)
      real r(184)
      real p(184)
      real q(184)
      real z(184)
      real chksum
      integer j
      integer i
        do j = 1, 184
          do i = 1, 184
            a(i, j) = 1.0 / (1.0 + 3.0 * abs(real(i - j)))
          end do
          a(j, j) = a(j, j) + real(184)
        end do
        do i = 1, 184
          b(i) = 1.0 + 0.001 * real(i)
        end do
        call tstart
        call cg(a(:, :), b(:), x(:), r(:), p(:), q(:), z(:), 184, 8)
        call tstop
        chksum = 0.0
        do i = 1, 184
          chksum = chksum + x(i)
        end do
      end

      subroutine cg(a, b, x, r, p, q, z, n, niter)
      real a(n, n)
      real b(n)
      real x(n)
      real r(n)
      real p(n)
      real q(n)
      real z(n)
      integer n
      integer niter
      real rz
      real rznew
      real pq
      real alpha
      real beta
      real t
      integer i
      integer it
      integer j
        do i = 1, n
          x(i) = 0.0
          r(i) = b(i)
          p(i) = b(i)
        end do
        rz = 0.0
        do i = 1, n
          rz = rz + r(i) * r(i)
        end do
        do it = 1, niter
          do i = 1, n
            t = 0.0
            do j = 1, n
              t = t + a(j, i) * p(j)
            end do
            q(i) = t
          end do
          pq = 0.0
          do i = 1, n
            pq = pq + p(i) * q(i)
          end do
          alpha = rz / pq
          do i = 1, n
            x(i) = x(i) + alpha * p(i)
            r(i) = r(i) - alpha * q(i)
          end do
          rznew = 0.0
          do i = 1, n
            rznew = rznew + r(i) * r(i)
          end do
          beta = rznew / rz
          rz = rznew
          do i = 1, n
            p(i) = r(i) + beta * p(i)
          end do
        end do
      end

