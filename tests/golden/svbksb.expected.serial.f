      program svrun
      integer n
      real u(112, 112)
      real v(112, 112)
      real w(112)
      real b(112)
      real x(112)
      real tmp(112)
      real chksum
      real s
      integer j
      integer i
      integer k
        do j = 1, 112
          do i = 1, 112
            u(i, j) = sin(0.1 * real(i * j))
            v(i, j) = cos(0.1 * real(i + j))
          end do
        end do
        do i = 1, 112
          w(i) = 1.0 + 0.5 * real(i)
          b(i) = 1.0 / real(i)
        end do
        call tstart
        do j = 1, 112
          s = 0.0
          if (w(j) .ne. 0.0) then
            do i = 1, 112
              s = s + u(i, j) * b(i)
            end do
            s = s / w(j)
          end if
          tmp(j) = s
        end do
        do j = 1, 112
          s = 0.0
          do k = 1, 112
            s = s + v(j, k) * tmp(k)
          end do
          x(j) = s
        end do
        call tstop
        chksum = 0.0
        do i = 1, 112
          chksum = chksum + x(i)
        end do
      end

