      program svrun
      integer n
      real u(112, 112)
      real v(112, 112)
      real w(112)
      real b(112)
      real x(112)
      real tmp(112)
      real chksum
      real s
      integer j
      integer i
      integer k
      real s$p
      real s$p$1
!$omp parallel do
        do j = 1, 112
          u(1:112, j) = sin(0.1 * real(iota(1, 112) * j))
          v(1:112, j) = cos(0.1 * real(iota(1, 112) + j))
          w(j) = 1.0 + 0.5 * real(j)
          b(j) = 1.0 / real(j)
        end do
        call tstart
!$omp parallel do private(s$p)
        do j = 1, 112
          s$p = 0.0
          if (w(j) .ne. 0.0) then
            do i = 1, 112
              s$p = s$p + u(i, j) * b(i)
            end do
            s$p = s$p / w(j)
          end if
          tmp(j) = s$p
        end do
!$omp parallel do private(s$p$1)
        do j = 1, 112
          s$p$1 = 0.0
          s$p$1 = s$p$1 + dotproduct(v(j, 1:112), tmp(1:112))
          x(j) = s$p$1
        end do
        call tstop
        chksum = 0.0
        chksum = chksum + sum(x(1:112))
      end

