      program track
      integer nobs
      integer ntrk
      integer nstep
      real score(48)
      real obs(384)
      real chksum
      real g
      integer hit(384)
      integer i
      integer k
      integer is
      integer l
        cdoall i = 1, 384, 32
          integer i3
          integer upper
          i3 = min(32, 384 - i + 1)
          upper = i + i3 - 1
          obs(i:upper) = 0.5 + 0.001 * real(iota(i, upper))
          hit(i:upper) = mod(iota(i, upper) * 7, 48) + 1
        end cdoall
        cdoall k = 1, 48, 32
          integer i3$1
          integer upper$1
          i3$1 = min(32, 48 - k + 1)
          upper$1 = k + i3$1 - 1
          score(k:upper$1) = 0.0
        end cdoall
        do is = 1, 3
          cdoall i = 1, 384
            real g$p
            g$p = 0.0
            do l = 1, 24
              g$p = g$p + sqrt(obs(i) + 0.05 * real(l)) * 0.04
            end do
            call lock(100)
            score(hit(i)) = score(hit(i)) + obs(i) * g$p
            call unlock(100)
          end cdoall
          do k = 2, 48
            score(k) = score(k) + 0.25 * score(k - 1)
          end do
          cdoall i = 1, 384, 32
            integer i3$2
            integer upper$2
            i3$2 = min(32, 384 - i + 1)
            upper$2 = i + i3$2 - 1
            obs(i:upper$2) = obs(i:upper$2) * 0.999 + 0.0001 *
     &        score(hit(i:upper$2))
          end cdoall
        end do
        chksum = 0.0
        chksum = chksum + sum$v(score(1:48))
      end

