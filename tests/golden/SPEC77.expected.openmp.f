      program spec77
      integer nlat
      integer nwave
      integer nstep
      real fld(96)
      real spc(48)
      real leg(48)
      real plm(48, 96)
      real chksum
      real t
      integer i
      integer m
      integer is
      integer i3
      integer upper
      integer i3$1
      integer upper$1
      real leg$p(48)
      real spc$r(48)
      real t$p
!$omp parallel do private(i3, upper)
        do i = 1, 96, 32
          i3 = min(32, 96 - i + 1)
          upper = i + i3 - 1
          fld(i:upper) = sin(0.1 * real(iota(i, upper)))
        end do
!$omp parallel do private(i3$1, upper$1)
        do m = 1, 48, 32
          i3$1 = min(32, 48 - m + 1)
          upper$1 = m + i3$1 - 1
          spc(m:upper$1) = 0.0
        end do
!$omp parallel do
        do i = 1, 96
          plm(1:48, i) = cos(0.02 * real(iota(1, 48) * i))
        end do
        do is = 1, 3
          spc$r(:) = 0.0
          do i = 1, 96
            leg$p(1:48) = plm(1:48, i) * (1.0 + 0.001 * fld(i))
            spc$r(1:48) = spc$r(1:48) + fld(i) * leg$p(1:48)
          end do
          call omp_set_lock(100)
          spc(:) = spc(:) + spc$r(:)
          call omp_unset_lock(100)
!$omp parallel do private(t$p)
          do i = 1, 96
            t$p = 0.0
            t$p = t$p + dotproduct(spc(1:48), plm(1:48, i))
            fld(i) = fld(i) * 0.5 + 0.0001 * t$p
          end do
        end do
        chksum = 0.0
        chksum = chksum + sum(spc(1:48))
      end

