      program sprun
      integer n
      integer ndiag
      integer nnz
      integer niter
      real val(4096)
      real x(256)
      real y(256)
      real chksum
      integer col(4096)
      integer rowst(256 + 1)
      integer k
      integer i
      integer j
      integer it
      integer spmv$n
      real spmv$t
      integer spmv$i
      integer spmv$k
      integer k$0
      integer i3
      integer upper
      integer i3$1
      integer upper$1
      real spmv$t$p
      integer i3$2
      integer upper$2
        k = 0
        k$0 = k
        do i = 1, 256
          rowst(i) = k$0 + (0 * ((i - 1) * (i - 1 - 1) / 2) + 16 * (i -
     &      1)) + 1
!$omp parallel do private(i3, upper)
          do j = 1, 16, 32
            i3 = min(32, 16 - j + 1)
            upper = j + i3 - 1
            col(k$0 + (0 * ((i - 1) * (i - 1 - 1) / 2) + 16 * (i - 1)) +
     &        (j - 1 + 1):k$0 + (0 * ((i - 1) * (i - 1 - 1) / 2) + 16 *
     &        (i - 1)) + (upper - 1 + 1)) = mod(i * 3 + iota(j, upper) *
     &        7, 256) + 1
            val(k$0 + (0 * ((i - 1) * (i - 1 - 1) / 2) + 16 * (i - 1)) +
     &        (j - 1 + 1):k$0 + (0 * ((i - 1) * (i - 1 - 1) / 2) + 16 *
     &        (i - 1)) + (upper - 1 + 1)) = 1.0 / real(i + iota(j,
     &        upper))
          end do
        end do
        k = k$0 + (0 * (65280 / 2) + 4096)
        rowst(256 + 1) = k + 1
!$omp parallel do private(i3$1, upper$1)
        do i = 1, 256, 32
          i3$1 = min(32, 256 - i + 1)
          upper$1 = i + i3$1 - 1
          x(i:upper$1) = 1.0 + 0.001 * real(iota(i, upper$1))
        end do
        call tstart
        do it = 1, 6
          spmv$n = 256
!$omp parallel do private(spmv$t$p)
          do spmv$i = 1, spmv$n
            spmv$t$p = 0.0
            spmv$t$p = spmv$t$p +
     &        dotproduct(val(rowst(spmv$i):rowst(spmv$i + 1) - 1),
     &        x(col(rowst(spmv$i):rowst(spmv$i + 1) - 1)))
            y(spmv$i) = spmv$t$p
          end do
!$omp parallel do private(i3$2, upper$2)
          do i = 1, 256, 32
            i3$2 = min(32, 256 - i + 1)
            upper$2 = i + i3$2 - 1
            x(i:upper$2) = 0.9 * x(i:upper$2) + 0.1 * y(i:upper$2)
          end do
        end do
        call tstop
        chksum = 0.0
        chksum = chksum + sum(x(1:256))
      end

      subroutine spmv(val, col, rowst, x, y, n)
      real val(*)
      integer col(*)
      integer rowst(n + 1)
      real x(n)
      real y(n)
      integer n
      real t
      integer i
      integer k
      real t$p
!$omp parallel do private(t$p)
        do i = 1, n
          t$p = 0.0
          t$p = t$p + dotproduct(val(rowst(i):rowst(i + 1) - 1),
     &      x(col(rowst(i):rowst(i + 1) - 1)))
          y(i) = t$p
        end do
      end

