      program flo52
      integer ni
      integer nj
      integer nstep
      real u(48, 64)
      real f(48)
      real g(48)
      real chksum
      integer j
      integer i
      integer is
      real f$p(48)
      real g$p(48)
!$omp parallel do
        do j = 1, 64
          u(1:48, j) = 1.0 + 0.01 * real(iota(1, 48)) + 0.002 * real(j)
        end do
        do is = 1, 12
!$omp parallel do private(f$p, g$p)
          do j = 1, 64
            f$p(1:48) = 0.5 * u(1:48, j)
            u(1:48, j) = u(1:48, j) + 0.1 * f$p(1:48)
            g$p(1:48) = u(1:48, j) * u(1:48, j) * 0.001
            u(1:48, j) = u(1:48, j) - 0.05 * g$p(1:48)
          end do
        end do
        chksum = 0.0
        chksum = chksum + sum(u(1, 1:64) + u(48, 1:64))
      end

