      program sprun
      integer n
      integer ndiag
      integer nnz
      integer niter
      real val(4096)
      real x(256)
      real y(256)
      real chksum
      integer col(4096)
      integer rowst(256 + 1)
      integer k
      integer i
      integer j
      integer it
        k = 0
        do i = 1, 256
          rowst(i) = k + 1
          do j = 1, 16
            k = k + 1
            col(k) = mod(i * 3 + j * 7, 256) + 1
            val(k) = 1.0 / real(i + j)
          end do
        end do
        rowst(256 + 1) = k + 1
        do i = 1, 256
          x(i) = 1.0 + 0.001 * real(i)
        end do
        call tstart
        do it = 1, 6
          call spmv(val(:), col(:), rowst(:), x(:), y(:), 256)
          do i = 1, 256
            x(i) = 0.9 * x(i) + 0.1 * y(i)
          end do
        end do
        call tstop
        chksum = 0.0
        do i = 1, 256
          chksum = chksum + x(i)
        end do
      end

      subroutine spmv(val, col, rowst, x, y, n)
      real val(*)
      integer col(*)
      integer rowst(n + 1)
      real x(n)
      real y(n)
      integer n
      real t
      integer i
      integer k
        do i = 1, n
          t = 0.0
          do k = rowst(i), rowst(i + 1) - 1
            t = t + val(k) * x(col(k))
          end do
          y(i) = t
        end do
      end

