      program mprun
      integer n
      integer niter
      real a(192, 192)
      real alud(192, 192)
      real b(192)
      real x(192)
      real r(192)
      real chksum
      integer j
      integer i
      integer it
      integer mprove$n
      real mprove$s
      real mprove$t
      integer mprove$i
      integer mprove$j
      real mprove$s$p
      integer i3
      integer upper
!$omp parallel do
        do j = 1, 192
          a(1:192, j) = 1.0 / (1.0 + 2.0 * abs(real(iota(1, 192) - j)))
          alud(1:192, j) = a(1:192, j) * 0.01
          a(j, j) = a(j, j) + real(192)
          alud(j, j) = a(j, j)
        end do
!$omp parallel do
        do i = 1, 192
          b(i) = 1.0 + 0.01 * real(i)
          x(i) = b(i) / a(i, i)
        end do
        call tstart
        do it = 1, 4
          mprove$n = 192
!$omp parallel do private(mprove$s$p)
          do mprove$i = 1, mprove$n
            mprove$s$p = -b(mprove$i)
            mprove$s$p = mprove$s$p + dotproduct(a(mprove$i,
     &        1:mprove$n), x(1:mprove$n))
            r(mprove$i) = mprove$s$p
          end do
          do mprove$i = 2, mprove$n
            mprove$t = r(mprove$i)
            mprove$t = mprove$t + sum(-(alud(mprove$i, 1:mprove$i - 1) *
     &        r(1:mprove$i - 1)))
            r(mprove$i) = mprove$t
          end do
          do mprove$i = mprove$n, 1, -1
            mprove$t = r(mprove$i)
            mprove$t = mprove$t + sum(-(alud(mprove$i, mprove$i +
     &        1:mprove$n) * r(mprove$i + 1:mprove$n)))
            r(mprove$i) = mprove$t / alud(mprove$i, mprove$i)
          end do
!$omp parallel do private(i3, upper)
          do mprove$i = 1, mprove$n, 32
            i3 = min(32, mprove$n - mprove$i + 1)
            upper = mprove$i + i3 - 1
            x(mprove$i:upper) = x(mprove$i:upper) - r(mprove$i:upper)
          end do
        end do
        call tstop
        chksum = 0.0
        chksum = chksum + sum(x(1:192))
      end

      subroutine mprove(a, alud, b, x, r, n)
      real a(n, n)
      real alud(n, n)
      real b(n)
      real x(n)
      real r(n)
      integer n
      real s
      real t
      integer i
      integer j
      real s$p
      integer i3
      integer upper
!$omp parallel do private(s$p)
        do i = 1, n
          s$p = -b(i)
          s$p = s$p + dotproduct(a(i, 1:n), x(1:n))
          r(i) = s$p
        end do
        do i = 2, n
          t = r(i)
          t = t + sum(-(alud(i, 1:i - 1) * r(1:i - 1)))
          r(i) = t
        end do
        do i = n, 1, -1
          t = r(i)
          t = t + sum(-(alud(i, i + 1:n) * r(i + 1:n)))
          r(i) = t / alud(i, i)
        end do
!$omp parallel do private(i3, upper)
        do i = 1, n, 32
          i3 = min(32, n - i + 1)
          upper = i + i3 - 1
          x(i:upper) = x(i:upper) - r(i:upper)
        end do
      end

