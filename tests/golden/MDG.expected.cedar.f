      program mdg
      integer nmol
      integer nsite
      integer nstep
      real x(256)
      real acc(32)
      real rs(32)
      real soff(32)
      real chksum
      integer i
      integer k
      integer is
      global x, acc, soff, i
        cdoall i = 1, 256, 32
          integer i3
          integer upper
          i3 = min(32, 256 - i + 1)
          upper = i + i3 - 1
          x(i:upper) = 0.4 + 0.002 * real(iota(i, upper))
        end cdoall
        cdoall k = 1, 32, 32
          integer i3$1
          integer upper$1
          i3$1 = min(32, 32 - k + 1)
          upper$1 = k + i3$1 - 1
          acc(k:upper$1) = 0.0
          soff(k:upper$1) = 0.01 * real(iota(k, upper$1))
        end cdoall
        do is = 1, 3
          sdoall i = 1, 256
            real rs$p(32)
            real acc$r(32)
            acc$r(:) = 0.0
          loop
            rs$p(1:32) = x(i) + soff(1:32)
            acc$r(1:32) = acc$r(1:32) + rs$p(1:32) * 0.001
            acc$r(1:32) = acc$r(1:32) + rs$p(1:32) * rs$p(1:32) * 0.0001
          endloop
            call lock(100)
            acc(:) = acc(:) + acc$r(:)
            call unlock(100)
          end sdoall
          cdoall i = 1, 256, 32
            integer i3$2
            integer upper$2
            i3$2 = min(32, 256 - i + 1)
            upper$2 = i + i3$2 - 1
            x(i:upper$2) = x(i:upper$2) + 1e-5 * acc(mod(iota(i,
     &        upper$2), 32) + 1)
          end cdoall
        end do
        chksum = 0.0
        chksum = chksum + sum$v(acc(1:32))
      end

