      program arc2d
      integer nx
      integer ny
      integer nstep
      real u(96, 96)
      real rhs(96, 96)
      real pen(96)
      real chksum
      integer j
      integer i
      integer is
        do j = 1, 96
          do i = 1, 96
            u(i, j) = sin(0.07 * real(i)) * cos(0.05 * real(j))
            rhs(i, j) = 0.0
          end do
        end do
        do is = 1, 3
          do j = 2, 96 - 1
            do i = 2, 96 - 1
              rhs(i, j) = u(i + 1, j) + u(i - 1, j) + u(i, j + 1) + u(i,
     &          j - 1) - 4.0 * u(i, j)
            end do
          end do
          do j = 2, 96 - 1
            do i = 1, 96
              pen(i) = rhs(i, j) * 0.25
            end do
            do i = 2, 96 - 1
              u(i, j) = u(i, j) + pen(i) + 0.1 * pen(i - 1)
            end do
          end do
        end do
        chksum = 0.0
        do j = 1, 96
          chksum = chksum + u(j, j)
        end do
      end

