      program track
      integer nobs
      integer ntrk
      integer nstep
      real score(48)
      real obs(384)
      real chksum
      real g
      integer hit(384)
      integer i
      integer k
      integer is
      integer l
        do i = 1, 384
          obs(i) = 0.5 + 0.001 * real(i)
          hit(i) = mod(i * 7, 48) + 1
        end do
        do k = 1, 48
          score(k) = 0.0
        end do
        do is = 1, 3
          do i = 1, 384
            g = 0.0
            do l = 1, 24
              g = g + sqrt(obs(i) + 0.05 * real(l)) * 0.04
            end do
            score(hit(i)) = score(hit(i)) + obs(i) * g
          end do
          do k = 2, 48
            score(k) = score(k) + 0.25 * score(k - 1)
          end do
          do i = 1, 384
            obs(i) = obs(i) * 0.999 + 0.0001 * score(hit(i))
          end do
        end do
        chksum = 0.0
        do k = 1, 48
          chksum = chksum + score(k)
        end do
      end

