      program tdrun
      integer n
      integer niter
      real a(512)
      real b(512)
      real c(512)
      real r(512)
      real u(512)
      real gam(512)
      real chksum
      integer i
      integer it
        do i = 1, 512
          a(i) = -1.0
          b(i) = 4.0 + 0.001 * real(i)
          c(i) = -1.0
          r(i) = 1.0 + 0.01 * real(i)
        end do
        call tstart
        do it = 1, 10
          call tridag(a(:), b(:), c(:), r(:), u(:), gam(:), 512)
          do i = 1, 512
            r(i) = 0.5 * r(i) + 0.5 * u(i)
          end do
        end do
        call tstop
        chksum = 0.0
        do i = 1, 512
          chksum = chksum + u(i)
        end do
      end

      subroutine tridag(a, b, c, r, u, gam, n)
      real a(n)
      real b(n)
      real c(n)
      real r(n)
      real u(n)
      real gam(n)
      integer n
      real bet
      integer j
        bet = b(1)
        u(1) = r(1) / bet
        do j = 2, n
          gam(j) = c(j - 1) / bet
          bet = b(j) - a(j) * gam(j)
          u(j) = (r(j) - a(j) * u(j - 1)) / bet
        end do
        do j = n - 1, 1, -1
          u(j) = u(j) - gam(j + 1) * u(j + 1)
        end do
      end

