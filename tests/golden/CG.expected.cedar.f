      program cgrun
      integer n
      integer niter
      real a(184, 184)
      real b(184)
      real x(184)
      real r(184)
      real p(184)
      real q(184)
      real z(184)
      real chksum
      integer j
      integer i
      integer cg$n
      integer cg$niter
      real cg$rz
      real cg$rznew
      real cg$pq
      real cg$alpha
      real cg$beta
      real cg$t
      integer cg$i
      integer cg$it
      integer cg$j
      global a, b, p, q, j, cg$n, cg$i
        sdoall j = 1, 184
          a(1:184, j) = 1.0 / (1.0 + 3.0 * abs(real(iota(1, 184) - j)))
          a(j, j) = a(j, j) + real(184)
          b(j) = 1.0 + 0.001 * real(j)
        end sdoall
        call tstart
        cg$n = 184
        cg$niter = 8
        cdoall cg$i = 1, cg$n, 32
          integer i3
          integer upper
          i3 = min(32, cg$n - cg$i + 1)
          upper = cg$i + i3 - 1
          x(cg$i:upper) = 0.0
          r(cg$i:upper) = b(cg$i:upper)
          p(cg$i:upper) = b(cg$i:upper)
        end cdoall
        cg$rz = 0.0
        cg$rz = cg$rz + dotproduct$c(r(1:cg$n), r(1:cg$n))
        do cg$it = 1, cg$niter
          xdoall cg$i = 1, cg$n
            real cg$t$p
            cg$t$p = 0.0
            cg$t$p = cg$t$p + dotproduct$v(a(1:cg$n, cg$i), p(1:cg$n))
            q(cg$i) = cg$t$p
          end xdoall
          cg$pq = 0.0
          cg$pq = cg$pq + dotproduct$c(p(1:cg$n), q(1:cg$n))
          cg$alpha = cg$rz / cg$pq
          cdoall cg$i = 1, cg$n, 32
            integer i3$1
            integer upper$1
            i3$1 = min(32, cg$n - cg$i + 1)
            upper$1 = cg$i + i3$1 - 1
            x(cg$i:upper$1) = x(cg$i:upper$1) + cg$alpha *
     &        p(cg$i:upper$1)
            r(cg$i:upper$1) = r(cg$i:upper$1) - cg$alpha *
     &        q(cg$i:upper$1)
          end cdoall
          cg$rznew = 0.0
          cg$rznew = cg$rznew + dotproduct$c(r(1:cg$n), r(1:cg$n))
          cg$beta = cg$rznew / cg$rz
          cg$rz = cg$rznew
          cdoall cg$i = 1, cg$n, 32
            integer i3$2
            integer upper$2
            i3$2 = min(32, cg$n - cg$i + 1)
            upper$2 = cg$i + i3$2 - 1
            p(cg$i:upper$2) = r(cg$i:upper$2) + cg$beta *
     &        p(cg$i:upper$2)
          end cdoall
        end do
        call tstop
        chksum = 0.0
        chksum = chksum + sum$c(x(1:184))
      end

      subroutine cg(a, b, x, r, p, q, z, n, niter)
      real a(n, n)
      real b(n)
      real x(n)
      real r(n)
      real p(n)
      real q(n)
      real z(n)
      integer n
      integer niter
      real rz
      real rznew
      real pq
      real alpha
      real beta
      real t
      integer i
      integer it
      integer j
      global a, b, x, r, p, q, z, n, niter, i
        cdoall i = 1, n, 32
          integer i3
          integer upper
          i3 = min(32, n - i + 1)
          upper = i + i3 - 1
          x(i:upper) = 0.0
          r(i:upper) = b(i:upper)
          p(i:upper) = b(i:upper)
        end cdoall
        rz = 0.0
        rz = rz + dotproduct$c(r(1:n), r(1:n))
        do it = 1, niter
          xdoall i = 1, n
            real t$p
            t$p = 0.0
            t$p = t$p + dotproduct$v(a(1:n, i), p(1:n))
            q(i) = t$p
          end xdoall
          pq = 0.0
          pq = pq + dotproduct$c(p(1:n), q(1:n))
          alpha = rz / pq
          cdoall i = 1, n, 32
            integer i3$1
            integer upper$1
            i3$1 = min(32, n - i + 1)
            upper$1 = i + i3$1 - 1
            x(i:upper$1) = x(i:upper$1) + alpha * p(i:upper$1)
            r(i:upper$1) = r(i:upper$1) - alpha * q(i:upper$1)
          end cdoall
          rznew = 0.0
          rznew = rznew + dotproduct$c(r(1:n), r(1:n))
          beta = rznew / rz
          rz = rznew
          cdoall i = 1, n, 32
            integer i3$2
            integer upper$2
            i3$2 = min(32, n - i + 1)
            upper$2 = i + i3$2 - 1
            p(i:upper$2) = r(i:upper$2) + beta * p(i:upper$2)
          end cdoall
        end do
      end

