      program qcd
      integer nlink
      integer nstep
      real u(512)
      real s(512)
      real chksum
      integer iseed
      integer ih
      integer i
      integer is
      real w
      integer k
        iseed = 4711
        do i = 1, 512
          u(i) = 1.0 + 0.001 * real(i)
        end do
        do is = 1, 4
          do i = 1, 512
            iseed = mod(iseed * 1103 + 12345, 65536)
            w = 1e-6 * real(iseed)
            do k = 1, 12
              w = 0.9 * w + 1e-8 * real(k)
            end do
            u(i) = u(i) + w
          end do
          do i = 2, 512 - 1
            s(i) = u(i) * u(i + 1) + u(i) * u(i - 1)
          end do
          s(1) = u(1)
          s(512) = u(512)
          do i = 1, 512
            u(i) = u(i) * 0.9999 + 1e-7 * s(i)
          end do
        end do
        chksum = 0.0
        do i = 1, 512
          chksum = chksum + u(i)
        end do
      end

