      program lurun
      integer n
      real a(128, 128)
      real chksum
      integer j
      integer i
      integer ludcmp$n
      real ludcmp$piv
      integer ludcmp$k
      integer ludcmp$i
      integer ludcmp$j
      global a, j, ludcmp$n, ludcmp$k, ludcmp$j
        sdoall j = 1, 128
          a(1:128, j) = 1.0 / (1.0 + 2.0 * abs(real(iota(1, 128) - j)))
          a(j, j) = a(j, j) + real(128)
        end sdoall
        call tstart
        ludcmp$n = 128
        do ludcmp$k = 1, ludcmp$n - 1
          ludcmp$piv = 1.0 / a(ludcmp$k, ludcmp$k)
          cdoall ludcmp$i = ludcmp$k + 1, ludcmp$n, 32
            integer i3
            integer upper
            i3 = min(32, ludcmp$n - ludcmp$i + 1)
            upper = ludcmp$i + i3 - 1
            a(ludcmp$i:upper, ludcmp$k) = a(ludcmp$i:upper, ludcmp$k) *
     &        ludcmp$piv
          end cdoall
          sdoall ludcmp$j = ludcmp$k + 1, ludcmp$n
            a(ludcmp$k + 1:ludcmp$n, ludcmp$j) = a(ludcmp$k +
     &        1:ludcmp$n, ludcmp$j) - a(ludcmp$k + 1:ludcmp$n, ludcmp$k)
     &        * a(ludcmp$k, ludcmp$j)
          end sdoall
        end do
        call tstop
        chksum = 0.0
        do i = 1, 128
          chksum = chksum + a(i, i)
        end do
      end

      subroutine ludcmp(a, n)
      real a(n, n)
      integer n
      real piv
      integer k
      integer i
      integer j
      global a, n, k, j
        do k = 1, n - 1
          piv = 1.0 / a(k, k)
          cdoall i = k + 1, n, 32
            integer i3
            integer upper
            i3 = min(32, n - i + 1)
            upper = i + i3 - 1
            a(i:upper, k) = a(i:upper, k) * piv
          end cdoall
          sdoall j = k + 1, n
            a(k + 1:n, j) = a(k + 1:n, j) - a(k + 1:n, k) * a(k, j)
          end sdoall
        end do
      end

