      program ocean
      integer nn
      integer mm
      integer nstep
      real a(512 * 24)
      real b(512 * 24)
      real w(512)
      real chksum
      real wf
      integer mstr
      integer j
      integer i
      integer is
      real wf$0
      global a, b, w, mstr, j
        mstr = 24
        do j = 1, 512
          cdoall i = 1, 24, 32
            integer i3
            integer upper
            i3 = min(32, 24 - i + 1)
            upper = i + i3 - 1
            a((j - 1) * mstr + i:(j - 1) * mstr + upper) = 0.001 *
     &        real(iota(i, upper)) + 0.01 * real(j)
            b((j - 1) * mstr + i:(j - 1) * mstr + upper) = 0.002 *
     &        real(iota(i, upper)) - 0.01 * real(j)
          end cdoall
        end do
        wf = 1.0
        wf$0 = wf
        cdoall i = 1, 512, 32
          integer i3$1
          integer upper$1
          i3$1 = min(32, 512 - i + 1)
          upper$1 = i + i3$1 - 1
          w(i:upper$1) = wf$0 * 1.01 ** (iota(i, upper$1) - 1 + 1)
        end cdoall
        wf = wf$0 * 1.01 ** 512
        do is = 1, 3
          if (mstr .ge. 1 + (24 - 1 - 2 + 1 - 1)) then
            xdoall j = 1, 512
              a((j - 1) * mstr + 2:(j - 1) * mstr + (24 - 1)) = a((j -
     &          1) * mstr + 2:(j - 1) * mstr + (24 - 1)) * 0.98 + 0.01 *
     &          (b((j - 1) * mstr + 2 - 1:(j - 1) * mstr + (24 - 1) - 1)
     &          + b((j - 1) * mstr + 2 + 1:(j - 1) * mstr + (24 - 1) +
     &          1)) * w(j)
            end xdoall
          else
            do j = 1, 512
              do i = 2, 24 - 1
                a((j - 1) * mstr + i) = a((j - 1) * mstr + i) * 0.98 +
     &            0.01 * (b((j - 1) * mstr + i - 1) + b((j - 1) * mstr +
     &            i + 1)) * w(j)
              end do
            end do
          end if
        end do
        chksum = 0.0
        chksum = chksum + sum$c(a((iota(1, 512) - 1) * mstr + 1) +
     &    a((iota(1, 512) - 1) * mstr + 24))
      end

