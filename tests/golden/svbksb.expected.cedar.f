      program svrun
      integer n
      real u(112, 112)
      real v(112, 112)
      real w(112)
      real b(112)
      real x(112)
      real tmp(112)
      real chksum
      real s
      integer j
      integer i
      integer k
      global u, v, w, b, x, tmp, j, i
        sdoall j = 1, 112
          u(1:112, j) = sin(0.1 * real(iota(1, 112) * j))
          v(1:112, j) = cos(0.1 * real(iota(1, 112) + j))
          w(j) = 1.0 + 0.5 * real(j)
          b(j) = 1.0 / real(j)
        end sdoall
        call tstart
        xdoall j = 1, 112
          real s$p
          s$p = 0.0
          if (w(j) .ne. 0.0) then
            do i = 1, 112
              s$p = s$p + u(i, j) * b(i)
            end do
            s$p = s$p / w(j)
          end if
          tmp(j) = s$p
        end xdoall
        xdoall j = 1, 112
          real s$p$1
          s$p$1 = 0.0
          s$p$1 = s$p$1 + dotproduct$v(v(j, 1:112), tmp(1:112))
          x(j) = s$p$1
        end xdoall
        call tstop
        chksum = 0.0
        chksum = chksum + sum$c(x(1:112))
      end

