      program bdna
      integer natom
      integer ndim
      integer nstep
      real pos(96)
      real frc(64)
      real wrk(64)
      real cf(64)
      real chksum
      integer i
      integer j
      integer is
      global pos, frc, cf, i
        cdoall i = 1, 96, 32
          integer i3
          integer upper
          i3 = min(32, 96 - i + 1)
          upper = i + i3 - 1
          pos(i:upper) = 0.5 + 0.003 * real(iota(i, upper))
        end cdoall
        cdoall j = 1, 64, 32
          integer i3$1
          integer upper$1
          i3$1 = min(32, 64 - j + 1)
          upper$1 = j + i3$1 - 1
          frc(j:upper$1) = 0.0
          cf(j:upper$1) = 1.0 / (1.0 + 0.1 * real(iota(j, upper$1)))
        end cdoall
        do is = 1, 3
          sdoall i = 1, 96
            real wrk$p(64)
            real frc$r(64)
            frc$r(:) = 0.0
          loop
            wrk$p(1:64) = pos(i) * cf(1:64)
            frc$r(1:64) = frc$r(1:64) + wrk$p(1:64)
            frc$r(1:64) = frc$r(1:64) + 0.5 * wrk$p(1:64) * wrk$p(1:64)
            frc$r(1:64) = frc$r(1:64) - 0.01 * wrk$p(1:64) * pos(i)
          endloop
            call lock(100)
            frc(:) = frc(:) + frc$r(:)
            call unlock(100)
          end sdoall
          cdoall i = 1, 96, 32
            integer i3$2
            integer upper$2
            i3$2 = min(32, 96 - i + 1)
            upper$2 = i + i3$2 - 1
            pos(i:upper$2) = pos(i:upper$2) + 1e-5 * frc(mod(iota(i,
     &        upper$2), 64) + 1)
          end cdoall
        end do
        chksum = 0.0
        chksum = chksum + sum$v(frc(1:64))
      end

