      program trfd
      integer nb
      integer npair
      integer nstep
      real v(4656)
      real xj(96)
      real sc(96)
      real tw(96)
      real chksum
      real t
      integer ij
      integer i
      integer is
      integer j
      integer ij$0
      global v, xj, sc, i
        cdoall i = 1, 96, 32
          integer i3
          integer upper
          i3 = min(32, 96 - i + 1)
          upper = i + i3 - 1
          xj(i:upper) = 0.3 + 0.004 * real(iota(i, upper))
          sc(i:upper) = 1.0 / (1.0 + 0.05 * real(iota(i, upper)))
        end cdoall
        do is = 1, 3
          ij = 0
          ij$0 = ij
          do i = 1, 96
            cdoall j = 1, i, 32
              integer i3$1
              integer upper$1
              i3$1 = min(32, i - j + 1)
              upper$1 = j + i3$1 - 1
              v(ij$0 + ((i - 1) * (i - 1 - 1) / 2 + (i - 1)) + (j - 1 +
     &          1):ij$0 + ((i - 1) * (i - 1 - 1) / 2 + (i - 1)) +
     &          (upper$1 - 1 + 1)) = xj(i) * xj(j:upper$1) + 0.001 *
     &          real(is)
            end cdoall
          end do
          ij = ij$0 + (9120 / 2 + 96)
          xdoall i = 1, 96
            real t$p
            real tw$p(96)
            tw$p(1:i) = v(i * (i - 1) / 2 + 1:i * (i - 1) / 2 + i) *
     &        sc(1:i)
            t$p = 0.0
            t$p = t$p + sum$v(tw$p(1:i))
            xj(i) = xj(i) + 1e-5 * t$p
          end xdoall
        end do
        chksum = 0.0
        chksum = chksum + sum$c(xj(1:96))
      end

