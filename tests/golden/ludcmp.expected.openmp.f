      program lurun
      integer n
      real a(128, 128)
      real chksum
      integer j
      integer i
      integer ludcmp$n
      real ludcmp$piv
      integer ludcmp$k
      integer ludcmp$i
      integer ludcmp$j
      integer i3
      integer upper
!$omp parallel do
        do j = 1, 128
          a(1:128, j) = 1.0 / (1.0 + 2.0 * abs(real(iota(1, 128) - j)))
          a(j, j) = a(j, j) + real(128)
        end do
        call tstart
        ludcmp$n = 128
        do ludcmp$k = 1, ludcmp$n - 1
          ludcmp$piv = 1.0 / a(ludcmp$k, ludcmp$k)
!$omp parallel do private(i3, upper)
          do ludcmp$i = ludcmp$k + 1, ludcmp$n, 32
            i3 = min(32, ludcmp$n - ludcmp$i + 1)
            upper = ludcmp$i + i3 - 1
            a(ludcmp$i:upper, ludcmp$k) = a(ludcmp$i:upper, ludcmp$k) *
     &        ludcmp$piv
          end do
!$omp parallel do
          do ludcmp$j = ludcmp$k + 1, ludcmp$n
            a(ludcmp$k + 1:ludcmp$n, ludcmp$j) = a(ludcmp$k +
     &        1:ludcmp$n, ludcmp$j) - a(ludcmp$k + 1:ludcmp$n, ludcmp$k)
     &        * a(ludcmp$k, ludcmp$j)
          end do
        end do
        call tstop
        chksum = 0.0
        do i = 1, 128
          chksum = chksum + a(i, i)
        end do
      end

      subroutine ludcmp(a, n)
      real a(n, n)
      integer n
      real piv
      integer k
      integer i
      integer j
      integer i3
      integer upper
        do k = 1, n - 1
          piv = 1.0 / a(k, k)
!$omp parallel do private(i3, upper)
          do i = k + 1, n, 32
            i3 = min(32, n - i + 1)
            upper = i + i3 - 1
            a(i:upper, k) = a(i:upper, k) * piv
          end do
!$omp parallel do
          do j = k + 1, n
            a(k + 1:n, j) = a(k + 1:n, j) - a(k + 1:n, k) * a(k, j)
          end do
        end do
      end

