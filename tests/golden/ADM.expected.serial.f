      program adm
      integer ncol
      integer nlev
      integer nstep
      real q(48, 192)
      real chksum
      integer j
      integer k
      integer is
        do j = 1, 192
          do k = 1, 48
            q(k, j) = 1.0 + 0.01 * real(k) + 0.001 * real(j)
          end do
        end do
        do is = 1, 3
          do j = 1, 192
            call colphy(q(:, :), j, 48, 192)
          end do
        end do
        chksum = 0.0
        do k = 1, 48
          chksum = chksum + q(k, 1) + q(k, 192)
        end do
      end

      subroutine colphy(q, j, nlev, ncol)
      real q(nlev, ncol)
      integer j
      integer nlev
      integer ncol
      real col(64)
      integer k
        do k = 1, nlev
          col(k) = q(k, j) * 1.01
        end do
        do k = 1, nlev
          q(k, j) = col(k) + 0.002 * sqrt(col(k))
        end do
      end

