      program gjrun
      integer n
      real a(96, 96)
      real b(96)
      real rowk(96)
      real chksum
      real piv
      real f
      real bk
      integer j
      integer i
      integer k
      integer i3
      integer upper
      real f$p
      real f$p$1
!$omp parallel do
        do j = 1, 96
          a(1:96, j) = 1.0 / (1.0 + 2.0 * abs(real(iota(1, 96) - j)))
          a(j, j) = a(j, j) + real(96)
          b(j) = 1.0 + 0.01 * real(j)
        end do
        call tstart
        do k = 1, 96
          piv = 1.0 / a(k, k)
!$omp parallel do private(i3, upper)
          do j = 1, 96, 32
            i3 = min(32, 96 - j + 1)
            upper = j + i3 - 1
            a(k, j:upper) = a(k, j:upper) * piv
            rowk(j:upper) = a(k, j:upper)
          end do
          b(k) = b(k) * piv
          bk = b(k)
!$omp parallel do private(f$p)
          do i = 1, k - 1
            f$p = a(i, k)
            a(i, 1:96) = a(i, 1:96) - f$p * rowk(1:96)
            b(i) = b(i) - f$p * bk
          end do
!$omp parallel do private(f$p$1)
          do i = k + 1, 96
            f$p$1 = a(i, k)
            a(i, 1:96) = a(i, 1:96) - f$p$1 * rowk(1:96)
            b(i) = b(i) - f$p$1 * bk
          end do
        end do
        call tstop
        chksum = 0.0
        chksum = chksum + sum(b(1:96))
      end

