      program mprun
      integer n
      integer niter
      real a(192, 192)
      real alud(192, 192)
      real b(192)
      real x(192)
      real r(192)
      real chksum
      integer j
      integer i
      integer it
        do j = 1, 192
          do i = 1, 192
            a(i, j) = 1.0 / (1.0 + 2.0 * abs(real(i - j)))
            alud(i, j) = a(i, j) * 0.01
          end do
          a(j, j) = a(j, j) + real(192)
          alud(j, j) = a(j, j)
        end do
        do i = 1, 192
          b(i) = 1.0 + 0.01 * real(i)
          x(i) = b(i) / a(i, i)
        end do
        call tstart
        do it = 1, 4
          call mprove(a(:, :), alud(:, :), b(:), x(:), r(:), 192)
        end do
        call tstop
        chksum = 0.0
        do i = 1, 192
          chksum = chksum + x(i)
        end do
      end

      subroutine mprove(a, alud, b, x, r, n)
      real a(n, n)
      real alud(n, n)
      real b(n)
      real x(n)
      real r(n)
      integer n
      real s
      real t
      integer i
      integer j
        do i = 1, n
          s = -b(i)
          do j = 1, n
            s = s + a(i, j) * x(j)
          end do
          r(i) = s
        end do
        do i = 2, n
          t = r(i)
          do j = 1, i - 1
            t = t - alud(i, j) * r(j)
          end do
          r(i) = t
        end do
        do i = n, 1, -1
          t = r(i)
          do j = i + 1, n
            t = t - alud(i, j) * r(j)
          end do
          r(i) = t / alud(i, i)
        end do
        do i = 1, n
          x(i) = x(i) - r(i)
        end do
      end

