      program lbrun
      integer n
      real a(128, 128)
      real b(128)
      real chksum
      integer j
      integer i
        do j = 1, 128
          do i = 1, 128
            a(i, j) = 1.0 / (1.0 + 2.0 * abs(real(i - j)))
          end do
          a(j, j) = a(j, j) + real(128)
        end do
        do i = 1, 128
          b(i) = 0.5 + 0.01 * real(i)
        end do
        call tstart
        call lubksb(a(:, :), b(:), 128)
        call tstop
        chksum = 0.0
        do i = 1, 128
          chksum = chksum + b(i)
        end do
      end

      subroutine lubksb(a, b, n)
      real a(n, n)
      real b(n)
      integer n
      real t
      integer i
      integer j
        do i = 2, n
          t = b(i)
          do j = 1, i - 1
            t = t - a(i, j) * b(j)
          end do
          b(i) = t
        end do
        do i = n, 1, -1
          t = b(i)
          do j = i + 1, n
            t = t - a(i, j) * b(j)
          end do
          b(i) = t / a(i, i)
        end do
      end

