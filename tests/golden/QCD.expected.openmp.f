      program qcd
      integer nlink
      integer nstep
      real u(512)
      real s(512)
      real chksum
      integer iseed
      integer ih
      integer i
      integer is
      real w
      integer k
      integer i3
      integer upper
      integer i3$1
      integer upper$1
      integer i3$2
      integer upper$2
        iseed = 4711
!$omp parallel do private(i3, upper)
        do i = 1, 512, 32
          i3 = min(32, 512 - i + 1)
          upper = i + i3 - 1
          u(i:upper) = 1.0 + 0.001 * real(iota(i, upper))
        end do
        do is = 1, 4
          do i = 1, 512
            iseed = mod(iseed * 1103 + 12345, 65536)
            w = 1e-6 * real(iseed)
            do k = 1, 12
              w = 0.9 * w + 1e-8 * real(k)
            end do
            u(i) = u(i) + w
          end do
!$omp parallel do private(i3$1, upper$1)
          do i = 2, 512 - 1, 32
            i3$1 = min(32, 512 - 1 - i + 1)
            upper$1 = i + i3$1 - 1
            s(i:upper$1) = u(i:upper$1) * u(i + 1:upper$1 + 1) +
     &        u(i:upper$1) * u(i - 1:upper$1 - 1)
          end do
          s(1) = u(1)
          s(512) = u(512)
!$omp parallel do private(i3$2, upper$2)
          do i = 1, 512, 32
            i3$2 = min(32, 512 - i + 1)
            upper$2 = i + i3$2 - 1
            u(i:upper$2) = u(i:upper$2) * 0.9999 + 1e-7 * s(i:upper$2)
          end do
        end do
        chksum = 0.0
        chksum = chksum + sum(u(1:512))
      end

