      program mg3d
      integer nx
      integer ny
      integer nz
      integer nstep
      real p(32, 32, 32)
      real penc(32)
      real chksum
      integer k
      integer j
      integer i
      integer is
        do k = 1, 32
          do j = 1, 32
            do i = 1, 32
              p(i, j, k) = 0.01 * real(i) + 0.02 * real(j) + 0.005 *
     &          real(k)
            end do
          end do
        end do
        do is = 1, 3
          do k = 1, 32
            do j = 1, 32
              do i = 1, 32
                penc(i) = p(i, j, k) * 0.9
              end do
              do i = 2, 32 - 1
                p(i, j, k) = penc(i) + 0.05 * (penc(i - 1) + penc(i +
     &            1))
              end do
            end do
          end do
        end do
        chksum = 0.0
        do k = 1, 32
          chksum = chksum + p(k, k, k)
        end do
      end

