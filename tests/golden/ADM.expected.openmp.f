      program adm
      integer ncol
      integer nlev
      integer nstep
      real q(48, 192)
      real chksum
      integer j
      integer k
      integer is
      integer colphy$nlev
      integer colphy$ncol
      real colphy$col(64)
      integer colphy$k
      integer colphy$nlev$p
      integer colphy$ncol$p
      real colphy$col$p(64)
!$omp parallel do
        do j = 1, 192
          q(1:48, j) = 1.0 + 0.01 * real(iota(1, 48)) + 0.001 * real(j)
        end do
        do is = 1, 3
!$omp parallel do private(colphy$nlev$p, colphy$ncol$p, colphy$col$p)
          do j = 1, 192
            colphy$nlev$p = 48
            colphy$ncol$p = 192
            colphy$col$p(1:colphy$nlev$p) = q(1:colphy$nlev$p, j) * 1.01
            q(1:colphy$nlev$p, j) = colphy$col$p(1:colphy$nlev$p) +
     &        0.002 * sqrt(colphy$col$p(1:colphy$nlev$p))
          end do
        end do
        chksum = 0.0
        chksum = chksum + sum(q(1:48, 1) + q(1:48, 192))
      end

      subroutine colphy(q, j, nlev, ncol)
      real q(nlev, ncol)
      integer j
      integer nlev
      integer ncol
      real col(64)
      integer k
      integer i3
      integer upper
!$omp parallel do private(i3, upper)
        do k = 1, nlev, 32
          i3 = min(32, nlev - k + 1)
          upper = k + i3 - 1
          col(k:upper) = q(k:upper, j) * 1.01
          q(k:upper, j) = col(k:upper) + 0.002 * sqrt(col(k:upper))
        end do
      end

