      program mdg
      integer nmol
      integer nsite
      integer nstep
      real x(256)
      real acc(32)
      real rs(32)
      real soff(32)
      real chksum
      integer i
      integer k
      integer is
      integer i3
      integer upper
      integer i3$1
      integer upper$1
      real rs$p(32)
      real acc$r(32)
      integer i3$2
      integer upper$2
!$omp parallel do private(i3, upper)
        do i = 1, 256, 32
          i3 = min(32, 256 - i + 1)
          upper = i + i3 - 1
          x(i:upper) = 0.4 + 0.002 * real(iota(i, upper))
        end do
!$omp parallel do private(i3$1, upper$1)
        do k = 1, 32, 32
          i3$1 = min(32, 32 - k + 1)
          upper$1 = k + i3$1 - 1
          acc(k:upper$1) = 0.0
          soff(k:upper$1) = 0.01 * real(iota(k, upper$1))
        end do
        do is = 1, 3
          acc$r(:) = 0.0
          do i = 1, 256
            rs$p(1:32) = x(i) + soff(1:32)
            acc$r(1:32) = acc$r(1:32) + rs$p(1:32) * 0.001
            acc$r(1:32) = acc$r(1:32) + rs$p(1:32) * rs$p(1:32) * 0.0001
          end do
          call omp_set_lock(100)
          acc(:) = acc(:) + acc$r(:)
          call omp_unset_lock(100)
!$omp parallel do private(i3$2, upper$2)
          do i = 1, 256, 32
            i3$2 = min(32, 256 - i + 1)
            upper$2 = i + i3$2 - 1
            x(i:upper$2) = x(i:upper$2) + 1e-5 * acc(mod(iota(i,
     &        upper$2), 32) + 1)
          end do
        end do
        chksum = 0.0
        chksum = chksum + sum(acc(1:32))
      end

