      program dyfesm
      integer nelem
      integer nnode
      integer nstep
      real disp(64)
      real force(64)
      real ew(8)
      real chksum
      real s
      integer nd
      integer i
      integer is
      integer ie
      integer k
        do i = 1, 64
          disp(i) = 0.01 * real(i)
          force(i) = 0.0
        end do
        do is = 1, 3
          do ie = 1, 256
            do k = 1, 8
              ew(k) = disp(mod(ie + k, 64) + 1) * (1.0 + 0.1 * real(k))
            end do
            nd = mod(ie, 64) + 1
            s = 0.0
            do k = 1, 8
              s = s + ew(k) * 0.05
            end do
            force(nd) = force(nd) + s
          end do
          do i = 1, 64
            disp(i) = disp(i) + 0.0001 * force(i)
          end do
        end do
        chksum = 0.0
        do i = 1, 64
          chksum = chksum + force(i) + disp(i)
        end do
      end

