      program dyfesm
      integer nelem
      integer nnode
      integer nstep
      real disp(64)
      real force(64)
      real ew(8)
      real chksum
      real s
      integer nd
      integer i
      integer is
      integer ie
      integer k
        cdoall i = 1, 64, 32
          integer i3
          integer upper
          i3 = min(32, 64 - i + 1)
          upper = i + i3 - 1
          disp(i:upper) = 0.01 * real(iota(i, upper))
          force(i:upper) = 0.0
        end cdoall
        do is = 1, 3
          cdoall ie = 1, 256
            real s$p
            integer nd$p
            real ew$p(8)
            ew$p(1:8) = disp(mod(ie + iota(1, 8), 64) + 1) * (1.0 + 0.1
     &        * real(iota(1, 8)))
            nd$p = mod(ie, 64) + 1
            s$p = 0.0
            s$p = s$p + sum$v(ew$p(1:8) * 0.05)
            call lock(100)
            force(nd$p) = force(nd$p) + s$p
            call unlock(100)
          end cdoall
          cdoall i = 1, 64, 32
            integer i3$1
            integer upper$1
            i3$1 = min(32, 64 - i + 1)
            upper$1 = i + i3$1 - 1
            disp(i:upper$1) = disp(i:upper$1) + 0.0001 *
     &        force(i:upper$1)
          end cdoall
        end do
        chksum = 0.0
        chksum = chksum + sum$v(force(1:64) + disp(1:64))
      end

