      program qcd
      integer nlink
      integer nstep
      real u(512)
      real s(512)
      real chksum
      integer iseed
      integer ih
      integer i
      integer is
      real w
      integer k
        iseed = 4711
        cdoall i = 1, 512, 32
          integer i3
          integer upper
          i3 = min(32, 512 - i + 1)
          upper = i + i3 - 1
          u(i:upper) = 1.0 + 0.001 * real(iota(i, upper))
        end cdoall
        do is = 1, 4
          do i = 1, 512
            iseed = mod(iseed * 1103 + 12345, 65536)
            w = 1e-6 * real(iseed)
            do k = 1, 12
              w = 0.9 * w + 1e-8 * real(k)
            end do
            u(i) = u(i) + w
          end do
          cdoall i = 2, 512 - 1, 32
            integer i3$1
            integer upper$1
            i3$1 = min(32, 512 - 1 - i + 1)
            upper$1 = i + i3$1 - 1
            s(i:upper$1) = u(i:upper$1) * u(i + 1:upper$1 + 1) +
     &        u(i:upper$1) * u(i - 1:upper$1 - 1)
          end cdoall
          s(1) = u(1)
          s(512) = u(512)
          cdoall i = 1, 512, 32
            integer i3$2
            integer upper$2
            i3$2 = min(32, 512 - i + 1)
            upper$2 = i + i3$2 - 1
            u(i:upper$2) = u(i:upper$2) * 0.9999 + 1e-7 * s(i:upper$2)
          end cdoall
        end do
        chksum = 0.0
        chksum = chksum + sum$c(u(1:512))
      end

