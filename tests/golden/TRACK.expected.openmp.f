      program track
      integer nobs
      integer ntrk
      integer nstep
      real score(48)
      real obs(384)
      real chksum
      real g
      integer hit(384)
      integer i
      integer k
      integer is
      integer l
      integer i3
      integer upper
      integer i3$1
      integer upper$1
      real g$p
      integer i3$2
      integer upper$2
!$omp parallel do private(i3, upper)
        do i = 1, 384, 32
          i3 = min(32, 384 - i + 1)
          upper = i + i3 - 1
          obs(i:upper) = 0.5 + 0.001 * real(iota(i, upper))
          hit(i:upper) = mod(iota(i, upper) * 7, 48) + 1
        end do
!$omp parallel do private(i3$1, upper$1)
        do k = 1, 48, 32
          i3$1 = min(32, 48 - k + 1)
          upper$1 = k + i3$1 - 1
          score(k:upper$1) = 0.0
        end do
        do is = 1, 3
!$omp parallel do private(g$p)
          do i = 1, 384
            g$p = 0.0
            do l = 1, 24
              g$p = g$p + sqrt(obs(i) + 0.05 * real(l)) * 0.04
            end do
            call omp_set_lock(100)
            score(hit(i)) = score(hit(i)) + obs(i) * g$p
            call omp_unset_lock(100)
          end do
          do k = 2, 48
            score(k) = score(k) + 0.25 * score(k - 1)
          end do
!$omp parallel do private(i3$2, upper$2)
          do i = 1, 384, 32
            i3$2 = min(32, 384 - i + 1)
            upper$2 = i + i3$2 - 1
            obs(i:upper$2) = obs(i:upper$2) * 0.999 + 0.0001 *
     &        score(hit(i:upper$2))
          end do
        end do
        chksum = 0.0
        chksum = chksum + sum(score(1:48))
      end

