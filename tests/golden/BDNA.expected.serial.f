      program bdna
      integer natom
      integer ndim
      integer nstep
      real pos(96)
      real frc(64)
      real wrk(64)
      real cf(64)
      real chksum
      integer i
      integer j
      integer is
        do i = 1, 96
          pos(i) = 0.5 + 0.003 * real(i)
        end do
        do j = 1, 64
          frc(j) = 0.0
          cf(j) = 1.0 / (1.0 + 0.1 * real(j))
        end do
        do is = 1, 3
          do i = 1, 96
            do j = 1, 64
              wrk(j) = pos(i) * cf(j)
              frc(j) = frc(j) + wrk(j)
              frc(j) = frc(j) + 0.5 * wrk(j) * wrk(j)
              frc(j) = frc(j) - 0.01 * wrk(j) * pos(i)
            end do
          end do
          do i = 1, 96
            pos(i) = pos(i) + 1e-5 * frc(mod(i, 64) + 1)
          end do
        end do
        chksum = 0.0
        do j = 1, 64
          chksum = chksum + frc(j)
        end do
      end

