      program bdna
      integer natom
      integer ndim
      integer nstep
      real pos(96)
      real frc(64)
      real wrk(64)
      real cf(64)
      real chksum
      integer i
      integer j
      integer is
      integer i3
      integer upper
      integer i3$1
      integer upper$1
      real wrk$p(64)
      real frc$r(64)
      integer i3$2
      integer upper$2
!$omp parallel do private(i3, upper)
        do i = 1, 96, 32
          i3 = min(32, 96 - i + 1)
          upper = i + i3 - 1
          pos(i:upper) = 0.5 + 0.003 * real(iota(i, upper))
        end do
!$omp parallel do private(i3$1, upper$1)
        do j = 1, 64, 32
          i3$1 = min(32, 64 - j + 1)
          upper$1 = j + i3$1 - 1
          frc(j:upper$1) = 0.0
          cf(j:upper$1) = 1.0 / (1.0 + 0.1 * real(iota(j, upper$1)))
        end do
        do is = 1, 3
          frc$r(:) = 0.0
          do i = 1, 96
            wrk$p(1:64) = pos(i) * cf(1:64)
            frc$r(1:64) = frc$r(1:64) + wrk$p(1:64)
            frc$r(1:64) = frc$r(1:64) + 0.5 * wrk$p(1:64) * wrk$p(1:64)
            frc$r(1:64) = frc$r(1:64) - 0.01 * wrk$p(1:64) * pos(i)
          end do
          call omp_set_lock(100)
          frc(:) = frc(:) + frc$r(:)
          call omp_unset_lock(100)
!$omp parallel do private(i3$2, upper$2)
          do i = 1, 96, 32
            i3$2 = min(32, 96 - i + 1)
            upper$2 = i + i3$2 - 1
            pos(i:upper$2) = pos(i:upper$2) + 1e-5 * frc(mod(iota(i,
     &        upper$2), 64) + 1)
          end do
        end do
        chksum = 0.0
        chksum = chksum + sum(frc(1:64))
      end

