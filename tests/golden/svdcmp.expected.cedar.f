      program sdrun
      integer n
      real a(96, 96)
      real d(96)
      real chksum
      real s
      real beta
      real t
      integer j
      integer i
      integer k
      global a, beta, j, k
        sdoall j = 1, 96
          a(1:96, j) = sin(0.05 * real(iota(1, 96) * j)) + 2.0 /
     &      real(iota(1, 96) + j)
          a(j, j) = a(j, j) + 4.0
        end sdoall
        call tstart
        do k = 1, 96 - 1
          s = 0.0
          s = s + dotproduct$c(a(k:96, k), a(k:96, k))
          d(k) = sqrt(s)
          beta = 1.0 / (s + 1e-6)
          xdoall j = k + 1, 96
            real t$p
            t$p = 0.0
            t$p = t$p + dotproduct$v(a(k:96, k), a(k:96, j))
            t$p = t$p * beta
            a(k:96, j) = a(k:96, j) - t$p * a(k:96, k)
          end xdoall
        end do
        call tstop
        d(96) = a(96, 96)
        chksum = 0.0
        chksum = chksum + sum$c(d(1:96))
      end

