//! Property tests for the supervised experiment engine (DESIGN.md §10):
//! under *any* chaos seed the supervisor must yield a **complete**
//! report — one slot per cell, each either a correct result or a
//! quarantine entry with a crash bundle on disk — and the outcome must
//! be identical across worker counts. With chaos off, supervision is
//! invisible. The exit-code taxonomy (README "Exit codes") is pinned
//! alongside, since the CI chaos smoke test asserts on it.

use std::path::PathBuf;
use std::time::Duration;

use proptest::prelude::*;

use cedar_experiments::supervise::{self, Cell, Supervisor, Sweep};

const N_CELLS: usize = 12;

/// A supervisor writing bundles under a per-(tag, seed) scratch dir so
/// concurrent test cases never collide.
fn supervisor(tag: &str, chaos: Option<u64>) -> Supervisor {
    let seed = chaos.map_or_else(|| "off".to_string(), |s| s.to_string());
    Supervisor {
        chaos,
        deadline: Some(Duration::from_secs(60)),
        bundle_dir: PathBuf::from(format!("target/chaos-prop/{tag}-{seed}")),
        bundle_cap: 64,
    }
}

/// Synthetic sweep: each cell walks two chaos-gated phases, then
/// returns a value derived from its input. Real work is negligible, so
/// every observed failure comes from the injector.
fn sweep(sup: &Supervisor) -> Sweep<usize> {
    let cells: Vec<Cell<usize>> = (0..N_CELLS)
        .map(|k| {
            Cell::with_source(
                format!("prop/cell-{k}"),
                format!("! synthetic cell {k}\n      END\n"),
                k,
            )
        })
        .collect();
    supervise::run_cells(sup, cells, |&k| {
        supervise::gate("alpha");
        supervise::gate("beta");
        k * 3
    })
}

/// Sweep outcome distilled for comparison: result slots, recovered
/// `(cell, rung)` pairs, quarantined cell labels.
type Shape = (Vec<Option<usize>>, Vec<(String, String)>, Vec<String>);

/// The stable shape of a sweep outcome, for cross-jobs comparison.
fn shape(s: &Sweep<usize>) -> Shape {
    (
        s.results.clone(),
        s.recovered
            .iter()
            .map(|r| (r.cell.clone(), r.rung.to_string()))
            .collect(),
        s.quarantined.iter().map(|q| q.cell.clone()).collect(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Whatever the seed injects, the report is complete: every cell is
    /// either a correct result or a quarantine entry (never both, never
    /// neither), and every quarantine has its crash bundle on disk.
    #[test]
    fn chaos_report_is_always_complete(seed in 0u64..10_000) {
        let sup = supervisor("complete", Some(seed));
        let s = sweep(&sup);
        prop_assert_eq!(s.results.len(), N_CELLS);
        for (k, r) in s.results.iter().enumerate() {
            let label = format!("prop/cell-{k}");
            let quarantined = s.quarantined.iter().any(|q| q.cell == label);
            match r {
                Some(v) => {
                    prop_assert_eq!(*v, k * 3, "cell {} returned a wrong value", k);
                    prop_assert!(!quarantined, "cell {} both succeeded and quarantined", k);
                }
                None => prop_assert!(
                    quarantined,
                    "cell {} has no result and no quarantine entry", k
                ),
            }
        }
        for q in &s.quarantined {
            prop_assert!(!q.attempts.is_empty(), "{}: quarantine with no attempts", q.cell);
            let bundle = q.bundle.as_ref();
            prop_assert!(bundle.is_some(), "{}: quarantined without a bundle", q.cell);
            let dir = PathBuf::from(bundle.unwrap());
            prop_assert!(
                dir.join("bundle.json").is_file(),
                "{}: bundle.json missing under {}", q.cell, dir.display()
            );
            prop_assert!(
                dir.join("source.f").is_file(),
                "{}: source.f missing under {}", q.cell, dir.display()
            );
        }
    }

    /// The chaos outcome — values, recoveries, quarantines — is a pure
    /// function of the seed, independent of the worker count.
    #[test]
    fn chaos_outcome_is_jobs_invariant(seed in 0u64..10_000) {
        let sup = supervisor("jobs", Some(seed));
        let serial = cedar_par::with_jobs(1, || shape(&sweep(&sup)));
        let parallel = cedar_par::with_jobs(4, || shape(&sweep(&sup)));
        prop_assert_eq!(serial, parallel, "seed {}: outcome depends on CEDAR_JOBS", seed);
    }
}

/// With chaos off, supervision is invisible: every cell succeeds on the
/// first rung and nothing is recovered or quarantined.
#[test]
fn clean_sweep_is_untouched() {
    let s = sweep(&supervisor("clean", None));
    assert_eq!(
        s.results,
        (0..N_CELLS).map(|k| Some(k * 3)).collect::<Vec<_>>()
    );
    assert!(s.recovered.is_empty(), "clean run recovered: {:?}", s.recovered);
    assert!(s.quarantined.is_empty(), "clean run quarantined: {:?}", s.quarantined);
}

/// The exit-code taxonomy the binaries and CI smoke test rely on:
/// 0 = ok, 1 = validation failure, 2 = harness error, and a harness
/// error outranks a validation failure.
#[test]
fn exit_codes_follow_the_readme_taxonomy() {
    use cedar_experiments::exitcode;
    assert_eq!(exitcode::classify(false, 0), exitcode::OK);
    assert_eq!(exitcode::classify(true, 0), exitcode::VALIDATION);
    assert_eq!(exitcode::classify(false, 3), exitcode::HARNESS);
    assert_eq!(exitcode::classify(true, 3), exitcode::HARNESS);
    assert_eq!(exitcode::OK, 0);
    assert_eq!(exitcode::VALIDATION, 1);
    assert_eq!(exitcode::HARNESS, 2);
}
