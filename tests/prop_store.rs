//! Durability property tests for `cedar-store` (DESIGN.md §15.5).
//!
//! The store's one promise: a write interrupted at **any** fault point
//! — short write, failed fsync, failed rename, a crash between the
//! tmp-file sync and the rename — leaves the store readable and the
//! entry either absent or fully intact, never torn. These tests walk
//! the complete fault matrix exhaustively, then let the seeded
//! `chaos::fs` lane drive randomized multi-put histories over it.

use cedar_experiments::chaos;
use cedar_store::{FaultHook, FsFault, FsStage, Store, StoreError};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::Arc;

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = PathBuf::from(format!("target/test-prop-store/{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Deterministic payload for a key, so any process can recompute what
/// an entry must contain.
fn payload(key: u64) -> Vec<u8> {
    let len = 1 + (key as usize * 37) % 300;
    (0..len).map(|i| ((key as usize).wrapping_mul(31).wrapping_add(i * 7) % 256) as u8).collect()
}

/// After an interrupted put of `key`, the store must be readable and
/// the entry absent or exactly `expect` — and the invariant must
/// survive a reopen (the "restart after the crash" view).
fn assert_never_torn(root: &PathBuf, key: u64, expect: &[u8], probe: u64) {
    for pass in 0..2 {
        let store = if pass == 0 {
            Store::open_read_only(root.clone())
        } else {
            // A writable reopen also sweeps tmp litter.
            Store::open(root.clone()).unwrap()
        };
        match store.get(key) {
            None => {}
            Some(got) => assert_eq!(got, expect, "pass {pass}: torn entry for key {key:#x}"),
        }
        assert_eq!(
            store.stats().corrupt_recovered,
            0,
            "pass {pass}: an interrupted put must never leave bytes that *look* torn"
        );
        // Unrelated entries stay readable.
        assert_eq!(store.get(probe).as_deref(), Some(&payload(probe)[..]), "pass {pass}");
    }
    let store = Store::open(root.clone()).unwrap();
    assert_eq!(
        std::fs::read_dir(root.join("tmp")).unwrap().count(),
        0,
        "reopen must sweep tmp litter"
    );
    drop(store);
}

/// The complete single-fault matrix: every stage crossed with every
/// fault shape, including the classic crash window (Crash at Rename:
/// tmp file fully synced, entry never appears).
#[test]
fn every_fault_point_leaves_the_entry_absent_or_intact() {
    const PROBE: u64 = 0xaaaa;
    const KEY: u64 = 0x51;
    let body = payload(KEY);
    for stage in FsStage::ALL {
        for fault in [FsFault::ShortWrite(0), FsFault::ShortWrite(9), FsFault::Eio, FsFault::Crash]
        {
            let root = fresh_dir(&format!("matrix-{}-{fault:?}", stage.tag()));
            // Seed the probe entry on a clean store (the hook below is
            // keyed only by stage and would fault the probe put too),
            // then attempt the doomed put under the fault.
            let outcome = {
                let store = Store::open(root.clone()).unwrap();
                store.put(PROBE, &payload(PROBE)).unwrap();
                drop(store);
                let hook: FaultHook = Arc::new(move |st, _| (st == stage).then_some(fault));
                let store = Store::open(root.clone()).unwrap().with_fault_hook(hook);
                store.put(KEY, &body)
            };
            assert!(
                matches!(outcome, Err(StoreError::Injected { .. })),
                "{stage:?}/{fault:?}: the injected fault must surface"
            );
            if stage == FsStage::DirSync {
                // Past the rename: the entry is durable in this
                // process's view despite the error.
                let store = Store::open_read_only(root.clone());
                assert_eq!(store.get(KEY).as_deref(), Some(&body[..]));
            }
            assert_never_torn(&root, KEY, &body, PROBE);
        }
    }
}

/// An interrupted **overwrite** must leave the *old* value intact —
/// rename-based replacement is all-or-nothing.
#[test]
fn interrupted_overwrite_preserves_the_old_value() {
    const PROBE: u64 = 0xbbbb;
    for stage in [FsStage::Write, FsStage::Sync, FsStage::Rename] {
        let root = fresh_dir(&format!("overwrite-{}", stage.tag()));
        let store = Store::open(root.clone()).unwrap();
        store.put(PROBE, &payload(PROBE)).unwrap();
        store.put(7, b"old value").unwrap();
        drop(store);
        let hook: FaultHook = Arc::new(move |st, _| (st == stage).then_some(FsFault::Crash));
        let store = Store::open(root.clone()).unwrap().with_fault_hook(hook);
        assert!(store.put(7, b"new value").is_err());
        assert_eq!(
            store.get(7).as_deref(),
            Some(&b"old value"[..]),
            "{stage:?}: a failed overwrite must leave the old entry"
        );
        drop(store);
        assert_never_torn(&root, 7, b"old value", PROBE);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Randomized histories under the seeded chaos fs lane: a batch of
    /// puts where the lane decides which writes fail and how. Whatever
    /// the interleaving of successes and injected faults, every key
    /// reads back absent-or-intact, a restart sees the same, and a
    /// clean retry of the failed puts heals the store completely.
    #[test]
    fn chaotic_put_histories_never_tear(seed in 0u64..5000, keys in prop::collection::vec(0u64..64, 1..20)) {
        let root = fresh_dir(&format!("chaos-{seed}"));
        let store = Store::open(root.clone()).unwrap().with_fault_hook(chaos::fs::hook(seed));
        let mut failed: Vec<u64> = Vec::new();
        for &k in &keys {
            match store.put(k, &payload(k)) {
                Ok(()) => {
                    // The fs lane is pure: a successful put means no
                    // stage drew a fault for this entry name.
                    prop_assert_eq!(store.get(k), Some(payload(k)));
                }
                Err(StoreError::Injected { stage }) => {
                    // A dir-sync fault fires after the rename — the
                    // entry is durable despite the error.
                    if stage != "dir-sync" {
                        match store.get(k) {
                            None => {}
                            Some(got) => prop_assert_eq!(got, payload(k)),
                        }
                    }
                    failed.push(k);
                }
                Err(other) => prop_assert!(false, "unexpected error: {other}"),
            }
        }
        prop_assert_eq!(store.stats().corrupt_recovered, 0);
        drop(store);

        // Restart: reopen without faults; nothing is torn, tmp is
        // swept, and retrying the failed puts heals every key.
        let store = Store::open(root.clone()).unwrap();
        prop_assert_eq!(std::fs::read_dir(root.join("tmp")).unwrap().count(), 0);
        for &k in &keys {
            match store.get(k) {
                None => {}
                Some(got) => prop_assert_eq!(got, payload(k), "torn entry after restart"),
            }
        }
        for &k in &failed {
            store.put(k, &payload(k)).unwrap();
        }
        for &k in &keys {
            prop_assert_eq!(store.get(k), Some(payload(k)));
        }
        prop_assert_eq!(store.stats().corrupt_recovered, 0);
    }
}
