//! Parallel-engine determinism: sweeps run through
//! [`cedar_par::par_map`] must produce output *byte-identical* to the
//! serial sweep — same JSON artifacts, same cycle counts — no matter
//! how many workers `CEDAR_JOBS` grants. The worker pool writes results
//! into index-ordered slots, so ordering is structural; these tests pin
//! the end-to-end guarantee on real sweeps.
//!
//! Each comparison clears the experiment caches between runs
//! ([`cedar_experiments::cache::clear`]) so the second run genuinely
//! recomputes instead of replaying the first run's memo.

use cedar_experiments::{races, robustness};

/// Run `f` under a forced worker count with cold caches.
fn fresh<T>(jobs: usize, f: impl FnOnce() -> T) -> T {
    cedar_par::with_jobs(jobs, || {
        cedar_experiments::cache::clear();
        f()
    })
}

#[test]
fn robustness_json_byte_identical_across_jobs() {
    // A small Table 1 subset keeps the debug-mode sweep fast; the
    // binary covers the full matrix.
    let names = ["lubksb", "gaussj", "svbksb"];
    let sweep = || {
        let rows = robustness::run_filtered(2, Some(&names));
        assert_eq!(rows.len(), names.len(), "filter missed a workload");
        robustness::to_json(&rows, 2, &[])
    };
    let serial = fresh(1, sweep);
    let parallel = fresh(4, sweep);
    assert!(
        serial == parallel,
        "robustness JSON differs between CEDAR_JOBS=1 and 4:\n--- serial\n{serial}\n--- parallel\n{parallel}"
    );
}

#[test]
fn races_json_byte_identical_across_jobs() {
    // One kernel plus two seeded negatives exercises both job kinds of
    // the race matrix.
    let names = ["lubksb", "shared-temp", "missing-cascade"];
    let sweep = || {
        let rows = races::run_filtered(Some(&names));
        assert_eq!(rows.len(), names.len(), "filter missed a program");
        races::to_json(&rows, &[])
    };
    let serial = fresh(1, sweep);
    let parallel = fresh(4, sweep);
    assert!(
        serial == parallel,
        "races JSON differs between CEDAR_JOBS=1 and 4:\n--- serial\n{serial}\n--- parallel\n{parallel}"
    );
}

#[test]
fn suite_cells_identical_across_jobs() {
    // Figure 9 is the cheapest all-suite sweep that still fans its
    // cells through the pool (2 machines × 3 variants). The Debug
    // rendering prints f64 ratios at full precision, so equal strings
    // mean bit-equal cycle ratios.
    let fig9 = || format!("{:?}", cedar_experiments::fig9::run());
    let serial = fresh(1, fig9);
    let parallel = fresh(4, fig9);
    assert_eq!(serial, parallel, "fig9 cells differ between CEDAR_JOBS=1 and 4");

    // And one raw table cell: the simulated cycle count itself must be
    // bit-identical, not merely close.
    let w = cedar_workloads::linalg::tridag(64);
    let cfg = cedar_restructure::PassConfig::automatic_1991();
    let mc = cedar_sim::MachineConfig::cedar_config1_scaled();
    let cell = || {
        let p = w.compile();
        cedar_experiments::pipeline::run_program(&p, Some(&cfg), &mc, &w.watch).cycles
    };
    let c1 = fresh(1, cell);
    let c4 = fresh(4, cell);
    assert_eq!(
        c1.to_bits(),
        c4.to_bits(),
        "cycle count drifted across worker counts: {c1} vs {c4}"
    );
}
