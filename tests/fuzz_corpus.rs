//! Tier-1 regression-corpus replay: every checked-in `tests/corpus/*.f`
//! entry runs through the full oracle stack (differential, metamorphic,
//! race/audit agreement) on every test run.
//!
//! Entries are self-describing — a `! cedar-fuzz seed=... config=...`
//! header plus `! watch <var> exact|approx` lines — so the checked-in
//! text, not the generator, is authoritative: a generator change cannot
//! silently rewrite what a historical find tested.

use cedar_fuzz::{corpus, coverage::Coverage, run_oracles};
use std::path::PathBuf;

fn corpus_dir() -> PathBuf {
    // CARGO_MANIFEST_DIR is crates/fuzz; the corpus lives at the repo
    // root so humans find it next to the other integration tests.
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/corpus")
}

#[test]
fn every_corpus_entry_passes_all_oracles() {
    let entries = corpus::load_dir(&corpus_dir()).unwrap();
    assert!(entries.len() >= 8, "corpus shrank to {} entries", entries.len());
    let mut cov = Coverage::default();
    for e in &entries {
        let stats = run_oracles(&e.rendered, &e.oracle_config())
            .unwrap_or_else(|f| panic!("corpus entry {} (seed {}) failed: {f}", e.name, e.seed));
        cov.absorb(&stats.report);
    }
    // The corpus is curated to jointly exercise every required pass, so
    // replay doubles as a coverage regression test for the pinned seeds.
    assert!(
        cov.unreachable().is_empty(),
        "corpus no longer covers: {:?}\ncoverage: {}",
        cov.unreachable(),
        cov.to_json()
    );
}

#[test]
fn corpus_entries_match_their_recorded_seeds() {
    // Provenance check: the seed in each header still generates the
    // same watch list it was pinned with (the source text may lag the
    // generator; the watch contract may not silently drift).
    for e in corpus::load_dir(&corpus_dir()).unwrap() {
        let fresh = cedar_fuzz::GenProgram::generate(e.seed).render();
        let mut want: Vec<_> = fresh.watch.iter().map(|w| (&w.name, w.exact)).collect();
        let mut got: Vec<_> = e.rendered.watch.iter().map(|w| (&w.name, w.exact)).collect();
        want.sort();
        got.sort();
        assert_eq!(got, want, "watch list of {} drifted from seed {}", e.name, e.seed);
    }
}
