//! Property test for the interpreter fast paths: the extent prepass,
//! the arithmetic-progression section indexer, and the contiguous bulk
//! load/store are *observationally invisible*. Disabling all of them
//! ([`MachineConfig::without_fast_paths`]) on any restructured Table 1
//! kernel must reproduce the exact same execution — every `ExecStats`
//! counter, the cycle count bit for bit, and every watched result
//! value.

use std::sync::OnceLock;

use proptest::prelude::*;

use cedar_sim::MachineConfig;

/// Table 1 kernels, restructured once (immutable inputs; the property
/// varies only which kernel runs).
fn restructured_table1() -> &'static Vec<(String, Vec<&'static str>, cedar_ir::Program)> {
    static CACHE: OnceLock<Vec<(String, Vec<&'static str>, cedar_ir::Program)>> = OnceLock::new();
    CACHE.get_or_init(|| {
        cedar_workloads::table1_workloads()
            .iter()
            .map(|w| {
                let r = cedar_restructure::restructure(
                    &w.compile(),
                    &cedar_restructure::PassConfig::automatic_1991(),
                );
                (w.name.to_string(), w.watch.clone(), r.program)
            })
            .collect()
    })
}

/// Simulate and return `(stats debug form, cycles, watched bits)`.
fn observe(
    program: &cedar_ir::Program,
    watch: &[&str],
    mc: MachineConfig,
) -> (String, u64, Vec<(String, Vec<u64>)>) {
    let sim = cedar_sim::run(program, mc).expect("simulation");
    let watched = watch
        .iter()
        .filter_map(|w| {
            sim.read_f64(w)
                .map(|v| (w.to_string(), v.iter().map(|x| x.to_bits()).collect()))
        })
        .collect();
    (format!("{:?}", sim.stats), sim.cycles().to_bits(), watched)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn fast_paths_are_observationally_invisible(which in 0usize..10) {
        let kernels = restructured_table1();
        let (name, watch, program) = &kernels[which % kernels.len()];
        let fast = observe(program, watch, MachineConfig::cedar_config1_scaled());
        let slow = observe(
            program,
            watch,
            MachineConfig::cedar_config1_scaled().without_fast_paths(),
        );
        prop_assert_eq!(
            &fast.0, &slow.0,
            "kernel `{}`: ExecStats diverge with fast paths disabled", name
        );
        prop_assert_eq!(
            fast.1, slow.1,
            "kernel `{}`: cycle count diverges with fast paths disabled", name
        );
        prop_assert_eq!(
            &fast.2, &slow.2,
            "kernel `{}`: watched results diverge with fast paths disabled", name
        );
    }
}
