//! Service/driver equivalence: every checked-in `tests/corpus/*.f`
//! entry replayed through the in-process HTTP server must produce the
//! exact same restructured program and transformation report as calling
//! the restructurer directly — byte for byte. The service is a
//! delivery mechanism, never a different compiler.

use cedar_fuzz::corpus;
use cedar_restructure::{restructure, PassConfig};
use cedar_serve::{http, Json, ServeRequest, Server, ServerConfig};
use std::path::PathBuf;
use std::time::Duration;

fn corpus_dir() -> PathBuf {
    // CARGO_MANIFEST_DIR is crates/serve; the corpus lives at the repo
    // root next to the other integration tests.
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/corpus")
}

fn quiet_server(tag: &str) -> Server {
    let mut cfg = ServerConfig {
        workers: 2,
        ..ServerConfig::default()
    };
    cfg.engine.sup.chaos = None;
    cfg.engine.sup.deadline = None;
    cfg.engine.sup.bundle_dir = PathBuf::from(format!("target/test-serve-bundles/{tag}"));
    cfg.engine.backoff_base = Duration::from_millis(1);
    Server::start(cfg).expect("bind in-process server")
}

const T: Duration = Duration::from_secs(120);

#[test]
fn corpus_reports_are_byte_identical_to_the_direct_driver() {
    let entries = corpus::load_dir(&corpus_dir()).unwrap();
    assert!(entries.len() >= 8, "corpus shrank to {} entries", entries.len());
    let server = quiet_server("corpus");
    let addr = server.addr();

    for e in &entries {
        // What the driver produces when called directly, no service.
        let program = cedar_ir::compile_free(&e.rendered.source)
            .unwrap_or_else(|err| panic!("corpus entry {} no longer compiles: {err}", e.name));
        let pass = match e.config.as_str() {
            "manual" => PassConfig::manual_improved(),
            _ => PassConfig::automatic_1991(),
        };
        let direct = restructure(&program, &pass);
        let direct_report = direct.report.to_string();
        let direct_source = cedar_ir::print::print_program(&direct.program);

        // The same source through the wire.
        let mut req = ServeRequest::new(e.rendered.source.clone());
        req.config = e.config.clone();
        req.validate = false;
        for w in &e.rendered.watch {
            req.watch.push(w.name.clone());
        }
        let (status, body) = http::post(&addr, "/restructure", &req.to_json(), T)
            .unwrap_or_else(|err| panic!("corpus entry {}: transport failed: {err}", e.name));
        assert_eq!(status, 200, "corpus entry {}: {body}", e.name);
        let v = Json::parse(&body)
            .unwrap_or_else(|err| panic!("corpus entry {}: bad JSON: {err}\n{body}", e.name));

        let served_report = v.get("report").and_then(Json::as_str).unwrap();
        let served_source = v.get("restructured").and_then(Json::as_str).unwrap();
        assert_eq!(
            served_report, direct_report,
            "corpus entry {}: served report differs from the direct driver",
            e.name
        );
        assert_eq!(
            served_source, direct_source,
            "corpus entry {}: served program differs from the direct driver",
            e.name
        );
        let speedup = v
            .get("stats")
            .and_then(|s| s.get("speedup"))
            .and_then(Json::as_f64)
            .unwrap();
        assert!(speedup > 0.0, "corpus entry {}: degenerate speedup", e.name);
    }
    server.shutdown();
}

#[test]
fn validated_corpus_entry_verifies_clean() {
    // One entry through the full validation path: the corpus passes the
    // oracle stack, so the service-side verification must agree (no
    // fallbacks, bit-identical perturbed schedules) and the report must
    // still match the direct driver.
    let entries = corpus::load_dir(&corpus_dir()).unwrap();
    let e = &entries[0];
    let server = quiet_server("corpus-validated");
    let addr = server.addr();

    let mut req = ServeRequest::new(e.rendered.source.clone());
    req.config = e.config.clone();
    req.validate = true;
    let (status, body) = http::post(&addr, "/restructure", &req.to_json(), T).unwrap();
    assert_eq!(status, 200, "{body}");
    let v = Json::parse(&body).unwrap();
    let verification = v.get("verification").unwrap();
    assert_eq!(
        verification.get("fallbacks").and_then(Json::as_f64),
        Some(0.0),
        "{body}"
    );
    assert_eq!(
        verification.get("degraded_to_serial").and_then(Json::as_bool),
        Some(false),
        "{body}"
    );

    let program = cedar_ir::compile_free(&e.rendered.source).unwrap();
    let pass = match e.config.as_str() {
        "manual" => PassConfig::manual_improved(),
        _ => PassConfig::automatic_1991(),
    };
    let direct_report = restructure(&program, &pass).report.to_string();
    assert_eq!(
        v.get("report").and_then(Json::as_str),
        Some(direct_report.as_str()),
        "validated report drifted from the direct driver"
    );
    server.shutdown();
}
