//! Tier-1 fuzz smoke test: a small, fixed-seed campaign must come back
//! clean, cover every required restructuring pass, and be byte-for-byte
//! deterministic.
//!
//! This is the fast always-on slice of the fuzzing subsystem (the CI
//! `fuzz-smoke` job runs a bigger budgeted campaign); it pins the
//! generator's distribution well enough that a change which silently
//! stops exercising a pass — or starts failing an oracle — breaks the
//! ordinary test run, not a nightly.

use cedar_fuzz::{run_campaign, CampaignConfig};

fn smoke_config() -> CampaignConfig {
    CampaignConfig {
        seed_start: 0,
        seed_end: 40,
        bundles: false, // no artifacts from a test run
        jobs_check: 2,
        ..Default::default()
    }
}

#[test]
fn fixed_seed_campaign_is_clean_and_covers_every_pass() {
    let s = run_campaign(&smoke_config());
    assert_eq!(s.executed, 40);
    assert_eq!(s.skipped_for_budget, 0);
    assert!(
        s.failures.is_empty(),
        "oracle failures: {:?}",
        s.failures.iter().map(|f| (f.seed, f.failure.to_string())).collect::<Vec<_>>()
    );
    assert!(
        s.unreachable().is_empty(),
        "passes never reached in seeds 0..40: {:?}\ncoverage: {}",
        s.unreachable(),
        s.coverage.to_json()
    );
    assert!(s.jobs_mismatch.is_none(), "{:?}", s.jobs_mismatch);
    assert!(!s.failed());
    // Restructuring should actually be winning on generated programs.
    let (_, mean, _) = s.speedup.expect("clean seeds must report speedups");
    assert!(mean > 1.0, "mean speedup {mean}");
}

#[test]
fn campaign_summary_is_deterministic() {
    let a = run_campaign(&smoke_config()).to_json();
    let b = run_campaign(&smoke_config()).to_json();
    assert_eq!(a, b);
}

#[test]
fn single_threaded_campaign_agrees_with_parallel() {
    let ambient = run_campaign(&smoke_config()).to_json();
    let serial = cedar_par::with_jobs(1, || run_campaign(&smoke_config()).to_json());
    assert_eq!(ambient, serial, "campaign findings depend on worker count");
}

#[test]
fn campaign_is_engine_invariant() {
    // The campaign digest folds in watched memory bits and simulated
    // cycles, so identical JSON summaries mean the bytecode VM and the
    // tree-walking interpreter agreed bit-for-bit on every seed.
    use cedar_sim::Engine;
    let mut interp = smoke_config();
    interp.oracle.mc = interp.oracle.mc.clone().with_engine(Engine::Interp);
    let mut vm = smoke_config();
    vm.oracle.mc = vm.oracle.mc.clone().with_engine(Engine::Vm);
    let a = run_campaign(&interp).to_json();
    let b = run_campaign(&vm).to_json();
    assert_eq!(a, b, "campaign summary depends on the execution engine");
}
