//! End-to-end tests for the distributed campaign subsystem: a real
//! coordinator serving real workers over loopback HTTP, with crashes.
//!
//! The headline guarantee under test: a distributed campaign — workers
//! crashing mid-shard, leases expiring, shards reassigned — merges to
//! the **byte-identical** `cedar-fuzz-v1` report of one process running
//! the whole range, and a coordinator restart resumes from its journal
//! without re-running completed shards.

use cedar_campaign::{run_worker, Coordinator, CoordinatorConfig, WorkerConfig};
use cedar_experiments::jsonio::Json;
use cedar_experiments::json_escape;
use cedar_fuzz::shard::ShardSummary;
use cedar_fuzz::{run_campaign, CampaignConfig};
use std::path::PathBuf;
use std::time::{Duration, Instant};

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = PathBuf::from(format!("target/test-campaign/{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The single-process reference a distributed run must reproduce.
fn reference_json(seed_start: u64, seed_end: u64, jobs_check: usize) -> String {
    run_campaign(&CampaignConfig {
        seed_start,
        seed_end,
        bundles: false,
        jobs_check,
        ..CampaignConfig::default()
    })
    .to_json()
}

/// Run one seed range worker-style and wrap it as a `/complete` body.
fn complete_body(worker: &str, shard: u64, seed_start: u64, seed_end: u64) -> String {
    let summary = run_campaign(&CampaignConfig {
        seed_start,
        seed_end,
        bundles: false,
        jobs_check: 0,
        ..CampaignConfig::default()
    });
    format!(
        "{{\"worker\": \"{worker}\", \"shard\": {shard}, \"summary\": \"{}\"}}",
        json_escape(&ShardSummary::from_summary(&summary).to_json()),
    )
}

#[test]
fn crashed_worker_loses_no_seeds_and_the_merge_is_byte_identical() {
    let reference = reference_json(0, 60, 2);
    let cfg = CoordinatorConfig {
        seed_start: 0,
        seed_end: 60,
        shard_size: 7, // 9 shards, uneven tail
        lease: Duration::from_millis(400),
        retry_budget: 2,
        jobs_check: 2,
        config_name: "manual".into(),
        checkpoint_every: 0,
        dir: fresh_dir("crash"),
    };
    let dir = cfg.dir.clone();
    let coordinator = Coordinator::new(cfg).unwrap();
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let server = std::thread::spawn(move || {
        coordinator.serve(listener, Duration::from_millis(400)).unwrap()
    });

    // A worker that dies the instant it is granted shard 2 — the lease
    // vanishes with it, exactly like `kill -9`.
    let doomed = run_worker(&WorkerConfig {
        addr: addr.clone(),
        name: "doomed".into(),
        die_on_shards: vec![2],
        poll_base: Duration::from_millis(20),
        ..WorkerConfig::default()
    })
    .unwrap();
    assert_eq!(doomed.crashed, Some(2), "the crash hook must have fired");
    assert_eq!(doomed.completed, 2, "shards 0 and 1 completed before the crash");

    // A healthy worker finishes everything else, waits out the dead
    // lease, and re-runs shard 2 when it expires.
    let healthy = run_worker(&WorkerConfig {
        addr,
        name: "healthy".into(),
        poll_base: Duration::from_millis(20),
        ..WorkerConfig::default()
    })
    .unwrap();
    assert!(healthy.crashed.is_none());
    assert_eq!(doomed.completed + healthy.completed, 9, "every shard completed exactly once");

    let outcome = server.join().unwrap();
    assert_eq!(outcome.quarantined, 0);
    assert!(outcome.reassignments >= 1, "the dead lease must have been reassigned");
    let merged = outcome.merged.expect("full completion must produce a merged report");
    assert_eq!(
        merged.to_json(),
        reference,
        "merged report must be byte-identical to the single-process run"
    );
    assert_eq!(std::fs::read_to_string(outcome.merged_path.unwrap()).unwrap(), reference);

    // Triage records the recovery story.
    let triage = std::fs::read_to_string(outcome.triage_path).unwrap();
    let v = Json::parse(&triage).unwrap();
    assert_eq!(v.get("schema").and_then(Json::as_str), Some("cedar-campaign-triage-v1"));
    assert!(v.get("shards").unwrap().get("reassignments").unwrap().as_f64().unwrap() >= 1.0);
    assert!(v.get("quarantined").unwrap().as_arr().unwrap().is_empty());
    let workers = v.get("workers").unwrap().as_arr().unwrap();
    assert_eq!(workers.len(), 2, "both workers appear in triage: {triage}");

    // And the journal tells the same story durably.
    let journal = std::fs::read_to_string(dir.join("journal.jsonl")).unwrap();
    assert!(journal.contains("\"rec\": \"reassigned\""), "{journal}");
    assert_eq!(journal.matches("\"rec\": \"completed\"").count(), 9);
}

#[test]
fn coordinator_restart_resumes_from_the_journal_without_rerunning_shards() {
    let dir = fresh_dir("resume");
    let cfg = CoordinatorConfig {
        seed_start: 0,
        seed_end: 24,
        shard_size: 8, // 3 shards
        lease: Duration::from_secs(30),
        retry_budget: 2,
        jobs_check: 2,
        config_name: "manual".into(),
        checkpoint_every: 0,
        dir: dir.clone(),
    };
    let now = Instant::now();
    {
        let mut c1 = Coordinator::new(cfg.clone()).unwrap();
        let (status, reply) = c1.handle("POST", "/lease", "{\"worker\": \"w1\"}", now);
        assert_eq!(status, 200);
        assert!(reply.contains("\"shard\": 0"), "{reply}");
        let (status, _) = c1.handle("POST", "/complete", &complete_body("w1", 0, 0, 8), now);
        assert_eq!(status, 200);
        // Lease shard 1 and "crash" with it in flight.
        let (_, reply) = c1.handle("POST", "/lease", "{\"worker\": \"w1\"}", now);
        assert!(reply.contains("\"shard\": 1"), "{reply}");
    } // coordinator killed here

    let mut c2 = Coordinator::new(cfg).unwrap();
    assert!(!c2.finished());
    // Shard 0 is still completed (not re-leased, not re-run); shard 1's
    // in-flight lease died with the first coordinator and is pending
    // again.
    let (_, reply) = c2.handle("POST", "/lease", "{\"worker\": \"w2\"}", now);
    assert!(reply.contains("\"shard\": 1"), "resume must hand out shard 1, got {reply}");
    let (_, reply) = c2.handle("POST", "/lease", "{\"worker\": \"w2\"}", now);
    assert!(reply.contains("\"shard\": 2"), "{reply}");
    c2.handle("POST", "/complete", &complete_body("w2", 1, 8, 16), now);
    c2.handle("POST", "/complete", &complete_body("w2", 2, 16, 24), now);
    assert!(c2.finished());
    let outcome = c2.finish().unwrap();
    assert_eq!(
        outcome.merged.unwrap().to_json(),
        reference_json(0, 24, 2),
        "a resumed campaign still merges byte-identically"
    );
}

#[test]
fn checkpoint_compaction_shrinks_the_journal_and_the_result_store_heals_torn_shards() {
    let dir = fresh_dir("checkpoint");
    let cfg = CoordinatorConfig {
        seed_start: 0,
        seed_end: 24,
        shard_size: 8, // 3 shards
        lease: Duration::from_secs(30),
        retry_budget: 2,
        jobs_check: 2,
        config_name: "manual".into(),
        checkpoint_every: 2,
        dir: dir.clone(),
    };
    let now = Instant::now();
    {
        let mut c1 = Coordinator::new(cfg.clone()).unwrap();
        for (shard, range) in [(0u64, (0u64, 8u64)), (1, (8, 16)), (2, (16, 24))] {
            let (_, reply) = c1.handle("POST", "/lease", "{\"worker\": \"w1\"}", now);
            assert!(reply.contains(&format!("\"shard\": {shard}")), "{reply}");
            let body = complete_body("w1", shard, range.0, range.1);
            let (status, _) = c1.handle("POST", "/complete", &body, now);
            assert_eq!(status, 200);
        }
    } // coordinator killed here

    // Two completions triggered a checkpoint-compaction; only shard
    // 2's completion (and its lease) postdate it, so the journal is
    // campaign + checkpoint + a short tail instead of the full
    // history.
    let journal = std::fs::read_to_string(dir.join("journal.jsonl")).unwrap();
    assert!(journal.starts_with("{\"rec\": \"campaign\""), "{journal}");
    assert_eq!(journal.matches("\"rec\": \"checkpoint\"").count(), 1, "{journal}");
    assert_eq!(journal.matches("\"rec\": \"completed\"").count(), 1, "{journal}");
    assert_eq!(journal.matches("\"rec\": \"leased\"").count(), 1, "{journal}");

    // Maul the plain shard files behind the coordinator's back: one
    // torn mid-write, one deleted outright. The checksummed result
    // store still holds both.
    let shard0 = dir.join("shards/shard0000.json");
    let full = std::fs::read_to_string(&shard0).unwrap();
    std::fs::write(&shard0, &full[..full.len() / 2]).unwrap();
    std::fs::remove_file(dir.join("shards/shard0001.json")).unwrap();

    // Restart: resume folds the checkpoint, heals both files from the
    // store instead of re-running the shards, and the merge is still
    // byte-identical to the single-process reference.
    let mut c2 = Coordinator::new(cfg).unwrap();
    assert!(
        c2.finished(),
        "every shard must resume completed — torn files heal from the result store"
    );
    assert_eq!(std::fs::read_to_string(&shard0).unwrap(), full, "healed byte-identically");
    let outcome = c2.finish().unwrap();
    assert_eq!(outcome.quarantined, 0);
    assert_eq!(outcome.merged.unwrap().to_json(), reference_json(0, 24, 2));
}

#[test]
fn poison_shards_are_quarantined_and_triaged_without_wedging_the_campaign() {
    let cfg = CoordinatorConfig {
        seed_start: 0,
        seed_end: 16,
        shard_size: 8, // 2 shards
        lease: Duration::from_secs(30),
        retry_budget: 1, // second failure quarantines
        jobs_check: 0,
        config_name: "manual".into(),
        checkpoint_every: 0,
        dir: fresh_dir("poison"),
    };
    let mut c = Coordinator::new(cfg).unwrap();
    let now = Instant::now();
    for (worker, error) in [("w1", "panic: shard is cursed"), ("w2", "panic: still cursed")] {
        let (_, reply) = c.handle("POST", "/lease", &format!("{{\"worker\": \"{worker}\"}}"), now);
        assert!(reply.contains("\"shard\": 0"), "{reply}");
        let body = format!(
            "{{\"worker\": \"{worker}\", \"shard\": 0, \"error\": \"{error}\"}}"
        );
        let (status, _) = c.handle("POST", "/fail", &body, now);
        assert_eq!(status, 200);
    }
    // Two healthy workers failed it: quarantined, campaign moves on.
    let (_, reply) = c.handle("POST", "/lease", "{\"worker\": \"w3\"}", now);
    assert!(reply.contains("\"shard\": 1"), "shard 0 must be quarantined, got {reply}");
    let (status, _) = c.handle("POST", "/complete", &complete_body("w3", 1, 8, 16), now);
    assert_eq!(status, 200);
    assert!(c.finished());

    let (_, status_body) = c.handle("GET", "/status", "", now);
    assert!(status_body.contains("\"quarantined\": 1"), "{status_body}");

    let outcome = c.finish().unwrap();
    assert_eq!(outcome.quarantined, 1);
    assert!(
        outcome.merged.is_none(),
        "a quarantined hole must withhold the merged report, never fake it"
    );
    let triage = std::fs::read_to_string(outcome.triage_path).unwrap();
    let v = Json::parse(&triage).unwrap();
    let q = &v.get("quarantined").unwrap().as_arr().unwrap()[0];
    assert_eq!(q.get("shard").unwrap().as_f64(), Some(0.0));
    assert_eq!(q.get("attempts").unwrap().as_f64(), Some(2.0));
    let errors = q.get("errors").unwrap().as_arr().unwrap();
    assert!(
        errors.iter().any(|e| e.as_str().unwrap().contains("w1: panic: shard is cursed")),
        "{triage}"
    );
}

#[test]
fn heartbeats_extend_leases_and_silence_expires_them() {
    let cfg = CoordinatorConfig {
        seed_start: 0,
        seed_end: 16,
        shard_size: 8,
        lease: Duration::from_millis(300),
        retry_budget: 2,
        jobs_check: 0,
        config_name: "manual".into(),
        checkpoint_every: 0,
        dir: fresh_dir("heartbeat"),
    };
    let mut c = Coordinator::new(cfg).unwrap();
    // Drive the clock by hand — no real sleeps.
    let t0 = Instant::now();
    let at = |ms: u64| t0 + Duration::from_millis(ms);

    let (_, reply) = c.handle("POST", "/lease", "{\"worker\": \"w1\"}", at(0));
    assert!(reply.contains("\"shard\": 0"), "{reply}");
    let hb = "{\"worker\": \"w1\", \"shard\": 0}";
    // 200ms in: heartbeat accepted, lease now runs to 500ms.
    let (_, reply) = c.handle("POST", "/heartbeat", hb, at(200));
    assert!(reply.contains("\"ok\": true"), "{reply}");
    // 400ms: past the original expiry but inside the extension — the
    // shard is still held, so another worker gets the *other* shard.
    let (_, reply) = c.handle("POST", "/lease", "{\"worker\": \"w2\"}", at(400));
    assert!(reply.contains("\"shard\": 1"), "{reply}");
    // 600ms: w1 went silent past 500ms; its lease expires and shard 0
    // is reassignable.
    let (_, reply) = c.handle("POST", "/lease", "{\"worker\": \"w3\"}", at(600));
    assert!(reply.contains("\"shard\": 0"), "expired lease must reassign, got {reply}");
    // The late heartbeat from w1 is refused: it lost the lease.
    let (_, reply) = c.handle("POST", "/heartbeat", hb, at(650));
    assert!(reply.contains("\"ok\": false"), "{reply}");
    // But its late *completion* is still accepted — first result wins,
    // and shard content is deterministic either way.
    let (status, _) = c.handle("POST", "/complete", &complete_body("w1", 0, 0, 8), at(700));
    assert_eq!(status, 200);
    let (_, status_body) = c.handle("GET", "/status", "", at(750));
    assert!(status_body.contains("\"completed\": 1"), "{status_body}");
}

#[test]
fn chaos_injects_worker_crashes_deterministically() {
    // Find a chaos seed whose sticky draw kills the worker on its very
    // first shard — the prediction is pure, so the test knows the crash
    // will happen before it runs anything.
    let seed = (0..2000)
        .find(|&s| {
            cedar_experiments::chaos::probe_sticky(s, "campaign/shard0", "worker-crash").is_some()
        })
        .expect("no crashing chaos seed in 2000");
    let cfg = CoordinatorConfig {
        seed_start: 0,
        seed_end: 8,
        shard_size: 8,
        lease: Duration::from_millis(300),
        retry_budget: 2,
        jobs_check: 0,
        config_name: "manual".into(),
        checkpoint_every: 0,
        dir: fresh_dir("chaos"),
    };
    let coordinator = Coordinator::new(cfg).unwrap();
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let server = std::thread::spawn(move || {
        coordinator.serve(listener, Duration::from_millis(300)).unwrap()
    });

    let chaotic = run_worker(&WorkerConfig {
        addr: addr.clone(),
        name: "chaotic".into(),
        chaos: Some(seed),
        poll_base: Duration::from_millis(20),
        ..WorkerConfig::default()
    })
    .unwrap();
    assert_eq!(chaotic.crashed, Some(0), "the predicted chaos crash must fire");

    let steady = run_worker(&WorkerConfig {
        addr,
        name: "steady".into(),
        poll_base: Duration::from_millis(20),
        ..WorkerConfig::default()
    })
    .unwrap();
    assert_eq!(steady.completed, 1);

    let outcome = server.join().unwrap();
    assert!(outcome.reassignments >= 1);
    assert_eq!(outcome.merged.unwrap().to_json(), reference_json(0, 8, 0));
}
