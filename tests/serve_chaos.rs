//! Fault-injection proof of the service's robustness contract, driven
//! through the real HTTP surface with `CEDAR_CHAOS`-style injection
//! enabled on the in-process server:
//!
//! * a **transient** fault (fails at `normal`, clean at a safer rung)
//!   must recover via the retry ladder — the client sees a plain 200
//!   plus honest `service.retries` accounting;
//! * a **sticky** fault (fires at every rung) must quarantine: a
//!   structured error with a stable kind, no leaked panic internals,
//!   and a crash-bundle reference — and a second identical request
//!   must land in the *same* deduplicated bundle with its hit count
//!   incremented, not a second directory.
//!
//! Chaos draws are deterministic in `(seed, label, rung, phase)`, so
//! the tests *predict* which generated program recovers and which
//! quarantines using the public probes, then assert the service does
//! exactly that.

use cedar_experiments::chaos;
use cedar_experiments::supervise::{self, Rung};
use cedar_fuzz::GenProgram;
use cedar_serve::{http, Json, ServeRequest, Server, ServerConfig};
use std::path::PathBuf;
use std::time::Duration;

const CHAOS: u64 = 42;
/// The phases a `validate: false` request gates, in order.
const PHASES: [&str; 3] = ["compile", "restructure", "simulate"];
const T: Duration = Duration::from_secs(120);

fn chaos_server(tag: &str) -> Server {
    let mut cfg = ServerConfig {
        workers: 2,
        ..ServerConfig::default()
    };
    cfg.engine.sup.chaos = Some(CHAOS);
    cfg.engine.sup.deadline = None;
    cfg.engine.sup.bundle_dir = PathBuf::from(format!("target/test-serve-bundles/{tag}"));
    let _ = std::fs::remove_dir_all(&cfg.engine.sup.bundle_dir);
    cfg.engine.backoff_base = Duration::from_millis(1);
    Server::start(cfg).expect("bind in-process server")
}

fn request_for(seed: u64) -> ServeRequest {
    let mut req = ServeRequest::new(GenProgram::generate(seed).render().source);
    req.validate = false;
    req
}

/// A sticky non-delay fault fires on some phase of this request — it
/// will fail identically at every rung.
fn sticky_faulty(label: &str) -> bool {
    PHASES
        .iter()
        .any(|p| matches!(chaos::probe_sticky(CHAOS, label, p), Some(k) if k != "delay"))
}

/// A transient non-delay fault fires on some phase at this rung.
fn rung_fails(label: &str, rung: &str) -> bool {
    PHASES
        .iter()
        .any(|p| matches!(chaos::probe(CHAOS, label, rung, p), Some(k) if k != "delay"))
}

/// First generated program whose request satisfies `want`.
fn find_seed(want: impl Fn(&str) -> bool) -> (u64, ServeRequest) {
    for seed in 0..2000u64 {
        let req = request_for(seed);
        if want(&req.label()) {
            return (seed, req);
        }
    }
    panic!("no generated program matches the predicate in 2000 seeds");
}

#[test]
fn transient_faults_recover_via_the_retry_ladder() {
    // Want: clean of sticky faults, fails at `normal`, but some safer
    // rung is completely clean — the ladder must rescue it.
    let (seed, req) = find_seed(|label| {
        !sticky_faulty(label)
            && rung_fails(label, Rung::Normal.label())
            && Rung::LADDER[1..].iter().any(|r| !rung_fails(label, r.label()))
    });
    let server = chaos_server("chaos-transient");
    let addr = server.addr();
    let (status, body) = http::post(&addr, "/restructure", &req.to_json(), T).unwrap();
    assert_eq!(status, 200, "seed {seed} should recover, got: {body}");
    let v = Json::parse(&body).unwrap();
    let service = v.get("service").unwrap();
    let retries = service.get("retries").and_then(Json::as_f64).unwrap();
    assert!(retries >= 1.0, "recovery must be visible in retries: {body}");
    let rung = service.get("rung").and_then(Json::as_str).unwrap();
    assert_ne!(rung, "normal", "recovered rung must be a safer one: {body}");

    let (_, metrics) = http::get(&addr, "/metrics", T).unwrap();
    let m = Json::parse(&metrics).unwrap();
    assert!(
        m.get("recovered").and_then(Json::as_f64).unwrap() >= 1.0,
        "{metrics}"
    );
    server.shutdown();
}

#[test]
fn sticky_faults_quarantine_into_one_deduped_bundle() {
    let (seed, req) = find_seed(sticky_faulty);
    let server = chaos_server("chaos-sticky");
    let addr = server.addr();

    let (status, body) = http::post(&addr, "/restructure", &req.to_json(), T).unwrap();
    assert!(
        matches!(status, 422 | 500 | 504),
        "seed {seed} should quarantine, got {status}: {body}"
    );
    let v = Json::parse(&body).unwrap();
    let err = v.get("error").unwrap();
    let kind = err.get("kind").and_then(Json::as_str).unwrap();
    assert!(!kind.is_empty() && kind.chars().all(|c| c.is_ascii_lowercase() || c == '-'));
    // Engine internals never leak: no panic location, no backtrace.
    assert!(!body.contains("panicked at"), "{body}");
    assert!(!body.contains(".rs:"), "{body}");
    // Every ladder rung was attempted before giving up.
    let attempts = err.get("attempts").and_then(Json::as_arr).unwrap();
    assert_eq!(attempts.len(), Rung::LADDER.len(), "{body}");
    let bundle = err
        .get("bundle")
        .and_then(Json::as_str)
        .unwrap_or_else(|| panic!("quarantine must reference a bundle: {body}"))
        .to_string();
    assert_eq!(supervise::bundle_hits(&bundle), 1, "first quarantine = one hit");

    // The identical request again: same digest, same directory, one
    // more hit — never a second bundle.
    let (status2, body2) = http::post(&addr, "/restructure", &req.to_json(), T).unwrap();
    assert_eq!(status2, status, "{body2}");
    let bundle2 = Json::parse(&body2)
        .unwrap()
        .get("error")
        .and_then(|e| e.get("bundle"))
        .and_then(Json::as_str)
        .unwrap()
        .to_string();
    assert_eq!(bundle2, bundle, "identical failures must share one bundle");
    assert_eq!(supervise::bundle_hits(&bundle), 2, "second hit recorded");
    let root = PathBuf::from("target/test-serve-bundles/chaos-sticky");
    let dirs = std::fs::read_dir(&root).unwrap().count();
    assert_eq!(dirs, 1, "exactly one bundle directory under {}", root.display());
    server.shutdown();
}
