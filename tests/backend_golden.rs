//! Golden-file suite: every workload's emission through every backend.
//!
//! For each of the 22 paper workloads and each [`BackendKind`], the
//! restructurer runs under the paper's tuned configuration and the
//! emission is compared byte-for-byte against
//! `tests/golden/<workload>.expected.<backend>.f`. Any intentional
//! change to a pass or an emitter shows up here as a reviewable diff.
//!
//! To regenerate after an intentional change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test backend_golden
//! ```
//!
//! A second test guards the directory itself: every file present must
//! correspond to a live (workload, backend) pair, so renaming a
//! workload cannot leave stale snapshots behind.

use cedar_restructure::{emit_with, BackendKind, PassConfig};
use cedar_workloads::Workload;
use std::collections::BTreeSet;
use std::fs;
use std::path::{Path, PathBuf};

fn golden_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden")
}

fn workloads() -> Vec<Workload> {
    let mut w = cedar_workloads::table1_workloads();
    w.extend(cedar_workloads::table2_workloads());
    w
}

fn golden_name(workload: &str, backend: BackendKind) -> String {
    format!("{workload}.expected.{}.f", backend.name())
}

fn updating() -> bool {
    std::env::var("UPDATE_GOLDEN").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// First differing line of two texts, for a readable failure message.
fn first_line_diff(want: &str, got: &str) -> String {
    for (i, (w, g)) in want.lines().zip(got.lines()).enumerate() {
        if w != g {
            return format!("first difference at line {}:\n  golden: {w}\n  emitted: {g}", i + 1);
        }
    }
    format!(
        "line counts differ: golden {} vs emitted {}",
        want.lines().count(),
        got.lines().count()
    )
}

#[test]
fn workload_emissions_match_goldens() {
    let dir = golden_dir();
    if updating() {
        fs::create_dir_all(&dir).unwrap();
    }
    let mut mismatches = Vec::new();
    let mut updated = 0usize;
    for w in workloads() {
        let p = w.compile();
        for kind in BackendKind::all() {
            let (emitted, _) = emit_with(kind, &p, &PassConfig::manual_improved());
            let path = dir.join(golden_name(w.name, kind));
            if updating() {
                let stale = fs::read_to_string(&path).map(|t| t != emitted).unwrap_or(true);
                if stale {
                    fs::write(&path, &emitted).unwrap();
                    updated += 1;
                }
                continue;
            }
            match fs::read_to_string(&path) {
                Ok(want) if want == emitted => {}
                Ok(want) => mismatches.push(format!(
                    "{}/{}: {}",
                    w.name,
                    kind,
                    first_line_diff(&want, &emitted)
                )),
                Err(_) => mismatches.push(format!(
                    "{}/{}: golden file {} missing",
                    w.name,
                    kind,
                    path.display()
                )),
            }
        }
    }
    if updating() {
        println!("golden: {updated} file(s) rewritten");
        return;
    }
    assert!(
        mismatches.is_empty(),
        "{} emission(s) drifted from their goldens — inspect the diffs and, if \
         intentional, regenerate with UPDATE_GOLDEN=1 cargo test --test backend_golden:\n{}",
        mismatches.len(),
        mismatches.join("\n")
    );
}

#[test]
fn golden_directory_has_no_strays() {
    let expected: BTreeSet<String> = workloads()
        .iter()
        .flat_map(|w| BackendKind::all().map(|k| golden_name(w.name, k)))
        .collect();
    let present: BTreeSet<String> = fs::read_dir(golden_dir())
        .expect("tests/golden exists (run UPDATE_GOLDEN=1 once to seed it)")
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .collect();
    let strays: Vec<&String> = present.difference(&expected).collect();
    assert!(
        strays.is_empty(),
        "stale files in tests/golden (workload renamed or backend removed?): {strays:?}"
    );
    assert_eq!(
        present.len(),
        expected.len(),
        "expected one golden per workload per backend"
    );
}

#[test]
fn goldens_reparse_through_the_front_end() {
    // Every checked-in snapshot must remain legal input to the compiler;
    // this catches a hand-edited golden as well as an emitter regression.
    for w in workloads() {
        for kind in BackendKind::all() {
            let path = golden_dir().join(golden_name(w.name, kind));
            let Ok(text) = fs::read_to_string(&path) else {
                continue; // the mismatch test already reports missing files
            };
            cedar_ir::compile_source(&text).unwrap_or_else(|e| {
                panic!("golden {} does not re-parse: {e}", path.display())
            });
        }
    }
}
