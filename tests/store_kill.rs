//! Real `kill -9` durability test for `cedar-store`, in the style of
//! the campaign cluster tests: an actual child **process** (this test
//! binary re-executed with `CEDAR_STORE_KILL_CHILD` set) hammers a
//! store with durable writes until the parent sends it SIGKILL at an
//! arbitrary point, then the parent reopens the store and checks the
//! headline promise: every entry present after the kill is
//! byte-for-byte intact, the stale writer lock is reclaimed, and tmp
//! litter from the interrupted write is swept.

use cedar_store::Store;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Deterministic payload for a key — both processes can compute it, so
/// the parent knows exactly what any surviving entry must contain.
fn payload(key: u64) -> Vec<u8> {
    let len = 1 + (key as usize * 53) % 2048;
    (0..len).map(|i| ((key as usize).wrapping_mul(131).wrapping_add(i * 11) % 256) as u8).collect()
}

/// Child mode: write entries in a tight loop until killed. Runs as a
/// normal no-op test unless the parent set the env var to a store root.
#[test]
fn kill_child_writer_loop() {
    let Ok(root) = std::env::var("CEDAR_STORE_KILL_CHILD") else {
        return;
    };
    let store = Store::open(root).unwrap();
    // Overwrite a rotating window of keys forever: every instant of
    // this loop has a rename or an fsync in flight somewhere.
    for i in 0u64.. {
        let key = i % 32;
        store.put(key, &payload(key)).unwrap();
    }
}

#[test]
fn sigkill_mid_write_never_corrupts_the_store() {
    let root = PathBuf::from("target/test-store-kill/sigkill");
    let _ = std::fs::remove_dir_all(&root);
    std::fs::create_dir_all(&root).unwrap();

    let exe = std::env::current_exe().unwrap();
    let mut child = std::process::Command::new(&exe)
        .arg("--exact")
        .arg("kill_child_writer_loop")
        .arg("--nocapture")
        .env("CEDAR_STORE_KILL_CHILD", &root)
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .unwrap();

    // Wait until the child has demonstrably written entries, then let
    // it run a little longer so the kill lands mid-stream.
    let entries = root.join("entries");
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let n = std::fs::read_dir(&entries).map(|d| d.flatten().count()).unwrap_or(0);
        if n >= 8 {
            break;
        }
        assert!(Instant::now() < deadline, "child never produced entries");
        std::thread::sleep(Duration::from_millis(10));
    }
    std::thread::sleep(Duration::from_millis(50));

    // SIGKILL: no destructors, no lock release, no tmp cleanup.
    child.kill().unwrap();
    child.wait().unwrap();

    // The dead child's lock file survives the kill; reopening must
    // reclaim it (the PID is gone) rather than deadlock.
    let lock = root.join("writer.lock");
    assert!(lock.exists(), "SIGKILL must not have released the lock cleanly");
    let store = Store::open(&root).unwrap();

    // Every surviving entry is byte-for-byte what the child computed —
    // absent-or-intact, never torn.
    let mut present = 0;
    for key in 0u64..32 {
        match store.get(key) {
            None => {}
            Some(got) => {
                assert_eq!(got, payload(key), "torn entry for key {key} after SIGKILL");
                present += 1;
            }
        }
    }
    assert!(present >= 8, "the verified pre-kill entries must still read back");
    assert_eq!(store.stats().corrupt_recovered, 0, "nothing may verify as torn");
    assert_eq!(
        std::fs::read_dir(root.join("tmp")).unwrap().count(),
        0,
        "reopen must sweep the interrupted write's tmp litter"
    );

    // And the reopened store still writes: self-heal by recomputation.
    store.put(99, &payload(99)).unwrap();
    assert_eq!(store.get(99), Some(payload(99)));
}
