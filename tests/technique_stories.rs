//! Table 2's central claim is *which* §4.1 technique unlocks *which*
//! program. EXPERIMENTS.md records that mapping; these tests pin it so
//! a regression in any analysis cannot silently change the story while
//! the speedup table still happens to look plausible.

use cedar_restructure::{restructure, LoopDecision, PassConfig, Report, Technique};

fn manual_report(w: &cedar_workloads::Workload) -> Report {
    restructure(&w.compile(), &PassConfig::manual_improved()).report
}

fn auto_report(w: &cedar_workloads::Workload) -> Report {
    restructure(&w.compile(), &PassConfig::automatic_1991()).report
}

fn uses(r: &Report, t: Technique) -> bool {
    r.loops.iter().any(|l| l.techniques.contains(&t))
}

#[test]
fn arc2d_needs_array_privatization() {
    let w = cedar_workloads::perfect::arc2d();
    assert!(
        uses(&manual_report(&w), Technique::ArrayPrivatization),
        "ARC2D's sweep pencil must be array-privatized"
    );
    assert!(
        !uses(&auto_report(&w), Technique::ArrayPrivatization),
        "array privatization is a §4.1 technique, off in the automatic set"
    );
}

#[test]
fn bdna_needs_multi_statement_array_reductions() {
    let w = cedar_workloads::perfect::bdna();
    assert!(
        uses(&manual_report(&w), Technique::ArrayReduction),
        "BDNA's three-statement force accumulation must be recognized"
    );
}

#[test]
fn mdg_needs_array_reductions_and_privatization() {
    let w = cedar_workloads::perfect::mdg();
    let r = manual_report(&w);
    assert!(uses(&r, Technique::ArrayReduction), "{r}");
    assert!(uses(&r, Technique::ArrayPrivatization), "{r}");
}

#[test]
fn ocean_needs_the_runtime_dependence_test() {
    let w = cedar_workloads::perfect::ocean();
    let r = manual_report(&w);
    assert!(
        r.loops.iter().any(|l| matches!(l.decision, LoopDecision::TwoVersion)),
        "OCEAN's linearized indexing needs a two-version loop: {r}"
    );
}

#[test]
fn track_needs_critical_sections() {
    let w = cedar_workloads::perfect::track();
    let r = manual_report(&w);
    assert!(
        r.loops
            .iter()
            .any(|l| matches!(l.decision, LoopDecision::CriticalSection)),
        "TRACK's commutative updates need a critical section: {r}"
    );
}

#[test]
fn trfd_needs_triangular_givs() {
    // Simple additive IVs (constant step) substitute even in the
    // automatic set — 1991 KAP did those — so the inner `ij = ij + 1`
    // loop is parallel either way. The *outer* triangular view of `ij`
    // is a §4.1.4 generalized IV: automatic must leave that outer loop
    // blocked on the scalar, manual must substitute it.
    let w = cedar_workloads::perfect::trfd();
    assert!(
        uses(&manual_report(&w), Technique::GivSubstitution),
        "TRFD's triangular index must be substituted"
    );
    let auto = auto_report(&w);
    let outer_blocked_on_ij = auto.loops.iter().any(|l| {
        matches!(&l.decision, LoopDecision::Serial { reason } if reason.contains("`ij`"))
            && !l.techniques.contains(&Technique::GivSubstitution)
    });
    assert!(
        outer_blocked_on_ij,
        "automatic must be blocked by the triangular recurrence: {auto}"
    );
}

#[test]
fn qcd_stays_serialized_under_every_technique_set() {
    // The RNG dependence cycle is not a reduction, not privatizable,
    // and has no constant distance: nothing in §4.1 unlocks it.
    let w = cedar_workloads::perfect::qcd();
    let r = manual_report(&w);
    let rng_loop_serial = r.loops.iter().any(|l| {
        matches!(&l.decision, LoopDecision::Serial { reason } if reason.contains("iseed"))
    });
    assert!(rng_loop_serial, "the iseed recurrence must stay serial: {r}");
}

#[test]
fn table1_routines_report_at_least_one_parallel_loop_each() {
    for w in cedar_workloads::table1_workloads() {
        let r = restructure(&w.compile(), &PassConfig::automatic_1991()).report;
        assert!(
            r.parallelized() >= 1,
            "{}: automatic pipeline found nothing to parallelize\n{r}",
            w.name
        );
    }
}
