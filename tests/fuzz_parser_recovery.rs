//! Parser error-recovery fuzzing (tier-1): the recovering f77 entry
//! points must never panic on mangled input — truncated files, deleted
//! tokens, deleted/duplicated lines, garbled characters — only return
//! diagnostics plus whatever partial program they could salvage.
//!
//! Inputs are generator programs (`cedar_fuzz::gen`) put through seeded
//! syntactic mutations (`cedar_fuzz::mutate`), so every crash this test
//! could find replays from `(seed, mutation index)` alone.

use cedar_f77::{parse_free_recovering, parse_source_recovering};
use cedar_fuzz::{mutations, GenProgram};
use std::panic::{catch_unwind, AssertUnwindSafe};

fn must_not_panic(what: &str, src: &str) {
    let free = catch_unwind(AssertUnwindSafe(|| parse_free_recovering(src)));
    assert!(free.is_ok(), "parse_free_recovering panicked on {what}:\n{src}");
    let fixed = catch_unwind(AssertUnwindSafe(|| parse_source_recovering(src)));
    assert!(fixed.is_ok(), "parse_source_recovering panicked on {what}:\n{src}");
}

#[test]
fn mutated_generator_programs_never_panic_the_parser() {
    for seed in 0..24u64 {
        let src = GenProgram::generate(seed).render().source;
        for (k, (kind, mutated)) in mutations(&src, seed, 20).into_iter().enumerate() {
            must_not_panic(&format!("seed {seed} mutation {k} ({kind})"), &mutated);
        }
    }
}

#[test]
fn stacked_mutations_never_panic_the_parser() {
    // Apply several rounds of mutation so the input drifts far from
    // well-formed (missing END, half a DO header, junk mid-expression).
    for seed in 0..8u64 {
        let mut src = GenProgram::generate(seed).render().source;
        for round in 0..6u64 {
            let muts = mutations(&src, seed.wrapping_mul(31).wrapping_add(round), 3);
            if let Some((kind, m)) = muts.into_iter().last() {
                src = m;
                must_not_panic(&format!("seed {seed} round {round} ({kind})"), &src);
            }
        }
    }
}

#[test]
fn every_prefix_of_a_program_is_survivable() {
    // Exhaustive truncation of one representative program: every byte
    // boundary, not just sampled cut points.
    let src = GenProgram::generate(1).render().source;
    for cut in 0..=src.len() {
        if !src.is_char_boundary(cut) {
            continue;
        }
        must_not_panic(&format!("prefix of length {cut}"), &src[..cut]);
    }
}

#[test]
fn recovery_still_reports_diagnostics_not_silence() {
    // Recovery must not degenerate into swallowing errors: deleting a
    // meaningful token from a valid program should surface at least one
    // diagnostic (or salvage a unit — both count as "handled").
    let src = GenProgram::generate(2).render().source;
    let mut saw_diagnostic = false;
    for (_, mutated) in mutations(&src, 7, 20) {
        let out = parse_free_recovering(&mutated);
        saw_diagnostic |= !out.errors.is_empty();
    }
    assert!(saw_diagnostic, "20 mutations of a valid program produced zero diagnostics");
}
