//! Property test for the happens-before race detector: under *legal*
//! fault perturbations (schedule jitter, randomized tie-breaks, delayed
//! advances — anything a correct machine is allowed to do), the
//! detector must stay silent on every restructured Table 1 kernel, and
//! it must flag every seeded racy negative no matter which perturbation
//! seed is in effect. Together the two properties pin down both sides
//! of the detector: no false positives on programs the restructurer
//! proved race-free, no false negatives on programs with a planted bug.

use std::sync::OnceLock;

use proptest::prelude::*;

use cedar_sim::{FaultConfig, MachineConfig, SimErrorKind, Simulator};

/// Run `program` with the detector in collect-all mode, optionally
/// under a fault profile; returns `(races, deadlocked)`.
fn traced_run(
    program: &cedar_ir::Program,
    faults: Option<FaultConfig>,
) -> Result<u64, cedar_sim::SimError> {
    let mc = MachineConfig::cedar_config1_scaled().with_race_detection();
    let mut sim = Simulator::new(program, mc)?;
    sim.collect_races();
    if let Some(f) = faults {
        sim.set_faults(f);
    }
    sim.run_main()?;
    Ok(sim.races_detected())
}

/// Table 1 kernels, restructured once (they are immutable inputs; the
/// property varies only the fault seed).
fn restructured_table1() -> &'static Vec<(String, cedar_ir::Program)> {
    static CACHE: OnceLock<Vec<(String, cedar_ir::Program)>> = OnceLock::new();
    CACHE.get_or_init(|| {
        cedar_workloads::table1_workloads()
            .iter()
            .map(|w| {
                let r = cedar_restructure::restructure(
                    &w.compile(),
                    &cedar_restructure::PassConfig::automatic_1991(),
                );
                (w.name.to_string(), r.program)
            })
            .collect()
    })
}

/// Racy negatives, compiled once.
fn compiled_negatives() -> &'static Vec<(String, cedar_ir::Program)> {
    static CACHE: OnceLock<Vec<(String, cedar_ir::Program)>> = OnceLock::new();
    CACHE.get_or_init(|| {
        cedar_experiments::races::negatives()
            .iter()
            .map(|(name, src)| {
                let p = cedar_ir::compile_free(src)
                    .unwrap_or_else(|e| panic!("negative `{name}` failed to compile: {e}"));
                (name.to_string(), p)
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn restructured_table1_is_race_free_under_legal_faults(
        which in 0usize..10,
        seed in 1u64..10_000,
    ) {
        let kernels = restructured_table1();
        let (name, program) = &kernels[which % kernels.len()];
        let races = traced_run(program, Some(FaultConfig::legal(seed)))
            .unwrap_or_else(|e| panic!("kernel `{name}` seed {seed} failed: {e}"));
        prop_assert_eq!(
            races, 0,
            "kernel `{}` reported {} race(s) under legal fault seed {}",
            name, races, seed
        );
    }

    #[test]
    fn seeded_racy_negatives_are_always_flagged(
        which in 0usize..4,
        seed in 1u64..10_000,
    ) {
        let negs = compiled_negatives();
        let (name, program) = &negs[which % negs.len()];
        // Flagged = at least one race, or a cascade deadlock (the
        // missing-advance negative stalls rather than racing).
        let flagged = match traced_run(program, Some(FaultConfig::legal(seed))) {
            Ok(races) => races > 0,
            Err(e) if e.kind == SimErrorKind::Deadlock => true,
            Err(e) => panic!("negative `{name}` seed {seed} failed oddly: {e}"),
        };
        prop_assert!(
            flagged,
            "racy negative `{}` escaped detection under fault seed {}",
            name, seed
        );
    }
}
